#!/usr/bin/env python3
"""Quickstart: BoFL vs Performant vs Oracle on one device.

Runs the paper's CIFAR10-ViT task on a simulated Jetson AGX for 25 FL
rounds under each pace controller and prints the per-round energy plus the
headline comparison (energy improvement over Performant, regret vs the
offline-profiled Oracle).

Run:  python examples/quickstart.py
"""

from repro.analysis import ascii_table, improvement_vs_performant, regret_vs_oracle
from repro.sim import run_campaign

ROUNDS = 25
RATIO = 2.0  # deadlines sampled uniformly from [T_min, 2 * T_min]


def main() -> None:
    print(f"Running {ROUNDS} FL rounds of CIFAR10-ViT on a simulated Jetson AGX...")
    campaigns = {
        name: run_campaign("agx", "vit", name, RATIO, rounds=ROUNDS, seed=0)
        for name in ("performant", "oracle", "bofl")
    }

    rows = []
    for i in range(ROUNDS):
        bofl_record = campaigns["bofl"].records[i]
        rows.append(
            (
                i + 1,
                bofl_record.phase,
                f"{bofl_record.deadline:.1f}",
                f"{campaigns['performant'].records[i].energy:.0f}",
                f"{campaigns['oracle'].records[i].energy:.0f}",
                f"{bofl_record.energy:.0f}",
                "MISS" if bofl_record.missed else "ok",
            )
        )
    print(
        ascii_table(
            ["round", "BoFL phase", "deadline (s)", "Performant (J)", "Oracle (J)", "BoFL (J)", "ddl"],
            rows,
        )
    )

    bofl = campaigns["bofl"]
    improvement = improvement_vs_performant(bofl, campaigns["performant"])
    regret = regret_vs_oracle(bofl, campaigns["oracle"])
    print()
    print(f"configurations explored : {bofl.explored_total} of 2100")
    print(f"energy improvement      : {improvement * 100:.1f}% vs Performant")
    print(f"energy regret           : {regret * 100:.2f}% vs Oracle")
    print(f"MBO overhead            : {bofl.mbo_energy:.0f} J "
          f"({bofl.mbo_energy / bofl.total_energy * 100:.2f}% of total)")
    print(f"deadline misses         : {bofl.missed_rounds}")


if __name__ == "__main__":
    main()
