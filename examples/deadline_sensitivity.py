#!/usr/bin/env python3
"""How deadline slack changes BoFL's savings (a mini Fig. 12).

Sweeps the maximum-deadline ratio ``T_max / T_min`` and reports BoFL's
energy improvement over Performant and regret vs Oracle for one task.
Longer deadlines give the controller more room to pace down, so the
improvement rises and the regret falls — the paper's §6.4 result.

Run:  python examples/deadline_sensitivity.py
"""

from repro.analysis import ascii_table, improvement_vs_performant, regret_vs_oracle
from repro.sim import run_campaign

TASK = "lstm"
ROUNDS = 40
RATIOS = (1.5, 2.0, 3.0, 4.0)


def main() -> None:
    print(f"Sweeping deadline ratios for IMDB-LSTM on a simulated Jetson AGX "
          f"({ROUNDS} rounds each)...")
    rows = []
    for ratio in RATIOS:
        bofl = run_campaign("agx", TASK, "bofl", ratio, rounds=ROUNDS, seed=0)
        performant = run_campaign("agx", TASK, "performant", ratio, rounds=ROUNDS, seed=0)
        oracle = run_campaign("agx", TASK, "oracle", ratio, rounds=ROUNDS, seed=0)
        rows.append(
            (
                f"{ratio}x",
                f"{bofl.total_energy:.0f}",
                f"{improvement_vs_performant(bofl, performant) * 100:.1f}%",
                f"{regret_vs_oracle(bofl, oracle) * 100:.2f}%",
                bofl.missed_rounds,
            )
        )
    print(
        ascii_table(
            ["T_max/T_min", "BoFL energy (J)", "improvement", "regret", "missed"],
            rows,
        )
    )
    print("\nExpected shape: improvement increases and regret decreases as the "
          "deadlines relax (paper §6.4).")


if __name__ == "__main__":
    main()
