#!/usr/bin/env python3
"""Thermal throttling and drift re-exploration (extension demo).

Sustained training heats an edge board until it throttles — at which point
every latency/energy measurement BoFL collected cold is wrong.  This
example runs the CIFAR10-ViT task on a simulated AGX with a thermal model
attached, once with the stock controller and once with the drift
re-exploration extension (``BoFLConfig(drift_reexploration=True)``), and
shows how the extension notices the stale model and re-runs its
exploration phases.

Run:  python examples/thermal_adaptation.py
"""

from repro.analysis import ascii_table
from repro.core import BoFLConfig, BoFLController
from repro.federated import UniformDeadlines
from repro.hardware import SimulatedDevice, ThermalModel, jetson_agx
from repro.workloads import vit

ROUNDS = 25
JOBS = 200  # CIFAR10-ViT on the AGX


def build_hot_board() -> SimulatedDevice:
    """An AGX whose cooling is poor enough to throttle under load."""
    thermal = ThermalModel(
        r_th=2.3,          # degrees C per watt: ~23 W sustained -> ~78 C
        tau_th=90.0,       # warms over a couple of rounds
        t_ambient=25.0,
        throttle_start=42.0,
        throttle_full=58.0,
        max_slowdown=1.3,  # fully throttled jobs run 30% slower
    )
    return SimulatedDevice(jetson_agx(), vit(), seed=0, thermal=thermal)


def run_variant(drift_reexploration: bool):
    device = build_hot_board()
    controller = BoFLController(
        device,
        BoFLConfig(
            seed=0,
            drift_reexploration=drift_reexploration,
            drift_threshold=0.08,
        ),
    )
    t_min_cold = device.model.latency(device.space.max_configuration()) * JOBS
    deadlines = UniformDeadlines(3.2, floor=1.8).generate(t_min_cold, ROUNDS, seed=5)
    records = [controller.run_round(JOBS, d) for d in deadlines]
    return controller, device, records


def main() -> None:
    print(f"Running {ROUNDS} rounds of CIFAR10-ViT on a poorly-cooled AGX...")
    rows = []
    for drift in (False, True):
        controller, device, records = run_variant(drift)
        rows.append(
            (
                "adaptive (drift re-exploration)" if drift else "static BoFL",
                controller.restarts,
                f"{controller._drift_ewma:.3f}",
                sum(r.guardian_triggered for r in records if r.phase == "exploitation"),
                sum(r.missed for r in records),
                f"{sum(r.energy for r in records):.0f}",
                f"{device.thermal.temperature:.1f}C",
            )
        )
    print(
        ascii_table(
            [
                "controller",
                "restarts",
                "plan error (EWMA)",
                "exploitation sprints",
                "missed",
                "energy (J)",
                "final temp",
            ],
            rows,
        )
    )
    print(
        "\nThe static controller's exploitation plans drift as the board heats\n"
        "(large plan error, guardian sprints); the adaptive variant re-explores\n"
        "once the drift detector fires, keeping its model accurate."
    )


if __name__ == "__main__":
    main()
