#!/usr/bin/env python3
"""Drive the multi-objective Bayesian optimizer directly.

Shows the library's MBO layer in isolation (no FL loop): Sobol-sample a
few starting points on a simulated Jetson AGX running ResNet50, then let
EHVI-guided batches search for the latency/energy Pareto front, printing
the hypervolume trajectory and the final front against the ground truth.

Run:  python examples/pareto_exploration.py
"""

import numpy as np

from repro.analysis import ascii_table, front_coverage, hypervolume_ratio
from repro.bayesopt import (
    MultiObjectiveBayesianOptimizer,
    pareto_front,
    sobol_configurations,
)
from repro.hardware import SimulatedDevice, get_device
from repro.workloads import get_workload

N_INITIAL = 21  # ~1% of the AGX's 2100-point space, as in the paper
BATCHES = 5
BATCH_SIZE = 10


def main() -> None:
    spec = get_device("agx")
    workload = get_workload("resnet50")
    device = SimulatedDevice(spec, workload, seed=11)

    optimizer = MultiObjectiveBayesianOptimizer(spec.space, seed=4)

    # Phase-1 style initialization: x_max plus Sobol starting points, each
    # measured for ~5 seconds of jobs.
    initial = [spec.space.max_configuration()] + sobol_configurations(
        spec.space, N_INITIAL, seed=4, exclude=[spec.space.max_configuration()]
    )
    print(f"Measuring {len(initial)} starting configurations...")
    for config in initial:
        sample, _ = device.measure_configuration(config, min_duration=5.0)
        optimizer.add_observation(sample.config, sample.latency, sample.energy)
    optimizer.freeze_reference()

    rows = [("init", optimizer.n_observations, f"{optimizer.hypervolume():.4f}", "-")]
    for batch_index in range(BATCHES):
        optimizer.fit()
        suggestions = optimizer.suggest(BATCH_SIZE)
        for config in suggestions:
            sample, _ = device.measure_configuration(config, min_duration=5.0)
            optimizer.add_observation(sample.config, sample.latency, sample.energy)
        rows.append(
            (
                f"batch {batch_index + 1}",
                optimizer.n_observations,
                f"{optimizer.hypervolume():.4f}",
                f"{optimizer.last_max_ehvi:.5f}",
            )
        )
    print(ascii_table(["step", "observations", "hypervolume", "max EHVI"], rows))

    # Compare against the ground-truth front (offline profiling).  The
    # searched configurations are re-scored on the *true* surfaces so that
    # favourable measurement noise cannot make the searched front look
    # better than physics allows.
    latencies, energies = device.model.profile_space()
    true_front = pareto_front(np.stack([latencies, energies], axis=1))
    found_configs, _ = optimizer.pareto_set()
    found_true = np.array([device.model.objectives(c) for c in found_configs])
    found_front = pareto_front(found_true)
    reference = optimizer.reference_point()

    print()
    print(f"explored {optimizer.n_observations} of {len(spec.space)} configurations "
          f"({optimizer.n_observations / len(spec.space) * 100:.1f}%)")
    print(f"searched front size : {found_front.shape[0]} (true: {true_front.shape[0]})")
    print(f"hypervolume ratio   : "
          f"{hypervolume_ratio(found_front, true_front, reference) * 100:.1f}%")
    print(f"front coverage (3%) : "
          f"{front_coverage(found_front, true_front, 0.03) * 100:.0f}%")
    print("\nSearched Pareto front (latency s, energy J):")
    print("  " + "  ".join(f"({t:.3f},{e:.2f})" for t, e in found_front))


if __name__ == "__main__":
    main()
