#!/usr/bin/env python3
"""End-to-end federated learning with real gradients and energy accounting.

Builds a small federation — two simulated Jetson AGX and two Jetson TX2
clients, each holding a non-IID shard of a synthetic CIFAR10-like dataset —
and trains a shared numpy MLP with FedAvg.  Each client paces its local
training with a BoFL controller, so every minibatch job both updates the
real model *and* consumes simulated time/energy on its board.

Run:  python examples/federated_training.py
"""

import numpy as np

from repro.analysis import ascii_table
from repro.core import BoFLConfig, BoFLController
from repro.federated import (
    FederatedClient,
    FederatedServer,
    UniformDeadlines,
    cifar10_vit,
)
from repro.hardware import SimulatedDevice, get_device
from repro.ml import MLPClassifier, make_blobs_classification, partition_dirichlet
from repro.sim import MBOCostModel

ROUNDS = 12
N_FEATURES = 32
N_CLASSES = 10


def main() -> None:
    rng = np.random.default_rng(7)
    # Synthetic CIFAR10-shaped data: one generation pass (so train and eval
    # share class structure), split into 4 client shards + a held-out
    # evaluation set for the server.
    full = make_blobs_classification(3400, N_FEATURES, N_CLASSES, class_separation=0.85, seed=1)
    order = rng.permutation(len(full))
    train, eval_set = full.subset(order[:2400]), full.subset(order[2400:])
    shards = partition_dirichlet(train, n_clients=4, alpha=1.0, rng=rng)

    task = cifar10_vit()
    global_model = MLPClassifier(N_FEATURES, [64, 32], N_CLASSES, seed=0)

    clients = []
    for i, device_name in enumerate(("agx", "agx", "tx2", "tx2")):
        spec = get_device(device_name)
        device = SimulatedDevice(spec, task.workload, seed=100 + i)
        controller = BoFLController(
            device, BoFLConfig(seed=i), mbo_cost=MBOCostModel(spec)
        )
        clients.append(
            FederatedClient(
                client_id=f"client-{i}-{device_name}",
                controller=controller,
                task=task,
                model=global_model.clone_architecture(seed=i),
                data=shards[i],
                seed=i,
            )
        )

    server = FederatedServer(
        clients,
        global_model=global_model,
        deadline_schedule=UniformDeadlines(2.5),
        eval_data=eval_set,
        seed=3,
    )

    print(f"Training {ROUNDS} federated rounds with 4 BoFL-paced clients...")
    rows = []
    for i in range(ROUNDS):
        record = server.run_round(i, ROUNDS)
        rows.append(
            (
                i + 1,
                f"{record.global_accuracy * 100:.1f}%" if record.global_accuracy else "-",
                f"{record.total_energy:.0f}",
                len(record.stragglers),
            )
        )
    print(
        ascii_table(
            ["round", "global accuracy", "energy (J, all clients)", "stragglers"],
            rows,
        )
    )

    print()
    per_client = [
        (
            c.client_id,
            c.device.spec.name,
            f"{c.device.energy_consumed:.0f} J",
            c.controller.phase.value,
            c.controller.explored_count,
        )
        for c in clients
    ]
    print(
        ascii_table(
            ["client", "device", "training energy", "BoFL phase", "explored"],
            per_client,
        )
    )
    final_acc = server.accuracy_series()[-1]
    assert final_acc is not None and final_acc > 0.5, "FedAvg failed to learn"
    print(f"\nFinal global accuracy: {final_acc * 100:.1f}% "
          f"(random guessing would be {100 / N_CLASSES:.0f}%)")


if __name__ == "__main__":
    main()
