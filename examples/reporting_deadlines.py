#!/usr/bin/env python3
"""Reporting deadlines over a 4G link (the paper's footnote-3 extension).

Some FL servers only specify when the *update must arrive*, not when
training must finish.  The :class:`ReportingDeadlineAdapter` wraps BoFL
with an online bandwidth estimator: each round it predicts the upload time
(e.g. the paper's 51.2 Mb ResNet50 over ~5 Mbps LTE ~ 10 s), reserves that
much, hands BoFL the remaining budget as its training deadline, then
learns from the actual transfer.

Run:  python examples/reporting_deadlines.py
"""

from repro.analysis import ascii_table
from repro.core import BoFLConfig, BoFLController
from repro.federated import LinkModel, ReportingDeadlineAdapter, UniformDeadlines
from repro.federated.transport import MODEL_SIZES_MBIT
from repro.hardware import SimulatedDevice, jetson_agx
from repro.workloads import resnet50

ROUNDS = 20
JOBS = 180  # ImageNet-ResNet50 on the AGX


def main() -> None:
    device = SimulatedDevice(jetson_agx(), resnet50(), seed=0)
    adapter = ReportingDeadlineAdapter(
        BoFLController(device, BoFLConfig(seed=0)),
        model_size_mbit=MODEL_SIZES_MBIT["resnet50"],
        link=LinkModel(bandwidth_mbps=5.0, variability=0.15, latency=0.5),
        seed=3,
    )
    t_min = device.model.latency(device.space.max_configuration()) * JOBS
    # Reporting deadlines: training budget range plus ~12 s of upload slack.
    reporting = [
        d + 13.0
        for d in UniformDeadlines(2.5).generate(t_min, ROUNDS, seed=9)
    ]

    print(f"Running {ROUNDS} ImageNet-ResNet50 rounds under reporting deadlines "
          f"({MODEL_SIZES_MBIT['resnet50']:.0f} Mb uploads over ~5 Mbps LTE)...")
    rows = []
    for i, deadline in enumerate(reporting):
        record = adapter.run_round(JOBS, deadline)
        rows.append(
            (
                i + 1,
                f"{deadline:.1f}",
                f"{record.training_deadline:.1f}",
                f"{record.training.elapsed:.1f}",
                f"{record.upload_time:.1f}",
                "yes" if record.reported_in_time else "LATE",
                f"{adapter.estimator.estimate_mbps:.2f}",
            )
        )
    print(
        ascii_table(
            [
                "round",
                "reporting ddl (s)",
                "training ddl (s)",
                "trained (s)",
                "upload (s)",
                "in time",
                "est. bw (Mbps)",
            ],
            rows,
        )
    )
    on_time = sum(1 for r in rows if r[5] == "yes")
    print(f"\n{on_time}/{ROUNDS} rounds reported in time; the bandwidth estimate "
          "converged from the prior to the link's true rate.")


if __name__ == "__main__":
    main()
