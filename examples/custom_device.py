#!/usr/bin/env python3
"""Bring your own board: define a custom device and workload calibration.

BoFL is hardware-agnostic — it only needs a discrete DVFS space and noisy
latency/energy samples.  This example defines a hypothetical "nano" edge
board (smaller frequency tables, tighter power envelope), calibrates an
object-detection workload on it, and runs a short BoFL campaign.

Run:  python examples/custom_device.py
"""

from repro.analysis import ascii_table
from repro.core import BoFLConfig, BoFLController
from repro.federated import UniformDeadlines
from repro.hardware import (
    ConfigurationSpace,
    DeviceSpec,
    FrequencyTable,
    SimulatedDevice,
    VoltageCurve,
)
from repro.hardware.perfmodel import CalibrationTarget
from repro.workloads import WorkloadProfile

ROUNDS = 15
JOBS_PER_ROUND = 120


def build_nano_board() -> DeviceSpec:
    """A hypothetical low-power board with a 9 x 8 x 4 = 288-point space."""
    space = ConfigurationSpace(
        FrequencyTable.linspaced("cpu", 0.30, 1.60, 9),
        FrequencyTable.linspaced("gpu", 0.15, 1.00, 8),
        FrequencyTable.linspaced("mem", 0.40, 1.60, 4),
    )
    return DeviceSpec(
        name="nano",
        long_name="Hypothetical Nano board",
        cpu_description="4-core in-order ARM",
        gpu_description="128-core GPU",
        mem_description="4GB LPDDR4",
        space=space,
        cpu_voltage=VoltageCurve(0.30, 1.60, 0.70, 1.10, gamma=1.4),
        gpu_voltage=VoltageCurve(0.15, 1.00, 0.65, 1.05, gamma=1.4),
        mem_voltage=VoltageCurve(0.40, 1.60, 0.85, 1.05),
        static_watts=0.9,
        idle_watts=(0.08, 0.10, 0.06),
        waiting_fractions=(0.10, 0.22, 0.05),
        relative_cpu_speed=0.5,
    )


def build_detector_workload() -> WorkloadProfile:
    """A small object-detection training workload calibrated for 'nano'."""
    return WorkloadProfile(
        name="tiny_detector",
        family="cnn",
        dataset="VOC-like",
        description="Tiny single-shot detector fine-tuning",
        targets={
            "nano": CalibrationTarget(
                latency_at_max=0.35,
                energy_at_max=2.4,
                busy_shares=(0.28, 0.52, 0.20),
                dynamic_split=(0.25, 0.55, 0.20),
                serial_fraction=0.35,
            )
        },
    )


def main() -> None:
    spec = build_nano_board()
    workload = build_detector_workload()
    device = SimulatedDevice(spec, workload, seed=21)
    print(f"{spec.long_name}: {len(spec.space)} DVFS configurations")

    controller = BoFLController(
        device,
        # A 288-point space needs fewer starting points than a Jetson.
        BoFLConfig(seed=1, initial_sample_fraction=0.03, min_explored_fraction=0.08),
    )
    jobs = JOBS_PER_ROUND
    t_min = device.model.latency(spec.space.max_configuration()) * jobs
    deadlines = UniformDeadlines(2.5).generate(t_min, ROUNDS, seed=5)

    rows = []
    records = []
    for i, deadline in enumerate(deadlines):
        record = controller.run_round(jobs, deadline)
        records.append(record)
        rows.append(
            (
                i + 1,
                record.phase,
                f"{deadline:.1f}",
                f"{record.elapsed:.1f}",
                f"{record.energy:.0f}",
                record.explored_count,
            )
        )
    print(
        ascii_table(
            ["round", "phase", "deadline (s)", "elapsed (s)", "energy (J)", "explored"],
            rows,
        )
    )
    performant_round = device.model.energy(spec.space.max_configuration()) * jobs
    last5 = [r.energy for r in records[-5:]]
    saving = 1.0 - (sum(last5) / len(last5)) / performant_round
    print(f"\nsteady-state saving vs always-max clocks: {saving * 100:.1f}%")


if __name__ == "__main__":
    main()
