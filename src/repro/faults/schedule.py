"""Declarative fault schedules, fully derived from a seed.

A :class:`FaultSpec` names one fault — a kind from :data:`FAULT_KINDS`, a
round window ``[start_round, start_round + rounds)`` and a kind-specific
``magnitude`` — and a :class:`FaultSchedule` is an immutable, hashable
bundle of them.  Schedules participate in the campaign cache key (see
:func:`repro.sim.runner.campaign_key`), so two things are non-negotiable:

* **hashable and picklable** — frozen dataclasses of scalars only, safe to
  cross the process-pool boundary;
* **no wall clock, no global randomness** — :meth:`FaultSchedule.generate`
  draws every window and magnitude from a ``numpy`` generator seeded by
  the caller, so the same seed always yields the same chaos.

Fault kinds and their ``magnitude`` semantics:

===================  =======================================================
kind                 magnitude
===================  =======================================================
``sensor_outage``    factor (< 1) applied to measured window energy — the
                     power sensor reads almost nothing during the outage
``sensor_spike``     factor (> 1) applied to measured window energy
``thermal_trip``     forced board temperature in degrees C at round start
``dvfs_reject``      unused — the DVFS driver rejects reconfiguration
``straggler``        per-job latency/energy inflation factor (> 1)
``transport_stall``  fraction of the reporting deadline eaten by the stall
``transport_loss``   unused — the round's upload is lost (counts as missed)
``client_dropout``   unused — the client drops out before training
===================  =======================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import ConfigurationError

#: The closed set of fault kinds injectors understand.
FAULT_KINDS: tuple[str, ...] = (
    "sensor_outage",
    "sensor_spike",
    "thermal_trip",
    "dvfs_reject",
    "straggler",
    "transport_stall",
    "transport_loss",
    "client_dropout",
)

#: Kinds that corrupt the controller's measurement pipeline (the
#: restore-on-corruption recovery policy keys on these).
MEASUREMENT_CORRUPTING_KINDS = frozenset(
    {"sensor_outage", "sensor_spike", "dvfs_reject"}
)

#: Magnitude ranges :meth:`FaultSchedule.generate` draws from, per kind.
_GENERATE_MAGNITUDES: dict[str, tuple[float, float]] = {
    "sensor_outage": (0.02, 0.10),
    "sensor_spike": (3.0, 8.0),
    "thermal_trip": (80.0, 92.0),
    "dvfs_reject": (1.0, 1.0),
    "straggler": (1.2, 1.8),
    "transport_stall": (0.2, 0.5),
    "transport_loss": (1.0, 1.0),
    "client_dropout": (1.0, 1.0),
}


@dataclass(frozen=True)
class FaultSpec:
    """One fault window: what breaks, when, and how hard."""

    kind: str
    start_round: int
    rounds: int = 1
    magnitude: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ConfigurationError(
                f"unknown fault kind {self.kind!r}; available: "
                f"{', '.join(FAULT_KINDS)}"
            )
        if self.start_round < 0:
            raise ConfigurationError(
                f"start_round must be >= 0, got {self.start_round}"
            )
        if self.rounds < 1:
            raise ConfigurationError(
                f"a fault must span at least one round, got {self.rounds}"
            )
        if not (isinstance(self.magnitude, (int, float)) and self.magnitude > 0):
            raise ConfigurationError(
                f"magnitude must be a positive number, got {self.magnitude!r}"
            )
        if self.kind in ("sensor_outage", "transport_stall") and self.magnitude >= 1.0:
            raise ConfigurationError(
                f"{self.kind} magnitude is a fraction in (0, 1), "
                f"got {self.magnitude}"
            )

    @property
    def end_round(self) -> int:
        """First round the fault is no longer active (exclusive bound)."""
        return self.start_round + self.rounds

    def active_in(self, round_index: int) -> bool:
        """Whether this fault is live during ``round_index``."""
        return self.start_round <= round_index < self.end_round

    @property
    def corrupts_measurements(self) -> bool:
        return self.kind in MEASUREMENT_CORRUPTING_KINDS

    def to_dict(self) -> dict[str, object]:
        return {
            "kind": self.kind,
            "start_round": self.start_round,
            "rounds": self.rounds,
            "magnitude": float(self.magnitude),
        }

    @classmethod
    def from_dict(cls, payload: dict[str, object]) -> "FaultSpec":
        try:
            return cls(
                kind=str(payload["kind"]),
                start_round=int(payload["start_round"]),  # type: ignore[call-overload]
                rounds=int(payload["rounds"]),  # type: ignore[call-overload]
                magnitude=float(payload["magnitude"]),  # type: ignore[arg-type]
            )
        except KeyError as error:
            raise ConfigurationError(
                f"fault spec payload missing field {error}"
            ) from error


@dataclass(frozen=True)
class FaultSchedule:
    """An immutable bundle of fault windows for one campaign.

    ``seed`` records the generator seed the schedule was derived from (or
    a caller-chosen label for hand-written schedules); it participates in
    hashing/equality so two differently-derived schedules never collide in
    the campaign cache even if their windows happen to coincide.
    """

    faults: tuple[FaultSpec, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        if not isinstance(self.faults, tuple):
            # Tolerate lists at construction; store the hashable form.
            object.__setattr__(self, "faults", tuple(self.faults))
        for fault in self.faults:
            if not isinstance(fault, FaultSpec):
                raise ConfigurationError(
                    f"faults must be FaultSpec instances, got {fault!r}"
                )

    def __len__(self) -> int:
        return len(self.faults)

    @property
    def is_empty(self) -> bool:
        return not self.faults

    @property
    def max_round(self) -> int:
        """The last round any fault is active in (-1 for empty schedules)."""
        if not self.faults:
            return -1
        return max(f.end_round for f in self.faults) - 1

    def active(self, round_index: int) -> tuple[FaultSpec, ...]:
        """Every fault live during ``round_index``, in declaration order."""
        return tuple(f for f in self.faults if f.active_in(round_index))

    def kinds(self) -> tuple[str, ...]:
        """The distinct fault kinds present, sorted."""
        return tuple(sorted({f.kind for f in self.faults}))

    @property
    def needs_thermal(self) -> bool:
        """Whether any fault requires a thermal model on the device."""
        return any(f.kind == "thermal_trip" for f in self.faults)

    def to_dict(self) -> dict[str, object]:
        """A JSON-stable representation (cache tokens, obs events)."""
        return {
            "seed": int(self.seed),
            "faults": [f.to_dict() for f in self.faults],
        }

    @classmethod
    def from_dict(cls, payload: dict[str, object]) -> "FaultSchedule":
        faults_raw = payload.get("faults")
        if not isinstance(faults_raw, list):
            raise ConfigurationError(
                f"fault schedule payload needs a 'faults' list, got {payload!r}"
            )
        return cls(
            faults=tuple(FaultSpec.from_dict(f) for f in faults_raw),
            seed=int(payload.get("seed", 0)),  # type: ignore[call-overload]
        )

    @classmethod
    def generate(
        cls,
        seed: int,
        rounds: int,
        *,
        kinds: Optional[tuple[str, ...]] = None,
        n_faults: int = 3,
        min_duration: int = 1,
        max_duration: int = 3,
        settle_rounds: int = 2,
    ) -> "FaultSchedule":
        """Derive a random schedule deterministically from ``seed``.

        Draws ``n_faults`` windows over ``[settle_rounds, rounds)`` — the
        first ``settle_rounds`` rounds are kept clean so controllers get at
        least one healthy measurement of ``x_max`` — with kinds cycled from
        ``kinds`` (default: all of :data:`FAULT_KINDS`), durations in
        ``[min_duration, max_duration]`` and magnitudes from the per-kind
        ranges.  Same arguments, same schedule — no wall clock, no global
        random state.
        """
        if rounds < 1:
            raise ConfigurationError(f"rounds must be >= 1, got {rounds}")
        if n_faults < 0:
            raise ConfigurationError(f"n_faults must be >= 0, got {n_faults}")
        if not 1 <= min_duration <= max_duration:
            raise ConfigurationError(
                f"need 1 <= min_duration <= max_duration, got "
                f"{min_duration}, {max_duration}"
            )
        pool = kinds if kinds is not None else FAULT_KINDS
        for kind in pool:
            if kind not in FAULT_KINDS:
                raise ConfigurationError(
                    f"unknown fault kind {kind!r}; available: "
                    f"{', '.join(FAULT_KINDS)}"
                )
        rng = np.random.default_rng(seed)
        first = min(settle_rounds, max(rounds - 1, 0))
        faults = []
        for index in range(n_faults):
            kind = pool[index % len(pool)]
            duration = int(rng.integers(min_duration, max_duration + 1))
            latest = max(rounds - duration, first)
            start = int(rng.integers(first, latest + 1))
            low, high = _GENERATE_MAGNITUDES[kind]
            magnitude = float(rng.uniform(low, high)) if high > low else low
            faults.append(
                FaultSpec(
                    kind=kind,
                    start_round=start,
                    rounds=duration,
                    magnitude=magnitude,
                )
            )
        ordered = tuple(
            sorted(faults, key=lambda f: (f.start_round, f.kind, f.magnitude))
        )
        return cls(faults=ordered, seed=seed)
