"""``repro.faults`` — deterministic fault injection and resilience machinery.

The paper evaluates BoFL on healthy boards; this package supplies the
disruption its explore-then-exploit design actually faces in the field —
thermal trips invalidating cold profiles, power-sensor outages corrupting
measurement windows, links stalling mid-upload, clients vanishing
mid-round — as *seeded, simulated-clock-driven* faults, plus the recovery
machinery those faults exercise:

* :mod:`repro.faults.schedule` — declarative :class:`FaultSpec` /
  :class:`FaultSchedule` (fully derived from a seed, hashable, and part of
  the campaign cache key);
* :mod:`repro.faults.injectors` — the per-round arming layer translating
  active fault windows into device overlays and obs events;
* :mod:`repro.faults.recovery` — :class:`RecoveryPolicy` (checkpoint
  cadence, restore-on-corruption, guardian escalation) and the
  :class:`RecoveryLog` bookkeeping;
* :mod:`repro.faults.engine` — :class:`ChaosRoundEngine`, the round loop
  gluing injection and recovery around any pace controller;
* :mod:`repro.faults.metrics` — :class:`ResilienceMetrics` (deadline-miss
  rate, energy regret vs the fault-free twin, recovery rounds).

Campaign-level orchestration (presets, the ``repro chaos`` CLI backend,
parallel execution through the executor/cache) lives one layer up in
:mod:`repro.sim.chaos` so this package never imports the sim harness.
"""

from repro.faults.engine import ChaosRoundEngine
from repro.faults.injectors import FaultInjector, RoundFaults
from repro.faults.metrics import ResilienceMetrics
from repro.faults.recovery import RecoveryLog, RecoveryPolicy
from repro.faults.schedule import (
    FAULT_KINDS,
    FaultSchedule,
    FaultSpec,
)

__all__ = [
    "FAULT_KINDS",
    "ChaosRoundEngine",
    "FaultInjector",
    "FaultSchedule",
    "FaultSpec",
    "RecoveryLog",
    "RecoveryPolicy",
    "ResilienceMetrics",
    "RoundFaults",
]
