"""The chaos round loop: inject, run, recover.

:class:`ChaosRoundEngine` wraps one pace controller and drives it round by
round under a :class:`~repro.faults.schedule.FaultSchedule`, applying a
:class:`~repro.faults.recovery.RecoveryPolicy` around every round:

1. **checkpoint** — on the policy's cadence, snapshot the controller's
   learning state *before* faults arm, so a later restore predates any
   corruption;
2. **inject** — arm the round's fault windows on the device (and compute
   their federated semantics);
3. **run** — a ``client_dropout`` round never trains (the device idles to
   the deadline); otherwise the controller runs against a deadline the
   transport stalls may have tightened, and a ``transport_loss`` marks the
   finished round as missed (the update never reached the server);
4. **recover** — roll back to the last checkpoint after a
   measurement-corrupting round, and escalate the controller to ``x_max``
   after a thermal trip or a deadline miss under fault.

Recovery hooks are duck-typed (``checkpoint``/``restore``/
``escalate_to_xmax``), so BoFL gets the full treatment while baseline
controllers degrade gracefully to injection-only chaos.
"""

from __future__ import annotations

from typing import Optional

from repro.core.base import JobCallback, PaceController
from repro.core.records import RoundRecord
from repro.faults.injectors import FaultInjector, RoundFaults
from repro.faults.recovery import RecoveryLog, RecoveryPolicy
from repro.faults.schedule import FaultSchedule
from repro.hardware.device import SimulatedDevice
from repro.obs import runtime as obs
from repro.types import Seconds


class ChaosRoundEngine:
    """Runs a controller's rounds under fault injection + recovery."""

    def __init__(
        self,
        device: SimulatedDevice,
        controller: PaceController,
        schedule: FaultSchedule,
        policy: Optional[RecoveryPolicy] = None,
    ) -> None:
        self.device = device
        self.controller = controller
        self.schedule = schedule
        self.policy = policy if policy is not None else RecoveryPolicy()
        self.injector = FaultInjector(schedule, device)
        self.log = RecoveryLog()
        self._checkpoint: Optional[object] = None
        self._supports_checkpoint = hasattr(controller, "checkpoint") and hasattr(
            controller, "restore"
        )
        self._supports_escalation = hasattr(controller, "escalate_to_xmax")

    def run_round(
        self,
        round_index: int,
        jobs: int,
        deadline: Seconds,
        on_job: Optional[JobCallback] = None,
    ) -> RoundRecord:
        """Execute one chaos round; returns the (possibly synthetic) record."""
        self._maybe_checkpoint(round_index)
        faults = self.injector.arm(round_index)
        self.log.injected = list(self.injector.injections)
        if faults.drops_round:
            record = self._dropped_round(round_index, jobs, deadline)
        else:
            effective_deadline = deadline * faults.deadline_factor
            record = self.controller.run_round(jobs, effective_deadline, on_job)
            # The controller numbers rounds it actually ran; dropped rounds
            # make that counter lag the campaign's — renumber to campaign
            # coordinates so the record stream stays contiguous.
            record.round_index = round_index
            if faults.loses_report:
                record.missed = True
                self.log.lost_reports += 1
        self._recover(round_index, faults, record)
        return record

    def finish(self) -> None:
        """Clear any armed faults (call once after the last round)."""
        self.injector.disarm()
        self.log.injected = list(self.injector.injections)

    # -- internals -----------------------------------------------------------

    def _maybe_checkpoint(self, round_index: int) -> None:
        if not (self.policy.checkpoints_enabled and self._supports_checkpoint):
            return
        if round_index % self.policy.checkpoint_interval != 0:
            return
        self._checkpoint = self.controller.checkpoint()  # type: ignore[attr-defined]
        self.log.checkpoints += 1
        if obs.enabled():
            obs.emit(
                "recovery.checkpoint",
                t=self.device.clock.now,
                round=round_index,
            )
            obs.count("recovery.checkpoints")

    def _dropped_round(
        self, round_index: int, jobs: int, deadline: Seconds
    ) -> RoundRecord:
        """The client vanished: no training, the board idles to the deadline."""
        idle_energy = self.device.idle(deadline)
        self.log.dropped_rounds += 1
        return RoundRecord(
            round_index=round_index,
            phase="dropped",
            deadline=deadline,
            jobs=jobs,
            elapsed=deadline,
            energy=idle_energy,
            missed=True,
        )

    def _recover(
        self, round_index: int, faults: RoundFaults, record: RoundRecord
    ) -> None:
        if (
            faults.corrupts_measurements
            and self.policy.restore_on_corruption
            and self._checkpoint is not None
        ):
            self.controller.restore(self._checkpoint)  # type: ignore[attr-defined]
            self.log.restores += 1
            if obs.enabled():
                obs.emit(
                    "recovery.restore",
                    t=self.device.clock.now,
                    round=round_index,
                    kinds=list(faults.kinds()),
                )
                obs.count("recovery.restores")
        anomaly = faults.forces_thermal or record.missed
        if anomaly and self.policy.escalate_on_anomaly and self._supports_escalation:
            self.controller.escalate_to_xmax(  # type: ignore[attr-defined]
                self.policy.escalation_rounds
            )
            self.log.escalations += 1
            if obs.enabled():
                obs.emit(
                    "recovery.escalation",
                    t=self.device.clock.now,
                    round=round_index,
                    rounds=self.policy.escalation_rounds,
                    thermal=faults.forces_thermal,
                    missed=record.missed,
                )
                obs.count("recovery.escalations")
