"""Per-round fault arming: schedules -> device overlays + obs events.

The :class:`FaultInjector` is the only component that interprets fault
kinds.  Each round the chaos engine calls :meth:`FaultInjector.arm`, which

* collects the schedule's active :class:`~repro.faults.schedule.FaultSpec`
  windows for that round,
* folds the hardware-facing ones into one
  :class:`~repro.hardware.device.FaultOverlay` (straggler inflation,
  sensor corruption, DVFS rejection) and applies it to the device —
  including the thermal-trip temperature forcing,
* reports the federated-facing semantics (deadline tightening from
  transport stalls, lost reports, client dropout) as a
  :class:`RoundFaults` summary for the engine to act on, and
* emits ``fault.injected`` / ``fault.cleared`` obs events exactly on the
  rounds where a window opens or closes.

Everything here is a pure function of (schedule, round index): no clocks,
no random draws, so serial and parallel chaos campaigns stay identical.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.faults.schedule import FaultSchedule, FaultSpec
from repro.hardware.device import FaultOverlay, SimulatedDevice
from repro.obs import runtime as obs

#: Training deadlines are never tightened below this fraction of the
#: reporting deadline, mirroring the transport-layer conversion floor in
#: :func:`repro.federated.transport.training_deadline_from_reporting`.
MIN_DEADLINE_FRACTION = 0.1


@dataclass(frozen=True)
class RoundFaults:
    """What the active fault windows mean for one round."""

    round_index: int
    specs: tuple[FaultSpec, ...]

    @property
    def any_active(self) -> bool:
        return bool(self.specs)

    @property
    def drops_round(self) -> bool:
        """The client vanished before training (Fig. 1's drop-out arrow)."""
        return any(s.kind == "client_dropout" for s in self.specs)

    @property
    def loses_report(self) -> bool:
        """The upload is lost in transit — the round trains but never lands."""
        return any(s.kind == "transport_loss" for s in self.specs)

    @property
    def forces_thermal(self) -> bool:
        return any(s.kind == "thermal_trip" for s in self.specs)

    @property
    def corrupts_measurements(self) -> bool:
        return any(s.corrupts_measurements for s in self.specs)

    @property
    def deadline_factor(self) -> float:
        """Training-deadline shrink from transport stalls (1.0 = none).

        Stalls compose multiplicatively (two concurrent 30 % stalls leave
        49 % of the budget) and the result is floored so a pathological
        schedule cannot produce a non-positive training budget.
        """
        factor = 1.0
        for spec in self.specs:
            if spec.kind == "transport_stall":
                factor *= 1.0 - spec.magnitude
        return max(factor, MIN_DEADLINE_FRACTION)

    def kinds(self) -> tuple[str, ...]:
        return tuple(sorted({s.kind for s in self.specs}))


def overlay_for(specs: tuple[FaultSpec, ...]) -> FaultOverlay:
    """Fold the hardware-facing faults of one round into a device overlay."""
    latency_factor = 1.0
    energy_factor = 1.0
    sensor_factor = 1.0
    reject = False
    for spec in specs:
        if spec.kind == "straggler":
            latency_factor *= spec.magnitude
            energy_factor *= spec.magnitude
        elif spec.kind in ("sensor_outage", "sensor_spike"):
            sensor_factor *= spec.magnitude
        elif spec.kind == "dvfs_reject":
            reject = True
    return FaultOverlay(
        latency_factor=latency_factor,
        energy_factor=energy_factor,
        sensor_energy_factor=sensor_factor,
        reject_dvfs=reject,
    )


class FaultInjector:
    """Arms one device with a schedule's faults, round by round."""

    def __init__(self, schedule: FaultSchedule, device: SimulatedDevice) -> None:
        self.schedule = schedule
        self.device = device
        self._previous: tuple[FaultSpec, ...] = ()
        #: Every (round, kind) injection performed, in order — the chaos
        #: summary and the resilience metrics both consume this.
        self.injections: list[tuple[int, str]] = []

    def arm(self, round_index: int) -> RoundFaults:
        """Apply the faults active in ``round_index`` and describe them."""
        specs = self.schedule.active(round_index)
        faults = RoundFaults(round_index=round_index, specs=specs)
        overlay = overlay_for(specs)
        forced_temperature = None
        for spec in specs:
            # A thermal trip forces the temperature on the window's first
            # round only; afterwards the RC dynamics take over.
            if spec.kind == "thermal_trip" and spec.start_round == round_index:
                forced_temperature = spec.magnitude
        self.device.apply_fault_overlay(
            None if overlay.is_neutral else overlay, forced_temperature
        )
        self._emit_transitions(round_index, specs)
        self._previous = specs
        return faults

    def disarm(self) -> None:
        """Clear any armed overlay (end of campaign)."""
        self.device.apply_fault_overlay(None)
        self._previous = ()

    def _emit_transitions(
        self, round_index: int, specs: tuple[FaultSpec, ...]
    ) -> None:
        opened = [s for s in specs if s.start_round == round_index]
        closed = [s for s in self._previous if s.end_round == round_index]
        for spec in opened:
            self.injections.append((round_index, spec.kind))
        if not obs.enabled():
            return
        now = self.device.clock.now
        for spec in closed:
            obs.emit(
                "fault.cleared",
                t=now,
                round=round_index,
                fault=spec.kind,
                active_rounds=spec.rounds,
            )
            obs.count("faults.cleared")
        for spec in opened:
            obs.emit(
                "fault.injected",
                t=now,
                round=round_index,
                fault=spec.kind,
                magnitude=spec.magnitude,
                until_round=spec.end_round,
            )
            obs.count("faults.injected")
