"""Recovery policies and bookkeeping for chaos campaigns.

A :class:`RecoveryPolicy` declares how the chaos engine defends the
controller: how often to checkpoint its optimizer state, whether a
corrupted measurement window triggers a rollback, and whether detected
anomalies (thermal trips, deadline misses under fault) escalate the
guardian to pinning ``x_max``.  Policies are frozen scalar dataclasses —
hashable and picklable — because they participate in the campaign cache
key alongside the fault schedule.

:class:`RecoveryLog` is the matching tally: how many checkpoints were
taken, restores performed, escalations issued, rounds dropped and reports
lost over one campaign.  The engine fills it in; the chaos summary and
resilience metrics read it out.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class RecoveryPolicy:
    """How a chaos campaign defends the controller against faults."""

    #: Checkpoint the controller's optimizer state every N clean rounds
    #: (0 disables checkpointing entirely).
    checkpoint_interval: int = 1
    #: Roll back to the last checkpoint after a round whose measurement
    #: window was corrupted (sensor faults, rejected DVFS writes), so
    #: poisoned observations never enter the GP.
    restore_on_corruption: bool = True
    #: Escalate to the guardian's safe harbor — pin ``x_max`` — after a
    #: thermal trip or a deadline miss under an active fault.
    escalate_on_anomaly: bool = True
    #: How many subsequent rounds the escalation pins ``x_max`` for.
    escalation_rounds: int = 2

    def __post_init__(self) -> None:
        if self.checkpoint_interval < 0:
            raise ConfigurationError(
                f"checkpoint_interval must be >= 0, got {self.checkpoint_interval}"
            )
        if self.escalation_rounds < 1:
            raise ConfigurationError(
                f"escalation_rounds must be >= 1, got {self.escalation_rounds}"
            )

    @property
    def checkpoints_enabled(self) -> bool:
        return self.checkpoint_interval > 0

    def to_dict(self) -> dict[str, object]:
        return {
            "checkpoint_interval": self.checkpoint_interval,
            "restore_on_corruption": self.restore_on_corruption,
            "escalate_on_anomaly": self.escalate_on_anomaly,
            "escalation_rounds": self.escalation_rounds,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, object]) -> "RecoveryPolicy":
        return cls(
            checkpoint_interval=int(payload.get("checkpoint_interval", 1)),  # type: ignore[call-overload]
            restore_on_corruption=bool(payload.get("restore_on_corruption", True)),
            escalate_on_anomaly=bool(payload.get("escalate_on_anomaly", True)),
            escalation_rounds=int(payload.get("escalation_rounds", 2)),  # type: ignore[call-overload]
        )


#: The defenseless policy: no checkpoints, no restores, no escalation.
#: Chaos campaigns run it as the ablation arm to show recovery matters.
NO_RECOVERY = RecoveryPolicy(
    checkpoint_interval=0,
    restore_on_corruption=False,
    escalate_on_anomaly=False,
)


@dataclass
class RecoveryLog:
    """Mutable per-campaign tally of injections and recovery actions."""

    injected: list[tuple[int, str]] = field(default_factory=list)
    checkpoints: int = 0
    restores: int = 0
    escalations: int = 0
    dropped_rounds: int = 0
    lost_reports: int = 0

    @property
    def recovery_actions(self) -> int:
        return self.restores + self.escalations

    def to_dict(self) -> dict[str, object]:
        return {
            "injected": [[r, k] for r, k in self.injected],
            "checkpoints": self.checkpoints,
            "restores": self.restores,
            "escalations": self.escalations,
            "dropped_rounds": self.dropped_rounds,
            "lost_reports": self.lost_reports,
        }
