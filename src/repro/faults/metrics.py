"""Resilience metrics: what chaos cost and how fast the controller healed.

:class:`ResilienceMetrics` compares a faulted campaign against its
fault-free twin (same device, task, controller, seed — only the schedule
differs) and summarizes three things the paper's healthy-board evaluation
cannot show:

* **deadline-miss rate** under fault, including dropped/lost rounds;
* **energy regret** — extra Joules spent versus the fault-free run, which
  bounds how much the injected chaos (and the defensive escalations it
  provoked) cost;
* **recovery rounds** — for each fault window, how many rounds after it
  closed until the controller produced a clean round again (no miss, no
  guardian fallback, no drop).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.records import CampaignResult, RoundRecord
from repro.faults.schedule import FaultSchedule


def _is_clean(record: RoundRecord) -> bool:
    return (
        not record.missed
        and not record.guardian_triggered
        and record.phase != "dropped"
    )


@dataclass(frozen=True)
class ResilienceMetrics:
    """How one faulted campaign fared against its fault-free twin."""

    rounds: int
    faulted_rounds: int
    missed_rounds: int
    faulted_energy: float
    baseline_energy: float
    #: Per closed fault window: rounds from the window's end until the
    #: first clean round (deadline met, no guardian fallback, no drop).
    recovery_rounds: tuple[int, ...]

    @property
    def miss_rate(self) -> float:
        return self.missed_rounds / self.rounds if self.rounds else 0.0

    @property
    def energy_regret(self) -> float:
        """Extra Joules versus the fault-free twin (can be negative)."""
        return self.faulted_energy - self.baseline_energy

    @property
    def energy_regret_fraction(self) -> float:
        if self.baseline_energy <= 0:
            return 0.0
        return self.energy_regret / self.baseline_energy

    @property
    def mean_recovery_rounds(self) -> float:
        if not self.recovery_rounds:
            return 0.0
        return sum(self.recovery_rounds) / len(self.recovery_rounds)

    @property
    def max_recovery_rounds(self) -> int:
        return max(self.recovery_rounds) if self.recovery_rounds else 0

    def to_dict(self) -> dict[str, object]:
        return {
            "rounds": self.rounds,
            "faulted_rounds": self.faulted_rounds,
            "missed_rounds": self.missed_rounds,
            "miss_rate": self.miss_rate,
            "faulted_energy_j": self.faulted_energy,
            "baseline_energy_j": self.baseline_energy,
            "energy_regret_j": self.energy_regret,
            "energy_regret_fraction": self.energy_regret_fraction,
            "recovery_rounds": list(self.recovery_rounds),
            "mean_recovery_rounds": self.mean_recovery_rounds,
            "max_recovery_rounds": self.max_recovery_rounds,
        }

    @classmethod
    def compute(
        cls,
        faulted: CampaignResult,
        baseline: CampaignResult,
        schedule: FaultSchedule,
    ) -> "ResilienceMetrics":
        """Compare ``faulted`` against its fault-free ``baseline`` twin."""
        records = faulted.records
        n = len(records)
        faulted_round_indices = {
            i for i in range(n) if schedule.active(i)
        }
        recovery = []
        # One recovery measurement per distinct window close that falls
        # inside the campaign; simultaneous closes collapse to one entry.
        for end in sorted({f.end_round for f in schedule.faults}):
            if end > n:
                continue
            rounds_to_clean = 0
            index = end
            while index < n and not _is_clean(records[index]):
                rounds_to_clean += 1
                index += 1
            recovery.append(rounds_to_clean)
        return cls(
            rounds=n,
            faulted_rounds=len(faulted_round_indices),
            missed_rounds=faulted.missed_rounds,
            faulted_energy=faulted.total_energy,
            baseline_energy=baseline.total_energy,
            recovery_rounds=tuple(recovery),
        )
