"""BoFL reproduction: Bayesian-optimized local training pace control for
energy-efficient federated learning (Guo et al., ACM/IFIP Middleware 2022).

The package is organized bottom-up:

* :mod:`repro.hardware` — simulated DVFS-capable edge boards (Jetson
  AGX/TX2) with calibrated latency/energy surfaces, sensors and actuators;
* :mod:`repro.workloads` — the paper's three NN training workloads (ViT,
  ResNet50, LSTM) plus extensions;
* :mod:`repro.bayesopt` — from-scratch multi-objective Bayesian
  optimization (Matérn-5/2 GPs, exact 2-D EHVI, Kriging-believer batches);
* :mod:`repro.ilp` — from-scratch simplex + branch-and-bound and the
  Eqn. 1 schedule solver;
* :mod:`repro.ml` / :mod:`repro.federated` — a numpy training stack and
  the FL server/client workflow;
* :mod:`repro.core` — the BoFL three-phase controller itself;
* :mod:`repro.baselines`, :mod:`repro.sim`, :mod:`repro.analysis`,
  :mod:`repro.experiments` — comparison targets, the campaign harness,
  metrics, and one driver per paper table/figure;
* :mod:`repro.obs` — the structured observability layer: typed events,
  counters/timers, JSONL traces and trace-replay of Table 3 / Fig. 13
  (disabled by default, see ``docs/observability.md``).

Quickstart::

    from repro import quick_campaign
    result = quick_campaign(task="vit", controller="bofl", deadline_ratio=2.0)
    print(result.training_energy)
"""

from repro import obs
from repro._version import __version__
from repro.clock import SimulationClock
from repro.core import BoFLConfig, BoFLController
from repro.core.records import CampaignResult, RoundRecord
from repro.hardware import SimulatedDevice, get_device, jetson_agx, jetson_tx2
from repro.sim import run_campaign
from repro.types import DvfsConfiguration, PerformanceSample
from repro.workloads import get_workload


def quick_campaign(
    task: str = "vit",
    controller: str = "bofl",
    device: str = "agx",
    deadline_ratio: float = 2.0,
    rounds: int = 40,
    seed: int = 0,
) -> CampaignResult:
    """Run one controller campaign with sensible defaults.

    A convenience wrapper over :func:`repro.sim.run_campaign` for
    notebooks and the quickstart example.
    """
    return run_campaign(
        device, task, controller, deadline_ratio, rounds=rounds, seed=seed
    )


__all__ = [
    "BoFLConfig",
    "BoFLController",
    "CampaignResult",
    "DvfsConfiguration",
    "PerformanceSample",
    "RoundRecord",
    "SimulatedDevice",
    "SimulationClock",
    "__version__",
    "get_device",
    "get_workload",
    "jetson_agx",
    "jetson_tx2",
    "obs",
    "quick_campaign",
    "run_campaign",
]
