"""Cross-cutting value types shared by every subpackage.

The central abstraction of the paper is the *job* — processing one minibatch
of training data under a single DVFS configuration — and the pair of
blackbox per-job metrics ``T(x)`` (latency, seconds) and ``E(x)`` (energy,
Joules).  The types here carry those quantities between the hardware
simulator, the Bayesian optimizer and the controller without any of them
needing to know about each other.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from collections.abc import Iterator

from repro.errors import ConfigurationError

#: Type aliases used in signatures throughout the package (documentation
#: only; Python does not enforce them).
Seconds = float
Joules = float
Watts = float
GHz = float


@dataclass(frozen=True, order=True)
class DvfsConfiguration:
    """One point of the DVFS space: (CPU, GPU, memory-controller) clocks.

    Frequencies are stored in GHz.  Instances are immutable and hashable so
    they can key observation dictionaries, and ordered lexicographically so
    deterministic iteration orders are easy to produce.
    """

    cpu: GHz
    gpu: GHz
    mem: GHz

    def __post_init__(self) -> None:
        for name, value in (("cpu", self.cpu), ("gpu", self.gpu), ("mem", self.mem)):
            if not (isinstance(value, (int, float)) and math.isfinite(value)):
                raise ConfigurationError(f"{name} frequency must be finite, got {value!r}")
            if value <= 0:
                raise ConfigurationError(f"{name} frequency must be positive, got {value!r}")

    def as_tuple(self) -> tuple[GHz, GHz, GHz]:
        """Return ``(cpu, gpu, mem)`` in GHz."""
        return (self.cpu, self.gpu, self.mem)

    def __iter__(self) -> Iterator[GHz]:
        return iter(self.as_tuple())

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"(cpu={self.cpu:.3f}GHz, gpu={self.gpu:.3f}GHz, mem={self.mem:.3f}GHz)"


@dataclass(frozen=True)
class PerformanceSample:
    """A measurement of the two blackbox objectives at one configuration.

    ``latency`` and ``energy`` are *per-job* (per-minibatch) quantities, as
    defined in §3.1 of the paper.  ``jobs_measured`` and ``duration`` record
    how much work backed the measurement; longer measurements carry less
    sensor noise (the motivation for the paper's ``tau`` reference
    measurement duration).
    """

    config: DvfsConfiguration
    latency: Seconds
    energy: Joules
    jobs_measured: int = 1
    duration: Seconds = 0.0

    def __post_init__(self) -> None:
        if self.latency <= 0 or not math.isfinite(self.latency):
            raise ConfigurationError(f"latency must be positive, got {self.latency!r}")
        if self.energy <= 0 or not math.isfinite(self.energy):
            raise ConfigurationError(f"energy must be positive, got {self.energy!r}")
        if self.jobs_measured < 1:
            raise ConfigurationError("jobs_measured must be >= 1")

    @property
    def objectives(self) -> tuple[Seconds, Joules]:
        """Return the objective vector ``(T(x), E(x))`` used by the MBO."""
        return (self.latency, self.energy)

    def merged_with(self, other: "PerformanceSample") -> "PerformanceSample":
        """Combine two samples of the *same* configuration.

        The result is the job-count weighted average, reflecting what a real
        energy meter would report if the two measurement windows were
        concatenated.
        """
        if other.config != self.config:
            raise ConfigurationError(
                f"cannot merge samples of different configs: {self.config} vs {other.config}"
            )
        total_jobs = self.jobs_measured + other.jobs_measured
        w_self = self.jobs_measured / total_jobs
        w_other = other.jobs_measured / total_jobs
        return PerformanceSample(
            config=self.config,
            latency=self.latency * w_self + other.latency * w_other,
            energy=self.energy * w_self + other.energy * w_other,
            jobs_measured=total_jobs,
            duration=self.duration + other.duration,
        )


@dataclass(frozen=True)
class JobResult:
    """Outcome of executing one job (one minibatch) on a device."""

    config: DvfsConfiguration
    latency: Seconds
    energy: Joules
    #: Simulated timestamp at which the job completed.
    finished_at: Seconds = 0.0


@dataclass
class RoundBudget:
    """Mutable per-round accounting used by the controller while executing.

    Tracks how many jobs remain and how much time is left before the round
    deadline, which is exactly the state the deadline-guardian check
    (Eqn. 2 in the paper) consumes.
    """

    total_jobs: int
    deadline: Seconds
    jobs_done: int = 0
    elapsed: Seconds = 0.0

    def __post_init__(self) -> None:
        if self.total_jobs < 1:
            raise ConfigurationError("a round must contain at least one job")
        if self.deadline <= 0:
            raise ConfigurationError("deadline must be positive")

    @property
    def jobs_remaining(self) -> int:
        return self.total_jobs - self.jobs_done

    @property
    def time_remaining(self) -> Seconds:
        return self.deadline - self.elapsed

    @property
    def finished(self) -> bool:
        return self.jobs_remaining <= 0

    @property
    def missed(self) -> bool:
        """Whether time ran out with jobs still outstanding."""
        return self.time_remaining < 0

    def record_job(self, result: JobResult) -> None:
        """Account one executed job against the budget."""
        if self.finished:
            raise ConfigurationError("all jobs in this round are already done")
        self.jobs_done += 1
        self.elapsed += result.latency


@dataclass(frozen=True)
class ScheduleEntry:
    """A (configuration, job count) term of an exploitation schedule."""

    config: DvfsConfiguration
    jobs: int

    def __post_init__(self) -> None:
        if self.jobs < 0:
            raise ConfigurationError("schedule entry job count must be >= 0")


@dataclass(frozen=True)
class Schedule:
    """An exploitation plan: run ``entry.jobs`` jobs at each configuration.

    Produced by the ILP planner (§4.4); consumed by the controller, which
    executes entries in the listed order (fastest first, so that noise late
    in the round cannot cause a miss).
    """

    entries: tuple[ScheduleEntry, ...]
    expected_latency: Seconds
    expected_energy: Joules

    @property
    def total_jobs(self) -> int:
        return sum(entry.jobs for entry in self.entries)

    def __iter__(self) -> Iterator[ScheduleEntry]:
        return iter(self.entries)

    def __len__(self) -> int:
        return len(self.entries)


@dataclass(frozen=True)
class ObjectiveVector:
    """An (latency, energy) point in performance space.

    Thin wrapper used by Pareto utilities where no configuration is
    attached (e.g. reference points).
    """

    latency: Seconds
    energy: Joules

    def as_tuple(self) -> tuple[Seconds, Joules]:
        return (self.latency, self.energy)

    def dominates(self, other: "ObjectiveVector") -> bool:
        """Pareto dominance for minimization of both coordinates (§3.2)."""
        no_worse = self.latency <= other.latency and self.energy <= other.energy
        strictly_better = self.latency < other.latency or self.energy < other.energy
        return no_worse and strictly_better


@dataclass
class EnergyLedger:
    """Accumulates energy by category over a campaign.

    Splits training energy from controller (MBO) overhead so that the
    overhead analysis of Fig. 13 can be regenerated.
    """

    training: Joules = 0.0
    mbo_overhead: Joules = 0.0
    idle: Joules = 0.0
    extras: dict = field(default_factory=dict)

    @property
    def total(self) -> Joules:
        return self.training + self.mbo_overhead + self.idle + sum(self.extras.values())

    def add(self, category: str, amount: Joules) -> None:
        if amount < 0:
            raise ConfigurationError("energy amounts must be non-negative")
        if category == "training":
            self.training += amount
        elif category == "mbo_overhead":
            self.mbo_overhead += amount
        elif category == "idle":
            self.idle += amount
        else:
            self.extras[category] = self.extras.get(category, 0.0) + amount


def require_positive(name: str, value: float) -> float:
    """Validate that ``value`` is a finite positive number and return it."""
    if not (isinstance(value, (int, float)) and math.isfinite(value) and value > 0):
        raise ConfigurationError(f"{name} must be a finite positive number, got {value!r}")
    return float(value)


def require_fraction(name: str, value: float, *, inclusive: bool = True) -> float:
    """Validate that ``value`` lies in [0, 1] (or (0, 1) if not inclusive)."""
    ok = isinstance(value, (int, float)) and math.isfinite(value)
    if ok:
        ok = 0.0 <= value <= 1.0 if inclusive else 0.0 < value < 1.0
    if not ok:
        raise ConfigurationError(f"{name} must lie in the unit interval, got {value!r}")
    return float(value)


def require_nonnegative_int(name: str, value: int) -> int:
    """Validate that ``value`` is an integer >= 0 and return it."""
    if not isinstance(value, int) or isinstance(value, bool) or value < 0:
        raise ConfigurationError(f"{name} must be a non-negative integer, got {value!r}")
    return value
