"""Hardware simulation substrate.

This subpackage stands in for the paper's physical testbed (Nvidia Jetson
AGX Xavier and Jetson TX2 boards, Table 1): discrete DVFS frequency tables,
a sysfs-like DVFS controller, an INA3221-like power sensor, and a calibrated
analytic performance model that maps any DVFS configuration to per-minibatch
training latency and energy for a given neural-network workload.

The controller under test (``repro.core``) only ever interacts with
:class:`~repro.hardware.device.SimulatedDevice` through the same narrow
surface a real board exposes — set a configuration, run jobs, read noisy
latency/energy measurements — so swapping in real hardware would only
require reimplementing that class.
"""

from repro.hardware.frequency import (
    ConfigurationSpace,
    FrequencyTable,
)
from repro.hardware.devices import (
    DeviceSpec,
    available_devices,
    get_device,
    jetson_agx,
    jetson_tx2,
)
from repro.hardware.power import DevicePowerModel, UnitPowerModel, VoltageCurve
from repro.hardware.perfmodel import AnalyticPerformanceModel, CalibrationTarget
from repro.hardware.noise import MeasurementNoise, NoiselessMeasurement
from repro.hardware.dvfs import DvfsController
from repro.hardware.thermal import ThermalModel
from repro.hardware.telemetry import EnergyMeter, EventTimer, PowerSensor
from repro.hardware.device import SimulatedDevice

__all__ = [
    "AnalyticPerformanceModel",
    "CalibrationTarget",
    "ConfigurationSpace",
    "DevicePowerModel",
    "DeviceSpec",
    "DvfsController",
    "EnergyMeter",
    "EventTimer",
    "FrequencyTable",
    "MeasurementNoise",
    "NoiselessMeasurement",
    "PowerSensor",
    "SimulatedDevice",
    "ThermalModel",
    "UnitPowerModel",
    "VoltageCurve",
    "available_devices",
    "get_device",
    "jetson_agx",
    "jetson_tx2",
]
