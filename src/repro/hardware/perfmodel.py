"""Calibrated analytic latency/energy surfaces over the DVFS space.

This module is the stand-in for physically training a network on a Jetson
board.  It models a job (one minibatch) as three overlapping per-unit work
phases and derives both objectives from first principles:

**Latency.**  Each unit ``u`` (CPU, GPU, memory controller) owes
``work_u`` gigacycles, taking ``t_u = work_u / f_u`` seconds at clock
``f_u``.  Units overlap imperfectly, so the job latency is

    ``T(x) = t_overhead + max_u(t_u) + sigma * (sum_u(t_u) - max_u(t_u))``

where ``sigma`` in [0, 1] is the workload's serialization factor: 0 means
the non-bottleneck units hide entirely behind the bottleneck, 1 means fully
serial execution.  This produces exactly the phenomenology of §2.2 —
diminishing returns from one axis once another becomes the bottleneck
(Fig. 3a), and workload-dependent axis sensitivity (Fig. 4a).

**Energy.**  The board pays its power floor (static rails + per-unit idle
draw) for the full duration and each unit additionally pays dynamic power
``k_u * f_u * V_u(f_u)^2`` while busy (:mod:`repro.hardware.power`).  The
race between floor energy (favours fast clocks) and super-linear dynamic
energy (favours slow clocks) yields interior energy optima and the
non-monotone curves of Figs. 3b/4b.

**Calibration.**  Work amounts and dynamic coefficients are solved in
closed form from a :class:`CalibrationTarget`, which pins the per-job
latency and energy at ``x_max`` to the paper's measured values (Table 2 /
Figs. 9-11) and fixes how the busy time / dynamic energy are shared between
units at ``x_max``.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.hardware.devices import DeviceSpec
from repro.hardware.power import DevicePowerModel, UnitPowerModel
from repro.obs import runtime as obs
from repro.types import (
    DvfsConfiguration,
    Joules,
    Seconds,
    require_fraction,
    require_positive,
)


def _require_simplex(name: str, values: Sequence[float]) -> tuple[float, float, float]:
    """Validate a 3-vector of positive shares summing to one."""
    if len(values) != 3:
        raise ConfigurationError(f"{name} must have 3 entries, got {len(values)}")
    shares = tuple(float(v) for v in values)
    if any(v <= 0 for v in shares):
        raise ConfigurationError(f"{name} entries must be positive: {shares}")
    if abs(sum(shares) - 1.0) > 1e-6:
        raise ConfigurationError(f"{name} must sum to 1, got {sum(shares)}")
    return shares  # type: ignore[return-value]


@dataclass(frozen=True)
class CalibrationTarget:
    """Anchors for one (device, workload) performance surface.

    Attributes
    ----------
    latency_at_max:
        Measured per-job latency at ``x_max`` (seconds).  Derived from the
        paper's Table 2 as ``T_min / W``.
    energy_at_max:
        Measured per-job energy at ``x_max`` (Joules).  Derived from the
        Performant curves of Figs. 9-10 divided by ``W`` (and from the
        Fig. 5 AGX/TX2 ratios for the TX2).
    busy_shares:
        Fraction of per-unit busy time attributed to (cpu, gpu, mem) at
        ``x_max``; encodes which unit bottlenecks the workload.
    dynamic_split:
        Fraction of the dynamic energy budget drawn by (cpu, gpu, mem) at
        ``x_max``.
    serial_fraction:
        The overlap parameter ``sigma`` described in the module docstring.
    overhead_fraction:
        Fixed per-job overhead (kernel launches, sync) as a fraction of
        ``latency_at_max``.
    """

    latency_at_max: Seconds
    energy_at_max: Joules
    busy_shares: tuple[float, float, float]
    dynamic_split: tuple[float, float, float]
    serial_fraction: float
    overhead_fraction: float = 0.02

    def __post_init__(self) -> None:
        require_positive("latency_at_max", self.latency_at_max)
        require_positive("energy_at_max", self.energy_at_max)
        _require_simplex("busy_shares", self.busy_shares)
        _require_simplex("dynamic_split", self.dynamic_split)
        require_fraction("serial_fraction", self.serial_fraction)
        require_fraction("overhead_fraction", self.overhead_fraction)


@dataclass(frozen=True, eq=False)
class ObjectiveTensor:
    """Whole-space precomputed surfaces for one calibrated (device, workload).

    All three arrays are aligned with
    ``device.space.all_configurations()`` and marked read-only: the tensor
    is shared across every simulated device with the same calibration (the
    fleet layer instantiates thousands of devices from a handful of
    archetypes), so per-job evaluation becomes one array lookup.
    """

    #: ``(n,)`` noise-free per-job latency ``T(x)`` in seconds.
    latencies: np.ndarray
    #: ``(n,)`` noise-free per-job energy ``E(x)`` in Joules.
    energies: np.ndarray
    #: ``(n, 3)`` per-unit (cpu, gpu, mem) busy seconds.
    busy_times: np.ndarray


#: Process-wide tensor cache.  Keys are built from the *values* that
#: determine the surface (calibration target, frequency tables, power
#: rails) rather than object identity, so two models calibrated the same
#: way — e.g. every AGX-class client running ViT — share one tensor.
#: Recalibrating means constructing a new model with a new target, which
#: is a different key; there is no in-place invalidation to miss.
_TENSOR_CACHE: dict[object, ObjectiveTensor] = {}


def clear_objective_tensor_cache() -> None:
    """Drop every cached objective tensor (tests and memory pressure)."""
    _TENSOR_CACHE.clear()


class AnalyticPerformanceModel:
    """Ground-truth ``T(x)`` / ``E(x)`` surfaces for one (device, workload).

    Instances are the *blackbox* under optimization: the BoFL controller
    never reads the internals, it only receives (noisy) samples through
    :class:`repro.hardware.device.SimulatedDevice`.  The exact surfaces are
    exposed (``latency``, ``energy``, ``profile_space``) for the Oracle
    baseline, which in the paper corresponds to exhaustive offline
    profiling.
    """

    def __init__(
        self,
        device: DeviceSpec,
        target: CalibrationTarget,
        workload_name: str = "custom",
    ) -> None:
        self.device = device
        self.target = target
        self.workload_name = workload_name
        space = device.space
        x_max = space.max_configuration()
        f_max = np.array(x_max.as_tuple())

        # --- latency calibration -----------------------------------------
        # Split the target latency into overhead + overlapped busy times so
        # that at x_max the busy times have exactly the requested shares.
        self._overhead = target.overhead_fraction * target.latency_at_max
        shares = np.array(target.busy_shares)
        sigma = target.serial_fraction
        # T* - t0 = scale * (max(shares) + sigma * (1 - max(shares)))
        overlap = shares.max() + sigma * (1.0 - shares.max())
        scale = (target.latency_at_max - self._overhead) / overlap
        busy_at_max = scale * shares
        #: per-unit work in gigacycles: busy time at clock f is work / f.
        self._work = busy_at_max * f_max
        self._sigma = sigma

        # --- energy calibration ------------------------------------------
        # Solve the per-unit dynamic coefficients k_u so the total job
        # energy at x_max equals the target, with the requested split.
        curves = (device.cpu_voltage, device.gpu_voltage, device.mem_voltage)
        floor = device.static_watts + sum(device.idle_watts)
        dynamic_budget = target.energy_at_max - floor * target.latency_at_max
        if dynamic_budget <= 0:
            raise ConfigurationError(
                f"energy target {target.energy_at_max} J is below the floor energy "
                f"{floor * target.latency_at_max:.3f} J; lower the device's "
                "static/idle power or raise the target"
            )
        split = np.array(target.dynamic_split)
        units = []
        for i in range(3):
            switching = curves[i].switching_factor(f_max[i])
            beta = device.waiting_fractions[i]
            stalled = target.latency_at_max - busy_at_max[i]
            effective_time = busy_at_max[i] + beta * stalled
            k = split[i] * dynamic_budget / (switching * effective_time)
            units.append(
                UnitPowerModel(curves[i], float(k), device.idle_watts[i], beta)
            )
        self.power = DevicePowerModel(device.static_watts, *units)

    # -- scalar interface --------------------------------------------------

    def busy_times(self, config: DvfsConfiguration) -> tuple[float, float, float]:
        """Per-unit busy seconds at ``config``."""
        freqs = np.array(config.as_tuple())
        times = self._work / freqs
        return (float(times[0]), float(times[1]), float(times[2]))

    def latency(self, config: DvfsConfiguration) -> Seconds:
        """True (noise-free) per-job latency at ``config``."""
        times = self._work / np.array(config.as_tuple())
        bottleneck = times.max()
        return float(
            self._overhead + bottleneck + self._sigma * (times.sum() - bottleneck)
        )

    def energy(self, config: DvfsConfiguration) -> Joules:
        """True (noise-free) per-job energy at ``config``."""
        freqs = config.as_tuple()
        times = self.busy_times(config)
        return float(self.power.job_energy(freqs, times, self.latency(config)))

    def objectives(self, config: DvfsConfiguration) -> tuple[Seconds, Joules]:
        """``(T(x), E(x))`` at ``config``."""
        return (self.latency(config), self.energy(config))

    # -- vectorized interface (used by the Oracle's offline profiling) -----

    def latency_array(self, freqs: np.ndarray) -> np.ndarray:
        """Vectorized latency for an ``(n, 3)`` array of GHz clocks."""
        freqs = np.asarray(freqs, dtype=float)
        times = self._work[None, :] / freqs
        bottleneck = times.max(axis=1)
        return self._overhead + bottleneck + self._sigma * (times.sum(axis=1) - bottleneck)

    def energy_array(self, freqs: np.ndarray) -> np.ndarray:
        """Vectorized energy for an ``(n, 3)`` array of GHz clocks."""
        freqs = np.asarray(freqs, dtype=float)
        times = self._work[None, :] / freqs
        duration = self.latency_array(freqs)
        return self.power.job_energy(
            (freqs[:, 0], freqs[:, 1], freqs[:, 2]),
            (times[:, 0], times[:, 1], times[:, 2]),
            duration,
        )

    def profile_space(self) -> tuple[np.ndarray, np.ndarray]:
        """Exhaustively profile the whole space (the Oracle's offline pass).

        Returns ``(latencies, energies)`` aligned with
        ``device.space.all_configurations()``.  Served from the shared
        objective tensor; the arrays are read-only.
        """
        tensor = self.objective_tensor()
        return tensor.latencies, tensor.energies

    # -- whole-space tensor (shared across same-calibration models) --------

    def _tensor_key(self) -> tuple[object, ...]:
        """The value-equality cache key for this model's surface."""
        device = self.device
        return (
            device.name,
            tuple(table.frequencies for table in device.space.tables),
            device.static_watts,
            device.idle_watts,
            device.waiting_fractions,
            (device.cpu_voltage, device.gpu_voltage, device.mem_voltage),
            self.target,
        )

    def objective_tensor(self) -> ObjectiveTensor:
        """The whole-space ``T(x)``/``E(x)``/busy-time tensor, cached.

        Built once per distinct calibration (O(|X|) vectorized math),
        then shared by every model — and therefore every simulated
        device — with the same key.  The arrays are exactly what
        ``latency_array``/``energy_array`` return for the full space.
        """
        key = self._tensor_key()
        cached = _TENSOR_CACHE.get(key)
        if cached is not None:
            return cached
        freqs = self.device.space.as_array()
        latencies = self.latency_array(freqs)
        energies = np.asarray(self.energy_array(freqs), dtype=float)
        busy_times = self._work[None, :] / freqs
        for array in (latencies, energies, busy_times):
            array.setflags(write=False)
        tensor = ObjectiveTensor(latencies, energies, busy_times)
        _TENSOR_CACHE[key] = tensor
        if obs.enabled():
            obs.count("perfmodel.tensor_builds")
        return tensor

    def objectives_many(
        self, configs: Sequence[DvfsConfiguration]
    ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized ``(T, E)`` over in-space configurations, via the tensor."""
        tensor = self.objective_tensor()
        space = self.device.space
        indices = np.array([space.flat_index_of(c) for c in configs], dtype=int)
        return tensor.latencies[indices], tensor.energies[indices]

    def objectives_at(self, index: int) -> tuple[Seconds, Joules]:
        """``(T, E)`` at a flat space index (see ``flat_index_of``)."""
        tensor = self.objective_tensor()
        return float(tensor.latencies[index]), float(tensor.energies[index])

    def busy_times_at(self, index: int) -> tuple[float, float, float]:
        """Per-unit busy seconds at a flat space index."""
        times = self.objective_tensor().busy_times[index]
        return (float(times[0]), float(times[1]), float(times[2]))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"AnalyticPerformanceModel({self.workload_name!r} on {self.device.name!r}, "
            f"T(x_max)={self.target.latency_at_max:.3f}s, "
            f"E(x_max)={self.target.energy_at_max:.3f}J)"
        )
