"""Voltage/power modelling for the simulated boards.

DVFS saves energy because dynamic CMOS power scales as ``P ~ k * f * V(f)^2``
and the required supply voltage V grows with frequency, so lowering a clock
saves *more* than linearly in power while costing only linearly in time.
The competing effect is the board's static (leakage + rail) power, which is
paid for the full duration of a job — run too slowly and the static energy
dominates.  The interaction of these two terms is what gives each workload
an interior energy-optimal configuration, exactly the structure the paper
measures in Figs. 3-4.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence
from typing import Union

import numpy as np

from repro.errors import ConfigurationError
from repro.types import GHz, Watts, require_positive

#: Scalar-or-array numeric input/output of the vectorized power curves.
FloatOrArray = Union[float, np.ndarray]


@dataclass(frozen=True)
class VoltageCurve:
    """Voltage-frequency operating curve for one unit.

    ``V(f) = v_min + (v_max - v_min) * frac^gamma`` with
    ``frac = (f - f_min) / (f_max - f_min)``.

    ``gamma > 1`` makes the curve convex — flat at low frequencies and
    steep near the top — which matches published Jetson operating points:
    the last few frequency bins demand disproportionate voltage, so backing
    off a little from ``f_max`` yields outsized energy savings.
    """

    f_min: GHz
    f_max: GHz
    v_min: float
    v_max: float
    gamma: float = 1.0

    def __post_init__(self) -> None:
        if not (0 < self.f_min < self.f_max):
            raise ConfigurationError(
                f"need 0 < f_min < f_max, got {self.f_min}, {self.f_max}"
            )
        if not (0 < self.v_min <= self.v_max):
            raise ConfigurationError(
                f"need 0 < v_min <= v_max, got {self.v_min}, {self.v_max}"
            )
        if self.gamma <= 0:
            raise ConfigurationError(f"gamma must be positive, got {self.gamma}")

    def voltage(self, freq: FloatOrArray) -> FloatOrArray:
        """Supply voltage at ``freq`` (GHz).  Accepts scalars or arrays."""
        freq = np.asarray(freq, dtype=float)
        span = self.f_max - self.f_min
        frac = np.clip((freq - self.f_min) / span, 0.0, 1.0)
        out = self.v_min + (self.v_max - self.v_min) * frac**self.gamma
        return float(out) if out.ndim == 0 else out

    def switching_factor(self, freq: FloatOrArray) -> FloatOrArray:
        """``f * V(f)^2`` — the dynamic-power scaling factor at ``freq``."""
        freq = np.asarray(freq, dtype=float)
        out = freq * self.voltage(freq) ** 2
        return float(out) if out.ndim == 0 else out


@dataclass(frozen=True)
class UnitPowerModel:
    """Power model for one hardware unit (CPU, GPU or memory controller).

    * while busy the unit draws ``k * f * V(f)^2`` watts (dynamic) on top of
      its idle draw;
    * while *stalled* — clocked but waiting for another unit during an
      active job — it still draws ``waiting_fraction`` of its dynamic power,
      because clock gating is imperfect (especially on GPUs);
    * while idle it draws ``idle_watts``.

    ``k`` is a calibration constant fixed per (device, workload) so that the
    total energy at ``x_max`` matches the measured target (see
    :mod:`repro.hardware.perfmodel`).  The waiting term is what makes badly
    *imbalanced* configurations expensive: downclocking the CPU under a
    fast GPU leaves the GPU spinning at high voltage, which is why the
    paper's slow-CPU energy advantage vanishes at high GPU clocks
    (Fig. 3b).
    """

    curve: VoltageCurve
    k: float
    idle_watts: Watts
    waiting_fraction: float = 0.0

    def __post_init__(self) -> None:
        require_positive("k", self.k)
        if self.idle_watts < 0:
            raise ConfigurationError(f"idle_watts must be >= 0, got {self.idle_watts}")
        if not 0.0 <= self.waiting_fraction <= 1.0:
            raise ConfigurationError(
                f"waiting_fraction must lie in [0, 1], got {self.waiting_fraction}"
            )

    def busy_power(self, freq: FloatOrArray) -> FloatOrArray:
        """Total draw while busy at ``freq``: idle floor plus dynamic power."""
        return self.idle_watts + self.k * self.curve.switching_factor(freq)

    def dynamic_power(self, freq: FloatOrArray) -> FloatOrArray:
        """Dynamic (activity) component of the busy draw at ``freq``."""
        return self.k * self.curve.switching_factor(freq)


@dataclass(frozen=True)
class DevicePowerModel:
    """Whole-board power model: static rail power plus three units.

    Energy for a job of duration ``T`` with per-unit busy times ``t_u``:

    ``E = P_static * T
         + sum_u [ idle_u * T
                   + dyn_u(f_u) * (t_u + beta_u * (T - t_u)) ]``

    where ``dyn_u(f) = k_u * f * V_u(f)^2`` and ``beta_u`` is the unit's
    waiting fraction: every unit pays its idle floor for the whole job, its
    full dynamic power while busy, and a fraction of it while stalled
    behind another unit.
    """

    static_watts: Watts
    cpu: UnitPowerModel
    gpu: UnitPowerModel
    mem: UnitPowerModel

    def __post_init__(self) -> None:
        if self.static_watts < 0:
            raise ConfigurationError(
                f"static_watts must be >= 0, got {self.static_watts}"
            )

    def floor_power(self) -> Watts:
        """Board draw with all units idle (static + idle floors)."""
        return (
            self.static_watts
            + self.cpu.idle_watts
            + self.gpu.idle_watts
            + self.mem.idle_watts
        )

    def job_energy(
        self,
        freqs: Sequence[FloatOrArray],
        busy_times: Sequence[FloatOrArray],
        duration: FloatOrArray,
    ) -> FloatOrArray:
        """Energy of a job given unit clocks, per-unit busy times and duration.

        Parameters
        ----------
        freqs:
            ``(f_cpu, f_gpu, f_mem)`` in GHz; each entry may be an array for
            vectorized evaluation (all shapes must broadcast together).
        busy_times:
            per-unit busy seconds ``(t_cpu, t_gpu, t_mem)``; each must not
            exceed ``duration``.
        duration:
            total job latency in seconds.
        """
        duration = np.asarray(duration, dtype=float)
        energy = self.floor_power() * duration
        for unit, freq, busy in zip((self.cpu, self.gpu, self.mem), freqs, busy_times):
            busy = np.asarray(busy, dtype=float)
            stalled = np.maximum(duration - busy, 0.0)
            energy = energy + unit.dynamic_power(freq) * (
                busy + unit.waiting_fraction * stalled
            )
        return float(energy) if np.ndim(energy) == 0 else energy

    def average_power(
        self,
        freqs: Sequence[FloatOrArray],
        busy_times: Sequence[FloatOrArray],
        duration: FloatOrArray,
    ) -> FloatOrArray:
        """Mean power over a job — what an INA3221-style sensor integrates."""
        return self.job_energy(freqs, busy_times, duration) / duration
