"""The simulated edge device — the surface the controller programs against.

:class:`SimulatedDevice` wires a :class:`~repro.hardware.devices.DeviceSpec`
to a workload's calibrated performance surface, the DVFS controller, the
telemetry instruments and a noise model.  It exposes exactly what a real
board offers a pace controller:

* ``set_configuration`` — actuate DVFS clocks (costs switch latency);
* ``run_job`` — execute one minibatch at the current clocks, advancing
  simulated time and consuming (noisy) actual energy;
* ``open_measurement`` / ``close_measurement`` — read back per-job latency
  and energy over a window, with sensor noise that shrinks as the window
  grows.

The ground-truth surfaces are reachable through :attr:`model`, but only the
Oracle baseline (offline exhaustive profiling in the paper) may use them.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.clock import SimulationClock
from repro.errors import DeviceError
from repro.hardware.devices import DeviceSpec
from repro.hardware.dvfs import DvfsController
from repro.hardware.frequency import ConfigurationSpace
from repro.hardware.noise import MeasurementNoise
from repro.hardware.perfmodel import AnalyticPerformanceModel
from repro.hardware.telemetry import EnergyMeter, EventTimer, PowerSensor
from repro.hardware.thermal import ThermalModel
from repro.types import DvfsConfiguration, JobResult, Joules, PerformanceSample, Seconds
from repro.workloads.base import WorkloadProfile


@dataclass(frozen=True)
class FaultOverlay:
    """Deterministic fault effects a device applies until told otherwise.

    The fault-injection layer (:mod:`repro.faults`) arms one overlay per
    round; a ``None`` overlay (the default) is the healthy fast path.  All
    factors are multiplicative on the *true* (pre-noise) quantities so the
    noise streams — and therefore the fault-free portions of a campaign —
    are untouched by the presence of the hooks.
    """

    #: Per-job latency inflation (straggler / contention), >= 1 in practice.
    latency_factor: float = 1.0
    #: Per-job energy inflation, usually tracking ``latency_factor``.
    energy_factor: float = 1.0
    #: Factor applied to the *measured* window energy at
    #: :meth:`SimulatedDevice.close_measurement` (sensor outage/spike);
    #: actual consumption is unaffected — only the reading is wrong.
    sensor_energy_factor: float = 1.0
    #: When True the DVFS driver rejects reconfiguration: the board stays
    #: at its current clocks and the caller is none the wiser (real sysfs
    #: writes fail exactly this silently under some firmware states).
    reject_dvfs: bool = False

    @property
    def is_neutral(self) -> bool:
        return (
            self.latency_factor == 1.0  # repro: allow[float-equality] -- exact default sentinel, never a computed value
            and self.energy_factor == 1.0  # repro: allow[float-equality] -- exact default sentinel, never a computed value
            and self.sensor_energy_factor == 1.0  # repro: allow[float-equality] -- exact default sentinel, never a computed value
            and not self.reject_dvfs
        )


class SimulatedDevice:
    """One edge device training one workload, under simulated time."""

    def __init__(
        self,
        spec: DeviceSpec,
        workload: WorkloadProfile,
        *,
        noise: Optional[MeasurementNoise] = None,
        clock: Optional[SimulationClock] = None,
        thermal: Optional[ThermalModel] = None,
        seed: int = 0,
    ) -> None:
        self.spec = spec
        self.workload = workload
        self.model: AnalyticPerformanceModel = workload.performance_model(spec)
        self.clock = clock if clock is not None else SimulationClock()
        self.noise = noise if noise is not None else MeasurementNoise(seed)
        #: Optional thermal state (off by default, see hardware.thermal):
        #: when present, hot boards throttle and jobs slow down.
        self.thermal = thermal
        self.dvfs = DvfsController(spec, self.clock)
        self.timer = EventTimer(self.noise)
        self.power_sensor = PowerSensor(self.noise)
        self.meter = EnergyMeter(self.noise)
        self._jobs_executed = 0
        self._energy_consumed: Joules = 0.0
        self._last_utilization: tuple[float, float, float] = (0.0, 0.0, 0.0)
        #: Active fault effects; ``None`` (healthy) is the fast path.
        self.fault_overlay: Optional[FaultOverlay] = None

    # -- basic state ---------------------------------------------------------

    @property
    def space(self) -> ConfigurationSpace:
        """The device's discrete DVFS configuration space."""
        return self.spec.space

    @property
    def current_configuration(self) -> DvfsConfiguration:
        return self.dvfs.current

    @property
    def jobs_executed(self) -> int:
        """Total jobs run on this device since construction."""
        return self._jobs_executed

    @property
    def energy_consumed(self) -> Joules:
        """Total actual training energy consumed, in Joules."""
        return self._energy_consumed

    def last_utilization(self) -> tuple[float, float, float]:
        """Per-unit (cpu, gpu, mem) utilization of the last executed job.

        On real hardware this comes from performance counters
        (tegrastats); OS DVFS governors act on exactly this signal.
        Returns zeros before the first job.
        """
        return self._last_utilization

    # -- actuation -----------------------------------------------------------

    def set_configuration(self, config: DvfsConfiguration) -> None:
        """Apply a DVFS configuration (a no-op if already applied).

        Under an armed ``reject_dvfs`` fault the driver refuses silently —
        the board keeps its current clocks, as failed sysfs writes do on
        real firmware — so callers must not assume actuation succeeded.
        """
        self.meter_guard()
        if self.fault_overlay is not None and self.fault_overlay.reject_dvfs:
            return
        self.dvfs.apply(config)

    def apply_fault_overlay(
        self, overlay: Optional[FaultOverlay], forced_temperature: Optional[float] = None
    ) -> None:
        """Arm (or with ``None`` clear) fault effects on this device.

        ``forced_temperature`` models a thermal trip: the board temperature
        jumps to the given value immediately (requires a thermal model) and
        then evolves under the normal RC dynamics — exactly the profile a
        blocked fan or a sun-soaked enclosure produces.
        """
        self.fault_overlay = overlay
        if forced_temperature is not None:
            if self.thermal is None:
                raise DeviceError(
                    "cannot force a board temperature without a thermal model"
                )
            self.thermal.temperature = float(forced_temperature)

    def meter_guard(self) -> None:
        """Forbid reconfiguration inside an open measurement window.

        One window measures one configuration; switching mid-window would
        corrupt the sample (and, per §3.1, at most one configuration may be
        applied within a job).
        """
        if self.meter.is_open:
            raise DeviceError(
                "cannot change DVFS configuration inside an open measurement window"
            )

    # -- execution -----------------------------------------------------------

    def run_job(self) -> JobResult:
        """Execute one minibatch at the current configuration.

        Advances simulated time by the job's actual latency and accumulates
        its actual energy.  The returned latency is what CUDA event timing
        would report (accurate); the energy is the actual consumption (only
        observable through the meter, with sensor noise).
        """
        config = self.dvfs.current
        # One flat-index lookup into the shared objective tensor replaces
        # three scalar surface evaluations on the per-minibatch hot path.
        index = self.space.flat_index_of(config)
        true_latency, true_energy = self.model.objectives_at(index)
        busy = self.model.busy_times_at(index)
        self._last_utilization = (
            busy[0] / true_latency,
            busy[1] / true_latency,
            busy[2] / true_latency,
        )
        if self.thermal is not None:
            # Throttling stretches the job at (approximately) constant
            # power, so latency and energy inflate together.
            factor = self.thermal.throttle_factor()
            true_latency *= factor
            true_energy *= factor
        if self.fault_overlay is not None:
            true_latency *= self.fault_overlay.latency_factor
            true_energy *= self.fault_overlay.energy_factor
        self._jobs_executed += 1
        key = [index, self._jobs_executed]
        actual_latency, actual_energy = self.noise.perturb_job(
            key, true_latency, true_energy
        )
        self.clock.advance(actual_latency)
        self._energy_consumed += actual_energy
        if self.thermal is not None:
            self.thermal.update(actual_energy / actual_latency, actual_latency)
        if self.meter.is_open:
            self.meter.record_job(actual_latency, actual_energy)
        measured_latency = self.timer.time(actual_latency)
        return JobResult(
            config=config,
            latency=measured_latency,
            energy=actual_energy,
            finished_at=self.clock.now,
        )

    # -- measurement ----------------------------------------------------------

    def open_measurement(self) -> None:
        """Start a measurement window for the current configuration."""
        settle_end = self.dvfs.last_switch_at + self.noise.settle_time
        settling_remaining = max(0.0, settle_end - self.clock.now)
        self.meter.open(self.dvfs.current, settling_remaining)

    def close_measurement(self) -> PerformanceSample:
        """Close the window and return the noisy per-job sample.

        An armed sensor fault corrupts only the *reported* energy — the
        actual consumption ledger and the per-job timings (CUDA events,
        which survive power-sensor outages) are untouched.
        """
        sample = self.meter.close()
        if (
            self.fault_overlay is not None
            and self.fault_overlay.sensor_energy_factor != 1.0  # repro: allow[float-equality] -- exact default sentinel, never a computed value
        ):
            sample = replace(
                sample,
                energy=sample.energy * self.fault_overlay.sensor_energy_factor,
            )
        return sample

    def measure_configuration(
        self, config: DvfsConfiguration, min_duration: Seconds, max_jobs: Optional[int] = None
    ) -> tuple[PerformanceSample, tuple[JobResult, ...]]:
        """Convenience: measure ``config`` for at least ``min_duration`` seconds.

        Runs jobs back-to-back until the window spans ``min_duration`` (the
        paper's ``tau``) or ``max_jobs`` is hit.  Returns the sample and the
        individual job results (for round-budget accounting).
        """
        self.set_configuration(config)
        self.open_measurement()
        results = []
        while self.meter.window_duration < min_duration:
            if max_jobs is not None and len(results) >= max_jobs:
                break
            results.append(self.run_job())
        if not results:
            # min_duration was zero or negative: still execute one job so the
            # sample is well-defined.
            results.append(self.run_job())
        return self.close_measurement(), tuple(results)

    # -- idle accounting -------------------------------------------------------

    def idle(self, duration: Seconds) -> Joules:
        """Sit idle for ``duration`` seconds; returns the idle energy burned."""
        if duration < 0:
            raise DeviceError(f"cannot idle for negative time: {duration}")
        self.clock.advance(duration)
        energy = self.model.power.floor_power() * duration
        if self.thermal is not None:
            self.thermal.update(self.model.power.floor_power(), duration)
        return energy
