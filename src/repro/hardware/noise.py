"""Deterministic measurement- and process-noise models.

Two kinds of randomness affect what the controller observes:

* **process noise** — genuine run-to-run variation in job latency/energy
  (cache state, DRAM refresh, thermal drift).  Applied to the *actual*
  values a job consumes.
* **sensor noise** — error in the INA3221 power readings and event timers.
  Applied only to the *measured* values reported to the controller.  The
  sensor error over a measurement window shrinks as the window grows, and
  is inflated while the voltage rails are still settling after a DVFS
  switch — exactly the effect that motivates the paper's ``tau`` reference
  measurement duration (§4.2, "Workload assignment").

Every draw is a pure function of ``(seed, *key)``, so identical campaigns
produce bit-identical results.
"""

from __future__ import annotations

import math
from collections.abc import Iterable

import numpy as np

from repro.types import require_fraction, require_positive


def _rng_for(seed: int, key: Iterable[int]) -> np.random.Generator:
    """Build a generator deterministically keyed by ``(seed, *key)``."""
    material = [seed & 0xFFFFFFFF] + [int(k) & 0xFFFFFFFF for k in key]
    return np.random.default_rng(np.random.SeedSequence(material))


class MeasurementNoise:
    """Multiplicative Gaussian noise with duration-dependent sensor error.

    Parameters
    ----------
    seed:
        Base seed; combine with per-draw keys for determinism.
    process_latency_std / process_energy_std:
        Relative std of true per-job variation.
    sensor_latency_std / sensor_energy_std:
        Relative std of a sensor reading over a window of
        ``reference_duration`` seconds.  Shorter windows scale the error by
        ``sqrt(reference_duration / duration)`` (capped).
    settle_time:
        Seconds after a DVFS switch during which rails are unstable;
        windows overlapping it get ``settle_penalty`` times the error.
    """

    def __init__(
        self,
        seed: int = 0,
        *,
        process_latency_std: float = 0.005,
        process_energy_std: float = 0.010,
        sensor_latency_std: float = 0.004,
        sensor_energy_std: float = 0.015,
        reference_duration: float = 5.0,
        max_error_scale: float = 6.0,
        settle_time: float = 0.5,
        settle_penalty: float = 3.0,
    ) -> None:
        self.seed = int(seed)
        self.process_latency_std = require_fraction("process_latency_std", process_latency_std)
        self.process_energy_std = require_fraction("process_energy_std", process_energy_std)
        self.sensor_latency_std = require_fraction("sensor_latency_std", sensor_latency_std)
        self.sensor_energy_std = require_fraction("sensor_energy_std", sensor_energy_std)
        self.reference_duration = require_positive("reference_duration", reference_duration)
        self.max_error_scale = require_positive("max_error_scale", max_error_scale)
        if settle_time < 0:
            raise ValueError(f"settle_time must be >= 0, got {settle_time}")
        self.settle_time = float(settle_time)
        self.settle_penalty = require_positive("settle_penalty", settle_penalty)

    # -- process noise ------------------------------------------------------

    def perturb_job(
        self, key: Iterable[int], latency: float, energy: float
    ) -> tuple[float, float]:
        """Apply run-to-run variation to one job's true latency/energy."""
        rng = _rng_for(self.seed, list(key) + [0x1A])
        lat = latency * self._bounded_factor(rng, self.process_latency_std)
        en = energy * self._bounded_factor(rng, self.process_energy_std)
        return lat, en

    # -- sensor noise ---------------------------------------------------------

    def error_scale(self, duration: float, settling_overlap: float = 0.0) -> float:
        """Relative error multiplier for a window of ``duration`` seconds."""
        duration = max(float(duration), 1e-6)
        scale = math.sqrt(self.reference_duration / duration)
        scale = min(max(scale, 1.0), self.max_error_scale)
        if self.settle_time > 0 and settling_overlap > 0:
            overlap_frac = min(settling_overlap / duration, 1.0)
            scale *= 1.0 + (self.settle_penalty - 1.0) * overlap_frac
        return scale

    def perturb_measurement(
        self,
        key: Iterable[int],
        latency: float,
        energy: float,
        duration: float,
        settling_overlap: float = 0.0,
    ) -> tuple[float, float]:
        """Apply sensor error to a measurement over a window."""
        rng = _rng_for(self.seed, list(key) + [0x2B])
        scale = self.error_scale(duration, settling_overlap)
        lat = latency * self._bounded_factor(rng, self.sensor_latency_std * scale)
        en = energy * self._bounded_factor(rng, self.sensor_energy_std * scale)
        return lat, en

    @staticmethod
    def _bounded_factor(rng: np.random.Generator, std: float) -> float:
        """A multiplicative factor ``1 + N(0, std)`` clipped to stay positive."""
        if std <= 0:
            return 1.0
        return float(np.clip(1.0 + rng.normal(0.0, std), 0.2, 1.8))


class NoiselessMeasurement(MeasurementNoise):
    """A noise model that changes nothing — for unit tests and oracles."""

    def __init__(self, seed: int = 0) -> None:
        super().__init__(
            seed,
            process_latency_std=0.0,
            process_energy_std=0.0,
            sensor_latency_std=0.0,
            sensor_energy_std=0.0,
            settle_time=0.0,
        )

    def perturb_job(
        self, key: Iterable[int], latency: float, energy: float
    ) -> tuple[float, float]:  # noqa: D102 - inherited
        return latency, energy

    def perturb_measurement(
        self,
        key: Iterable[int],
        latency: float,
        energy: float,
        duration: float,
        settling_overlap: float = 0.0,
    ) -> tuple[float, float]:  # noqa: D102 - inherited
        return latency, energy
