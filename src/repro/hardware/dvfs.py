"""sysfs-style DVFS actuation.

On a real Jetson, BoFL changes clocks by writing into kernel files such as
``/sys/devices/*/devfreq/*/min_freq``.  :class:`DvfsController` reproduces
that surface — including a string-keyed knob interface and per-switch
latency — over an in-memory device state, and validates every requested
frequency against the device's published tables.
"""

from __future__ import annotations

from typing import Optional

from repro.clock import SimulationClock
from repro.errors import DeviceError, FrequencyError
from repro.hardware.devices import DeviceSpec
from repro.types import DvfsConfiguration, GHz

#: sysfs-like paths for the three knobs, in canonical unit order.
KNOB_PATHS = (
    "/sys/devices/system/cpu/cpufreq/policy0/scaling_setspeed",
    "/sys/devices/gpu.0/devfreq/17000000.gv11b/target_freq",
    "/sys/kernel/debug/bpmp/debug/clk/emc/rate",
)


class DvfsController:
    """Actuates DVFS configurations on a simulated board.

    The controller tracks the currently applied configuration, counts
    switches, and charges :attr:`DeviceSpec.dvfs_switch_latency` of
    simulated time per actual change (a no-op write is free, matching the
    kernel's behaviour).
    """

    def __init__(self, spec: DeviceSpec, clock: Optional[SimulationClock] = None) -> None:
        self.spec = spec
        self.clock = clock if clock is not None else SimulationClock()
        self._current = spec.space.max_configuration()
        self._switch_count = 0
        self._last_switch_at = self.clock.now

    @property
    def current(self) -> DvfsConfiguration:
        """The configuration currently applied to the hardware."""
        return self._current

    @property
    def switch_count(self) -> int:
        """How many actual configuration changes have been actuated."""
        return self._switch_count

    @property
    def last_switch_at(self) -> float:
        """Simulated timestamp of the most recent actual switch."""
        return self._last_switch_at

    def apply(self, config: DvfsConfiguration) -> bool:
        """Apply ``config``; returns True if an actual switch happened.

        Raises :class:`FrequencyError` if any axis is not in the device's
        table — the kernel would reject such a write with ``EINVAL``.
        """
        if config not in self.spec.space:
            raise FrequencyError(
                f"{config} is not a valid configuration for device {self.spec.name!r}"
            )
        if config == self._current:
            return False
        self._current = config
        self._switch_count += 1
        self.clock.advance(self.spec.dvfs_switch_latency)
        self._last_switch_at = self.clock.now
        return True

    # -- sysfs-compatible string interface ----------------------------------

    def write_knob(self, path: str, freq_khz: str) -> None:
        """Write one knob the way a shell script would: a kHz string.

        The other two axes keep their current values.  Unknown paths raise
        :class:`DeviceError` (ENOENT in kernel terms).
        """
        try:
            axis = KNOB_PATHS.index(path)
        except ValueError:
            raise DeviceError(f"no such DVFS knob: {path}") from None
        try:
            ghz: GHz = int(freq_khz) / 1e6
        except ValueError:
            raise DeviceError(f"knob writes must be integer kHz, got {freq_khz!r}") from None
        table = self.spec.space.tables[axis]
        if ghz not in table:
            raise FrequencyError(
                f"{ghz} GHz is not a supported {table.unit} frequency on "
                f"{self.spec.name!r}"
            )
        clocks = list(self._current.as_tuple())
        clocks[axis] = table.nearest(ghz)
        self.apply(DvfsConfiguration(*clocks))

    def read_knobs(self) -> dict[str, str]:
        """Read all knobs back as kHz strings, keyed by sysfs path."""
        return {
            path: str(int(round(freq * 1e6)))
            for path, freq in zip(KNOB_PATHS, self._current.as_tuple())
        }

    def reset_to_max(self) -> None:
        """Apply ``x_max`` (the Performant/guardian configuration)."""
        self.apply(self.spec.space.max_configuration())
