"""Lumped thermal model with throttling (extension; off by default).

Real Jetson boards heat up under sustained training and throttle once the
junction temperature crosses a trip point, which silently invalidates any
performance profile measured cold — the main threat to BoFL's
explore-then-exploit design on long campaigns.  This module provides the
standard first-order (RC) thermal model:

    ``dT/dt = (P * R_th - (T - T_ambient)) / tau_th``

integrated exactly over each job, plus a throttle curve that inflates job
latency linearly from ``throttle_start`` to ``throttle_full`` degrees.

Pair it with ``BoFLConfig(drift_reexploration=True)`` to let the controller
detect the resulting model drift and re-run its exploration phases (see
:mod:`repro.core.controller`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.types import Seconds, Watts, require_positive


@dataclass
class ThermalModel:
    """First-order board thermal state with linear throttling.

    Attributes
    ----------
    r_th:
        Thermal resistance in degrees C per watt: the steady-state rise
        above ambient under constant power is ``P * r_th``.
    tau_th:
        Thermal time constant in seconds (how fast the board approaches
        its steady state).
    t_ambient:
        Ambient temperature in degrees C; also the initial temperature.
    throttle_start / throttle_full:
        Temperatures between which the throttle ramps linearly from no
        effect to ``max_slowdown``.
    max_slowdown:
        Latency multiplier at (and beyond) ``throttle_full``.
    """

    r_th: float = 2.4
    tau_th: Seconds = 120.0
    t_ambient: float = 25.0
    throttle_start: float = 70.0
    throttle_full: float = 90.0
    max_slowdown: float = 1.25
    temperature: float = field(init=False)

    def __post_init__(self) -> None:
        require_positive("r_th", self.r_th)
        require_positive("tau_th", self.tau_th)
        if not self.t_ambient < self.throttle_start < self.throttle_full:
            raise ConfigurationError(
                "need t_ambient < throttle_start < throttle_full, got "
                f"{self.t_ambient}, {self.throttle_start}, {self.throttle_full}"
            )
        if self.max_slowdown < 1.0:
            raise ConfigurationError(
                f"max_slowdown must be >= 1.0, got {self.max_slowdown}"
            )
        self.temperature = self.t_ambient

    def steady_state(self, power: Watts) -> float:
        """Temperature the board settles at under constant ``power``."""
        if power < 0:
            raise ConfigurationError(f"power must be >= 0, got {power}")
        return self.t_ambient + power * self.r_th

    def update(self, power: Watts, duration: Seconds) -> float:
        """Integrate the RC dynamics over ``duration`` at constant ``power``.

        Exact exponential update (no time-step error), returns the new
        temperature.
        """
        if duration < 0:
            raise ConfigurationError(f"duration must be >= 0, got {duration}")
        target = self.steady_state(power)
        decay = math.exp(-duration / self.tau_th)
        self.temperature = target + (self.temperature - target) * decay
        return self.temperature

    def throttle_factor(self) -> float:
        """Current latency multiplier (1.0 when cool)."""
        if self.temperature <= self.throttle_start:
            return 1.0
        span = self.throttle_full - self.throttle_start
        fraction = min((self.temperature - self.throttle_start) / span, 1.0)
        return 1.0 + (self.max_slowdown - 1.0) * fraction

    def reset(self) -> None:
        """Cool the board back to ambient (e.g. between campaigns)."""
        self.temperature = self.t_ambient
