"""Simulated measurement instruments.

* :class:`EventTimer` — CUDA-event-style job timing
  (``torch.cuda.Event()`` + ``synchronize()`` in the paper): very accurate,
  microsecond-level jitter.
* :class:`PowerSensor` — INA3221-style instantaneous power readings with
  quantization and relative error.
* :class:`EnergyMeter` — integrates job energy over a measurement window
  and reports a :class:`~repro.types.PerformanceSample`; the window error
  shrinks with window length and is inflated while rails settle after a
  DVFS switch (see :mod:`repro.hardware.noise`).
"""

from __future__ import annotations

from typing import Optional

from repro.errors import DeviceError
from repro.hardware.noise import MeasurementNoise
from repro.types import DvfsConfiguration, PerformanceSample, Seconds, Watts


class EventTimer:
    """Accurate per-job latency measurement (CUDA event recording)."""

    #: Relative timing jitter of CUDA event pairs — effectively exact.
    JITTER_STD = 1e-4

    def __init__(self, noise: MeasurementNoise) -> None:
        self._noise = noise
        self._draws = 0

    def time(self, true_latency: Seconds) -> Seconds:
        """Return the measured duration of a job that truly took ``true_latency``."""
        self._draws += 1
        rng_key = [0xE7, self._draws]
        measured, _ = self._noise.perturb_measurement(
            rng_key, true_latency, 1.0, duration=max(true_latency, 1e-6)
        )
        # Timing is far more accurate than the power sensor: shrink the
        # sensor-scale perturbation down to event-recording jitter.
        return true_latency + (measured - true_latency) * (
            self.JITTER_STD / max(self._noise.sensor_latency_std, self.JITTER_STD)
        )


class PowerSensor:
    """INA3221-style power rail sensor (read through sysfs on real boards)."""

    #: Reading resolution in watts (INA3221 LSB at Jetson shunt values).
    RESOLUTION: Watts = 0.01

    def __init__(self, noise: MeasurementNoise) -> None:
        self._noise = noise
        self._draws = 0

    def read(self, true_watts: Watts) -> Watts:
        """One instantaneous (noisy, quantized) power reading."""
        if true_watts < 0:
            raise DeviceError(f"power cannot be negative: {true_watts}")
        self._draws += 1
        _, perturbed = self._noise.perturb_measurement(
            [0x9A, self._draws], 1.0, true_watts, duration=1e-3
        )
        steps = round(perturbed / self.RESOLUTION)
        return steps * self.RESOLUTION


class EnergyMeter:
    """Accumulates jobs into one measurement window.

    Mirrors how BoFL measures a configuration: open a window, run jobs for
    at least ``tau`` seconds, close the window and read back mean per-job
    latency and energy.
    """

    def __init__(self, noise: MeasurementNoise) -> None:
        self._noise = noise
        self._window_id = 0
        self._open = False
        self._config: Optional[DvfsConfiguration] = None
        self._jobs = 0
        self._latency_total = 0.0
        self._energy_total = 0.0
        self._settling_overlap = 0.0

    @property
    def is_open(self) -> bool:
        return self._open

    @property
    def jobs_in_window(self) -> int:
        return self._jobs

    @property
    def window_duration(self) -> Seconds:
        return self._latency_total

    def open(self, config: DvfsConfiguration, settling_remaining: Seconds = 0.0) -> None:
        """Start a measurement window for ``config``.

        ``settling_remaining`` is how much post-switch rail settling time
        the window will absorb (inflates the sensor error).
        """
        if self._open:
            raise DeviceError("measurement window already open")
        self._open = True
        self._window_id += 1
        self._config = config
        self._jobs = 0
        self._latency_total = 0.0
        self._energy_total = 0.0
        self._settling_overlap = max(0.0, float(settling_remaining))

    def record_job(self, latency: Seconds, energy: float) -> None:
        """Add one job's actual consumption to the open window."""
        if not self._open:
            raise DeviceError("no measurement window open")
        self._jobs += 1
        self._latency_total += latency
        self._energy_total += energy

    def close(self) -> PerformanceSample:
        """Close the window and return the noisy per-job sample."""
        if not self._open:
            raise DeviceError("no measurement window open")
        if self._jobs == 0:
            raise DeviceError("cannot close an empty measurement window")
        self._open = False
        mean_latency = self._latency_total / self._jobs
        mean_energy = self._energy_total / self._jobs
        _, observed_energy = self._noise.perturb_measurement(
            [0x3C, self._window_id],
            mean_latency,
            mean_energy,
            duration=self._latency_total,
            settling_overlap=min(self._settling_overlap, self._latency_total),
        )
        if self._config is None:
            raise DeviceError("measurement window has no recorded configuration")
        # Latency passes through unperturbed: the client times its own jobs
        # with CUDA event recording (§5.2), which is accurate to the
        # microsecond — only the power-sensor (energy) path is noisy.  The
        # window mean still carries the natural sampling error of averaging
        # finitely many process-noisy jobs.
        return PerformanceSample(
            config=self._config,
            latency=mean_latency,
            energy=observed_energy,
            jobs_measured=self._jobs,
            duration=self._latency_total,
        )

    def abort(self) -> None:
        """Discard the open window (e.g. the guardian interrupted it)."""
        self._open = False
