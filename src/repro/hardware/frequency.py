"""Discrete DVFS frequency tables and the joint configuration space.

A device exposes one :class:`FrequencyTable` per hardware unit (CPU, GPU,
memory controller).  The Cartesian product of the three tables forms the
:class:`ConfigurationSpace` ``X = F_CPU x F_GPU x F_MC`` the paper optimizes
over (§3.1) — 2100 unique points on the Jetson AGX, 936 on the Jetson TX2.
"""

from __future__ import annotations

import itertools
from collections.abc import Iterator, Sequence
from typing import Optional

import numpy as np

from repro.errors import ConfigurationError, FrequencyError
from repro.types import DvfsConfiguration, GHz

#: Names of the three frequency axes, in canonical order.
UNIT_NAMES: tuple[str, str, str] = ("cpu", "gpu", "mem")


class FrequencyTable:
    """The discrete operational frequencies of one hardware unit.

    Real Jetson boards publish these through
    ``/sys/devices/.../available_frequencies``; here they are an immutable,
    ascending tuple of GHz values.
    """

    def __init__(self, unit: str, frequencies: Sequence[GHz]) -> None:
        if unit not in UNIT_NAMES:
            raise ConfigurationError(f"unknown unit {unit!r}; expected one of {UNIT_NAMES}")
        freqs = tuple(float(f) for f in frequencies)
        if len(freqs) < 2:
            raise ConfigurationError(f"{unit} table needs at least 2 steps, got {len(freqs)}")
        if any(f <= 0 or not np.isfinite(f) for f in freqs):
            raise ConfigurationError(f"{unit} table contains non-positive frequencies")
        if any(b <= a for a, b in zip(freqs, freqs[1:])):
            raise ConfigurationError(f"{unit} table must be strictly ascending: {freqs}")
        self.unit = unit
        self.frequencies = freqs

    @classmethod
    def linspaced(cls, unit: str, low: GHz, high: GHz, steps: int) -> "FrequencyTable":
        """Build a table of ``steps`` evenly spaced frequencies in [low, high].

        The paper's Table 1 reports only the endpoints and step counts of
        each board's tables; evenly spaced steps are the faithful
        reconstruction given that information.
        """
        if steps < 2:
            raise ConfigurationError("a frequency table needs at least 2 steps")
        if not (0 < low < high):
            raise ConfigurationError(f"need 0 < low < high, got low={low}, high={high}")
        values = np.linspace(low, high, steps)
        return cls(unit, [round(float(v), 6) for v in values])

    def __len__(self) -> int:
        return len(self.frequencies)

    def __iter__(self) -> Iterator[GHz]:
        return iter(self.frequencies)

    def __contains__(self, freq: float) -> bool:
        return any(abs(freq - f) < 1e-9 for f in self.frequencies)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, FrequencyTable)
            and self.unit == other.unit
            and self.frequencies == other.frequencies
        )

    def __hash__(self) -> int:
        return hash((self.unit, self.frequencies))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FrequencyTable({self.unit!r}, {self.min:.3f}..{self.max:.3f} GHz, "
            f"{len(self)} steps)"
        )

    @property
    def min(self) -> GHz:
        return self.frequencies[0]

    @property
    def max(self) -> GHz:
        return self.frequencies[-1]

    def index_of(self, freq: GHz) -> int:
        """Return the step index of ``freq``, or raise :class:`FrequencyError`."""
        for i, f in enumerate(self.frequencies):
            if abs(freq - f) < 1e-9:
                return i
        raise FrequencyError(f"{freq} GHz is not in the {self.unit} table {self.frequencies}")

    def nearest(self, freq: GHz) -> GHz:
        """Return the table entry closest to ``freq`` (ties go downward)."""
        if not np.isfinite(freq):
            raise FrequencyError(f"cannot snap non-finite frequency {freq!r}")
        best = min(self.frequencies, key=lambda f: (abs(f - freq), f))
        return best

    def normalize(self, freq: GHz) -> float:
        """Map a table frequency to [0, 1] by its position in the range."""
        return (freq - self.min) / (self.max - self.min)

    def denormalize(self, value: float) -> GHz:
        """Map a [0, 1] coordinate back to the nearest table frequency."""
        return self.nearest(self.min + value * (self.max - self.min))


class ConfigurationSpace:
    """The joint discrete DVFS space ``X = F_CPU x F_GPU x F_MC``.

    Provides enumeration, flat indexing, normalization to the unit cube
    (what the GP models operate on), and quasi-random sampling support.
    """

    def __init__(self, cpu: FrequencyTable, gpu: FrequencyTable, mem: FrequencyTable) -> None:
        for table, expected in zip((cpu, gpu, mem), UNIT_NAMES):
            if table.unit != expected:
                raise ConfigurationError(
                    f"table order must be (cpu, gpu, mem); got {table.unit!r} "
                    f"in the {expected!r} slot"
                )
        self.cpu = cpu
        self.gpu = gpu
        self.mem = mem
        self._configs: Optional[list[DvfsConfiguration]] = None

    @property
    def tables(self) -> tuple[FrequencyTable, FrequencyTable, FrequencyTable]:
        return (self.cpu, self.gpu, self.mem)

    @property
    def shape(self) -> tuple[int, int, int]:
        return (len(self.cpu), len(self.gpu), len(self.mem))

    def __len__(self) -> int:
        return len(self.cpu) * len(self.gpu) * len(self.mem)

    def __iter__(self) -> Iterator[DvfsConfiguration]:
        return iter(self.all_configurations())

    def __contains__(self, config: DvfsConfiguration) -> bool:
        return (
            config.cpu in self.cpu and config.gpu in self.gpu and config.mem in self.mem
        )

    def all_configurations(self) -> list[DvfsConfiguration]:
        """Return every configuration, in (cpu, gpu, mem)-major order.

        The list is built once and cached; callers must not mutate it.
        """
        if self._configs is None:
            self._configs = [
                DvfsConfiguration(c, g, m)
                for c, g, m in itertools.product(
                    self.cpu.frequencies, self.gpu.frequencies, self.mem.frequencies
                )
            ]
        return self._configs

    def at(self, cpu_idx: int, gpu_idx: int, mem_idx: int) -> DvfsConfiguration:
        """Return the configuration at the given per-axis step indices."""
        return DvfsConfiguration(
            self.cpu.frequencies[cpu_idx],
            self.gpu.frequencies[gpu_idx],
            self.mem.frequencies[mem_idx],
        )

    def indices_of(self, config: DvfsConfiguration) -> tuple[int, int, int]:
        """Return the per-axis step indices of ``config``."""
        return (
            self.cpu.index_of(config.cpu),
            self.gpu.index_of(config.gpu),
            self.mem.index_of(config.mem),
        )

    def flat_index_of(self, config: DvfsConfiguration) -> int:
        """Return the position of ``config`` in :meth:`all_configurations`."""
        ci, gi, mi = self.indices_of(config)
        return (ci * len(self.gpu) + gi) * len(self.mem) + mi

    def max_configuration(self) -> DvfsConfiguration:
        """``x_max``: every unit at its highest clock (the guardian config)."""
        return DvfsConfiguration(self.cpu.max, self.gpu.max, self.mem.max)

    def min_configuration(self) -> DvfsConfiguration:
        """Every unit at its lowest clock (the slowest possible pace)."""
        return DvfsConfiguration(self.cpu.min, self.gpu.min, self.mem.min)

    def normalize(self, config: DvfsConfiguration) -> np.ndarray:
        """Map a configuration to a point in the unit cube ``[0, 1]^3``."""
        return np.array(
            [
                self.cpu.normalize(config.cpu),
                self.gpu.normalize(config.gpu),
                self.mem.normalize(config.mem),
            ]
        )

    def normalize_many(self, configs: Sequence[DvfsConfiguration]) -> np.ndarray:
        """Vectorized :meth:`normalize`: returns an ``(n, 3)`` array.

        One array expression over all configurations (the per-config loop
        dominated ``fit``/``suggest`` setup); element-for-element it is the
        same two float operations as :meth:`normalize`.
        """
        if not configs:
            return np.zeros((0, 3))
        raw = np.array([(c.cpu, c.gpu, c.mem) for c in configs])
        lows = np.array([self.cpu.min, self.gpu.min, self.mem.min])
        spans = np.array(
            [
                self.cpu.max - self.cpu.min,
                self.gpu.max - self.gpu.min,
                self.mem.max - self.mem.min,
            ]
        )
        return np.asarray((raw - lows) / spans)

    def snap(self, cpu: GHz, gpu: GHz, mem: GHz) -> DvfsConfiguration:
        """Return the in-space configuration nearest to the given clocks."""
        return DvfsConfiguration(
            self.cpu.nearest(cpu), self.gpu.nearest(gpu), self.mem.nearest(mem)
        )

    def as_array(self) -> np.ndarray:
        """Return all configurations as an ``(n, 3)`` GHz array."""
        return np.array([c.as_tuple() for c in self.all_configurations()])
