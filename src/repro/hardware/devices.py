"""Device specifications for the paper's two testbeds (Table 1).

=========  =======================================  ==========================
Unit       Jetson AGX Xavier                        Jetson TX2
=========  =======================================  ==========================
CPU        8-core ARM v8.2, 0.42-2.26 GHz, 25 steps  2-core Denver2 + 4-core
                                                     A57, 0.34-2.03 GHz, 12
GPU        512-core Volta, 0.11-1.38 GHz, 14 steps   256-core Pascal,
                                                     0.11-1.30 GHz, 13 steps
Memory     32 GB LPDDR4x, 0.20-2.13 GHz, 6 steps     8 GB LPDDR4,
                                                     0.41-1.87 GHz, 6 steps
=========  =======================================  ==========================

giving |X| = 25*14*6 = 2100 configurations on the AGX and 12*13*6 = 936 on
the TX2, exactly as the paper states (§5.1).

Voltage curves and static/idle powers are not published in the paper; they
are chosen so that full-board draw at ``x_max`` lands in each board's real
TDP envelope (~30 W AGX, ~15 W TX2) once the per-workload dynamic power is
calibrated (see :mod:`repro.hardware.perfmodel`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Callable

from repro.errors import DeviceError
from repro.hardware.frequency import ConfigurationSpace, FrequencyTable
from repro.hardware.power import VoltageCurve
from repro.types import Seconds, Watts


@dataclass(frozen=True)
class DeviceSpec:
    """Static description of a DVFS-capable edge board.

    A :class:`DeviceSpec` is pure data — the dynamic behaviour (latency and
    energy surfaces) comes from pairing it with a workload through
    :class:`repro.hardware.perfmodel.AnalyticPerformanceModel`.
    """

    name: str
    long_name: str
    cpu_description: str
    gpu_description: str
    mem_description: str
    space: ConfigurationSpace
    cpu_voltage: VoltageCurve
    gpu_voltage: VoltageCurve
    mem_voltage: VoltageCurve
    #: Board rail/leakage power, paid whenever the board is on.
    static_watts: Watts
    #: Per-unit idle floors (cpu, gpu, mem).
    idle_watts: tuple[Watts, Watts, Watts]
    #: Fraction of dynamic power a clocked-but-stalled unit keeps drawing
    #: (imperfect clock gating); (cpu, gpu, mem).
    waiting_fractions: tuple[float, float, float] = (0.10, 0.25, 0.05)
    #: Latency of actuating a DVFS change through sysfs (per switch).
    dvfs_switch_latency: Seconds = 1e-3
    #: CPU throughput relative to the AGX, used by the MBO-overhead model
    #: (Fig. 13): a slower host CPU takes longer to refit the GPs.
    relative_cpu_speed: float = 1.0
    #: Extra metadata (memory size, TDP, ...), for reporting only.
    attributes: dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.static_watts < 0:
            raise DeviceError(f"static_watts must be >= 0, got {self.static_watts}")
        if len(self.idle_watts) != 3 or any(w < 0 for w in self.idle_watts):
            raise DeviceError(f"idle_watts must be 3 non-negative values, got {self.idle_watts}")
        if len(self.waiting_fractions) != 3 or any(
            not 0.0 <= b <= 1.0 for b in self.waiting_fractions
        ):
            raise DeviceError(
                f"waiting_fractions must be 3 values in [0, 1], got {self.waiting_fractions}"
            )
        if self.dvfs_switch_latency < 0:
            raise DeviceError("dvfs_switch_latency must be >= 0")
        if self.relative_cpu_speed <= 0:
            raise DeviceError("relative_cpu_speed must be > 0")

    @property
    def num_configurations(self) -> int:
        return len(self.space)

    def summary_rows(self) -> tuple[tuple[str, str], ...]:
        """Rows for the Table 1 reproduction."""
        cpu, gpu, mem = self.space.tables
        return (
            ("CPU", self.cpu_description),
            (
                "CPU frequencies",
                f"{cpu.min:.2f}GHz -> {cpu.max:.2f}GHz ({len(cpu)} steps)",
            ),
            ("GPU", self.gpu_description),
            (
                "GPU frequencies",
                f"{gpu.min:.2f}GHz -> {gpu.max:.2f}GHz ({len(gpu)} steps)",
            ),
            ("Memory", self.mem_description),
            (
                "Memory frequencies",
                f"{mem.min:.2f}GHz -> {mem.max:.2f}GHz ({len(mem)} steps)",
            ),
            ("Unique configurations", str(self.num_configurations)),
        )


def jetson_agx() -> DeviceSpec:
    """The Nvidia Jetson AGX Xavier testbed (2100 DVFS configurations)."""
    space = ConfigurationSpace(
        FrequencyTable.linspaced("cpu", 0.42, 2.26, 25),
        FrequencyTable.linspaced("gpu", 0.11, 1.38, 14),
        FrequencyTable.linspaced("mem", 0.20, 2.13, 6),
    )
    return DeviceSpec(
        name="agx",
        long_name="Nvidia Jetson AGX Xavier",
        cpu_description="8-core ARM v8.2",
        gpu_description="512-core Volta GPU",
        mem_description="32GB 256-bit LPDDR4x",
        space=space,
        cpu_voltage=VoltageCurve(0.42, 2.26, 0.64, 1.15, gamma=1.45),
        gpu_voltage=VoltageCurve(0.11, 1.38, 0.58, 1.10, gamma=1.45),
        mem_voltage=VoltageCurve(0.20, 2.13, 0.85, 1.05, gamma=1.25),
        static_watts=2.6,
        idle_watts=(0.25, 0.35, 0.20),
        waiting_fractions=(0.10, 0.25, 0.05),
        dvfs_switch_latency=1e-3,
        relative_cpu_speed=1.0,
        attributes={"memory": "32GB", "tdp": "30W", "released": "2018"},
    )


def jetson_tx2() -> DeviceSpec:
    """The Nvidia Jetson TX2 testbed (936 DVFS configurations)."""
    space = ConfigurationSpace(
        FrequencyTable.linspaced("cpu", 0.34, 2.03, 12),
        FrequencyTable.linspaced("gpu", 0.11, 1.30, 13),
        FrequencyTable.linspaced("mem", 0.41, 1.87, 6),
    )
    return DeviceSpec(
        name="tx2",
        long_name="Nvidia Jetson TX2",
        cpu_description="2-core Nvidia Denver2 + 4-core ARM Cortex-A57",
        gpu_description="256-core Pascal GPU",
        mem_description="8GB 128-bit LPDDR4",
        space=space,
        cpu_voltage=VoltageCurve(0.34, 2.03, 0.72, 1.20, gamma=1.45),
        gpu_voltage=VoltageCurve(0.11, 1.30, 0.62, 1.15, gamma=1.45),
        mem_voltage=VoltageCurve(0.41, 1.87, 0.88, 1.10, gamma=1.25),
        static_watts=1.3,
        idle_watts=(0.15, 0.18, 0.12),
        waiting_fractions=(0.12, 0.30, 0.06),
        dvfs_switch_latency=1.5e-3,
        relative_cpu_speed=0.7,
        attributes={"memory": "8GB", "tdp": "15W", "released": "2017"},
    )


_REGISTRY: dict[str, Callable[[], DeviceSpec]] = {
    "agx": jetson_agx,
    "tx2": jetson_tx2,
}


def available_devices() -> tuple[str, ...]:
    """Names accepted by :func:`get_device`."""
    return tuple(sorted(_REGISTRY))


def get_device(name: str) -> DeviceSpec:
    """Look a device spec up by short name (``"agx"`` or ``"tx2"``)."""
    try:
        factory = _REGISTRY[name.lower()]
    except KeyError:
        raise DeviceError(
            f"unknown device {name!r}; available: {', '.join(available_devices())}"
        ) from None
    return factory()
