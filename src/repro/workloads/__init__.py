"""Neural-network training workload profiles.

A *workload* is the computation one job performs: feeding one minibatch
through a network and producing gradients.  The paper evaluates three
representative workloads — ViT (transformer), ResNet50 (CNN) and LSTM
(RNN) — whose latency/energy surfaces over the DVFS space differ
qualitatively (§2.2, Figs. 3-5): ResNet50 is GPU-bound, LSTM is CPU-bound,
and ViT sits in between.

Each profile carries per-device calibration targets that anchor the
analytic performance model to the paper's measured numbers (Table 2 round
latencies and Figs. 9-11 energy levels).
"""

from repro.workloads.base import WorkloadProfile
from repro.workloads.zoo import (
    available_workloads,
    bert_tiny,
    get_workload,
    lstm,
    mobilenet_v2,
    resnet50,
    vit,
)

__all__ = [
    "WorkloadProfile",
    "available_workloads",
    "bert_tiny",
    "get_workload",
    "lstm",
    "mobilenet_v2",
    "resnet50",
    "vit",
]
