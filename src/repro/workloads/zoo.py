"""The workload zoo: the paper's three tasks plus two extension profiles.

Calibration anchors (how each number was derived):

* ``latency_at_max`` — Table 2 gives the measured round latency ``T_min``
  at ``x_max`` and the per-round job count ``W = E x N``; the per-job
  anchor is ``T_min / W``.  E.g. CIFAR10-ViT on the AGX: 37.2 s / (5 x 40)
  = 0.186 s, which also matches the fastest point of the Fig. 11a Pareto
  front (~0.18 s).
* ``energy_at_max`` — the Performant curves of Fig. 9 divided by ``W``
  (e.g. ViT: ~870 J / 200 jobs = 4.35 J), cross-checked against the
  fast ends of the Fig. 11 fronts.  TX2 values follow from the Fig. 5
  AGX/TX2 energy ratios (0.85 / 0.70 / 0.80).
* ``busy_shares`` / ``serial_fraction`` — chosen to reproduce the
  qualitative structure of §2.2: ResNet50 GPU-bound with nearly flat
  latency in CPU frequency (Fig. 4a), LSTM CPU-bound with latency halving
  from 0.6 to 1.7 GHz, ViT mixed with a visible CPU/GPU crossover
  (Fig. 3).
* ``dynamic_split`` — chosen so energy trends match Fig. 4b: ResNet50
  energy monotonically increasing in CPU frequency, LSTM decreasing over
  the plotted 0.7-1.7 GHz range.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.errors import WorkloadError
from repro.hardware.perfmodel import CalibrationTarget
from repro.workloads.base import WorkloadProfile


def vit() -> WorkloadProfile:
    """Vision Transformer for CIFAR10 image classification (CIFAR10-ViT)."""
    return WorkloadProfile(
        name="vit",
        family="transformer",
        dataset="CIFAR10",
        description="Vision Transformer (Dosovitskiy et al.) on 32x32 CIFAR10 images",
        targets={
            "agx": CalibrationTarget(
                latency_at_max=37.2 / 200,  # Table 2: T_min / (E*N) = 37.2 / (5*40)
                energy_at_max=4.35,  # Fig. 9a Performant ~870 J / 200 jobs
                busy_shares=(0.19, 0.66, 0.15),
                dynamic_split=(0.30, 0.55, 0.15),
                serial_fraction=0.35,
            ),
            "tx2": CalibrationTarget(
                latency_at_max=36.0 / 75,  # Table 2: 36.0 / (5*15)
                energy_at_max=4.35 / 0.85,  # Fig. 5b AGX/TX2 energy ratio 0.85
                busy_shares=(0.24, 0.60, 0.16),
                dynamic_split=(0.30, 0.53, 0.17),
                serial_fraction=0.38,
            ),
        },
    )


def resnet50() -> WorkloadProfile:
    """ResNet50 for ImageNet image classification (ImageNet-ResNet50)."""
    return WorkloadProfile(
        name="resnet50",
        family="cnn",
        dataset="ImageNet",
        description="ResNet50 (He et al.) on 224x224 ImageNet crops",
        targets={
            "agx": CalibrationTarget(
                latency_at_max=46.9 / 180,  # Table 2: 46.9 / (2*90)
                energy_at_max=6.11,  # Fig. 9b Performant ~1100 J / 180 jobs
                busy_shares=(0.15, 0.62, 0.23),
                dynamic_split=(0.16, 0.62, 0.22),
                serial_fraction=0.30,
            ),
            "tx2": CalibrationTarget(
                latency_at_max=49.2 / 60,  # Table 2: 49.2 / (2*30)
                energy_at_max=6.11 / 0.70,  # Fig. 5b ratio 0.70
                busy_shares=(0.18, 0.60, 0.22),
                dynamic_split=(0.18, 0.60, 0.22),
                serial_fraction=0.32,
            ),
        },
    )


def lstm() -> WorkloadProfile:
    """LSTM-RNN for IMDB sentiment analysis (IMDB-LSTM)."""
    return WorkloadProfile(
        name="lstm",
        family="rnn",
        dataset="IMDB",
        description="LSTM recurrent network on IMDB movie-review sentiment",
        targets={
            "agx": CalibrationTarget(
                latency_at_max=46.1 / 160,  # Table 2: 46.1 / (4*40)
                energy_at_max=6.25,  # Fig. 9c Performant ~1000 J / 160 jobs
                busy_shares=(0.55, 0.25, 0.20),
                dynamic_split=(0.28, 0.45, 0.27),
                serial_fraction=0.40,
            ),
            "tx2": CalibrationTarget(
                latency_at_max=55.6 / 80,  # Table 2: 55.6 / (4*20)
                energy_at_max=6.25 / 0.80,  # Fig. 5b ratio 0.80
                busy_shares=(0.50, 0.28, 0.22),
                dynamic_split=(0.26, 0.46, 0.28),
                serial_fraction=0.42,
            ),
        },
    )


def mobilenet_v2() -> WorkloadProfile:
    """MobileNetV2 — a lighter CNN, used by extension experiments.

    Not part of the paper's evaluation; calibration numbers are plausible
    extrapolations (a depthwise-separable CNN is cheaper per minibatch and
    relatively more memory-bound than ResNet50).
    """
    return WorkloadProfile(
        name="mobilenet_v2",
        family="cnn",
        dataset="CIFAR10",
        description="MobileNetV2 depthwise-separable CNN (extension workload)",
        targets={
            "agx": CalibrationTarget(
                latency_at_max=0.082,
                energy_at_max=1.70,
                busy_shares=(0.30, 0.45, 0.25),
                dynamic_split=(0.28, 0.50, 0.22),
                serial_fraction=0.35,
            ),
            "tx2": CalibrationTarget(
                latency_at_max=0.21,
                energy_at_max=2.20,
                busy_shares=(0.32, 0.42, 0.26),
                dynamic_split=(0.28, 0.48, 0.24),
                serial_fraction=0.37,
            ),
        },
    )


def bert_tiny() -> WorkloadProfile:
    """BERT-tiny — a small NLP transformer, used by extension experiments."""
    return WorkloadProfile(
        name="bert_tiny",
        family="transformer",
        dataset="IMDB",
        description="BERT-tiny transformer encoder (extension workload)",
        targets={
            "agx": CalibrationTarget(
                latency_at_max=0.145,
                energy_at_max=3.10,
                busy_shares=(0.30, 0.55, 0.15),
                dynamic_split=(0.30, 0.55, 0.15),
                serial_fraction=0.33,
            ),
            "tx2": CalibrationTarget(
                latency_at_max=0.40,
                energy_at_max=3.90,
                busy_shares=(0.34, 0.50, 0.16),
                dynamic_split=(0.30, 0.53, 0.17),
                serial_fraction=0.36,
            ),
        },
    )


_REGISTRY: dict[str, Callable[[], WorkloadProfile]] = {
    "vit": vit,
    "resnet50": resnet50,
    "lstm": lstm,
    "mobilenet_v2": mobilenet_v2,
    "bert_tiny": bert_tiny,
}

#: The three workloads evaluated in the paper, in presentation order.
PAPER_WORKLOADS: tuple[str, str, str] = ("vit", "resnet50", "lstm")


def available_workloads() -> tuple[str, ...]:
    """Names accepted by :func:`get_workload`."""
    return tuple(sorted(_REGISTRY))


def get_workload(name: str) -> WorkloadProfile:
    """Look a workload profile up by short name."""
    try:
        factory = _REGISTRY[name.lower()]
    except KeyError:
        raise WorkloadError(
            f"unknown workload {name!r}; available: {', '.join(available_workloads())}"
        ) from None
    return factory()
