"""The :class:`WorkloadProfile` descriptor.

A profile names a training workload, classifies it, and carries the
per-device calibration targets that anchor its simulated performance
surface.  Profiles are pure data; pair one with a device via
:meth:`WorkloadProfile.performance_model` to obtain the ground-truth
surfaces.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import WorkloadError
from repro.hardware.devices import DeviceSpec
from repro.hardware.perfmodel import AnalyticPerformanceModel, CalibrationTarget


@dataclass(frozen=True)
class WorkloadProfile:
    """A neural-network training workload (one job = one minibatch).

    Attributes
    ----------
    name:
        Short identifier, e.g. ``"vit"``.
    family:
        Model family: ``"transformer"``, ``"cnn"`` or ``"rnn"``.
    dataset:
        The dataset the paper pairs the model with (CIFAR10, ImageNet,
        IMDB); used for task naming and reporting.
    description:
        One-line human description.
    targets:
        Per-device calibration anchoring, keyed by device short name.
    """

    name: str
    family: str
    dataset: str
    description: str
    targets: dict[str, CalibrationTarget] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise WorkloadError("workload name must be non-empty")
        if self.family not in ("transformer", "cnn", "rnn"):
            raise WorkloadError(
                f"unknown family {self.family!r}; expected transformer/cnn/rnn"
            )

    @property
    def task_name(self) -> str:
        """Paper-style task label, e.g. ``"CIFAR10-ViT"``."""
        return f"{self.dataset}-{self.display_name}"

    @property
    def display_name(self) -> str:
        pretty = {"vit": "ViT", "resnet50": "ResNet50", "lstm": "LSTM"}
        return pretty.get(self.name, self.name)

    def supports_device(self, device: DeviceSpec) -> bool:
        """Whether calibration targets exist for ``device``."""
        return device.name in self.targets

    def target_for(self, device: DeviceSpec) -> CalibrationTarget:
        """The calibration target for ``device`` (raises if absent)."""
        try:
            return self.targets[device.name]
        except KeyError:
            raise WorkloadError(
                f"workload {self.name!r} has no calibration for device "
                f"{device.name!r}; available: {sorted(self.targets)}"
            ) from None

    def performance_model(self, device: DeviceSpec) -> AnalyticPerformanceModel:
        """Build the ground-truth performance surface on ``device``."""
        return AnalyticPerformanceModel(device, self.target_for(device), self.name)

    def with_target(self, device_name: str, target: CalibrationTarget) -> "WorkloadProfile":
        """Return a copy of this profile with one more device calibration."""
        targets = dict(self.targets)
        targets[device_name] = target
        return WorkloadProfile(
            name=self.name,
            family=self.family,
            dataset=self.dataset,
            description=self.description,
            targets=targets,
        )

    def devices(self) -> tuple[str, ...]:
        """Device names this profile is calibrated for."""
        return tuple(sorted(self.targets))
