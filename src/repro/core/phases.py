"""The three BoFL operating phases and their transition log (§4.1)."""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Phase(enum.Enum):
    """BoFL's operating phases, in order."""

    #: Phase 1: Sobol starting points under the safe exploration algorithm.
    RANDOM_EXPLORATION = "random_exploration"
    #: Phase 2: MBO-suggested configurations, still safely explored.
    PARETO_CONSTRUCTION = "pareto_construction"
    #: Phase 3: pure exploitation of the approximated Pareto set.
    EXPLOITATION = "exploitation"

    @property
    def order(self) -> int:
        return {"random_exploration": 1, "pareto_construction": 2, "exploitation": 3}[
            self.value
        ]


@dataclass(frozen=True)
class PhaseTransition:
    """A phase change, stamped with the round at which it took effect.

    Legal moves: one step forward (1 -> 2 -> 3), or the re-exploration
    restart (3 -> 1) used by the drift-adaptation extension when the
    measured performance model has gone stale (e.g. thermal throttling).
    """

    round_index: int
    from_phase: Phase
    to_phase: Phase

    def __post_init__(self) -> None:
        forward = self.to_phase.order == self.from_phase.order + 1
        restart = (
            self.from_phase is Phase.EXPLOITATION
            and self.to_phase is Phase.RANDOM_EXPLORATION
        )
        if not (forward or restart):
            raise ValueError(
                f"phases advance forward one step (or restart from exploitation): "
                f"{self.from_phase.value} -> {self.to_phase.value}"
            )

    @property
    def is_restart(self) -> bool:
        """Whether this transition re-enters exploration from exploitation."""
        return self.to_phase.order < self.from_phase.order
