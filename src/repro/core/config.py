"""BoFL tuning knobs, with the paper's defaults.

Every default traces to a concrete statement in §4:

* ``tau = 5 s`` — "we define tau as a reference measurement duration
  (e.g., 5s)" (§4.2).
* ``initial_sample_fraction = 1 %`` — "we sample a small group (e.g., 1% of
  the whole space) of starting points" (§4.2).
* ``min_explored_fraction = 3 %`` / ``hv_improvement_threshold = 1 %`` —
  "when at least a certain number of configurations (e.g. 3% of the whole
  space) are explored and the EHVI value increase is less than a threshold
  (e.g., 1%)" (§4.3).  We interpret "EHVI value increase" as the relative
  hypervolume increase contributed by the most recent round, which is the
  quantity EHVI estimates in expectation.
* ``max_batch_size = 10`` — "we can also set an upper threshold for the MBO
  batch size (e.g., 10 points)" (§4.3).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.types import require_fraction, require_positive


@dataclass(frozen=True)
class BoFLConfig:
    """Configuration of the BoFL controller."""

    #: Reference measurement duration per explored configuration (seconds).
    tau: float = 5.0
    #: Fraction of the space Sobol-sampled as phase-1 starting points.
    initial_sample_fraction: float = 0.01
    #: Phase-2 stopping: minimum fraction of the space explored ...
    min_explored_fraction: float = 0.03
    #: ... and maximum relative hypervolume increase per round to stop.
    hv_improvement_threshold: float = 0.01
    #: Upper bound on the MBO suggestion batch size.
    max_batch_size: int = 10
    #: Random restarts per GP hyperparameter fit.
    fit_restarts: int = 2
    #: Warm-start GP refits from the previous round's fitted
    #: hyperparameters (restart-free) instead of re-searching from the
    #: Matern52(0.5) prior every round.  Disable to force cold refits —
    #: cheaper surrogate quality, but the legacy per-round cost.
    warm_start_fits: bool = True
    #: Relative deadline headroom the exploitation planner reserves for
    #: measurement noise and DVFS switch latency.
    safety_margin: float = 0.02
    #: Master seed (sampling, GP restarts).
    seed: int = 0
    #: Disable to ablate the deadline guardian (bench_abl_guardian).
    guardian_enabled: bool = True
    #: Disable to ablate MBO: phase 2 then explores random configurations
    #: instead of EHVI suggestions (bench_abl_acquisition).
    mbo_enabled: bool = True
    #: Disable to ablate the ILP: exploitation then uses the single best
    #: feasible configuration instead of a mixture (bench_abl_exploit).
    exploit_mixture: bool = True
    #: Extension: detect stale performance models during exploitation (e.g.
    #: thermal throttling) and restart the exploration phases.
    drift_reexploration: bool = False
    #: Relative per-job latency deviation (EWMA) that triggers a restart.
    drift_threshold: float = 0.15
    #: EWMA smoothing factor for the drift detector.
    drift_smoothing: float = 0.3

    def __post_init__(self) -> None:
        require_positive("tau", self.tau)
        require_fraction("initial_sample_fraction", self.initial_sample_fraction)
        require_fraction("min_explored_fraction", self.min_explored_fraction)
        require_fraction("hv_improvement_threshold", self.hv_improvement_threshold)
        require_fraction("safety_margin", self.safety_margin)
        if self.initial_sample_fraction <= 0:
            raise ValueError("initial_sample_fraction must be positive")
        if self.max_batch_size < 1:
            raise ValueError(f"max_batch_size must be >= 1, got {self.max_batch_size}")
        if self.fit_restarts < 0:
            raise ValueError(f"fit_restarts must be >= 0, got {self.fit_restarts}")
        require_fraction("drift_smoothing", self.drift_smoothing)
        require_positive("drift_threshold", self.drift_threshold)

    def initial_samples(self, space_size: int) -> int:
        """Number of phase-1 starting points for a space of ``space_size``."""
        return max(2, int(round(self.initial_sample_fraction * space_size)))

    def min_explored(self, space_size: int) -> int:
        """Minimum explored configurations before phase 2 may stop."""
        return max(3, int(round(self.min_explored_fraction * space_size)))
