"""The pace-controller interface that BoFL and all baselines implement.

A controller is bound to one :class:`~repro.hardware.device.SimulatedDevice`
and is driven round by round: the FL client (or the experiment runner)
calls :meth:`PaceController.run_round` with the round's job count and
deadline; the controller actuates DVFS configurations and executes jobs on
its device, invoking ``on_job`` after each one so real model training can
ride along.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Callable
from typing import Optional

from repro.core.records import RoundRecord
from repro.errors import ConfigurationError
from repro.hardware.device import SimulatedDevice
from repro.types import JobResult, RoundBudget, Seconds

#: Callback fired after every executed job (e.g. to run a real minibatch).
JobCallback = Callable[[], None]


class PaceController(ABC):
    """Decides the DVFS configuration of every job in every round."""

    #: Short identifier used in records and reports.
    name: str = "abstract"

    def __init__(self, device: SimulatedDevice) -> None:
        self.device = device
        self._rounds_run = 0

    @property
    def rounds_run(self) -> int:
        return self._rounds_run

    def run_round(
        self,
        jobs: int,
        deadline: Seconds,
        on_job: Optional[JobCallback] = None,
    ) -> RoundRecord:
        """Execute one FL round of ``jobs`` jobs before ``deadline`` seconds.

        Template method: validates inputs, delegates to
        :meth:`_execute_round`, and keeps the round counter.
        """
        if jobs < 1:
            raise ConfigurationError(f"a round needs at least one job, got {jobs}")
        if deadline <= 0:
            raise ConfigurationError(f"deadline must be positive, got {deadline}")
        record = self._execute_round(self._rounds_run, jobs, deadline, on_job)
        self._rounds_run += 1
        return record

    @abstractmethod
    def _execute_round(
        self,
        round_index: int,
        jobs: int,
        deadline: Seconds,
        on_job: Optional[JobCallback],
    ) -> RoundRecord:
        """Controller-specific round execution."""

    def _run_one_job(self, budget: RoundBudget, on_job: Optional[JobCallback]) -> JobResult:
        """Execute one job on the device, update the budget, fire the hook."""
        result = self.device.run_job()
        budget.record_job(result)
        if on_job is not None:
            on_job()
        return result
