"""The controller's memory of measured configurations.

Each explored configuration maps to one merged
:class:`~repro.types.PerformanceSample`; re-measuring the same
configuration (e.g. the guardian falling back to ``x_max`` many times)
refines the estimate by job-count-weighted averaging rather than
duplicating rows — duplicates would both bias the GP fit and inflate the
Pareto set.
"""

from __future__ import annotations

from collections.abc import Iterator
from typing import Optional

import numpy as np

from repro.bayesopt.pareto import pareto_mask
from repro.errors import ConfigurationError
from repro.types import DvfsConfiguration, PerformanceSample


class ObservationStore:
    """Merged performance samples keyed by configuration."""

    def __init__(self) -> None:
        self._samples: dict[DvfsConfiguration, PerformanceSample] = {}

    def __len__(self) -> int:
        return len(self._samples)

    def __contains__(self, config: DvfsConfiguration) -> bool:
        return config in self._samples

    def __iter__(self) -> Iterator[DvfsConfiguration]:
        return iter(self._samples)

    def add(self, sample: PerformanceSample) -> PerformanceSample:
        """Merge ``sample`` into the store; returns the merged sample."""
        existing = self._samples.get(sample.config)
        merged = sample if existing is None else existing.merged_with(sample)
        self._samples[sample.config] = merged
        return merged

    def get(self, config: DvfsConfiguration) -> PerformanceSample:
        """Return the merged sample for ``config`` (raises if unmeasured)."""
        try:
            return self._samples[config]
        except KeyError:
            raise ConfigurationError(f"{config} has not been measured") from None

    def maybe_get(self, config: DvfsConfiguration) -> Optional[PerformanceSample]:
        """Return the merged sample for ``config``, or None."""
        return self._samples.get(config)

    @property
    def configurations(self) -> list[DvfsConfiguration]:
        return list(self._samples)

    def objectives_matrix(self) -> tuple[list[DvfsConfiguration], np.ndarray]:
        """All observations as ``(configs, (n, 2) [latency, energy])``."""
        configs = list(self._samples)
        if not configs:
            return configs, np.zeros((0, 2))
        values = np.array([self._samples[c].objectives for c in configs])
        return configs, values

    def pareto_set(self) -> tuple[list[DvfsConfiguration], np.ndarray]:
        """Non-dominated observed configurations and their objectives."""
        configs, values = self.objectives_matrix()
        if not configs:
            return [], values
        mask = pareto_mask(values)
        return [c for c, keep in zip(configs, mask) if keep], values[mask]

    def fastest(self) -> PerformanceSample:
        """The lowest-latency observation (usually ``x_max``)."""
        if not self._samples:
            raise ConfigurationError("no observations yet")
        return min(self._samples.values(), key=lambda s: s.latency)

    def worst_latency(self) -> float:
        """Highest observed per-job latency (guardian reserve input)."""
        if not self._samples:
            raise ConfigurationError("no observations yet")
        return max(s.latency for s in self._samples.values())

    def worst_point(self) -> tuple[float, float]:
        """Componentwise-worst observed objectives (the HV reference rule)."""
        _, values = self.objectives_matrix()
        if values.shape[0] == 0:
            raise ConfigurationError("no observations yet")
        worst = values.max(axis=0)
        return (float(worst[0]), float(worst[1]))
