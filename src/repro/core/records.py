"""Outcome records produced by pace controllers.

These are the raw material of every evaluation figure: per-round energy
(Figs. 9-10), exploration/Pareto walkthroughs (Table 3), and MBO overhead
(Fig. 13) are all projections of :class:`RoundRecord` streams.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.types import DvfsConfiguration, Joules, Seconds


@dataclass(frozen=True)
class MBOReport:
    """Cost of one between-rounds MBO engine invocation (§6.5).

    The MBO runs in the configuration/reporting window (Fig. 1), so its
    latency never delays training; its energy is still real and is tracked
    separately for the Fig. 13 overhead analysis.
    """

    latency: Seconds
    energy: Joules
    n_observations: int
    batch_size: int
    suggestions: tuple[DvfsConfiguration, ...] = ()


@dataclass
class RoundRecord:
    """Everything a controller did during one FL round."""

    round_index: int
    phase: str
    deadline: Seconds
    jobs: int
    #: Wall time from round start to the last job's completion.
    elapsed: Seconds = 0.0
    #: Actual training energy consumed this round.
    energy: Joules = 0.0
    #: Whether the round finished past its deadline (should never happen
    #: with the guardian enabled).
    missed: bool = False
    #: Configurations newly explored (measured) this round.
    explored: list[DvfsConfiguration] = field(default_factory=list)
    #: Of the explored ones, how many sit on the final Pareto front — filled
    #: in retrospectively by the campaign runner (Table 3 semantics).
    explored_on_final_front: Optional[int] = None
    #: Number of jobs spent in exploitation (vs measurement windows).
    exploited_jobs: int = 0
    #: Whether the guardian fired and forced the round onto x_max.
    guardian_triggered: bool = False
    #: Between-rounds MBO cost, when the MBO engine ran before this round.
    mbo: Optional[MBOReport] = None

    @property
    def slack(self) -> Seconds:
        """Unused time before the deadline (negative iff missed)."""
        return self.deadline - self.elapsed

    @property
    def explored_count(self) -> int:
        return len(self.explored)


@dataclass(frozen=True)
class ChaosSummary:
    """What a chaos campaign injected and how the stack fought back.

    Attached to a :class:`CampaignResult` by the chaos path of the campaign
    runner; a ``None`` summary means the campaign ran fault-free.
    """

    #: Every injection performed, as (round_index, fault_kind) pairs.
    injected: tuple[tuple[int, str], ...] = ()
    checkpoints: int = 0
    restores: int = 0
    escalations: int = 0
    dropped_rounds: int = 0
    lost_reports: int = 0

    @property
    def injections(self) -> int:
        return len(self.injected)

    @property
    def recovery_actions(self) -> int:
        return self.restores + self.escalations


@dataclass
class CampaignResult:
    """A full multi-round run of one controller on one device/task."""

    controller: str
    device: str
    task: str
    deadline_ratio: float
    records: list[RoundRecord] = field(default_factory=list)
    #: The controller's final Pareto-front objective values, if it has one.
    final_front: Optional[list[tuple[Seconds, Joules]]] = None
    #: Fault-injection summary when the campaign ran under a chaos schedule.
    chaos: Optional[ChaosSummary] = None

    @property
    def rounds(self) -> int:
        return len(self.records)

    @property
    def training_energy(self) -> Joules:
        return sum(r.energy for r in self.records)

    @property
    def mbo_energy(self) -> Joules:
        return sum(r.mbo.energy for r in self.records if r.mbo is not None)

    @property
    def total_energy(self) -> Joules:
        return self.training_energy + self.mbo_energy

    @property
    def missed_rounds(self) -> int:
        return sum(1 for r in self.records if r.missed)

    @property
    def explored_total(self) -> int:
        return sum(r.explored_count for r in self.records)

    def energy_series(self) -> list[Joules]:
        """Per-round training energy (the Figs. 9-10 curves)."""
        return [r.energy for r in self.records]

    def deadline_series(self) -> list[Seconds]:
        """Per-round deadlines (the DDL subplots of Figs. 9-10)."""
        return [r.deadline for r in self.records]

    def phase_of_round(self, index: int) -> str:
        return self.records[index].phase
