"""BoFL — the paper's contribution: a three-phase local pace controller.

The controller runs on the FL client and decides, job by job, which DVFS
configuration to train under:

1. **Safe random exploration** (§4.2) — measure Sobol-sampled starting
   points for at least ``tau`` seconds each, guarded by Eqn. 2 so no round
   deadline is ever missed; exploit observed configurations once the
   starting points are exhausted.
2. **Pareto front construction** (§4.3) — between rounds, refit the
   latency/energy GPs and pick an EHVI-greedy batch of configurations to
   try next round; stop once enough of the space is explored and the
   hypervolume stops improving.
3. **Exploitation** (§4.4) — for every remaining round, solve the Eqn. 1
   schedule ILP over the observed Pareto set and execute the plan.
"""

from repro.core.base import PaceController
from repro.core.config import BoFLConfig
from repro.core.controller import BoFLController
from repro.core.exploitation import ExploitationPlanner
from repro.core.guardian import DeadlineGuardian
from repro.core.observations import ObservationStore
from repro.core.phases import Phase, PhaseTransition
from repro.core.records import MBOReport, RoundRecord
from repro.core.stopping import StoppingCondition
from repro.core.workload_assignment import MeasurementPolicy

__all__ = [
    "BoFLConfig",
    "BoFLController",
    "DeadlineGuardian",
    "ExploitationPlanner",
    "MBOReport",
    "MeasurementPolicy",
    "ObservationStore",
    "PaceController",
    "Phase",
    "PhaseTransition",
    "RoundRecord",
    "StoppingCondition",
]
