"""The Pareto-construction stopping condition (§4.3).

"The Pareto construction phase will continue until ... at least a certain
number of configurations (e.g. 3% of the whole space) are explored and the
EHVI value increase is less than a threshold (e.g., 1%)."

We track the hypervolume of the observed front after each phase-2 round
(w.r.t. the reference point frozen at the end of phase 1) and stop once
the latest round's *relative* hypervolume increase falls under the
threshold — the realized counterpart of the expected increase the EHVI
acquisition predicts.
"""

from __future__ import annotations


from repro.types import require_fraction, require_nonnegative_int


class StoppingCondition:
    """Coverage + diminishing-hypervolume stopping rule."""

    def __init__(self, min_explored: int, hv_improvement_threshold: float) -> None:
        require_nonnegative_int("min_explored", min_explored)
        self.min_explored = min_explored
        self.hv_improvement_threshold = require_fraction(
            "hv_improvement_threshold", hv_improvement_threshold
        )
        self._history: list[float] = []

    @property
    def history(self) -> list[float]:
        """Recorded hypervolume trajectory (one entry per phase-2 round)."""
        return list(self._history)

    def record_hypervolume(self, hv: float) -> None:
        """Record the front hypervolume after a phase-2 round."""
        if hv < 0:
            raise ValueError(f"hypervolume cannot be negative: {hv}")
        if self._history and hv < self._history[-1] - 1e-12:
            # Hypervolume w.r.t. a fixed reference is monotone in the
            # observation set; a decrease means the reference moved.
            raise ValueError(
                f"hypervolume decreased ({self._history[-1]} -> {hv}); "
                "the reference point must stay frozen during phase 2"
            )
        self._history.append(float(hv))

    def last_relative_increase(self) -> float:
        """Relative HV gain of the latest recorded round (inf if unknown)."""
        if len(self._history) < 2:
            return float("inf")
        previous, latest = self._history[-2], self._history[-1]
        if previous <= 0:
            return float("inf")
        return (latest - previous) / previous

    def should_stop(self, n_explored: int) -> bool:
        """Whether phase 2 may end: coverage met and HV gain has flattened."""
        if n_explored < self.min_explored:
            return False
        return self.last_relative_increase() < self.hv_improvement_threshold
