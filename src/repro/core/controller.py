"""The BoFL controller: explore-then-exploit pace control (§4).

Round lifecycle:

* **Phase 1 (safe random exploration)** — measure ``x_max`` first (the
  guardian anchor), then the Sobol starting points, each for >= ``tau``
  seconds, gating every new window on Eqn. 2; once the queue empties,
  remaining jobs are exploited against the observations so far.
* **Phase 2 (Pareto construction)** — before each round the MBO engine
  refits the GPs and emits a ``K = T_avg / tau`` (capped) batch of EHVI
  suggestions; the round explores them under the same safe algorithm.
  After the round, the stopping rule checks space coverage and the
  hypervolume trend.
* **Phase 3 (exploitation)** — each round solves the Eqn. 1 ILP over the
  observed Pareto set and executes the plan fastest-entries-first, with a
  drift monitor that falls back to ``x_max`` if execution noise threatens
  the deadline.
"""

from __future__ import annotations

import copy
from collections import deque
from collections.abc import Callable
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.bayesopt.optimizer import MultiObjectiveBayesianOptimizer
from repro.bayesopt.sampling import sobol_configurations, uniform_configurations
from repro.obs import runtime as obs
from repro.core.base import JobCallback, PaceController
from repro.core.config import BoFLConfig
from repro.core.exploitation import ExploitationPlanner
from repro.core.guardian import DeadlineGuardian
from repro.core.observations import ObservationStore
from repro.core.phases import Phase, PhaseTransition
from repro.core.records import MBOReport, RoundRecord
from repro.core.stopping import StoppingCondition
from repro.core.workload_assignment import MeasurementPolicy
from repro.errors import InfeasibleError
from repro.hardware.device import SimulatedDevice
from repro.types import (
    DvfsConfiguration,
    JobResult,
    PerformanceSample,
    RoundBudget,
    Schedule,
    Seconds,
)

#: Models the cost of one MBO engine run: (n_observations, batch_size) ->
#: (latency seconds, energy Joules).  ``None`` means free (unit tests).
MBOCostFn = Callable[[int, int], tuple[float, float]]


@dataclass(frozen=True)
class BoFLCheckpoint:
    """A resumable snapshot of a :class:`BoFLController`'s learning state.

    Captures everything the explore-then-exploit machinery has learned —
    the observation store, the optimizer (GPs, Sobol cursor, reference
    point), the stopping rule's hypervolume history, the guardian's
    ``T(x_max)`` estimate, the phase machine and both candidate queues —
    but deliberately **not** the device, the clock, or the round counter:
    restoring rolls back *what the controller believes*, never the world.
    A faulted round therefore resumes from the snapshot instead of the
    controller restarting exploration from scratch.
    """

    store: ObservationStore
    optimizer: MultiObjectiveBayesianOptimizer
    stopping: StoppingCondition
    guardian: DeadlineGuardian
    phase: Phase
    transitions: tuple[PhaseTransition, ...]
    exploration_queue: tuple[DvfsConfiguration, ...]
    pending_suggestions: tuple[DvfsConfiguration, ...]
    phase1_durations: tuple[Seconds, ...]
    rng: np.random.Generator
    drift_ewma: float
    restarts: int
    escalation_rounds: int


class BoFLController(PaceController):
    """Bayesian-optimized local training pace control."""

    name = "bofl"

    def __init__(
        self,
        device: SimulatedDevice,
        config: Optional[BoFLConfig] = None,
        mbo_cost: Optional[MBOCostFn] = None,
    ) -> None:
        super().__init__(device)
        self.config = config if config is not None else BoFLConfig()
        self.mbo_cost = mbo_cost
        space = device.space
        self.store = ObservationStore()
        self.guardian = DeadlineGuardian(self.config.tau, self.config.guardian_enabled)
        self.measurer = MeasurementPolicy(self.config.tau)
        self.planner = ExploitationPlanner(
            self.config.safety_margin, exact=self.config.exploit_mixture
        )
        self.optimizer = MultiObjectiveBayesianOptimizer(
            space,
            seed=self.config.seed,
            fit_restarts=self.config.fit_restarts,
            warm_start=self.config.warm_start_fits,
        )
        self.stopping = StoppingCondition(
            self.config.min_explored(len(space)),
            self.config.hv_improvement_threshold,
        )
        self.phase = Phase.RANDOM_EXPLORATION
        self.transitions: list[PhaseTransition] = []
        self._x_max = space.max_configuration()
        starting_points = sobol_configurations(
            space,
            self.config.initial_samples(len(space)),
            seed=self.config.seed,
            exclude=[self._x_max],
        )
        #: Phase-1 queue: x_max first (guardian anchor), then Sobol points.
        self._exploration_queue: deque[DvfsConfiguration] = deque(
            [self._x_max] + starting_points
        )
        self._pending_suggestions: deque[DvfsConfiguration] = deque()
        self._phase1_durations: list[Seconds] = []
        self._rng = np.random.default_rng(self.config.seed + 1)
        #: Drift-adaptation extension state (see BoFLConfig.drift_reexploration).
        self._drift_ewma = 0.0
        self.restarts = 0
        #: Rounds left under a resilience escalation (pinning x_max).
        self._escalation_rounds = 0

    # -- public inspection --------------------------------------------------

    @property
    def explored_count(self) -> int:
        return len(self.store)

    def pareto_front(self) -> np.ndarray:
        """Objective values of the currently observed Pareto set."""
        _, values = self.store.pareto_set()
        return values

    def decision_candidates(
        self,
    ) -> tuple[tuple[DvfsConfiguration, ...], np.ndarray, np.ndarray]:
        """The (configs, latencies, energies) pool a pace decision plans over.

        Exactly the candidate set :class:`ExploitationPlanner` solves the
        Eqn. 1 ILP against: the observed Pareto set plus the fastest
        observed configuration (guaranteed present so the ILP stays
        feasible whenever the deadline is meetable).  The pace-decision
        service (:mod:`repro.service`) consumes this to serve plans from a
        device's *learned* measurements instead of the analytic surface.

        Raises :class:`~repro.errors.InfeasibleError` before any
        observation exists.
        """
        pareto_configs, pareto_values = self.store.pareto_set()
        if not pareto_configs:
            raise InfeasibleError("no observations to build decision candidates from")
        fastest = self.store.fastest()
        configs = list(pareto_configs)
        latencies = list(pareto_values[:, 0])
        energies = list(pareto_values[:, 1])
        if fastest.config not in configs:
            configs.append(fastest.config)
            latencies.append(fastest.latency)
            energies.append(fastest.energy)
        return tuple(configs), np.asarray(latencies), np.asarray(energies)

    # -- checkpoint / restore / escalation (resilience hooks) -----------------

    def checkpoint(self) -> BoFLCheckpoint:
        """Snapshot the learning state (see :class:`BoFLCheckpoint`).

        Deep-copies every stateful component so later rounds cannot mutate
        the snapshot through shared references.
        """
        return BoFLCheckpoint(
            store=copy.deepcopy(self.store),
            optimizer=copy.deepcopy(self.optimizer),
            stopping=copy.deepcopy(self.stopping),
            guardian=copy.deepcopy(self.guardian),
            phase=self.phase,
            transitions=tuple(self.transitions),
            exploration_queue=tuple(self._exploration_queue),
            pending_suggestions=tuple(self._pending_suggestions),
            phase1_durations=tuple(self._phase1_durations),
            rng=copy.deepcopy(self._rng),
            drift_ewma=self._drift_ewma,
            restarts=self.restarts,
            escalation_rounds=self._escalation_rounds,
        )

    def restore(self, snapshot: BoFLCheckpoint) -> None:
        """Roll the learning state back to ``snapshot``.

        The device, simulated clock and round counter are untouched:
        restoring discards poisoned *beliefs* (e.g. GP observations taken
        through a faulted power sensor) while the world keeps moving.  The
        snapshot is deep-copied on the way in so it stays reusable.
        """
        self.store = copy.deepcopy(snapshot.store)
        self.optimizer = copy.deepcopy(snapshot.optimizer)
        self.stopping = copy.deepcopy(snapshot.stopping)
        self.guardian = copy.deepcopy(snapshot.guardian)
        self.phase = snapshot.phase
        self.transitions = list(snapshot.transitions)
        self._exploration_queue = deque(snapshot.exploration_queue)
        self._pending_suggestions = deque(snapshot.pending_suggestions)
        self._phase1_durations = list(snapshot.phase1_durations)
        self._rng = copy.deepcopy(snapshot.rng)
        self._drift_ewma = snapshot.drift_ewma
        self.restarts = snapshot.restarts
        self._escalation_rounds = snapshot.escalation_rounds

    def escalate_to_xmax(self, rounds: int) -> None:
        """Pin the next ``rounds`` rounds to ``x_max`` (safe-harbor mode).

        The resilience layer calls this after detecting an anomaly (thermal
        trip, deadline miss under fault): until the counter drains, every
        round sprints at the guardian configuration instead of trusting the
        possibly-invalidated performance model.  Escalations extend but
        never shorten an active pin.
        """
        self._escalation_rounds = max(self._escalation_rounds, rounds)

    @property
    def escalation_active(self) -> bool:
        return self._escalation_rounds > 0

    # -- round execution -----------------------------------------------------

    def _execute_round(
        self,
        round_index: int,
        jobs: int,
        deadline: Seconds,
        on_job: Optional[JobCallback],
    ) -> RoundRecord:
        budget = RoundBudget(total_jobs=jobs, deadline=deadline)
        record = RoundRecord(
            round_index=round_index,
            phase=self.phase.value,
            deadline=deadline,
            jobs=jobs,
        )
        escalated = self._escalation_rounds > 0
        if escalated:
            # Safe-harbor mode (resilience escalation): the whole round runs
            # at x_max.  No measurements, no MBO, no phase advance — the
            # learning machinery idles until the pin drains.
            self._escalation_rounds -= 1
            record.guardian_triggered = True
            self._drain_at_x_max(budget, record, on_job)
        else:
            if self.phase is Phase.PARETO_CONSTRUCTION:
                record.mbo = self._run_mbo_engine()
                if obs.enabled():
                    obs.emit(
                        "mbo.run",
                        t=self.device.clock.now,
                        round=round_index,
                        latency=record.mbo.latency,
                        energy=record.mbo.energy,
                        n_observations=record.mbo.n_observations,
                        batch_size=record.mbo.batch_size,
                    )
            if self.phase is Phase.EXPLOITATION:
                self._run_exploitation_round(budget, record, on_job)
            else:
                queue = (
                    self._exploration_queue
                    if self.phase is Phase.RANDOM_EXPLORATION
                    else self._pending_suggestions
                )
                self._run_exploration_round(queue, budget, record, on_job)
        record.elapsed = budget.elapsed
        record.energy = self.device.energy_consumed - self._energy_start
        record.missed = budget.elapsed > deadline + 1e-9
        if not escalated:
            self._advance_phase(round_index, budget)
        if obs.enabled():
            obs.emit(
                "controller.round",
                t=self.device.clock.now,
                round=round_index,
                phase=record.phase,
                jobs=jobs,
                deadline=deadline,
                elapsed=record.elapsed,
                energy=record.energy,
                missed=record.missed,
                guardian_triggered=record.guardian_triggered,
                exploited_jobs=record.exploited_jobs,
                explored=[list(c.as_tuple()) for c in record.explored],
            )
            obs.count("controller.rounds")
            obs.count("controller.explorations", len(record.explored))
            obs.observe("controller.round_energy_j", record.energy)
        return record

    def run_round(
        self,
        jobs: int,
        deadline: Seconds,
        on_job: Optional[JobCallback] = None,
    ) -> RoundRecord:
        """Execute one FL round (see :meth:`PaceController.run_round`).

        Snapshots the device energy ledger so the returned record carries
        this round's exact training energy.
        """
        self._energy_start = self.device.energy_consumed
        return super().run_round(jobs, deadline, on_job)

    # -- phase 1 & 2: safe exploration ----------------------------------------

    def _run_exploration_round(
        self,
        queue: deque[DvfsConfiguration],
        budget: RoundBudget,
        record: RoundRecord,
        on_job: Optional[JobCallback],
    ) -> None:
        while queue and not budget.finished:
            config = queue[0]
            first_measurement = self.guardian.t_xmax <= 0
            if first_measurement and config != self._x_max:
                # Defensive: x_max must be measured before anything else.
                config = self._x_max
            if not first_measurement and not self.guardian.allows_exploration(budget):
                record.guardian_triggered = True
                self._drain_at_x_max(budget, record, on_job)
                if self.phase is Phase.RANDOM_EXPLORATION:
                    self._phase1_durations.append(budget.elapsed)
                return
            if queue[0] == config:
                queue.popleft()
            sample, results = self.measurer.measure(self.device, config, budget, on_job)
            self._record_sample(sample, results, record)
        if not budget.finished:
            # Last-round exploitation (§4.2): candidates exhausted but jobs
            # remain — run them on the best observed profile.
            self._execute_best_profile(budget, record, on_job)
        if self.phase is Phase.RANDOM_EXPLORATION:
            self._phase1_durations.append(budget.elapsed)

    def _record_sample(
        self,
        sample: PerformanceSample,
        results: tuple[JobResult, ...],
        record: RoundRecord,
    ) -> None:
        merged = self.store.add(sample)
        self.optimizer.add_observation(merged.config, merged.latency, merged.energy)
        # Feed the guardian the accurately-timed per-job latencies: the
        # x_max estimate anchors Eqn. 2 and must not inherit the power
        # sensor's window error.
        if sample.config == self._x_max:
            if self.guardian.t_xmax <= 0:
                self.guardian.update_t_xmax(sample.latency)
            for result in results:
                self.guardian.observe_xmax_job(result.latency)
        else:
            for result in results:
                self.guardian.observe_job_latency(result.latency)
        record.explored.append(sample.config)

    def _drain_at_x_max(
        self, budget: RoundBudget, record: RoundRecord, on_job: Optional[JobCallback]
    ) -> None:
        """Guardian fallback: run every remaining job at ``x_max``."""
        self.device.set_configuration(self._x_max)
        while not budget.finished:
            result = self._run_one_job(budget, on_job)
            self.guardian.observe_xmax_job(result.latency)

    # -- exploitation ----------------------------------------------------------

    def _execute_best_profile(
        self, budget: RoundBudget, record: RoundRecord, on_job: Optional[JobCallback]
    ) -> None:
        """Plan and execute the energy-minimal schedule for remaining jobs."""
        if budget.time_remaining <= 0:
            # Already past the deadline (only reachable with the guardian
            # disabled): sprint to limit the damage; the miss is recorded.
            self._drain_at_x_max(budget, record, on_job)
            return
        try:
            schedule = self.planner.plan(
                self.store, budget.jobs_remaining, budget.time_remaining
            )
        except InfeasibleError:
            # Not even the fastest observed pace fits: sprint at x_max and
            # accept what happens (with the guardian active this is
            # unreachable except under extreme deadline settings).
            record.guardian_triggered = True
            self._drain_at_x_max(budget, record, on_job)
            return
        self._execute_schedule(schedule, budget, record, on_job)

    def _execute_schedule(
        self,
        schedule: Schedule,
        budget: RoundBudget,
        record: RoundRecord,
        on_job: Optional[JobCallback],
    ) -> None:
        """Run a schedule fastest-entries-first with a drift monitor."""
        remaining_expected = schedule.expected_latency
        for entry in schedule:
            self.device.set_configuration(entry.config)
            expected_job = self.store.get(entry.config).latency
            for _ in range(entry.jobs):
                if budget.finished:
                    return
                # Drift monitor: sprint at x_max if (a) the remaining plan no
                # longer fits, or (b) running one more planned job would make
                # the round uncatchable even at x_max — the same invariant
                # the exploration guardian maintains (Eqn. 2).
                plan_unfit = remaining_expected > budget.time_remaining
                uncatchable = (
                    budget.time_remaining - expected_job
                    < (budget.jobs_remaining - 1) * self.guardian.padded_t_xmax
                )
                if (
                    self.guardian.enabled
                    and (plan_unfit or uncatchable)
                    and entry.config != self._x_max
                ):
                    record.guardian_triggered = True
                    self._drain_at_x_max(budget, record, on_job)
                    return
                result = self._run_one_job(budget, on_job)
                if entry.config == self._x_max:
                    self.guardian.observe_xmax_job(result.latency)
                else:
                    self.guardian.observe_job_latency(result.latency)
                record.exploited_jobs += 1
                remaining_expected -= expected_job
                # Drift detector: EWMA of the relative gap between planned
                # and realized job latency.
                deviation = abs(result.latency / expected_job - 1.0)
                self._drift_ewma = (
                    (1 - self.config.drift_smoothing) * self._drift_ewma
                    + self.config.drift_smoothing * deviation
                )
        # Rounding or drift may leave a few unplanned jobs; finish them at
        # the fastest observed configuration.  These results must reach the
        # guardian exactly like planned jobs do: leftovers appear on the
        # noisy rounds, which is when the T(x_max) running mean and the
        # worst-job reserve most need fresh samples.
        if not budget.finished:
            fastest = self.store.fastest().config
            self.device.set_configuration(fastest)
            while not budget.finished:
                result = self._run_one_job(budget, on_job)
                if fastest == self._x_max:
                    self.guardian.observe_xmax_job(result.latency)
                else:
                    self.guardian.observe_job_latency(result.latency)
                record.exploited_jobs += 1

    def _run_exploitation_round(
        self, budget: RoundBudget, record: RoundRecord, on_job: Optional[JobCallback]
    ) -> None:
        self._execute_best_profile(budget, record, on_job)

    # -- MBO engine -------------------------------------------------------------

    def _suggestion_batch_size(self) -> int:
        """``K = T_avg / tau`` capped at the configured maximum (§4.3)."""
        if self._phase1_durations:
            t_avg = float(np.mean(self._phase1_durations))
        else:
            t_avg = self.config.tau * self.config.max_batch_size
        k = int(round(t_avg / self.config.tau))
        return max(1, min(k, self.config.max_batch_size))

    def _run_mbo_engine(self) -> MBOReport:
        """Fit the surrogates and produce the next suggestion batch.

        Runs in the configuration/reporting window (Fig. 1): costs energy
        (and wall time on the board) but never delays training jobs.
        """
        batch_size = self._suggestion_batch_size()
        if self.config.mbo_enabled:
            self.optimizer.fit()
            suggestions = self.optimizer.suggest(batch_size)
        else:
            # Acquisition ablation: random unexplored configurations.
            suggestions = uniform_configurations(
                self.device.space,
                batch_size,
                self._rng,
                exclude=self.store.configurations,
            )
        self._pending_suggestions = deque(suggestions)
        if self.mbo_cost is not None:
            latency, energy = self.mbo_cost(len(self.store), batch_size)
        else:
            latency, energy = 0.0, 0.0
        return MBOReport(
            latency=latency,
            energy=energy,
            n_observations=len(self.store),
            batch_size=batch_size,
            suggestions=tuple(suggestions),
        )

    # -- phase transitions ---------------------------------------------------------

    def _advance_phase(self, round_index: int, budget: RoundBudget) -> None:
        if self.phase is Phase.RANDOM_EXPLORATION and not self._exploration_queue:
            self._transition(round_index, Phase.PARETO_CONSTRUCTION)
            self.optimizer.freeze_reference()
            return
        if self.phase is Phase.PARETO_CONSTRUCTION:
            self.stopping.record_hypervolume(self.optimizer.hypervolume())
            if self.stopping.should_stop(len(self.store)):
                self._transition(round_index, Phase.EXPLOITATION)
            return
        if (
            self.phase is Phase.EXPLOITATION
            and self.config.drift_reexploration
            and self._drift_ewma > self.config.drift_threshold
        ):
            self._restart_exploration(round_index)

    def _restart_exploration(self, round_index: int) -> None:
        """Drift adaptation: drop the stale model, re-run the exploration.

        The observed performance surfaces no longer predict reality (e.g.
        the board heated up and throttles), so the store, optimizer and
        stopping rule are rebuilt and a fresh phase-1 queue is drawn.  The
        guardian is kept — its ``T(x_max)`` running mean adapts on its own
        and its worst-case reserve must stay conservative across episodes.
        """
        self.restarts += 1
        self._drift_ewma = 0.0
        episode_seed = self.config.seed + 1000 * self.restarts
        space = self.device.space
        self.store = ObservationStore()
        self.optimizer = MultiObjectiveBayesianOptimizer(
            space,
            seed=episode_seed,
            fit_restarts=self.config.fit_restarts,
            warm_start=self.config.warm_start_fits,
        )
        self.stopping = StoppingCondition(
            self.config.min_explored(len(space)),
            self.config.hv_improvement_threshold,
        )
        starting_points = sobol_configurations(
            space,
            self.config.initial_samples(len(space)),
            seed=episode_seed,
            exclude=[self._x_max],
        )
        self._exploration_queue = deque([self._x_max] + starting_points)
        self._pending_suggestions = deque()
        self._phase1_durations = []
        self._transition(round_index, Phase.RANDOM_EXPLORATION)

    def _transition(self, round_index: int, to_phase: Phase) -> None:
        transition = PhaseTransition(
            round_index=round_index, from_phase=self.phase, to_phase=to_phase
        )
        self.transitions.append(transition)
        if obs.enabled():
            obs.emit(
                "controller.phase_transition",
                t=self.device.clock.now,
                round=round_index,
                from_phase=self.phase.value,
                to_phase=to_phase.value,
                restart=transition.is_restart,
            )
        self.phase = to_phase
