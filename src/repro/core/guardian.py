"""The deadline-guardian check (Eqn. 2).

Before exploring an unknown configuration ``x``, BoFL verifies that even if
the whole measurement window is wasted, the remaining jobs can still finish
at the guardian configuration ``x_max``:

    ``T_remain - tau >= W_remain * T(x_max)``      (Eqn. 2)

If the check fails, exploration stops for the round and every remaining job
runs at ``x_max``.

Three robustness refinements over the literal formula (all conservative):

* the reserved window is ``tau`` plus the slowest per-job latency seen so
  far, because a window can only be closed on a job boundary — the last
  job may overshoot ``tau``;
* ``T(x_max)`` is a running mean over *accurate per-job timings* (CUDA
  event granularity) whenever such jobs are available, because the initial
  power-sensor-window estimate can carry several percent of error on short
  windows;
* the estimate is padded by ``safety_pad`` (default 3 %) so that process
  noise on the fallback sprint cannot turn a passed check into a miss.
"""

from __future__ import annotations

from repro.obs import runtime as obs
from repro.types import RoundBudget, Seconds, require_fraction, require_positive


class DeadlineGuardian:
    """Stateful Eqn. 2 checker bound to one controller."""

    #: Cap on the running-mean sample count so the estimate stays adaptive
    #: to slow drift (thermal throttling on a real board).
    MEAN_WINDOW = 500

    def __init__(self, tau: Seconds, enabled: bool = True, safety_pad: float = 0.03) -> None:
        self.tau = require_positive("tau", tau)
        self.enabled = enabled
        self.safety_pad = require_fraction("safety_pad", safety_pad)
        self._t_xmax_mean: Seconds = 0.0
        self._t_xmax_count: int = 0
        self._worst_job_latency: Seconds = 0.0
        self.trigger_count = 0

    @property
    def t_xmax(self) -> Seconds:
        """Current estimate of the per-job latency at ``x_max``."""
        return self._t_xmax_mean

    @property
    def padded_t_xmax(self) -> Seconds:
        """The safety-padded estimate the checks actually use."""
        return self._t_xmax_mean * (1.0 + self.safety_pad)

    def update_t_xmax(self, latency: Seconds) -> None:
        """Seed the ``T(x_max)`` estimate from a measurement-window sample.

        Only used until accurate per-job timings arrive: window samples go
        through the power-sensor noise path and are strictly less reliable
        than :meth:`observe_xmax_job` inputs.
        """
        require_positive("T(x_max)", latency)
        if self._t_xmax_count == 0:
            self._t_xmax_mean = latency
            self._t_xmax_count = 1
        self.observe_job_latency(latency)

    def observe_xmax_job(self, latency: Seconds) -> None:
        """Fold one accurately-timed ``x_max`` job into the running mean."""
        require_positive("x_max job latency", latency)
        count = min(self._t_xmax_count, self.MEAN_WINDOW)
        self._t_xmax_mean = (self._t_xmax_mean * count + latency) / (count + 1)
        self._t_xmax_count = count + 1
        self.observe_job_latency(latency)

    def observe_job_latency(self, latency: Seconds) -> None:
        """Track the slowest job seen (sets the window-overshoot reserve)."""
        if latency > self._worst_job_latency:
            self._worst_job_latency = latency

    @property
    def reserve(self) -> Seconds:
        """Time set aside for one measurement window (tau + overshoot)."""
        return self.tau + self._worst_job_latency

    def allows_exploration(self, budget: RoundBudget) -> bool:
        """Eqn. 2: may one more measurement window start safely?

        With the guardian disabled (ablation mode) this always permits
        exploration — the behaviour SmartPC-style controllers exhibit when
        they trust their model blindly.
        """
        if not self.enabled:
            return True
        if self._t_xmax_count == 0:
            # T(x_max) unknown: only the very first x_max measurement is
            # allowed, and the caller performs exactly that.
            return True
        margin = (
            budget.time_remaining
            - self.reserve
            - budget.jobs_remaining * self.padded_t_xmax
        )
        ok = margin >= 0
        if not ok:
            self.trigger_count += 1
        if obs.enabled():
            obs.emit(
                "guardian.decision",
                t=budget.elapsed,
                allowed=ok,
                margin=margin,
                time_remaining=budget.time_remaining,
                jobs_remaining=budget.jobs_remaining,
                reserve=self.reserve,
                padded_t_xmax=self.padded_t_xmax,
            )
            obs.count("guardian.checks")
            if not ok:
                obs.count("guardian.rejections")
            obs.observe("guardian.margin_s", margin)
        return ok
