"""Workload assignment for configuration measurement (§4.2).

"A transient workload ... will lead to the execution being finished before
the hardware voltage gets stable, and will generate large energy
measurement error.  Contrarily, a heavy workload prolongs exploration":
BoFL therefore keeps assigning jobs to a configuration until it has run
for at least ``tau`` seconds, then moves on.
"""

from __future__ import annotations

from typing import Optional

from repro.core.base import JobCallback
from repro.hardware.device import SimulatedDevice
from repro.types import (
    DvfsConfiguration,
    JobResult,
    PerformanceSample,
    RoundBudget,
    require_positive,
)


class MeasurementPolicy:
    """Runs tau-second measurement windows against the round budget."""

    def __init__(self, tau: float) -> None:
        self.tau = require_positive("tau", tau)

    def measure(
        self,
        device: SimulatedDevice,
        config: DvfsConfiguration,
        budget: RoundBudget,
        on_job: Optional[JobCallback] = None,
    ) -> tuple[PerformanceSample, tuple[JobResult, ...]]:
        """Measure ``config`` for >= tau seconds (or until jobs run out).

        Every job executed inside the window is a real training job: it is
        charged to ``budget`` and triggers ``on_job``.  Returns the noisy
        energy-meter sample plus the individual job results — the latter
        carry *accurately timed* latencies (event-recording granularity)
        that the deadline guardian feeds on.
        """
        device.set_configuration(config)
        device.open_measurement()
        results: list[JobResult] = []
        while device.meter.window_duration < self.tau and not budget.finished:
            result = device.run_job()
            budget.record_job(result)
            results.append(result)
            if on_job is not None:
                on_job()
        if not results:
            # The budget was already exhausted; close cleanly with no job
            # executed — callers check budget.finished before calling, so
            # reaching this point is a bug.
            device.meter.abort()
            raise RuntimeError("measure() called with no jobs remaining in the budget")
        sample = device.close_measurement()
        return sample, tuple(results)
