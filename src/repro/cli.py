"""Command-line interface: ``python -m repro <command>``.

Three subcommands:

* ``list`` — enumerate the reproducible paper artifacts;
* ``run <experiment>`` — regenerate one table/figure and print its rows
  (e.g. ``python -m repro run fig12 --rounds 40``);
* ``campaign`` — run a single controller campaign and print its summary
  (e.g. ``python -m repro campaign --controller bofl --task lstm``).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro._version import __version__
from repro.analysis.tables import render_kv
from repro.experiments import EXPERIMENTS, get_experiment
from repro.sim.runner import CONTROLLER_NAMES, run_campaign


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree for the ``repro`` CLI."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="BoFL reproduction (Middleware '22): regenerate paper artifacts.",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("list", help="list reproducible artifacts")

    run = commands.add_parser("run", help="regenerate one table/figure")
    run.add_argument("experiment", help="artifact id, e.g. fig9 or tab3")
    run.add_argument("--rounds", type=int, default=None, help="override round count")
    run.add_argument("--ratio", type=float, default=None, help="override T_max/T_min")
    run.add_argument("--seed", type=int, default=0)

    campaign = commands.add_parser("campaign", help="run one controller campaign")
    campaign.add_argument("--device", default="agx", choices=("agx", "tx2"))
    campaign.add_argument("--task", default="vit", choices=("vit", "resnet50", "lstm"))
    campaign.add_argument("--controller", default="bofl", choices=CONTROLLER_NAMES)
    campaign.add_argument("--ratio", type=float, default=2.0)
    campaign.add_argument("--rounds", type=int, default=40)
    campaign.add_argument("--seed", type=int, default=0)
    return parser


def _cmd_list() -> str:
    lines = ["Reproducible artifacts:"]
    for experiment_id in sorted(EXPERIMENTS):
        lines.append(f"  {experiment_id:16s} {EXPERIMENTS[experiment_id].description}")
    return "\n".join(lines)


def _cmd_run(args: argparse.Namespace) -> str:
    experiment = get_experiment(args.experiment)
    kwargs = {}
    if args.rounds is not None:
        kwargs["rounds"] = args.rounds
    if args.ratio is not None:
        kwargs["ratio"] = args.ratio
    if args.seed:
        kwargs["seed"] = args.seed
    payload = experiment.run(**kwargs)
    return experiment.render(payload)


def _cmd_campaign(args: argparse.Namespace) -> str:
    result = run_campaign(
        args.device,
        args.task,
        args.controller,
        args.ratio,
        rounds=args.rounds,
        seed=args.seed,
    )
    pairs = [
        ("controller", result.controller),
        ("device / task", f"{result.device} / {result.task}"),
        ("rounds", result.rounds),
        ("deadline ratio", result.deadline_ratio),
        ("training energy (J)", result.training_energy),
        ("MBO energy (J)", result.mbo_energy),
        ("missed rounds", result.missed_rounds),
        ("configs explored", result.explored_total),
    ]
    return render_kv(pairs, title="Campaign summary")


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    try:
        if args.command == "list":
            print(_cmd_list())
        elif args.command == "run":
            print(_cmd_run(args))
        elif args.command == "campaign":
            print(_cmd_campaign(args))
    except Exception as error:  # surface library errors as clean CLI errors
        print(f"error: {error}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
