"""Command-line interface: ``python -m repro <command>``.

Twelve subcommands:

* ``list`` — enumerate the reproducible paper artifacts;
* ``run <experiment>`` — regenerate one table/figure and print its rows
  (e.g. ``python -m repro run fig12 --rounds 40 --workers 8``);
* ``campaign`` — run a single controller campaign and print its summary
  (e.g. ``python -m repro campaign --controller bofl --task lstm``);
* ``sweep`` — run a multi-seed campaign sweep, optionally in parallel
  (e.g. ``python -m repro sweep --task vit --seeds 0 1 2 3 --workers 4``);
* ``chaos run|report`` — fault-injection campaigns: run a faulted
  campaign next to its fault-free twin and report resilience metrics, or
  summarize a recorded chaos trace (``docs/fault_injection.md``);
* ``fleet run|report`` — fleet-scale federation: prepare a heterogeneous
  client population (traces shard over ``--workers``) and compose it
  under sync / semi-sync / async aggregation, or summarize a recorded
  fleet trace (``docs/async_federation.md``);
* ``servertune run|report`` — server-side co-optimization: run a
  population-based search over adaptive global-knob controllers against
  a fleet workload and print the (energy, latency) frontier, or render a
  recorded frontier artifact (``docs/server_cooptimization.md``);
* ``serve`` — answer a JSONL stream of pace-decision requests through
  the long-running decision service and print the canonical decision log
  (``docs/pace_decision_service.md``);
* ``loadtest`` — replay a deterministic fleet trace as decision traffic
  and report p50/p99 latency, throughput, cache hit rate and coalescing
  (e.g. ``python -m repro loadtest --clients 60 --passes 2``);
* ``cache`` — inspect or clear the persistent campaign result cache;
* ``trace`` — replay a recorded observability trace (``campaign
  --trace out.jsonl`` records one) as a summary or as the trace-derived
  Table 3 / Fig. 13 views;
* ``lint`` — run the determinism-aware static-analysis rules over the
  source tree (``docs/static_analysis.md``); exits non-zero on
  violations, ``--format json`` is the stable CI interface;
* ``analyze`` — the whole-program companion to ``lint``: an
  interprocedural call-graph pass proving cross-module determinism
  contracts (taint, key completeness, registry closure, process-boundary
  safety), with SARIF output and a committed-baseline ratchet.

``--workers N`` fans campaign grids out over worker processes through
:class:`repro.sim.CampaignExecutor`; results are identical to the serial
path.  ``--cache-dir`` (or ``$REPRO_CACHE_DIR``) enables the durable
on-disk result cache so repeated invocations skip recomputation.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
from typing import Optional

from repro import obs
from repro._version import __version__
from repro.analysis.tables import render_kv
from repro.errors import ConfigurationError
from repro.experiments import EXPERIMENTS, get_experiment, warm_experiment_cache
from repro.federated.async_engine import (
    FLEET_DETAILS,
    FLEET_ENGINES,
    FLEET_MODES,
)
from repro.sim import (
    CHAOS_PRESETS,
    FLEET_SELECTORS,
    CampaignExecutor,
    FleetSpec,
    PersistentCampaignCache,
    chaos_report_from_trace,
    compose_fleet,
    fleet_summary,
    install_persistent_cache,
    prepare_fleet,
    render_fleet_summary,
    run_campaign,
    run_chaos,
    sweep_campaign,
)
from repro.service import (
    DecisionRequest,
    PaceDecisionService,
    ServiceConfig,
    run_loadtest,
    service_report_from_trace,
)
from repro.sim.fleet import fleet_report_from_trace
from repro.sim.executor import CampaignTiming, ProgressCallback
from repro.sim.runner import CONTROLLER_NAMES

#: Views ``repro trace`` can render from a JSONL event trace.
TRACE_VIEWS = ("summary", "tab3", "fig13")


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree for the ``repro`` CLI."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="BoFL reproduction (Middleware '22): regenerate paper artifacts.",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("list", help="list reproducible artifacts")

    run = commands.add_parser("run", help="regenerate one table/figure")
    run.add_argument("experiment", help="artifact id, e.g. fig9 or tab3")
    run.add_argument("--rounds", type=int, default=None, help="override round count")
    run.add_argument("--ratio", type=float, default=None, help="override T_max/T_min")
    run.add_argument("--seed", type=int, default=0)
    _add_parallel_options(run)

    campaign = commands.add_parser("campaign", help="run one controller campaign")
    campaign.add_argument("--device", default="agx", choices=("agx", "tx2"))
    campaign.add_argument("--task", default="vit", choices=("vit", "resnet50", "lstm"))
    campaign.add_argument("--controller", default="bofl", choices=CONTROLLER_NAMES)
    campaign.add_argument("--ratio", type=float, default=2.0)
    campaign.add_argument("--rounds", type=int, default=40)
    campaign.add_argument("--seed", type=int, default=0)
    campaign.add_argument(
        "--cache-dir", default=None, help="persistent result cache directory"
    )
    campaign.add_argument(
        "--trace", default=None, metavar="PATH",
        help="record an observability trace of the campaign to PATH (JSONL); "
        "forces a fresh (uncached) run so the trace is complete",
    )

    sweep = commands.add_parser("sweep", help="multi-seed sweep (BoFL vs baselines)")
    sweep.add_argument("--device", default="agx", choices=("agx", "tx2"))
    sweep.add_argument("--task", default="vit", choices=("vit", "resnet50", "lstm"))
    sweep.add_argument("--ratio", type=float, default=2.0)
    sweep.add_argument("--rounds", type=int, default=40)
    sweep.add_argument(
        "--seeds", type=int, nargs="+", default=[0, 1, 2], metavar="SEED"
    )
    _add_parallel_options(sweep)

    serve = commands.add_parser(
        "serve",
        help="run the pace-decision service over a JSONL request stream "
        "(see docs/pace_decision_service.md)",
    )
    serve.add_argument(
        "file", nargs="?", default=None,
        help="JSONL file of DecisionRequest objects (default: stdin)",
    )
    serve.add_argument(
        "--rate", type=float, default=200.0, metavar="RPS",
        help="simulated arrival rate for the stream (default 200 req/s)",
    )
    _add_service_options(serve)
    serve.add_argument(
        "--trace", default=None, metavar="PATH",
        help="record a deterministic obs trace of the service to PATH (JSONL)",
    )

    loadtest = commands.add_parser(
        "loadtest",
        help="deterministic service load test: replay a fleet trace as "
        "decision traffic and report p50/p99 latency",
    )
    loadtest.add_argument("--clients", type=int, default=60, metavar="N")
    loadtest.add_argument("--rounds", type=int, default=3)
    loadtest.add_argument(
        "--passes", type=int, default=2,
        help="replay the same trace this many times (pass 2+ measures a "
        "warm cache; default 2)",
    )
    loadtest.add_argument("--rate", type=float, default=200.0, metavar="RPS")
    loadtest.add_argument("--ratio", type=float, default=2.0)
    loadtest.add_argument("--seed", type=int, default=0)
    loadtest.add_argument(
        "--archetypes", type=int, default=12, metavar="K",
        help="pool clients onto K archetypes (0 = all distinct)",
    )
    _add_service_options(loadtest)
    loadtest.add_argument(
        "--report", default=None, metavar="PATH",
        help="write the full JSON report to PATH",
    )
    loadtest.add_argument(
        "--decision-log", default=None, metavar="PATH",
        help="write the canonical decision log (byte-stable JSONL) to PATH",
    )
    loadtest.add_argument(
        "--trace", default=None, metavar="PATH",
        help="record a deterministic obs trace of the replay to PATH (JSONL)",
    )
    loadtest.add_argument(
        "--from-trace", default=None, metavar="PATH",
        help="skip the replay: recompute the summary from a recorded trace",
    )

    cache = commands.add_parser("cache", help="persistent result cache maintenance")
    cache.add_argument("action", choices=("stats", "clear"))
    cache.add_argument(
        "--cache-dir", default=None,
        help="cache directory (default: $REPRO_CACHE_DIR or ~/.cache/repro/campaigns)",
    )

    chaos = commands.add_parser(
        "chaos", help="fault-injection campaigns (see docs/fault_injection.md)"
    )
    chaos_commands = chaos.add_subparsers(dest="chaos_command", required=True)
    chaos_run = chaos_commands.add_parser(
        "run", help="run a faulted campaign plus its fault-free twin"
    )
    chaos_run.add_argument("--device", default="agx", choices=("agx", "tx2"))
    chaos_run.add_argument("--task", default="vit", choices=("vit", "resnet50", "lstm"))
    chaos_run.add_argument("--controller", default="bofl", choices=CONTROLLER_NAMES)
    chaos_run.add_argument("--ratio", type=float, default=2.0)
    chaos_run.add_argument("--rounds", type=int, default=20)
    chaos_run.add_argument("--seed", type=int, default=0)
    chaos_run.add_argument(
        "--preset", default="mixed", choices=sorted(CHAOS_PRESETS),
        help="which fault mix to derive the schedule from",
    )
    chaos_run.add_argument(
        "--faults", type=int, default=4, metavar="N",
        help="number of fault windows to inject (default 4)",
    )
    chaos_run.add_argument(
        "--no-recovery", action="store_true",
        help="ablation: disable checkpoints, restores and escalation",
    )
    chaos_run.add_argument(
        "--trace", default=None, metavar="PATH",
        help="record an observability trace to PATH (JSONL); forces a "
        "serial, uncached run so the trace is complete and byte-stable",
    )
    _add_parallel_options(chaos_run)
    chaos_report = chaos_commands.add_parser(
        "report", help="summarize the fault/recovery activity of a trace"
    )
    chaos_report.add_argument("file", help="trace written by chaos run --trace")

    fleet = commands.add_parser(
        "fleet", help="fleet-scale federation runs (see docs/async_federation.md)"
    )
    fleet_commands = fleet.add_subparsers(dest="fleet_command", required=True)
    fleet_run = fleet_commands.add_parser(
        "run", help="prepare and compose one heterogeneous fleet"
    )
    fleet_run.add_argument("--clients", type=int, default=100, metavar="N")
    fleet_run.add_argument("--rounds", type=int, default=10)
    fleet_run.add_argument("--mode", default="sync", choices=FLEET_MODES)
    fleet_run.add_argument("--ratio", type=float, default=2.0)
    fleet_run.add_argument("--seed", type=int, default=0)
    fleet_run.add_argument(
        "--archetypes", type=int, default=12, metavar="K",
        help="pool clients onto K shared trace seeds (0 = all distinct)",
    )
    fleet_run.add_argument(
        "--participants", type=int, default=None, metavar="N",
        help="aggregation target per round (default: everyone)",
    )
    fleet_run.add_argument(
        "--over-selection", type=float, default=1.3,
        help="semisync: select ceil(participants x this) clients",
    )
    fleet_run.add_argument(
        "--buffer", type=int, default=16,
        help="async: reports per buffered aggregation",
    )
    fleet_run.add_argument(
        "--staleness-exponent", type=float, default=0.5,
        help="async: staleness-discount exponent for report weights",
    )
    fleet_run.add_argument(
        "--max-staleness", type=int, default=None, metavar="S",
        help="async: drop reports staler than S model versions",
    )
    fleet_run.add_argument(
        "--selector", default="random", choices=FLEET_SELECTORS,
    )
    fleet_run.add_argument(
        "--controllers", default=None, metavar="A,B",
        help="comma-separated pace-controller mix (default: bofl,performant)",
    )
    fleet_run.add_argument(
        "--chaos", type=float, default=0.0, metavar="FRACTION",
        help="fraction of clients under dropout/stall chaos schedules",
    )
    fleet_run.add_argument(
        "--engine", default="vectorized", choices=FLEET_ENGINES,
        help="composition implementation: the vectorized structured-array "
        "engine (default) or the retained legacy per-event loop",
    )
    fleet_run.add_argument(
        "--detail", default="reports", choices=FLEET_DETAILS,
        help="result granularity: per-report objects (default) or "
        "O(rounds)-memory per-round stats for 100k+ fleets",
    )
    fleet_run.add_argument(
        "--edges", type=int, default=None, metavar="E",
        help="hierarchical aggregation through E edge aggregators "
        "(server folds E partials instead of every client)",
    )
    fleet_run.add_argument(
        "--compose-shards", type=int, default=None, metavar="K",
        help="shard the composition's trace-column build over K threads "
        "(byte-identical to serial)",
    )
    fleet_run.add_argument(
        "--trace", default=None, metavar="PATH",
        help="record a deterministic obs trace of the composition to PATH; "
        "a .jsonl suffix writes row-per-event JSON Lines (byte-identical "
        "for any --workers value), anything else streams the bounded-"
        "memory columnar format",
    )
    _add_parallel_options(fleet_run)
    fleet_report = fleet_commands.add_parser(
        "report", help="summarize the fleet activity of a recorded trace"
    )
    fleet_report.add_argument("file", help="trace written by fleet run --trace")

    servertune = commands.add_parser(
        "servertune",
        help="server co-optimization: PBT over adaptive global-knob "
        "controllers (see docs/server_cooptimization.md)",
    )
    servertune_commands = servertune.add_subparsers(
        dest="servertune_command", required=True
    )
    servertune_run = servertune_commands.add_parser(
        "run", help="run a PBT campaign over one fleet workload"
    )
    servertune_run.add_argument("--clients", type=int, default=24, metavar="N")
    servertune_run.add_argument("--rounds", type=int, default=6)
    servertune_run.add_argument("--mode", default="sync", choices=FLEET_MODES)
    servertune_run.add_argument("--ratio", type=float, default=2.0)
    servertune_run.add_argument("--seed", type=int, default=0)
    servertune_run.add_argument(
        "--archetypes", type=int, default=8, metavar="K",
        help="pool clients onto K shared trace seeds (0 = all distinct)",
    )
    servertune_run.add_argument(
        "--participants", type=int, default=None, metavar="N",
        help="aggregation target per round (default: everyone)",
    )
    servertune_run.add_argument(
        "--population", type=int, default=8, metavar="P",
        help="PBT population size",
    )
    servertune_run.add_argument(
        "--generations", type=int, default=3, metavar="G",
        help="PBT generations",
    )
    servertune_run.add_argument(
        "--pbt-seed", type=int, default=0,
        help="seed addressing every PBT init/exploit/explore draw",
    )
    servertune_run.add_argument(
        "--controllers", default=None, metavar="A,B",
        help="comma-separated adaptive controller mix (default: fedgpo,fedtune)",
    )
    servertune_run.add_argument("--alpha-energy", type=float, default=0.5)
    servertune_run.add_argument("--alpha-time", type=float, default=0.5)
    servertune_run.add_argument(
        "--state", default=None, metavar="PATH",
        help="resume-state JSON: read before the run when it exists, "
        "rewritten after (deterministic resume)",
    )
    servertune_run.add_argument(
        "--frontier", default=None, metavar="PATH",
        help="write the frontier artifact (JSON) to PATH",
    )
    servertune_run.add_argument(
        "--trace", default=None, metavar="PATH",
        help="record a deterministic obs trace of the PBT run to PATH "
        "(JSONL); the trace is byte-identical for any --workers value",
    )
    _add_parallel_options(servertune_run)
    servertune_report = servertune_commands.add_parser(
        "report", help="summarize a frontier artifact JSON"
    )
    servertune_report.add_argument(
        "file", help="artifact written by servertune run --frontier"
    )

    trace = commands.add_parser(
        "trace", help="replay a recorded observability trace (JSONL)"
    )
    trace.add_argument("file", help="trace file written by campaign --trace")
    trace.add_argument(
        "--view", default="summary", choices=TRACE_VIEWS,
        help="what to render: an activity summary, or the trace-derived "
        "Table 3 / Fig. 13 artifacts",
    )

    lint = commands.add_parser(
        "lint", help="determinism-aware static analysis (see docs/static_analysis.md)"
    )
    lint.add_argument(
        "paths", nargs="*", default=None, metavar="PATH",
        help="files or directories to check (default: the src/ tree)",
    )
    lint.add_argument(
        "--format", default="human", choices=("human", "json"),
        help="report format (json is the stable CI interface)",
    )
    lint.add_argument(
        "--select", default=None, metavar="RULE[,RULE...]",
        help="run only these rule ids (default: every registered rule)",
    )
    lint.add_argument(
        "--root", default=None, metavar="DIR",
        help="repo root anchoring rule scopes (default: discovered from "
        "the first path's ancestors via pyproject.toml)",
    )
    lint.add_argument(
        "--list-rules", action="store_true",
        help="print the rule registry (id, scope, rationale) and exit",
    )

    analyze = commands.add_parser(
        "analyze",
        help="whole-program determinism analysis: interprocedural taint, "
        "key completeness, registry closure, process-boundary safety",
    )
    analyze.add_argument(
        "paths", nargs="*", default=None, metavar="PATH",
        help="files or directories to analyze (default: the src/ tree)",
    )
    analyze.add_argument(
        "--format", default="human", choices=("human", "json", "sarif"),
        help="report format (json/sarif are the stable CI interfaces)",
    )
    analyze.add_argument(
        "--root", default=None, metavar="DIR",
        help="repo root anchoring relative paths (default: discovered from "
        "the first path's ancestors via pyproject.toml)",
    )
    analyze.add_argument(
        "--sarif", default=None, metavar="FILE",
        help="additionally write the SARIF report to FILE",
    )
    analyze.add_argument(
        "--baseline", default=None, metavar="FILE",
        help="baseline file for --ratchet/--write-baseline "
        "(default: <root>/analysis-baseline.json)",
    )
    analyze.add_argument(
        "--ratchet", action="store_true",
        help="fail only on findings absent from the committed baseline",
    )
    analyze.add_argument(
        "--write-baseline", action="store_true",
        help="regenerate the baseline from this run's findings and exit 0",
    )
    analyze.add_argument(
        "--list-checkers", action="store_true",
        help="print the checker registry (id, contract) and exit",
    )
    return parser


def _add_service_options(subparser: argparse.ArgumentParser) -> None:
    subparser.add_argument(
        "--timeout", type=float, default=0.25, metavar="S",
        help="simulated decision deadline before the degraded path answers "
        "(default 0.25 s)",
    )
    subparser.add_argument(
        "--max-queue", type=int, default=256, metavar="N",
        help="bounded request queue depth (default 256)",
    )
    subparser.add_argument(
        "--cache-entries", type=int, default=2048, metavar="N",
        help="decision cache capacity (default 2048)",
    )


def _add_parallel_options(subparser: argparse.ArgumentParser) -> None:
    subparser.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="worker processes for campaign grids (default 1 = serial; "
        "0 = all cores)",
    )
    subparser.add_argument(
        "--cache-dir", default=None, help="persistent result cache directory"
    )
    subparser.add_argument(
        "--progress", action="store_true",
        help="print per-campaign timing records to stderr",
    )


def _setup_persistence(args: argparse.Namespace) -> None:
    """Install the durable cache when a directory was requested."""
    cache_dir = getattr(args, "cache_dir", None)
    if cache_dir:
        install_persistent_cache(PersistentCampaignCache(cache_dir))


def _progress_printer(enabled: bool) -> Optional[ProgressCallback]:
    if not enabled:
        return None

    def _print(done: int, total: int, timing: CampaignTiming) -> None:
        print(f"[{done}/{total}] {timing.render()}", file=sys.stderr)

    return _print


def _normalize_workers(workers: int) -> Optional[int]:
    """CLI convention: 0 means "all cores" (executor's ``None``)."""
    return None if workers == 0 else workers


def _cmd_list() -> str:
    lines = ["Reproducible artifacts:"]
    for experiment_id in sorted(EXPERIMENTS):
        experiment = EXPERIMENTS[experiment_id]
        parallel = " [parallelizable]" if experiment.grid is not None else ""
        lines.append(f"  {experiment_id:16s} {experiment.description}{parallel}")
    return "\n".join(lines)


def _cmd_run(args: argparse.Namespace) -> str:
    experiment = get_experiment(args.experiment)
    kwargs = {}
    if args.rounds is not None:
        kwargs["rounds"] = args.rounds
    if args.ratio is not None:
        kwargs["ratio"] = args.ratio
    if args.seed:
        kwargs["seed"] = args.seed
    workers = _normalize_workers(args.workers)
    if workers is None or workers > 1:
        warm_experiment_cache(
            args.experiment,
            workers=workers,
            progress=_progress_printer(args.progress),
            **kwargs,
        )
    payload = experiment.run(**kwargs)
    return experiment.render(payload)


def _cmd_campaign(args: argparse.Namespace) -> str:
    if args.trace:
        # A cached result would leave the trace empty; always recompute.
        with obs.session() as session:
            result = run_campaign(
                args.device,
                args.task,
                args.controller,
                args.ratio,
                rounds=args.rounds,
                seed=args.seed,
                use_cache=False,
            )
        trace_path = session.log.dump_jsonl(args.trace)
        print(f"trace: {session.log.emitted} events -> {trace_path}", file=sys.stderr)
    else:
        result = run_campaign(
            args.device,
            args.task,
            args.controller,
            args.ratio,
            rounds=args.rounds,
            seed=args.seed,
        )
    pairs = [
        ("controller", result.controller),
        ("device / task", f"{result.device} / {result.task}"),
        ("rounds", result.rounds),
        ("deadline ratio", result.deadline_ratio),
        ("training energy (J)", result.training_energy),
        ("MBO energy (J)", result.mbo_energy),
        ("missed rounds", result.missed_rounds),
        ("configs explored", result.explored_total),
    ]
    return render_kv(pairs, title="Campaign summary")


def _cmd_sweep(args: argparse.Namespace) -> str:
    workers = _normalize_workers(args.workers)
    executor = CampaignExecutor(
        workers=workers, progress=_progress_printer(args.progress)
    )
    result = sweep_campaign(
        args.device,
        args.task,
        args.ratio,
        rounds=args.rounds,
        seeds=tuple(args.seeds),
        executor=executor,
    )
    pairs = [
        ("device / task", f"{result.device} / {result.task}"),
        ("deadline ratio", result.deadline_ratio),
        ("rounds x seeds", f"{result.rounds} x {len(result.seeds)}"),
        ("seeds", ", ".join(str(s) for s in result.seeds)),
        ("improvement vs Performant", str(result.improvement)),
        ("regret vs Oracle", str(result.regret)),
        ("missed rounds (BoFL, total)", result.missed_total),
        ("workers", executor.workers),
    ]
    return render_kv(pairs, title="Sweep summary")


def _service_config(args: argparse.Namespace) -> ServiceConfig:
    return ServiceConfig(
        max_queue=args.max_queue,
        timeout=args.timeout,
        cache_entries=args.cache_entries,
    )


def _cmd_serve(args: argparse.Namespace) -> str:
    """Answer a JSONL request stream; the decision log goes to stdout."""
    import json as _json

    if args.file:
        lines = pathlib.Path(args.file).read_text().splitlines()
    else:
        lines = sys.stdin.read().splitlines()
    requests = []
    for lineno, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            requests.append(DecisionRequest.from_dict(_json.loads(line)))
        except Exception as error:
            raise ConfigurationError(f"request line {lineno}: {error}") from error
    if not requests:
        raise ConfigurationError("the request stream is empty")

    def _replay() -> PaceDecisionService:
        service = PaceDecisionService(_service_config(args))
        for index, request in enumerate(requests):
            service.submit(request, at=index / args.rate)
        service.close()
        return service

    if args.trace:
        with obs.session(deterministic=True) as session:
            service = _replay()
        trace_path = session.log.dump_jsonl(args.trace)
        print(f"trace: {session.log.emitted} events -> {trace_path}", file=sys.stderr)
    else:
        service = _replay()
    stats = service.stats()
    print(
        f"served {stats.decisions} decision(s): "
        f"{stats.evaluations} evaluation(s), "
        f"hit rate {stats.cache_hit_rate:.1%}, "
        f"{stats.coalesced} coalesced, "
        f"{stats.timeouts + stats.rejections} degraded",
        file=sys.stderr,
    )
    return "\n".join(d.log_line() for d in service.decisions)


def _cmd_loadtest(args: argparse.Namespace) -> str:
    if args.from_trace:
        return service_report_from_trace(args.from_trace)
    spec = FleetSpec(
        n_clients=args.clients,
        rounds=args.rounds,
        deadline_ratio=args.ratio,
        seed=args.seed,
        archetypes=args.archetypes if args.archetypes else None,
    )
    config = _service_config(args)
    if args.trace:
        with obs.session(deterministic=True) as session:
            report = run_loadtest(
                spec, rate=args.rate, passes=args.passes, config=config
            )
        trace_path = session.log.dump_jsonl(args.trace)
        print(f"trace: {session.log.emitted} events -> {trace_path}", file=sys.stderr)
    else:
        with obs.session():
            report = run_loadtest(
                spec, rate=args.rate, passes=args.passes, config=config
            )
    if args.report:
        path = report.write_json(args.report)
        print(f"report: {path}", file=sys.stderr)
    if args.decision_log:
        path = report.write_decision_log(args.decision_log)
        print(f"decision log: {len(report.decisions)} line(s) -> {path}",
              file=sys.stderr)
    return report.render()


def _cmd_cache(args: argparse.Namespace) -> str:
    cache = PersistentCampaignCache(args.cache_dir)
    if args.action == "clear":
        removed = cache.clear()
        return f"removed {removed} cached campaign(s) from {cache.directory}"
    return cache.stats().render()


def _cmd_chaos(args: argparse.Namespace) -> str:
    if args.chaos_command == "report":
        return chaos_report_from_trace(args.file)
    recovery = not args.no_recovery
    if args.trace:
        # Tracing forces a serial, uncached, deterministic-capture run:
        # cached cells would leave the trace empty, and wall-clock payload
        # fields would break byte-for-byte trace stability.
        with obs.session(deterministic=True) as session:
            result = run_chaos(
                args.device,
                args.task,
                args.controller,
                args.ratio,
                rounds=args.rounds,
                seed=args.seed,
                preset=args.preset,
                n_faults=args.faults,
                recovery=recovery,
                use_cache=False,
            )
        trace_path = session.log.dump_jsonl(args.trace)
        print(f"trace: {session.log.emitted} events -> {trace_path}", file=sys.stderr)
    else:
        executor = CampaignExecutor(
            workers=_normalize_workers(args.workers),
            progress=_progress_printer(args.progress),
        )
        result = run_chaos(
            args.device,
            args.task,
            args.controller,
            args.ratio,
            rounds=args.rounds,
            seed=args.seed,
            preset=args.preset,
            n_faults=args.faults,
            recovery=recovery,
            executor=executor,
        )
    return result.render()


def _cmd_fleet(args: argparse.Namespace) -> str:
    if args.fleet_command == "report":
        return fleet_report_from_trace(args.file)
    extra: dict = {}
    if args.controllers:
        extra["controllers"] = tuple(args.controllers.split(","))
    spec = FleetSpec(
        n_clients=args.clients,
        rounds=args.rounds,
        mode=args.mode,
        deadline_ratio=args.ratio,
        seed=args.seed,
        archetypes=args.archetypes if args.archetypes else None,
        participants=args.participants,
        over_selection=args.over_selection,
        buffer_size=args.buffer,
        staleness_exponent=args.staleness_exponent,
        max_staleness=args.max_staleness,
        selector=args.selector,
        chaos_fraction=args.chaos,
        edges=args.edges,
        **extra,
    )
    compose_kwargs = dict(
        engine=args.engine, detail=args.detail, shards=args.compose_shards
    )
    # Trace gathering may shard over workers and hit caches; the
    # composition below is serial and pure, so the deterministic trace
    # captured around it is byte-identical regardless of --workers.
    clients = prepare_fleet(
        spec,
        workers=_normalize_workers(args.workers),
        progress=_progress_printer(args.progress),
    )
    if args.trace and not args.trace.endswith(".jsonl"):
        # Columnar capture streams chunks to disk at emit time; a tiny
        # ring keeps session memory O(1) however many events the fleet
        # emits.
        from repro.obs.columnar import ColumnarTraceWriter

        with ColumnarTraceWriter(args.trace) as writer:
            with obs.session(
                capacity=1, deterministic=True,
                event_sink=writer.write_event,
            ) as session:
                result = compose_fleet(spec, clients, **compose_kwargs)
        print(
            f"trace: {session.log.emitted} events -> {writer.path}",
            file=sys.stderr,
        )
    elif args.trace:
        with obs.session(deterministic=True) as session:
            result = compose_fleet(spec, clients, **compose_kwargs)
        trace_path = session.log.dump_jsonl(args.trace)
        print(f"trace: {session.log.emitted} events -> {trace_path}", file=sys.stderr)
    else:
        result = compose_fleet(spec, clients, **compose_kwargs)
    return render_fleet_summary(fleet_summary(spec, result))


def _cmd_servertune(args: argparse.Namespace) -> str:
    import json

    from repro.servertune.pbt import (
        PBTSpec,
        PBTState,
        render_frontier_artifact,
        run_pbt,
    )

    if args.servertune_command == "report":
        try:
            payload = json.loads(pathlib.Path(args.file).read_text())
        except (OSError, json.JSONDecodeError) as error:
            raise ConfigurationError(
                f"cannot read frontier artifact {args.file}: {error}"
            ) from error
        return render_frontier_artifact(payload)

    fleet = FleetSpec(
        n_clients=args.clients,
        rounds=args.rounds,
        mode=args.mode,
        deadline_ratio=args.ratio,
        seed=args.seed,
        archetypes=args.archetypes if args.archetypes else None,
        participants=args.participants,
    )
    pbt_kwargs: dict = {}
    if args.controllers:
        pbt_kwargs["controllers"] = tuple(args.controllers.split(","))
    pbt = PBTSpec(
        population=args.population,
        generations=args.generations,
        seed=args.pbt_seed,
        alpha_energy=args.alpha_energy,
        alpha_time=args.alpha_time,
        **pbt_kwargs,
    )
    state = None
    if args.state and pathlib.Path(args.state).exists():
        try:
            state = PBTState.from_dict(
                json.loads(pathlib.Path(args.state).read_text())
            )
        except (OSError, json.JSONDecodeError) as error:
            raise ConfigurationError(
                f"cannot read PBT state {args.state}: {error}"
            ) from error
        print(
            f"resuming from {args.state} at generation {state.next_generation}",
            file=sys.stderr,
        )
    run_kwargs = dict(
        workers=_normalize_workers(args.workers),
        progress=_progress_printer(args.progress),
        state=state,
    )
    # Trace gathering inside the driver suspends obs (executor events
    # depend on worker count); everything this session captures is the
    # pure composition + PBT decision stream, byte-stable per seed.
    if args.trace:
        with obs.session(deterministic=True) as session:
            result = run_pbt(pbt, fleet, **run_kwargs)
        trace_path = session.log.dump_jsonl(args.trace)
        print(f"trace: {session.log.emitted} events -> {trace_path}", file=sys.stderr)
    else:
        result = run_pbt(pbt, fleet, **run_kwargs)
    if args.state:
        path = pathlib.Path(args.state)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(result.state.to_dict(), indent=2, sort_keys=True) + "\n"
        )
    if args.frontier:
        path = pathlib.Path(args.frontier)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(result.to_dict(), indent=2, sort_keys=True) + "\n"
        )
        print(f"frontier artifact -> {path}", file=sys.stderr)
    return result.render()


def _cmd_trace(args: argparse.Namespace) -> str:
    # Sniffs the container: legacy JSONL and columnar traces of the same
    # event stream render identical views.
    events = obs.read_trace_events(args.file)
    return obs.render_view(events, args.view)


def _cmd_lint(args: argparse.Namespace) -> tuple[str, int]:
    """Returns (rendered report, exit code): 0 clean, 1 violations."""
    from repro.devtools import lint as devlint

    if args.list_rules:
        lines = ["Registered repro lint rules:"]
        for rule in devlint.iter_rules():
            lines.append(f"  {rule.id:18s} {rule.summary}")
            lines.append(f"  {'':18s} scope: {', '.join(rule.include)}"
                         + (f"  exempt: {', '.join(rule.exempt)}" if rule.exempt else ""))
        return "\n".join(lines), 0

    root = pathlib.Path(args.root) if args.root else None
    if args.paths:
        paths = [pathlib.Path(p) for p in args.paths]
    else:
        anchor = root if root is not None else devlint.find_repo_root(
            pathlib.Path.cwd()
        )
        paths = [anchor / "src"]
    select = args.select.split(",") if args.select else None
    report = devlint.lint_paths(paths, root=root, select=select)
    rendered = (
        report.render_json() if args.format == "json" else report.render_human()
    )
    return rendered, 0 if report.ok else 1


def _cmd_analyze(args: argparse.Namespace) -> tuple[str, int]:
    """Returns (rendered report, exit code): 0 clean/ratcheted, 1 findings."""
    from repro.devtools import analyze as devanalyze

    if args.list_checkers:
        lines = ["Registered repro analyze checkers:"]
        for checker_id in devanalyze.CHECKER_IDS:
            if checker_id == "parse-error":
                continue
            lines.append(f"  {checker_id:20s} {devanalyze.CHECKER_SUMMARIES[checker_id]}")
        return "\n".join(lines), 0

    root = pathlib.Path(args.root) if args.root else None
    if args.paths:
        paths = [pathlib.Path(p) for p in args.paths]
        anchor = root if root is not None else _find_devtools_root(paths[0])
    else:
        anchor = root if root is not None else _find_devtools_root(
            pathlib.Path.cwd()
        )
        paths = [anchor / "src"]
    report = devanalyze.analyze_paths(paths, root=anchor)
    if args.sarif:
        pathlib.Path(args.sarif).write_text(
            report.render_sarif() + "\n", encoding="utf-8"
        )
    baseline_path = (
        pathlib.Path(args.baseline)
        if args.baseline
        else anchor / "analysis-baseline.json"
    )
    if args.write_baseline:
        devanalyze.write_baseline(baseline_path, report)
        return f"repro analyze: baseline written to {baseline_path}", 0
    if args.ratchet:
        baseline = devanalyze.load_baseline(baseline_path)
        result = devanalyze.ratchet(report, baseline)
        return result.render(), 0 if result.ok else 1
    rendered = {
        "json": report.render_json,
        "sarif": report.render_sarif,
        "human": report.render_human,
    }[args.format]()
    return rendered, 0 if report.ok else 1


def _find_devtools_root(start: pathlib.Path) -> pathlib.Path:
    from repro.devtools.lint import find_repo_root

    return find_repo_root(start)


def main(argv: Optional[list[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    try:
        if args.command == "list":
            print(_cmd_list())
        elif args.command == "run":
            _setup_persistence(args)
            print(_cmd_run(args))
        elif args.command == "campaign":
            _setup_persistence(args)
            print(_cmd_campaign(args))
        elif args.command == "sweep":
            _setup_persistence(args)
            print(_cmd_sweep(args))
        elif args.command == "chaos":
            _setup_persistence(args)
            print(_cmd_chaos(args))
        elif args.command == "fleet":
            _setup_persistence(args)
            print(_cmd_fleet(args))
        elif args.command == "servertune":
            _setup_persistence(args)
            print(_cmd_servertune(args))
        elif args.command == "serve":
            print(_cmd_serve(args))
        elif args.command == "loadtest":
            print(_cmd_loadtest(args))
        elif args.command == "cache":
            print(_cmd_cache(args))
        elif args.command == "trace":
            print(_cmd_trace(args))
        elif args.command == "lint":
            rendered, code = _cmd_lint(args)
            print(rendered)
            return code
        elif args.command == "analyze":
            rendered, code = _cmd_analyze(args)
            print(rendered)
            return code
    except Exception as error:  # surface library errors as clean CLI errors
        print(f"error: {error}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
