"""The Oracle baseline: exhaustive offline profiling + pure exploitation.

"In the Oracle design, we profile T and E over the whole configuration
space offline, and only run exploitation over the FL training rounds to
achieve optimal energy usage.  Note that Oracle can not be achieved in
practice as it requires long-lasting offline profiling." (§6.1)

The Oracle reads the device's ground-truth surfaces directly — the
simulation counterpart of that offline profiling pass — extracts the exact
Pareto set, and solves the Eqn. 1 schedule ILP for every round.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.bayesopt.pareto import pareto_mask
from repro.core.base import JobCallback, PaceController
from repro.core.exploitation import ExploitationPlanner
from repro.core.records import RoundRecord
from repro.errors import InfeasibleError
from repro.hardware.device import SimulatedDevice
from repro.types import DvfsConfiguration, RoundBudget, Schedule, Seconds


class OracleController(PaceController):
    """Exploits the exact Pareto set from the first round onward."""

    name = "oracle"

    def __init__(self, device: SimulatedDevice, safety_margin: float = 0.01) -> None:
        super().__init__(device)
        self.planner = ExploitationPlanner(safety_margin)
        # Offline profiling pass: the whole space, noise-free.
        latencies, energies = device.model.profile_space()
        values = np.stack([latencies, energies], axis=1)
        mask = pareto_mask(values)
        all_configs = device.space.all_configurations()
        self.pareto_configs: list[DvfsConfiguration] = [
            c for c, keep in zip(all_configs, mask) if keep
        ]
        self.pareto_values = values[mask]
        self._x_max = device.space.max_configuration()

    @property
    def true_front(self) -> np.ndarray:
        """The exact Pareto front objectives (Fig. 11's red stars)."""
        return self.pareto_values.copy()

    def _plan(self, jobs: int, time_remaining: Seconds) -> Schedule:
        return self.planner.plan_from_points(
            self.pareto_configs,
            self.pareto_values[:, 0],
            self.pareto_values[:, 1],
            jobs,
            time_remaining,
        )

    def _execute_round(
        self,
        round_index: int,
        jobs: int,
        deadline: Seconds,
        on_job: Optional[JobCallback],
    ) -> RoundRecord:
        budget = RoundBudget(total_jobs=jobs, deadline=deadline)
        energy_start = self.device.energy_consumed
        record = RoundRecord(
            round_index=round_index,
            phase="oracle",
            deadline=deadline,
            jobs=jobs,
        )
        try:
            schedule = self._plan(jobs, deadline)
            for entry in schedule:
                self.device.set_configuration(entry.config)
                for _ in range(entry.jobs):
                    if budget.finished:
                        break
                    self._run_one_job(budget, on_job)
                    record.exploited_jobs += 1
        except InfeasibleError:
            pass  # fall through to the sprint below
        if not budget.finished:
            self.device.set_configuration(self._x_max)
            while not budget.finished:
                self._run_one_job(budget, on_job)
                record.exploited_jobs += 1
        record.elapsed = budget.elapsed
        record.energy = self.device.energy_consumed - energy_start
        record.missed = budget.elapsed > deadline + 1e-9
        return record
