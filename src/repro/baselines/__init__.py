"""Comparison targets for BoFL (§6.1 plus two extension baselines).

* :class:`PerformantController` — the paper's Performant design: every
  job at ``x_max`` (the default real-time governor behaviour).
* :class:`OracleController` — offline exhaustive profiling of the whole
  space, then pure exploitation every round; unachievable in practice but
  the energy lower bound BoFL's regret is measured against.
* :class:`RandomSearchController` — BoFL's skeleton with the MBO engine
  replaced by uniform random suggestions (the acquisition ablation).
* :class:`LinearPaceController` — a SmartPC-style controller that assumes
  training speed scales linearly with a single frequency knob; included to
  demonstrate why the paper rejects linear models on multi-axis DVFS
  (§2.1).
* :class:`OndemandGovernorController` — an OS-default utilization-driven
  governor; deadline-blind, so it shows why FL clients cannot just trust
  the kernel's frequency scaling.
"""

from repro.baselines.performant import PerformantController
from repro.baselines.oracle import OracleController
from repro.baselines.random_only import RandomSearchController
from repro.baselines.linear_pace import LinearPaceController
from repro.baselines.governor import OndemandGovernorController

__all__ = [
    "LinearPaceController",
    "OndemandGovernorController",
    "OracleController",
    "PerformantController",
    "RandomSearchController",
]
