"""Random-search ablation: BoFL's skeleton without the MBO engine.

Identical phase structure, guardian and exploitation to
:class:`~repro.core.controller.BoFLController`, but phase-2 suggestions
are uniform random draws instead of EHVI picks.  Comparing the two
isolates the value of the Bayesian acquisition (the paper's Table 3
observation that 18 of ViT's 20 Pareto points come from MBO suggestions).
"""

from __future__ import annotations

from typing import Optional

from repro.core.config import BoFLConfig
from repro.core.controller import BoFLController, MBOCostFn
from repro.hardware.device import SimulatedDevice


class RandomSearchController(BoFLController):
    """Explore-then-exploit with uniform random exploration throughout."""

    name = "random_search"

    def __init__(
        self,
        device: SimulatedDevice,
        config: Optional[BoFLConfig] = None,
        mbo_cost: Optional[MBOCostFn] = None,
    ) -> None:
        base = config if config is not None else BoFLConfig()
        disabled = BoFLConfig(
            tau=base.tau,
            initial_sample_fraction=base.initial_sample_fraction,
            min_explored_fraction=base.min_explored_fraction,
            hv_improvement_threshold=base.hv_improvement_threshold,
            max_batch_size=base.max_batch_size,
            fit_restarts=base.fit_restarts,
            safety_margin=base.safety_margin,
            seed=base.seed,
            guardian_enabled=base.guardian_enabled,
            mbo_enabled=False,
            exploit_mixture=base.exploit_mixture,
        )
        super().__init__(device, disabled, mbo_cost)
