"""A SmartPC-style linear pace controller (the design §2.1 argues against).

SmartPC models training speed as a linear function of one clock: to meet a
deadline ``D`` with ``W`` jobs it predicts the required frequency scale as
``s = (W * T(x_max)) / D`` and sets every axis to ``s`` of its range.  On
multi-axis hardware with non-linear bottleneck structure this prediction
is wrong, so the controller re-checks progress after every job and sprints
to ``x_max`` when it is falling behind — the safety net real SmartPC-style
deployments rely on.

Included as an extension baseline: it demonstrates quantitatively why the
paper replaces explicit linear models with blackbox optimization.
"""

from __future__ import annotations

from typing import Optional

from repro.core.base import JobCallback, PaceController
from repro.errors import PhaseError
from repro.core.records import RoundRecord
from repro.hardware.device import SimulatedDevice
from repro.types import DvfsConfiguration, RoundBudget, Seconds


class LinearPaceController(PaceController):
    """Linear speed model + uniform frequency scaling + catch-up sprints."""

    name = "linear_pace"

    def __init__(self, device: SimulatedDevice, headroom: float = 0.05) -> None:
        super().__init__(device)
        if not 0.0 <= headroom < 1.0:
            raise ValueError(f"headroom must lie in [0, 1), got {headroom}")
        self.headroom = headroom
        self._x_max = device.space.max_configuration()
        self._t_xmax: Optional[Seconds] = None
        self.sprints = 0

    def _scaled_configuration(self, scale: float) -> DvfsConfiguration:
        """Every axis at fraction ``scale`` of its [min, max] range."""
        space = self.device.space
        scale = min(max(scale, 0.0), 1.0)
        return space.snap(
            space.cpu.min + scale * (space.cpu.max - space.cpu.min),
            space.gpu.min + scale * (space.gpu.max - space.gpu.min),
            space.mem.min + scale * (space.mem.max - space.mem.min),
        )

    def _execute_round(
        self,
        round_index: int,
        jobs: int,
        deadline: Seconds,
        on_job: Optional[JobCallback],
    ) -> RoundRecord:
        budget = RoundBudget(total_jobs=jobs, deadline=deadline)
        energy_start = self.device.energy_consumed
        record = RoundRecord(
            round_index=round_index,
            phase="linear_pace",
            deadline=deadline,
            jobs=jobs,
        )
        if self._t_xmax is None:
            # Calibrate the linear model's anchor with one job at x_max.
            self.device.set_configuration(self._x_max)
            result = self._run_one_job(budget, on_job)
            self._t_xmax = result.latency
        if not budget.finished:
            # Linear prediction: latency ~ T(x_max) / scale, so meeting the
            # per-job budget needs scale = T(x_max) / budget_per_job.
            per_job_budget = budget.time_remaining * (1.0 - self.headroom) / max(
                budget.jobs_remaining, 1
            )
            scale = self._t_xmax / per_job_budget if per_job_budget > 0 else 1.0
            self.device.set_configuration(self._scaled_configuration(scale))
        sprinting = False
        while not budget.finished:
            # Catch-up check: if the remaining jobs cannot make the deadline
            # at the current measured pace, sprint at x_max.
            if not sprinting and self._behind_schedule(budget):
                self.device.set_configuration(self._x_max)
                sprinting = True
                self.sprints += 1
                record.guardian_triggered = True
            result = self._run_one_job(budget, on_job)
            if result.latency > self._t_xmax:
                # keep the anchor honest (x_max jobs only)
                if self.device.current_configuration == self._x_max:
                    self._t_xmax = result.latency
        record.elapsed = budget.elapsed
        record.energy = self.device.energy_consumed - energy_start
        record.missed = budget.elapsed > deadline + 1e-9
        record.exploited_jobs = jobs
        return record

    def _behind_schedule(self, budget: RoundBudget) -> bool:
        if self._t_xmax is None:
            raise PhaseError(
                "schedule check before the x_max anchor latency was measured"
            )
        return budget.time_remaining < budget.jobs_remaining * self._t_xmax * (
            1.0 + self.headroom
        )
