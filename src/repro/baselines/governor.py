"""An ``ondemand``-style OS DVFS governor baseline (extension).

Linux's default frequency governors (``ondemand`` / ``schedutil``) scale
each unit's clock from its *utilization*: step up when the unit is nearly
saturated, step down when it idles.  They know nothing about deadlines or
energy-per-job — which is exactly why the paper's clients pin clocks to
``x_max`` (the Performant design) instead of trusting the governor.

This baseline quantifies that gap: utilization-driven scaling converges to
a balanced-but-deadline-blind operating point, so under tight deadlines it
misses rounds that every deadline-aware controller meets, and under loose
deadlines it cannot exploit the slack the way BoFL's energy-optimal
schedules do.
"""

from __future__ import annotations

from typing import Optional

from repro.core.base import JobCallback, PaceController
from repro.core.records import RoundRecord
from repro.errors import ConfigurationError
from repro.hardware.device import SimulatedDevice
from repro.types import DvfsConfiguration, RoundBudget, Seconds


class OndemandGovernorController(PaceController):
    """Per-unit utilization-threshold frequency scaling."""

    name = "ondemand"

    def __init__(
        self,
        device: SimulatedDevice,
        up_threshold: float = 0.85,
        down_threshold: float = 0.45,
        *,
        start_at_max: bool = True,
    ) -> None:
        super().__init__(device)
        if not 0.0 < down_threshold < up_threshold <= 1.0:
            raise ConfigurationError(
                f"need 0 < down_threshold < up_threshold <= 1, got "
                f"{down_threshold}, {up_threshold}"
            )
        self.up_threshold = up_threshold
        self.down_threshold = down_threshold
        space = device.space
        start = space.max_configuration() if start_at_max else space.min_configuration()
        self._indices = list(space.indices_of(start))

    def _current_configuration(self) -> DvfsConfiguration:
        return self.device.space.at(*self._indices)

    def _step(self, axis: int, direction: int) -> None:
        table = self.device.space.tables[axis]
        self._indices[axis] = min(max(self._indices[axis] + direction, 0), len(table) - 1)

    def _react_to_utilization(self) -> None:
        """The governor tick: adjust each axis from the last job's load."""
        utilization = self.device.last_utilization()
        for axis, load in enumerate(utilization):
            if load > self.up_threshold:
                self._step(axis, +1)
            elif load < self.down_threshold:
                self._step(axis, -1)

    def _execute_round(
        self,
        round_index: int,
        jobs: int,
        deadline: Seconds,
        on_job: Optional[JobCallback],
    ) -> RoundRecord:
        budget = RoundBudget(total_jobs=jobs, deadline=deadline)
        energy_start = self.device.energy_consumed
        while not budget.finished:
            self.device.set_configuration(self._current_configuration())
            self._run_one_job(budget, on_job)
            self._react_to_utilization()
        return RoundRecord(
            round_index=round_index,
            phase="ondemand",
            deadline=deadline,
            jobs=jobs,
            elapsed=budget.elapsed,
            energy=self.device.energy_consumed - energy_start,
            missed=budget.elapsed > deadline + 1e-9,
            exploited_jobs=jobs,
        )
