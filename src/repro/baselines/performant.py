"""The Performant baseline: maximum clocks, always.

"The Performant design is the default DVFS configuration for real-time
tasks.  It turns all the hardware units into maximum operational
frequencies, i.e., x_max, to maintain stable performance, and make sure
the deadlines will not miss." (§6.1)
"""

from __future__ import annotations

from typing import Optional

from repro.core.base import JobCallback, PaceController
from repro.core.records import RoundRecord
from repro.types import RoundBudget, Seconds


class PerformantController(PaceController):
    """Every job runs at ``x_max``."""

    name = "performant"

    def _execute_round(
        self,
        round_index: int,
        jobs: int,
        deadline: Seconds,
        on_job: Optional[JobCallback],
    ) -> RoundRecord:
        budget = RoundBudget(total_jobs=jobs, deadline=deadline)
        energy_start = self.device.energy_consumed
        self.device.set_configuration(self.device.space.max_configuration())
        while not budget.finished:
            self._run_one_job(budget, on_job)
        return RoundRecord(
            round_index=round_index,
            phase="performant",
            deadline=deadline,
            jobs=jobs,
            elapsed=budget.elapsed,
            energy=self.device.energy_consumed - energy_start,
            missed=budget.elapsed > deadline + 1e-9,
            exploited_jobs=jobs,
        )
