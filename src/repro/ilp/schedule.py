"""The exploitation-phase schedule problem (the inner problem of Eqn. 1).

For one round, given candidate configurations with per-job latency ``T_k``
and energy ``E_k``, the number of jobs ``W`` and the round deadline ``D``:

    ``min sum_k n_k E_k``
    ``s.t. sum_k n_k T_k <= D,  sum_k n_k = W,  n_k in Z>=0``

Because the LP relaxation has only two structural constraints, its optimum
mixes at most two configurations; the integer optimum is usually that
mixture rounded.  We exploit this with a fast exact-over-pairs solver
(:func:`solve_schedule_pairs`) whose result warm-starts the exact
branch-and-bound (:func:`solve_schedule`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError, InfeasibleError
from repro.ilp.branch_and_bound import solve_milp
from repro.ilp.model import IntegerProgram, LinearProgram


@dataclass(frozen=True)
class ScheduleProblem:
    """One round's schedule optimization instance.

    ``safety_margin`` shrinks the deadline by a relative amount before
    solving, leaving headroom for measurement noise and switch latency
    during execution (BoFL executes fastest-entries-first, so the margin
    rarely binds).
    """

    latencies: np.ndarray
    energies: np.ndarray
    jobs: int
    deadline: float
    safety_margin: float = 0.0

    def __post_init__(self) -> None:
        lat = np.asarray(self.latencies, dtype=float).ravel()
        en = np.asarray(self.energies, dtype=float).ravel()
        object.__setattr__(self, "latencies", lat)
        object.__setattr__(self, "energies", en)
        if lat.size == 0 or lat.size != en.size:
            raise ConfigurationError(
                f"latencies and energies must be equal-length and non-empty; "
                f"got {lat.size} and {en.size}"
            )
        if np.any(lat <= 0) or np.any(en <= 0):
            raise ConfigurationError("latencies and energies must be positive")
        if self.jobs < 1:
            raise ConfigurationError(f"jobs must be >= 1, got {self.jobs}")
        if self.deadline <= 0:
            raise ConfigurationError(f"deadline must be positive, got {self.deadline}")
        if not 0.0 <= self.safety_margin < 1.0:
            raise ConfigurationError(
                f"safety_margin must lie in [0, 1), got {self.safety_margin}"
            )

    @property
    def n_configs(self) -> int:
        return self.latencies.size

    @property
    def effective_deadline(self) -> float:
        return self.deadline * (1.0 - self.safety_margin)

    def check_feasible(self) -> None:
        """Raise :class:`InfeasibleError` if even the fastest pace misses."""
        fastest = float(self.latencies.min()) * self.jobs
        if fastest > self.effective_deadline:
            raise InfeasibleError(
                f"{self.jobs} jobs need at least {fastest:.3f}s at the fastest "
                f"candidate but only {self.effective_deadline:.3f}s remain"
            )

    def totals(self, counts: np.ndarray) -> tuple[float, float]:
        """``(total latency, total energy)`` of a counts vector."""
        counts = np.asarray(counts, dtype=float)
        return (
            float(counts @ self.latencies),
            float(counts @ self.energies),
        )


def solve_schedule_greedy(problem: ScheduleProblem) -> np.ndarray:
    """Cheapest single configuration that meets the deadline at uniform pace.

    O(K); used as a fallback and as the baseline for ablation
    ``bench_abl_exploit`` (single-config vs ILP mixture).
    """
    problem.check_feasible()
    budget_per_job = problem.effective_deadline / problem.jobs
    feasible = problem.latencies <= budget_per_job
    counts = np.zeros(problem.n_configs, dtype=int)
    if np.any(feasible):
        candidates = np.flatnonzero(feasible)
        pick = candidates[np.argmin(problem.energies[feasible])]
    else:
        pick = int(np.argmin(problem.latencies))
    counts[pick] = problem.jobs
    return counts


def solve_schedule_pairs(problem: ScheduleProblem) -> np.ndarray:
    """Exact optimum over schedules mixing at most two configurations.

    For a pair (fast ``i``, slow-but-cheaper ``j``) the time constraint
    caps the slow count at ``floor((D - W*T_i) / (T_j - T_i))``; the energy
    is linear in that count, so the best pair schedule is closed-form.
    Fully vectorized over the K x K pair grid.
    """
    problem.check_feasible()
    lat, en = problem.latencies, problem.energies
    jobs, deadline = problem.jobs, problem.effective_deadline
    k = problem.n_configs
    best_counts = solve_schedule_greedy(problem)
    best_energy = problem.totals(best_counts)[1]

    anchor_ok = lat * jobs <= deadline  # configs that can anchor a schedule
    # Single-config schedules.
    if np.any(anchor_ok):
        singles = np.where(anchor_ok, en * jobs, np.inf)
        i_best = int(np.argmin(singles))
        if singles[i_best] < best_energy - 1e-12:
            best_energy = float(singles[i_best])
            best_counts = np.zeros(k, dtype=int)
            best_counts[i_best] = jobs

    # Pair schedules: anchor i (fast, feasible alone), filler j (slower and
    # cheaper).  Grid of shape (k, k) with i along axis 0.
    with np.errstate(divide="ignore", invalid="ignore"):
        slack = deadline - jobs * lat[:, None]  # time freed by anchoring at i
        gap = lat[None, :] - lat[:, None]  # extra time per job moved to j
        n_j = np.floor(slack / gap + 1e-12)
    valid = (
        anchor_ok[:, None]
        & (gap > 0)
        & (en[None, :] < en[:, None])
        & np.isfinite(n_j)
    )
    n_j = np.clip(np.where(valid, n_j, 0.0), 0, jobs).astype(int)
    energy = en[:, None] * (jobs - n_j) + en[None, :] * n_j
    energy = np.where(valid & (n_j > 0), energy, np.inf)
    flat = int(np.argmin(energy))
    i, j = divmod(flat, k)
    if energy[i, j] < best_energy - 1e-12:
        best_energy = float(energy[i, j])
        best_counts = np.zeros(k, dtype=int)
        best_counts[i] = jobs - n_j[i, j]
        best_counts[j] = n_j[i, j]
    return best_counts


def solve_schedule(
    problem: ScheduleProblem, *, max_nodes: int = 5_000, gap_tol: float = 1e-4
) -> np.ndarray:
    """Optimal schedule via branch-and-bound, warm-started by the pair solver.

    This is the solver the BoFL controller uses in the exploitation phase;
    it matches the paper's Gurobi branch-and-bound usage (§5.2).  The
    default ``gap_tol`` certifies the result within 0.01% of the true
    optimum (set it to 0 for a proof of exact optimality), which keeps the
    per-round solve well under the paper's reported 20 ms.
    """
    problem.check_feasible()
    warm = solve_schedule_pairs(problem)
    warm_energy = problem.totals(warm)[1]
    k = problem.n_configs
    # No explicit upper bounds: sum(n) = W with n >= 0 already implies
    # n_k <= W, and dropping the redundant rows keeps the simplex tableau
    # at two structural rows.
    lp = LinearProgram(
        c=problem.energies,
        a_ub=problem.latencies[None, :],
        b_ub=np.array([problem.effective_deadline]),
        a_eq=np.ones((1, k)),
        b_eq=np.array([float(problem.jobs)]),
    )
    solution = solve_milp(
        IntegerProgram(lp),
        max_nodes=max_nodes,
        incumbent=(warm, warm_energy),
        gap_tol=gap_tol,
    )
    if not solution.is_optimal or solution.x is None:
        # The warm start is always integer-feasible; fall back to it.
        return warm
    counts = np.rint(solution.x).astype(int)
    # Defensive repair: rounding must preserve the job count exactly.
    deficit = problem.jobs - int(counts.sum())
    if deficit != 0:
        fastest = int(np.argmin(problem.latencies))
        counts[fastest] = max(0, counts[fastest] + deficit)
    lat_total = problem.totals(counts)[0]
    if lat_total > problem.effective_deadline + 1e-9 or counts.sum() != problem.jobs:
        return warm
    if problem.totals(counts)[1] > warm_energy:
        return warm
    return counts
