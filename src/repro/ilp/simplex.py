"""A dense two-phase primal simplex solver.

Small and dependency-free: BoFL's exploitation ILPs have ~10-30 variables
and 2 structural constraints, so a dense tableau with Bland's
anti-cycling rule is both simple and fast.  The solver handles:

* ``min c @ x`` with ``x >= 0``;
* inequality rows ``A_ub x <= b_ub`` (slack variables);
* equality rows ``A_eq x = b_eq`` (artificial variables, phase 1);
* optional per-variable upper bounds (expanded into inequality rows).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import SolverError
from repro.ilp.model import LinearProgram, SimplexBasis, Solution, SolutionStatus
from repro.obs import runtime as obs

_EPS = 1e-9
#: Feasibility/optimality verification tolerance for warm-started solves.
_FEAS_TOL = 1e-7


def solve_lp(
    problem: LinearProgram,
    max_pivots: int = 10_000,
    warm_start: Optional[SimplexBasis] = None,
) -> Solution:
    """Solve a linear program with the two-phase primal simplex method.

    ``warm_start`` may carry the optimal basis of a *parent* problem that
    differs from this one by exactly one inequality row appended at the
    end of its original ``a_ub`` (the branch-and-bound child shape); the
    solve is then seeded by dual simplex from that basis, skipping both
    phases.  Any structural mismatch or numerical doubt falls back to the
    cold two-phase path, so the result is always the cold result.
    """
    c = problem.c
    a_ub, b_ub = problem.a_ub, problem.b_ub
    if problem.upper_bounds is not None:
        finite = np.isfinite(problem.upper_bounds)
        if np.any(finite):
            rows = np.eye(problem.n_vars)[finite]
            a_ub = np.vstack([a_ub, rows]) if a_ub.size else rows
            b_ub = np.concatenate([b_ub, problem.upper_bounds[finite]])
    if warm_start is not None:
        if obs.enabled():
            obs.count("ilp.lp_warm_attempts")
        warm = _warm_solve(problem, c, a_ub, b_ub, warm_start, max_pivots)
        if warm is not None:
            if obs.enabled():
                obs.count("ilp.lp_warm_hits")
            return warm
    tableau, basis, n_structural, n_slack = _build_phase1(
        c, a_ub, b_ub, problem.a_eq, problem.b_eq
    )
    pivots = 0

    # ---- phase 1: minimize the sum of artificial variables ----
    n_artificial = tableau.shape[1] - 1 - n_structural - n_slack
    if n_artificial > 0:
        status, extra = _iterate(tableau, basis, max_pivots)
        pivots += extra
        if status is not SolutionStatus.OPTIMAL:
            return Solution(status=SolutionStatus.ITERATION_LIMIT, work=pivots)
        if tableau[-1, -1] < -1e-7:
            return Solution(status=SolutionStatus.INFEASIBLE, work=pivots)
        _drive_out_artificials(tableau, basis, n_structural + n_slack)

    # ---- phase 2: original objective over structural + slack columns ----
    n_cols = n_structural + n_slack
    phase2 = np.zeros((tableau.shape[0], n_cols + 1))
    phase2[:-1, :n_cols] = tableau[:-1, :n_cols]
    phase2[:-1, -1] = tableau[:-1, -1]
    objective = np.zeros(n_cols + 1)
    objective[:n_structural] = c
    phase2[-1, :] = objective
    # Express the objective in terms of the current basis (reduced costs).
    for row, var in enumerate(basis):
        if var < n_cols and abs(phase2[-1, var]) > _EPS:
            phase2[-1, :] -= phase2[-1, var] * phase2[row, :]
    status, extra = _iterate(phase2, basis, max_pivots)
    pivots += extra
    if status is not SolutionStatus.OPTIMAL:
        return Solution(status=status, work=pivots)

    x = np.zeros(n_cols)
    for row, var in enumerate(basis):
        if var < n_cols:
            x[var] = phase2[row, -1]
    solution = x[:n_structural]
    return Solution(
        status=SolutionStatus.OPTIMAL,
        x=solution,
        objective=float(c @ solution),
        work=pivots,
        basis=_extract_basis(basis, n_structural, n_slack),
    )


def _extract_basis(
    basis: list[Optional[int]], n_structural: int, n_slack: int
) -> Optional[SimplexBasis]:
    """Record the final basis, or ``None`` if it is not cleanly reusable.

    A basis still holding an artificial column (redundant constraint row)
    or an unassigned row is skipped: warm starts must never inherit
    phase-1 bookkeeping.
    """
    columns = []
    for var in basis:
        if var is None or var >= n_structural + n_slack:
            return None
        columns.append(int(var))
    return SimplexBasis(columns=tuple(columns), n_ub_rows=n_slack)


def _warm_solve(
    problem: LinearProgram,
    c: np.ndarray,
    a_ub: np.ndarray,
    b_ub: np.ndarray,
    warm: SimplexBasis,
    max_pivots: int,
) -> Optional[Solution]:
    """Dual-simplex solve seeded from a parent basis; ``None`` = fall back.

    The parent's optimal basis stays *dual* feasible after one inequality
    row is appended (the objective did not change), while the appended
    row's own slack completes it to a full basis that may be primal
    infeasible — exactly the dual simplex starting point.  The final
    solution is verified against the problem's constraints before being
    returned; every doubt (singular rebuild, lost dual feasibility, pivot
    budget, infeasibility signal) returns ``None`` so the cold two-phase
    path decides.
    """
    n = c.size
    a_eq, b_eq = problem.a_eq, problem.b_eq
    m_ub, m_eq = a_ub.shape[0], a_eq.shape[0]
    m = m_ub + m_eq
    # The branch row is the last row of the *unexpanded* a_ub; expanded
    # upper-bound rows follow it, in the same order as in the parent.
    k = problem.a_ub.shape[0] - 1 if problem.a_ub is not None else -1
    if k < 0 or warm.n_ub_rows != m_ub - 1 or len(warm.columns) != m - 1:
        return None

    def remap(var: int) -> int:
        if var < n:
            return var
        slack = var - n
        return n + slack if slack < k else n + slack + 1

    columns = [remap(v) for v in warm.columns[:k]]
    columns.append(n + k)  # the branch row starts basic in its own slack
    columns.extend(remap(v) for v in warm.columns[k:])

    a = np.vstack([a_ub, a_eq]) if m else np.zeros((0, n))
    b = np.concatenate([b_ub, b_eq])
    tableau = np.zeros((m + 1, n + m_ub + 1))
    tableau[:m, :n] = a
    for i in range(m_ub):
        tableau[i, n + i] = 1.0
    tableau[:m, -1] = b
    tableau[-1, :n] = c
    basis: list[Optional[int]] = list(columns)
    for row, var in enumerate(columns):
        if abs(tableau[row, var]) < _EPS:
            return None  # proposed basis is (numerically) singular here
        _pivot(tableau, row, var)
    if np.any(tableau[-1, :-1] < -_FEAS_TOL):
        return None  # dual feasibility lost; cold primal handles it

    pivots = 0
    while pivots < max_pivots:
        rhs = tableau[:m, -1]
        leaving = int(np.argmin(rhs))
        if rhs[leaving] >= -_EPS:
            break
        row_vals = tableau[leaving, :-1]
        negative = np.flatnonzero(row_vals < -_EPS)
        if negative.size == 0:
            return None  # dual unbounded => primal infeasible; let cold confirm
        ratios = np.full(row_vals.size, np.inf)
        ratios[negative] = tableau[-1, negative] / -row_vals[negative]
        entering = int(np.argmin(ratios))
        _pivot(tableau, leaving, entering)
        basis[leaving] = entering
        pivots += 1
    else:
        return None

    status, extra = _iterate(tableau, basis, max_pivots)
    pivots += extra
    if status is not SolutionStatus.OPTIMAL:
        return None
    x = np.zeros(n + m_ub)
    for row, var in enumerate(basis):
        if var is not None:
            x[var] = tableau[row, -1]
    solution = x[:n]
    if np.any(solution < -_FEAS_TOL):
        return None
    if a_ub.size and np.any(a_ub @ solution - b_ub > _FEAS_TOL):
        return None
    if a_eq.size and np.any(np.abs(a_eq @ solution - b_eq) > _FEAS_TOL):
        return None
    return Solution(
        status=SolutionStatus.OPTIMAL,
        x=solution,
        objective=float(c @ solution),
        work=pivots,
        basis=_extract_basis(basis, n, m_ub),
    )


def _build_phase1(
    c: np.ndarray,
    a_ub: np.ndarray,
    b_ub: np.ndarray,
    a_eq: np.ndarray,
    b_eq: np.ndarray,
) -> tuple[np.ndarray, list[Optional[int]], int, int]:
    """Assemble the phase-1 tableau; returns (tableau, basis, n_struct, n_slack)."""
    n = c.size
    m_ub, m_eq = a_ub.shape[0], a_eq.shape[0]
    m = m_ub + m_eq
    a = np.vstack([a_ub, a_eq]) if m else np.zeros((0, n))
    b = np.concatenate([b_ub, b_eq])
    # Normalize to b >= 0 (flip row signs where needed).
    flip = b < 0
    a = np.where(flip[:, None], -a, a)
    b = np.abs(b)
    # slack columns: +1 for un-flipped <= rows, -1 for flipped ones.
    slack = np.zeros((m, m_ub))
    for i in range(m_ub):
        slack[i, i] = -1.0 if flip[i] else 1.0
    # Rows needing artificials: all eq rows, and flipped <= rows (their
    # slack enters with -1 so it cannot serve as the initial basis).
    needs_artificial = [i for i in range(m) if i >= m_ub or flip[i]]
    n_art = len(needs_artificial)
    art = np.zeros((m, n_art))
    for j, i in enumerate(needs_artificial):
        art[i, j] = 1.0
    tableau = np.zeros((m + 1, n + m_ub + n_art + 1))
    tableau[:m, :n] = a
    tableau[:m, n : n + m_ub] = slack
    tableau[:m, n + m_ub : n + m_ub + n_art] = art
    tableau[:m, -1] = b
    basis: list[Optional[int]] = [None] * m
    for i in range(m_ub):
        if not flip[i]:
            basis[i] = n + i
    for j, i in enumerate(needs_artificial):
        basis[i] = n + m_ub + j
    # Phase-1 objective: minimize the sum of artificials, expressed in
    # reduced-cost form over the starting basis.
    if n_art:
        tableau[-1, n + m_ub : n + m_ub + n_art] = 1.0
        for j, i in enumerate(needs_artificial):
            tableau[-1, :] -= tableau[i, :]
    return tableau, basis, n, m_ub


def _iterate(
    tableau: np.ndarray, basis: list[Optional[int]], max_pivots: int
) -> tuple[SolutionStatus, int]:
    """Run simplex pivots until optimal/unbounded.

    Uses Dantzig's rule (most negative reduced cost) for speed, switching
    to Bland's anti-cycling rule once the pivot count suggests degeneracy.
    """
    m = tableau.shape[0] - 1
    pivots = 0
    bland_after = 20 * (m + 1)
    while pivots < max_pivots:
        costs = tableau[-1, :-1]
        if pivots < bland_after:
            entering = int(np.argmin(costs))
            if costs[entering] >= -_EPS:
                return SolutionStatus.OPTIMAL, pivots
        else:
            negative = np.flatnonzero(costs < -_EPS)
            if negative.size == 0:
                return SolutionStatus.OPTIMAL, pivots
            entering = int(negative[0])  # Bland: lowest index
        column = tableau[:m, entering]
        positive = column > _EPS
        if not np.any(positive):
            return SolutionStatus.UNBOUNDED, pivots
        ratios = np.full(m, np.inf)
        ratios[positive] = tableau[:m, -1][positive] / column[positive]
        min_ratio = ratios.min()
        # Among minimal ratios, leave the basis at the lowest basic-variable
        # index (cheap tie-breaking that also helps against cycling).
        ties = np.flatnonzero(np.abs(ratios - min_ratio) <= _EPS)
        leaving = int(min(ties, key=lambda r: basis[r]))
        _pivot(tableau, leaving, entering)
        basis[leaving] = entering
        pivots += 1
    return SolutionStatus.ITERATION_LIMIT, pivots


def _pivot(tableau: np.ndarray, row: int, col: int) -> None:
    """Gauss-Jordan pivot on (row, col)."""
    pivot_value = tableau[row, col]
    if abs(pivot_value) < _EPS:
        raise SolverError(f"degenerate pivot at ({row}, {col})")
    tableau[row, :] /= pivot_value
    for r in range(tableau.shape[0]):
        if r != row and abs(tableau[r, col]) > _EPS:
            tableau[r, :] -= tableau[r, col] * tableau[row, :]


def _drive_out_artificials(
    tableau: np.ndarray, basis: list[Optional[int]], n_real: int
) -> None:
    """Pivot any artificial variable still basic out of the basis.

    After a feasible phase 1, basic artificials sit at zero; replace them
    with any real column having a nonzero coefficient in their row, or drop
    the (redundant) row by leaving it — its artificial stays at zero and
    phase 2 ignores artificial columns.
    """
    m = tableau.shape[0] - 1
    for row in range(m):
        if basis[row] is not None and basis[row] >= n_real:
            candidates = np.flatnonzero(np.abs(tableau[row, :n_real]) > _EPS)
            if candidates.size:
                _pivot(tableau, row, int(candidates[0]))
                basis[row] = int(candidates[0])

