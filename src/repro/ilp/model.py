"""Problem and solution containers for the LP/MILP solvers.

All problems are minimization over non-negative variables:

    ``min c @ x   s.t.  A_ub x <= b_ub,  A_eq x = b_eq,  x >= 0``

with optional per-variable upper bounds and (for
:class:`IntegerProgram`) integrality flags.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from collections.abc import Sequence
from typing import Optional

import numpy as np
from numpy.typing import ArrayLike

from repro.errors import ConfigurationError


class SolutionStatus(enum.Enum):
    """Terminal state of a solve."""

    OPTIMAL = "optimal"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    ITERATION_LIMIT = "iteration_limit"


@dataclass(frozen=True)
class SimplexBasis:
    """An optimal simplex basis, for warm-starting closely related solves.

    ``columns[i]`` is the basic column of constraint row ``i`` in the
    solver's stacked row order (inequality rows first, then equalities):
    structural variables are ``< n_vars``, slack of inequality row ``j``
    is ``n_vars + j``.  ``n_ub_rows`` records how many inequality rows
    (including expanded per-variable upper bounds) the producing solve
    had, so a consumer can detect that exactly one branching row was
    appended and remap the slack indices.
    """

    columns: tuple[int, ...]
    n_ub_rows: int


@dataclass(frozen=True)
class Solution:
    """Result of an LP or MILP solve."""

    status: SolutionStatus
    x: Optional[np.ndarray] = None
    objective: Optional[float] = None
    #: Branch-and-bound node count (MILP) or simplex pivots (LP).
    work: int = 0
    #: The optimal basis of an LP solve (when cleanly extractable);
    #: branch-and-bound seeds child solves from the parent's basis.
    basis: Optional[SimplexBasis] = None

    @property
    def is_optimal(self) -> bool:
        return self.status is SolutionStatus.OPTIMAL


def _as_matrix(a: Optional[ArrayLike], n_vars: int, name: str) -> np.ndarray:
    if a is None:
        return np.zeros((0, n_vars))
    a = np.atleast_2d(np.asarray(a, dtype=float))
    if a.shape[1] != n_vars:
        raise ConfigurationError(f"{name} has {a.shape[1]} columns, expected {n_vars}")
    return a


def _as_vector(b: Optional[ArrayLike], n_rows: int, name: str) -> np.ndarray:
    if b is None:
        return np.zeros(0)
    b = np.asarray(b, dtype=float).ravel()
    if b.size != n_rows:
        raise ConfigurationError(f"{name} has {b.size} entries, expected {n_rows}")
    return b


@dataclass
class LinearProgram:
    """``min c @ x`` over ``x >= 0`` with inequality/equality constraints.

    ``upper_bounds`` (optional) adds ``x_i <= u_i`` rows at solve time;
    use ``np.inf`` for unbounded variables.
    """

    c: np.ndarray
    a_ub: Optional[np.ndarray] = None
    b_ub: Optional[np.ndarray] = None
    a_eq: Optional[np.ndarray] = None
    b_eq: Optional[np.ndarray] = None
    upper_bounds: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        self.c = np.asarray(self.c, dtype=float).ravel()
        if self.c.size == 0:
            raise ConfigurationError("a linear program needs at least one variable")
        n = self.c.size
        self.a_ub = _as_matrix(self.a_ub, n, "a_ub")
        self.b_ub = _as_vector(self.b_ub, self.a_ub.shape[0], "b_ub")
        self.a_eq = _as_matrix(self.a_eq, n, "a_eq")
        self.b_eq = _as_vector(self.b_eq, self.a_eq.shape[0], "b_eq")
        if self.upper_bounds is not None:
            self.upper_bounds = np.asarray(self.upper_bounds, dtype=float).ravel()
            if self.upper_bounds.size != n:
                raise ConfigurationError(
                    f"upper_bounds has {self.upper_bounds.size} entries, expected {n}"
                )
            if np.any(self.upper_bounds < 0):
                raise ConfigurationError("upper bounds must be non-negative")

    @property
    def n_vars(self) -> int:
        return self.c.size

    def with_bound(self, var: int, *, upper: Optional[float] = None, lower: Optional[float] = None) -> "LinearProgram":
        """A copy with one extra single-variable bound row (for branching)."""
        a_ub = self.a_ub
        b_ub = self.b_ub
        rows = []
        rhs = []
        if upper is not None:
            row = np.zeros(self.n_vars)
            row[var] = 1.0
            rows.append(row)
            rhs.append(float(upper))
        if lower is not None:
            row = np.zeros(self.n_vars)
            row[var] = -1.0
            rows.append(row)
            rhs.append(-float(lower))
        if not rows:
            raise ConfigurationError("with_bound needs an upper or lower bound")
        new_a = np.vstack([a_ub, np.array(rows)]) if a_ub.size else np.array(rows)
        new_b = np.concatenate([b_ub, np.array(rhs)])
        return LinearProgram(
            c=self.c.copy(),
            a_ub=new_a,
            b_ub=new_b,
            a_eq=self.a_eq.copy() if self.a_eq.size else None,
            b_eq=self.b_eq.copy() if self.b_eq.size else None,
            upper_bounds=None if self.upper_bounds is None else self.upper_bounds.copy(),
        )


@dataclass
class IntegerProgram:
    """A :class:`LinearProgram` plus per-variable integrality flags."""

    lp: LinearProgram
    integer: Sequence[bool] = field(default_factory=list)

    def __post_init__(self) -> None:
        flags = np.asarray(self.integer, dtype=bool).ravel()
        if flags.size == 0:
            flags = np.ones(self.lp.n_vars, dtype=bool)
        if flags.size != self.lp.n_vars:
            raise ConfigurationError(
                f"integrality flags have {flags.size} entries, expected {self.lp.n_vars}"
            )
        self.integer = flags

    @property
    def n_vars(self) -> int:
        return self.lp.n_vars
