"""Branch-and-bound for mixed-integer linear programs.

The classic scheme the paper cites ([54], and what Gurobi runs under the
hood): solve the LP relaxation; if some integer-constrained variable is
fractional, branch into ``x <= floor(v)`` and ``x >= ceil(v)`` subproblems;
prune any node whose relaxation bound cannot beat the incumbent.  Nodes are
explored best-bound-first so the incumbent tightens quickly.
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Optional

import numpy as np

from repro.errors import SolverError
from repro.ilp.model import IntegerProgram, Solution, SolutionStatus
from repro.ilp.simplex import solve_lp
from repro.obs import runtime as obs
from repro.obs.metrics import TimerSpan

_INT_TOL = 1e-6


def _fractional_var(x: np.ndarray, integer_mask: np.ndarray) -> Optional[int]:
    """Index of the most fractional integer-constrained variable, or None."""
    fractions = np.abs(x - np.round(x))
    fractions[~integer_mask] = 0.0
    worst = int(np.argmax(fractions))
    return worst if fractions[worst] > _INT_TOL else None


def solve_milp(
    problem: IntegerProgram,
    *,
    max_nodes: int = 20_000,
    incumbent: Optional[tuple[np.ndarray, float]] = None,
    gap_tol: float = 0.0,
) -> Solution:
    """Solve a MILP by LP-relaxation branch-and-bound.

    Parameters
    ----------
    problem:
        The integer program (minimization, ``x >= 0``).
    max_nodes:
        Safety cap on explored nodes; exceeding it returns
        ``ITERATION_LIMIT`` with the best incumbent found so far (if any).
    incumbent:
        Optional warm-start ``(x, objective)`` known-feasible integer
        solution; tightens pruning from the first node.
    gap_tol:
        Relative optimality tolerance: nodes whose relaxation bound cannot
        improve the incumbent by more than ``gap_tol * |incumbent|`` are
        pruned.  Zero (the default) means prove exact optimality.
    """
    if gap_tol < 0:
        raise ValueError(f"gap_tol must be >= 0, got {gap_tol}")
    integer_mask = np.asarray(problem.integer, dtype=bool)
    best_x: Optional[np.ndarray] = None
    best_obj = math.inf
    if incumbent is not None:
        best_x = np.asarray(incumbent[0], dtype=float)
        best_obj = float(incumbent[1])

    def prune_threshold() -> float:
        if not math.isfinite(best_obj):
            return math.inf
        return best_obj - gap_tol * abs(best_obj) - 1e-9

    with obs.timer("ilp.solve_seconds") as span:
        root = solve_lp(problem.lp)
        if root.status is SolutionStatus.INFEASIBLE:
            return _observed(Solution(status=SolutionStatus.INFEASIBLE, work=1), 0, span)
        if root.status is SolutionStatus.UNBOUNDED:
            return _observed(Solution(status=SolutionStatus.UNBOUNDED, work=1), 0, span)

        counter = itertools.count()  # heap tie-breaker
        heap = [(root.objective, next(counter), problem.lp, root)]
        nodes = 0
        incumbent_updates = 0
        while heap and nodes < max_nodes:
            bound, _, lp, relaxed = heapq.heappop(heap)
            nodes += 1
            if bound >= prune_threshold():
                continue  # cannot (sufficiently) improve on the incumbent
            if relaxed.x is None:
                raise SolverError("optimal LP relaxation carries no solution vector")
            frac = _fractional_var(relaxed.x, integer_mask)
            if frac is None:
                # Integer-feasible relaxation: new incumbent.
                x_int = relaxed.x.copy()
                x_int[integer_mask] = np.round(x_int[integer_mask])
                obj = float(problem.lp.c @ x_int)
                if obj < best_obj:
                    best_obj, best_x = obj, x_int
                    incumbent_updates += 1
                continue
            value = relaxed.x[frac]
            for child in (
                lp.with_bound(frac, upper=math.floor(value)),
                lp.with_bound(frac, lower=math.ceil(value)),
            ):
                # Seed the child's simplex from the parent's optimal basis:
                # the child differs by one appended bound row, so the dual
                # simplex usually reoptimizes in a handful of pivots.
                child_sol = solve_lp(child, warm_start=relaxed.basis)
                if child_sol.status is SolutionStatus.OPTIMAL:
                    if child_sol.objective < prune_threshold():
                        heapq.heappush(
                            heap, (child_sol.objective, next(counter), child, child_sol)
                        )

        if best_x is None:
            status = (
                SolutionStatus.ITERATION_LIMIT if nodes >= max_nodes else SolutionStatus.INFEASIBLE
            )
            return _observed(Solution(status=status, work=nodes), incumbent_updates, span)
        status = SolutionStatus.OPTIMAL if nodes < max_nodes or not heap else SolutionStatus.ITERATION_LIMIT
        return _observed(
            Solution(status=status, x=best_x, objective=best_obj, work=nodes),
            incumbent_updates,
            span,
        )


def _observed(solution: Solution, incumbent_updates: int, span: TimerSpan) -> Solution:
    """Emit the ``ilp.solve`` event/metrics for one finished MILP solve."""
    if obs.enabled():
        obs.count("ilp.solves")
        obs.count("ilp.nodes_expanded", solution.work)
        obs.emit(
            "ilp.solve",
            status=solution.status.value,
            nodes=solution.work,
            incumbent_updates=incumbent_updates,
            objective=solution.objective,
        )
    return solution
