"""Exact linear and integer optimization, implemented from scratch.

The paper solves the exploitation-phase energy minimization (Eqn. 1,
restricted to the observed Pareto set) as an Integer Linear Program with
Gurobi's branch-and-bound (§5.2, "Optimization solver").  Gurobi is
proprietary, so this subpackage provides the same capability natively:

* :mod:`repro.ilp.simplex` — a dense two-phase primal simplex solver;
* :mod:`repro.ilp.branch_and_bound` — LP-relaxation branch-and-bound for
  mixed-integer programs;
* :mod:`repro.ilp.schedule` — the specialized job-schedule problem BoFL
  actually solves each round, with a fast pair-mixing warm start that the
  branch-and-bound uses as its incumbent.
"""

from repro.ilp.model import IntegerProgram, LinearProgram, Solution, SolutionStatus
from repro.ilp.simplex import solve_lp
from repro.ilp.branch_and_bound import solve_milp
from repro.ilp.schedule import (
    ScheduleProblem,
    solve_schedule,
    solve_schedule_greedy,
    solve_schedule_pairs,
)

__all__ = [
    "IntegerProgram",
    "LinearProgram",
    "ScheduleProblem",
    "Solution",
    "SolutionStatus",
    "solve_lp",
    "solve_milp",
    "solve_schedule",
    "solve_schedule_greedy",
    "solve_schedule_pairs",
]
