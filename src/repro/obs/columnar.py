"""Streaming columnar trace format: chunked column groups, bounded memory.

Row-per-event JSONL is the wrong shape at fleet scale: a 100k-client
composition emits millions of events, every one repeating its payload
keys, and :func:`repro.obs.events.read_jsonl` loads the whole file before
the first event is usable.  The columnar format fixes both ends:

* **Writing** (:class:`ColumnarTraceWriter`): events accumulate in an
  in-memory chunk of at most ``chunk_events``; a full chunk is encoded as
  *one* JSON line of column vectors and spilled to disk immediately, so
  writer memory is O(chunk), never O(trace).  Within a chunk, each
  payload key appears **once**, followed by the rows that carry it —
  sparse columns for a heterogeneous event stream.
* **Reading** (:func:`iter_columnar`): chunks decode lazily, one line at
  a time, yielding :class:`~repro.obs.events.Event` objects in emit
  order; reader memory is likewise O(chunk).
* **Dispatch** (:func:`iter_trace_events`): sniffs the first line and
  streams either format, so every trace consumer (``repro trace``,
  ``repro fleet report``) replays legacy JSONL and columnar traces
  through one code path.

On-disk layout (text, JSON Lines — no new dependencies, diffable, and
deterministic: the same event stream always produces the same bytes):

    {"format": "repro-columnar-trace", "version": 1, "trace_format_version": 1}
    {"chunk": 3, "kinds": ["fleet.enqueue", "fleet.round"], "kind": [0, 0, 1],
     "t": [1.5, 2.5, 2.5], "cols": {"client": [[0, 1], ["c0", "c1"]], ...}}
    ...

``kinds`` is the chunk-local kind dictionary (first-appearance order),
``kind`` the per-event code into it, ``t`` the per-event timestamp, and
each column in ``cols`` is a ``[rows, values]`` pair: the ascending
chunk-local row indices that carry the key, and their values.  The header
carries both the columnar container version and the event-schema version
(:data:`~repro.obs.events.TRACE_FORMAT_VERSION`), and readers reject
either being newer than they understand.
"""

from __future__ import annotations

import json
import pathlib
from collections.abc import Iterable, Iterator
from types import TracebackType
from typing import IO, Optional, Union

from repro.errors import ConfigurationError
from repro.obs.events import TRACE_FORMAT_VERSION, Event

#: First-line marker distinguishing columnar containers from JSONL.
COLUMNAR_FORMAT = "repro-columnar-trace"

#: Bump when the chunk encoding changes shape.
COLUMNAR_VERSION = 1

#: Default events per chunk: large enough to amortize keys, small enough
#: that reader/writer memory stays in the low megabytes.
DEFAULT_CHUNK_EVENTS = 4096


class ColumnarTraceWriter:
    """Stream events to a columnar trace file with bounded memory.

    Usable as a context manager, and directly as an
    ``event_sink`` for :class:`~repro.obs.events.EventLog` — pass
    :meth:`write_event`.  The header line is written eagerly on open so
    even an empty (or crashed) capture is sniffable.
    """

    def __init__(
        self,
        path: Union[str, pathlib.Path],
        chunk_events: int = DEFAULT_CHUNK_EVENTS,
    ) -> None:
        if chunk_events < 1:
            raise ConfigurationError(
                f"chunk_events must be >= 1, got {chunk_events}"
            )
        self.path = pathlib.Path(path)
        self.chunk_events = chunk_events
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle: Optional[IO[str]] = self.path.open("w")
        self._handle.write(
            json.dumps(
                {
                    "format": COLUMNAR_FORMAT,
                    "version": COLUMNAR_VERSION,
                    "trace_format_version": TRACE_FORMAT_VERSION,
                }
            )
            + "\n"
        )
        #: Flush eagerly: a crashed capture must still sniff as columnar.
        self._handle.flush()
        self._buffer: list[Event] = []
        #: Total events written (header and chunk framing excluded).
        self.written = 0

    # -- writing -----------------------------------------------------------

    def write_event(self, event: Event) -> None:
        """Append one event; spills a chunk line when the buffer fills."""
        if self._handle is None:
            raise ConfigurationError(
                f"columnar trace {self.path} is already closed"
            )
        self._buffer.append(event)
        self.written += 1
        if len(self._buffer) >= self.chunk_events:
            self._flush_chunk()

    def _flush_chunk(self) -> None:
        if not self._buffer or self._handle is None:
            return
        kinds: list[str] = []
        kind_index: dict[str, int] = {}
        codes: list[int] = []
        times: list[float] = []
        cols: dict[str, tuple[list[int], list[object]]] = {}
        for row, event in enumerate(self._buffer):
            code = kind_index.get(event.kind)
            if code is None:
                code = len(kinds)
                kind_index[event.kind] = code
                kinds.append(event.kind)
            codes.append(code)
            times.append(event.t)
            for key, value in event.payload.items():
                column = cols.get(key)
                if column is None:
                    column = ([], [])
                    cols[key] = column
                column[0].append(row)
                column[1].append(value)
        chunk = {
            "chunk": len(self._buffer),
            "kinds": kinds,
            "kind": codes,
            "t": times,
            "cols": {
                key: [rows, values]
                for key, (rows, values) in sorted(cols.items())
            },
        }
        self._handle.write(json.dumps(chunk, sort_keys=True) + "\n")
        self._buffer = []

    def close(self) -> None:
        """Flush the partial chunk and close the file (idempotent)."""
        if self._handle is None:
            return
        self._flush_chunk()
        self._handle.close()
        self._handle = None

    def __enter__(self) -> "ColumnarTraceWriter":
        return self

    def __exit__(
        self,
        exc_type: Optional[type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        self.close()


def write_columnar(
    path: Union[str, pathlib.Path],
    events: Iterable[Event],
    chunk_events: int = DEFAULT_CHUNK_EVENTS,
) -> pathlib.Path:
    """Write ``events`` to ``path`` in the columnar format."""
    with ColumnarTraceWriter(path, chunk_events=chunk_events) as writer:
        for event in events:
            writer.write_event(event)
    return pathlib.Path(path)


# -- reading ----------------------------------------------------------------


def _decode_chunk(
    raw: dict[str, object], path: pathlib.Path, lineno: int
) -> Iterator[Event]:
    try:
        n = int(raw["chunk"])  # type: ignore[arg-type]
        kinds = list(raw["kinds"])  # type: ignore[call-overload]
        codes = list(raw["kind"])  # type: ignore[call-overload]
        times = list(raw["t"])  # type: ignore[call-overload]
        cols = dict(raw["cols"])  # type: ignore[call-overload, arg-type]
    except (KeyError, TypeError, ValueError) as error:
        raise ConfigurationError(
            f"{path}:{lineno} is not a valid columnar chunk: {error}"
        ) from error
    if len(codes) != n or len(times) != n:
        raise ConfigurationError(
            f"{path}:{lineno} chunk declares {n} events but carries "
            f"{len(codes)} kind codes and {len(times)} timestamps"
        )
    payloads: list[dict[str, object]] = [{} for _ in range(n)]
    for key, column in cols.items():
        rows, values = column
        if len(rows) != len(values):
            raise ConfigurationError(
                f"{path}:{lineno} column {key!r} has {len(rows)} rows "
                f"but {len(values)} values"
            )
        for row, value in zip(rows, values):
            if not 0 <= row < n:
                raise ConfigurationError(
                    f"{path}:{lineno} column {key!r} references row {row} "
                    f"outside the chunk of {n}"
                )
            payloads[row][key] = value
    for i in range(n):
        code = codes[i]
        if not 0 <= code < len(kinds):
            raise ConfigurationError(
                f"{path}:{lineno} event {i} has kind code {code} outside "
                f"the chunk dictionary of {len(kinds)}"
            )
        yield Event(
            kind=str(kinds[code]), t=float(times[i]), payload=payloads[i]
        )


def _check_header(raw: dict[str, object], path: pathlib.Path) -> None:
    version = raw.get("version")
    if version != COLUMNAR_VERSION:
        raise ConfigurationError(
            f"{path} has columnar container version {version!r}; "
            f"this library reads version {COLUMNAR_VERSION}"
        )
    schema = raw.get("trace_format_version")
    if schema != TRACE_FORMAT_VERSION:
        raise ConfigurationError(
            f"{path} has trace format version {schema!r}; "
            f"this library reads version {TRACE_FORMAT_VERSION}"
        )


def iter_columnar(path: Union[str, pathlib.Path]) -> Iterator[Event]:
    """Stream events out of a columnar trace, one chunk in memory at a time."""
    path = pathlib.Path(path)
    try:
        handle = path.open()
    except OSError as error:
        raise ConfigurationError(f"cannot read trace {path}: {error}") from error
    with handle:
        header_seen = False
        for lineno, line in enumerate(handle, start=1):
            if not line.strip():
                continue
            try:
                raw = json.loads(line)
            except json.JSONDecodeError as error:
                raise ConfigurationError(
                    f"{path}:{lineno} is not valid JSON: {error}"
                ) from error
            if not isinstance(raw, dict):
                raise ConfigurationError(
                    f"{path}:{lineno} is not a columnar record"
                )
            if not header_seen:
                if raw.get("format") != COLUMNAR_FORMAT:
                    raise ConfigurationError(
                        f"{path} does not start with a columnar header "
                        f"(use iter_trace_events for format dispatch)"
                    )
                _check_header(raw, path)
                header_seen = True
                continue
            yield from _decode_chunk(raw, path, lineno)


def sniff_format(path: Union[str, pathlib.Path]) -> str:
    """``"columnar"`` or ``"jsonl"``, from the first line of ``path``.

    Anything that is not a columnar header — including an empty file —
    is treated as JSONL, whose reader then applies its own validation.
    """
    path = pathlib.Path(path)
    try:
        with path.open() as handle:
            first = handle.readline()
    except OSError as error:
        raise ConfigurationError(f"cannot read trace {path}: {error}") from error
    try:
        raw = json.loads(first) if first.strip() else None
    except json.JSONDecodeError:
        return "jsonl"
    if isinstance(raw, dict) and raw.get("format") == COLUMNAR_FORMAT:
        return "columnar"
    return "jsonl"


def _iter_jsonl(path: pathlib.Path) -> Iterator[Event]:
    """Stream a legacy JSONL trace line by line (same validation as
    :func:`~repro.obs.events.read_jsonl`, without materializing the file)."""
    try:
        handle = path.open()
    except OSError as error:
        raise ConfigurationError(f"cannot read trace {path}: {error}") from error
    with handle:
        for lineno, line in enumerate(handle, start=1):
            if not line.strip():
                continue
            try:
                raw = json.loads(line)
            except json.JSONDecodeError as error:
                raise ConfigurationError(
                    f"{path}:{lineno} is not valid JSON: {error}"
                ) from error
            if not isinstance(raw, dict):
                raise ConfigurationError(
                    f"{path}:{lineno} is not an event object"
                )
            if raw.get("kind") == "trace.header":
                version = raw.get("format_version")
                if version != TRACE_FORMAT_VERSION:
                    raise ConfigurationError(
                        f"{path} has trace format version {version!r}; "
                        f"this library reads version {TRACE_FORMAT_VERSION}"
                    )
                continue
            yield Event.from_dict(raw)


def iter_trace_events(path: Union[str, pathlib.Path]) -> Iterator[Event]:
    """Stream a trace in either format (sniffed from the first line).

    The one entry point every trace consumer should use: legacy JSONL
    and columnar traces of the same event stream yield identical
    :class:`Event` sequences, with memory bounded by one line / one
    chunk rather than the file size.
    """
    path = pathlib.Path(path)
    if sniff_format(path) == "columnar":
        return iter_columnar(path)
    return _iter_jsonl(path)


def read_trace_events(path: Union[str, pathlib.Path]) -> list[Event]:
    """Materialize :func:`iter_trace_events` (small traces, tests)."""
    return list(iter_trace_events(path))
