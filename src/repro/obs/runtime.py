"""The process-global observability switch and emit facade.

Instrumented layers never hold an :class:`~repro.obs.events.EventLog`
directly; they call the module functions here, which no-op (one attribute
load and a ``None`` check) unless a session is active.  Observability is
**disabled by default** — the instrumented hot paths must stay within
noise of un-instrumented benchmark numbers — and is turned on either
explicitly::

    from repro import obs

    with obs.session() as session:
        run_campaign(...)
    session.log.dump_jsonl("trace.jsonl")

or for a whole process with :func:`enable` / :func:`disable`.

Worker processes spawned by the parallel executor inherit the *default*
(disabled) state: traces are a serial-path feature, and parallel results
are byte-identical with or without an active session in the parent.
"""

from __future__ import annotations

import contextlib
from collections.abc import Callable, Iterator
from typing import Optional

from repro.obs.events import Event, EventLog
from repro.obs.metrics import NULL_TIMER, Metrics, TimerSpan


class ObsSession:
    """One activation of the observability layer: an event log + metrics.

    ``deterministic=True`` captures a seed-reproducible trace: wall-clock
    payload fields are stripped at emit time (see
    :data:`repro.obs.events.WALL_CLOCK_PAYLOAD_KEYS`).
    """

    def __init__(
        self,
        capacity: Optional[int] = None,
        deterministic: bool = False,
        event_sink: Optional[Callable[[Event], None]] = None,
    ) -> None:
        self.log = EventLog(
            capacity=capacity, deterministic=deterministic, event_sink=event_sink
        )
        self.metrics = Metrics()


#: The active session, or None (disabled — the default).
_ACTIVE: Optional[ObsSession] = None


def enabled() -> bool:
    """Whether an observability session is currently active."""
    return _ACTIVE is not None


def current() -> Optional[ObsSession]:
    """The active session, or None."""
    return _ACTIVE


def enable(
    capacity: Optional[int] = None,
    deterministic: bool = False,
    event_sink: Optional[Callable[[Event], None]] = None,
) -> ObsSession:
    """Activate a fresh session (replacing any active one) and return it."""
    global _ACTIVE
    _ACTIVE = ObsSession(
        capacity=capacity, deterministic=deterministic, event_sink=event_sink
    )
    return _ACTIVE


def disable() -> None:
    """Deactivate observability; subsequent emits are no-ops."""
    global _ACTIVE
    _ACTIVE = None


@contextlib.contextmanager
def suspended() -> Iterator[None]:
    """Context manager: deactivate observability, restore it after.

    The inverse of :func:`session` for mixed-phase drivers: code that
    interleaves executor-sharded trace gathering (whose cache/cell
    events depend on worker count and cache warmth) with pure
    composition runs the gathering under ``suspended()`` so a
    deterministic trace captures only the composition.  The PBT driver
    relies on this for its serial==sharded byte-identity gate.
    """
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = None
    try:
        yield
    finally:
        _ACTIVE = previous


@contextlib.contextmanager
def session(
    capacity: Optional[int] = None,
    deterministic: bool = False,
    event_sink: Optional[Callable[[Event], None]] = None,
) -> Iterator[ObsSession]:
    """Context manager: activate a session, restore the previous state after.

    Nested sessions are allowed; the inner one simply shadows the outer
    for its duration (tests rely on this for isolation).  ``event_sink``
    streams every event to a callable at emit time — pair it with a small
    ``capacity`` for bounded-memory trace capture at fleet scale.
    """
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = ObsSession(
        capacity=capacity, deterministic=deterministic, event_sink=event_sink
    )
    try:
        yield _ACTIVE
    finally:
        _ACTIVE = previous


# -- the facade the instrumented layers call --------------------------------


def emit(kind: str, t: float = 0.0, **payload: object) -> None:
    """Record an event on the active session; no-op when disabled."""
    active = _ACTIVE
    if active is not None:
        active.log.emit(kind, t, **payload)


def count(name: str, amount: float = 1) -> None:
    """Increment a counter on the active session; no-op when disabled."""
    active = _ACTIVE
    if active is not None:
        active.metrics.count(name, amount)


def gauge(name: str, value: float) -> None:
    """Set a gauge on the active session; no-op when disabled."""
    active = _ACTIVE
    if active is not None:
        active.metrics.gauge(name, value)


def observe(name: str, value: float) -> None:
    """Histogram observation on the active session; no-op when disabled."""
    active = _ACTIVE
    if active is not None:
        active.metrics.observe(name, value)


def timer(name: str) -> "TimerSpan":
    """A timing span on the active session; a shared no-op when disabled."""
    active = _ACTIVE
    if active is None:
        return NULL_TIMER
    return active.metrics.timer(name)
