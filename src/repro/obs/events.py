"""Typed, timestamped event records and the process-local event log.

An :class:`Event` is one thing a subsystem did — a guardian decision, an
MBO refit, a phase transition — stamped with the *simulated* clock (or a
caller-chosen time base) and carrying a flat JSON-safe payload.  The
:class:`EventLog` collects them in memory (optionally as a bounded ring)
and serializes to JSON Lines, one event per line, so traces can be
archived, diffed, and replayed through the analysis renderers.

Event kinds follow a ``layer.verb`` naming scheme; the authoritative list
lives in ``docs/observability.md``.
"""

from __future__ import annotations

import json
import pathlib
from collections import Counter, deque
from dataclasses import dataclass, field
from collections.abc import Callable, Iterable, Iterator
from typing import IO, Optional, Union

from repro.errors import ConfigurationError

#: Bump when the serialized event layout changes; readers reject newer
#: traces instead of misinterpreting them.
TRACE_FORMAT_VERSION = 1

#: The authoritative registry of event kinds the library may emit.
#:
#: ``repro lint`` (rule ``obs-event-kind``) statically rejects any
#: ``emit()`` call site in ``src/repro/`` whose kind is not a literal
#: member of this set, so the schema that ``repro trace`` replays stays
#: closed: adding a kind means registering it here *and* documenting its
#: payload in ``docs/observability.md``.  Tests and ad-hoc scripts are
#: outside the rule's scope and may emit anything.
EVENT_KINDS = frozenset(
    {
        "trace.header",
        "campaign.start",
        "campaign.end",
        "campaign.front",
        "campaign.cache",
        "controller.round",
        "controller.phase_transition",
        "mbo.run",
        "mbo.fit",
        "mbo.suggest",
        "mbo.jitter_escalated",
        "guardian.decision",
        "ilp.solve",
        "executor.cell",
        "server.round",
        "server.round_failed",
        "server.aggregation_fallback",
        "fleet.start",
        "fleet.topology",
        "fleet.enqueue",
        "fleet.aggregate",
        "fleet.staleness_drop",
        "fleet.round",
        "fleet.end",
        "hierarchy.edge_aggregate",
        "hierarchy.aggregate",
        "service.start",
        "service.evaluate",
        "service.decision",
        "service.degraded",
        "service.end",
        "loadgen.pass",
        "servertune.knobs",
        "servertune.override",
        "servertune.halt",
        "servertune.member",
        "servertune.mutation",
        "servertune.generation",
        "servertune.frontier",
        "chaos.schedule",
        "fault.injected",
        "fault.cleared",
        "recovery.checkpoint",
        "recovery.restore",
        "recovery.escalation",
    }
)


#: Payload keys that carry wall-clock durations — the only
#: nondeterministic data the event schema permits (``t`` is always
#: simulated or round-relative time).  Deterministic trace capture
#: (``EventLog(deterministic=True)``) drops these keys at emit time so a
#: fixed seed yields byte-identical JSONL traces across runs; the chaos
#: determinism gate relies on this.
WALL_CLOCK_PAYLOAD_KEYS = frozenset({"seconds", "wall_seconds"})


def is_registered_kind(kind: str) -> bool:
    """Whether ``kind`` is part of the documented event schema."""
    return kind in EVENT_KINDS


@dataclass(frozen=True)
class Event:
    """One timestamped observation of subsystem behaviour.

    ``t`` is in seconds on whatever clock the emitter used — simulated
    time for device-bound layers, round-relative elapsed time for the
    guardian, wall-clock durations never (those belong in the payload).
    """

    kind: str
    t: float = 0.0
    payload: dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.kind:
            raise ConfigurationError("event kind must be a non-empty string")

    @property
    def layer(self) -> str:
        """The subsystem prefix of :attr:`kind` (``"guardian.decision"`` -> ``"guardian"``)."""
        return self.kind.split(".", 1)[0]

    def to_dict(self) -> dict[str, object]:
        return {"kind": self.kind, "t": self.t, **self.payload}

    @classmethod
    def from_dict(cls, raw: dict[str, object]) -> "Event":
        if not isinstance(raw, dict) or "kind" not in raw:
            raise ConfigurationError(f"not an event record: {raw!r}")
        payload = {k: v for k, v in raw.items() if k not in ("kind", "t")}
        return cls(kind=str(raw["kind"]), t=float(raw.get("t", 0.0)), payload=payload)


class EventLog:
    """Process-local, append-only event collector.

    Parameters
    ----------
    capacity:
        When set, keep only the most recent ``capacity`` events (a ring
        buffer) so always-on instrumentation stays bounded in memory.
        ``None`` keeps everything.
    sink:
        An optional open text stream; every event is additionally written
        to it as one JSON line at emit time (streaming trace capture).
    event_sink:
        An optional callable receiving every :class:`Event` at emit time
        (after deterministic stripping) — the hook structured writers
        like :class:`repro.obs.columnar.ColumnarTraceWriter` attach to.
    deterministic:
        When True, strip :data:`WALL_CLOCK_PAYLOAD_KEYS` from every
        payload at emit time so the captured trace is a pure function of
        the simulation seed (byte-identical across runs).
    """

    def __init__(
        self,
        capacity: Optional[int] = None,
        sink: Optional[IO[str]] = None,
        deterministic: bool = False,
        event_sink: Optional[Callable[["Event"], None]] = None,
    ) -> None:
        if capacity is not None and capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.sink = sink
        self.event_sink = event_sink
        self.deterministic = deterministic
        self._events: deque[Event] = deque(maxlen=capacity)
        #: Total events ever emitted (survives ring eviction).
        self.emitted = 0

    # -- writing -----------------------------------------------------------

    def emit(self, kind: str, t: float = 0.0, **payload: object) -> Event:
        """Record one event and return it."""
        if self.deterministic:
            payload = {
                k: v for k, v in payload.items()
                if k not in WALL_CLOCK_PAYLOAD_KEYS
            }
        event = Event(kind=kind, t=float(t), payload=payload)
        self._events.append(event)
        self.emitted += 1
        if self.sink is not None:
            self.sink.write(json.dumps(event.to_dict(), sort_keys=True) + "\n")
        if self.event_sink is not None:
            self.event_sink(event)
        return event

    # -- reading -----------------------------------------------------------

    def events(self, kind: Optional[str] = None) -> list[Event]:
        """All retained events, optionally filtered by exact kind."""
        if kind is None:
            return list(self._events)
        return [e for e in self._events if e.kind == kind]

    def counts_by_kind(self) -> dict[str, int]:
        """Retained event counts keyed by kind."""
        return dict(Counter(e.kind for e in self._events))

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    def clear(self) -> None:
        self._events.clear()

    # -- JSONL -------------------------------------------------------------

    def dump_jsonl(self, path: Union[str, pathlib.Path]) -> pathlib.Path:
        """Write the retained events to ``path`` as JSON Lines.

        The first line is a header record carrying the trace format
        version; :func:`read_jsonl` validates it.
        """
        path = pathlib.Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w") as handle:
            handle.write(
                json.dumps({"kind": "trace.header", "t": 0.0,
                            "format_version": TRACE_FORMAT_VERSION}) + "\n"
            )
            for event in self._events:
                handle.write(json.dumps(event.to_dict(), sort_keys=True) + "\n")
        return path


def read_jsonl(path: Union[str, pathlib.Path]) -> list[Event]:
    """Load a JSONL trace written by :meth:`EventLog.dump_jsonl`.

    Raises :class:`ConfigurationError` on unreadable files, malformed
    lines, or an unsupported format version.  A missing header is
    tolerated (streaming sinks don't write one) as long as every line
    parses as an event.
    """
    path = pathlib.Path(path)
    try:
        text = path.read_text()
    except OSError as error:
        raise ConfigurationError(f"cannot read trace {path}: {error}") from error
    events: list[Event] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            raw = json.loads(line)
        except json.JSONDecodeError as error:
            raise ConfigurationError(
                f"{path}:{lineno} is not valid JSON: {error}"
            ) from error
        if not isinstance(raw, dict):
            raise ConfigurationError(f"{path}:{lineno} is not an event object")
        if raw.get("kind") == "trace.header":
            version = raw.get("format_version")
            if version != TRACE_FORMAT_VERSION:
                raise ConfigurationError(
                    f"{path} has trace format version {version!r}; "
                    f"this library reads version {TRACE_FORMAT_VERSION}"
                )
            continue
        events.append(Event.from_dict(raw))
    return events


def events_between(
    events: Iterable[Event], start_kind: str, end_kind: str
) -> list[list[Event]]:
    """Split a flat event stream into ``[start, ..., end]`` segments.

    Used to group per-campaign events out of a trace that may contain
    several campaigns back to back.  Events outside any bracket are
    dropped; an unterminated bracket yields its partial segment.
    """
    segments: list[list[Event]] = []
    current: Optional[list[Event]] = None
    for event in events:
        if event.kind == start_kind:
            current = [event]
            continue
        if current is None:
            continue
        current.append(event)
        if event.kind == end_kind:
            segments.append(current)
            current = None
    if current is not None:
        segments.append(current)
    return segments
