"""Trace replay: turn a JSONL event stream back into paper artifacts.

A trace recorded around :func:`repro.sim.runner.run_campaign` contains
everything Table 3 and Fig. 13 are made of — per-round exploration lists,
the final Pareto front, and per-run MBO costs — so both artifacts can be
*derived from the trace alone* and rendered through the existing
``tab3_walkthrough`` / ``fig13_overhead`` renderers.  The regression
suite cross-checks these derivations against the drivers' own outputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Sequence
from typing import Optional

import numpy as np

from repro.analysis.charts import sparkline
from repro.analysis.tables import ascii_table
from repro.errors import ConfigurationError
from repro.obs.events import Event, events_between

#: Config triples travel through JSON as lists; compare as tuples.
ConfigKey = tuple[float, float, float]


def _config_key(raw: Sequence[float]) -> ConfigKey:
    return tuple(float(v) for v in raw)  # type: ignore[return-value]


@dataclass
class MBORunTrace:
    """One ``mbo.run`` event, decoded."""

    round_index: int
    latency: float
    energy: float
    n_observations: int
    batch_size: int


@dataclass
class RoundTrace:
    """One ``controller.round`` event, decoded."""

    round_index: int
    phase: str
    jobs: int
    deadline: float
    elapsed: float
    energy: float
    missed: bool
    guardian_triggered: bool
    exploited_jobs: int
    explored: list[ConfigKey] = field(default_factory=list)


@dataclass
class CampaignTrace:
    """All events of one campaign bracket, decoded and ordered."""

    device: str
    task: str
    controller: str
    deadline_ratio: float
    seed: int
    rounds: list[RoundTrace] = field(default_factory=list)
    mbo_runs: list[MBORunTrace] = field(default_factory=list)
    final_front_configs: list[ConfigKey] = field(default_factory=list)
    phase_transitions: list[dict[str, object]] = field(default_factory=list)

    @property
    def training_energy(self) -> float:
        return sum(r.energy for r in self.rounds)

    @property
    def mbo_energy(self) -> float:
        return sum(m.energy for m in self.mbo_runs)

    @property
    def total_energy(self) -> float:
        return self.training_energy + self.mbo_energy

    @property
    def mbo_overhead_fraction(self) -> float:
        """Fig. 13b: the MBO share of the campaign's total energy."""
        total = self.total_energy
        return self.mbo_energy / total if total > 0 else 0.0

    def explored_on_final_front(self, round_trace: RoundTrace) -> int:
        """Table 3's ``# Pareto``: explored configs on the final front."""
        front = set(self.final_front_configs)
        return sum(1 for config in round_trace.explored if config in front)


def replay_campaigns(events: Sequence[Event]) -> list[CampaignTrace]:
    """Group a flat event stream into per-campaign traces.

    Campaigns are delimited by ``campaign.start`` / ``campaign.end``
    brackets; events outside any bracket (e.g. executor cell timings) are
    ignored here and only surface in :func:`render_summary`.
    """
    traces: list[CampaignTrace] = []
    for segment in events_between(events, "campaign.start", "campaign.end"):
        start = segment[0].payload
        trace = CampaignTrace(
            device=str(start.get("device", "?")),
            task=str(start.get("task", "?")),
            controller=str(start.get("controller", "?")),
            deadline_ratio=float(start.get("deadline_ratio", 0.0)),
            seed=int(start.get("seed", 0)),
        )
        for event in segment[1:]:
            payload = event.payload
            if event.kind == "controller.round":
                trace.rounds.append(
                    RoundTrace(
                        round_index=int(payload["round"]),
                        phase=str(payload["phase"]),
                        jobs=int(payload["jobs"]),
                        deadline=float(payload["deadline"]),
                        elapsed=float(payload["elapsed"]),
                        energy=float(payload["energy"]),
                        missed=bool(payload["missed"]),
                        guardian_triggered=bool(payload["guardian_triggered"]),
                        exploited_jobs=int(payload["exploited_jobs"]),
                        explored=[_config_key(c) for c in payload.get("explored", [])],
                    )
                )
            elif event.kind == "mbo.run":
                trace.mbo_runs.append(
                    MBORunTrace(
                        round_index=int(payload.get("round", -1)),
                        latency=float(payload["latency"]),
                        energy=float(payload["energy"]),
                        n_observations=int(payload["n_observations"]),
                        batch_size=int(payload["batch_size"]),
                    )
                )
            elif event.kind == "campaign.front":
                trace.final_front_configs = [
                    _config_key(c) for c in payload.get("configs", [])
                ]
            elif event.kind == "controller.phase_transition":
                trace.phase_transitions.append(dict(payload))
        traces.append(trace)
    return traces


# -- Table 3 ----------------------------------------------------------------


def tab3_payload_from_trace(
    traces: Sequence[CampaignTrace],
) -> dict[str, object]:
    """Build the exact payload shape ``tab3_walkthrough.render`` consumes.

    Considers only BoFL campaigns; rows stop at the first exploitation
    round, mirroring the driver.
    """
    bofl = [t for t in traces if t.controller == "bofl"]
    if not bofl:
        raise ConfigurationError("trace contains no bofl campaign to derive Table 3 from")
    tasks: dict[str, dict[str, object]] = {}
    for trace in bofl:
        rows: list[dict[str, object]] = []
        for round_trace in trace.rounds:
            if round_trace.phase == "exploitation":
                break
            rows.append(
                {
                    "round": round_trace.round_index + 1,
                    "phase": round_trace.phase,
                    "explored": len(round_trace.explored),
                    "pareto": trace.explored_on_final_front(round_trace),
                }
            )
        tasks[trace.task] = {
            "rows": rows,
            "total_explored": sum(r["explored"] for r in rows),
            "total_pareto": sum(r["pareto"] for r in rows),
            "random_rounds": sum(1 for r in rows if r["phase"] == "random_exploration"),
            "mbo_rounds": sum(1 for r in rows if r["phase"] == "pareto_construction"),
        }
    return {
        "ratio": bofl[0].deadline_ratio,
        "device": bofl[0].device,
        "tasks": tasks,
    }


# -- Fig. 13 ----------------------------------------------------------------


def fig13_payload_from_trace(traces: Sequence[CampaignTrace]) -> dict[str, object]:
    """Build the payload shape ``fig13_overhead.render`` consumes."""
    from repro.experiments.fig13_overhead import PAPER_BANDS

    bofl = [t for t in traces if t.controller == "bofl"]
    if not bofl:
        raise ConfigurationError("trace contains no bofl campaign to derive Fig. 13 from")
    per_device: dict[str, dict[str, object]] = {}
    overall: dict[str, float] = {}
    by_device: dict[str, list[CampaignTrace]] = {}
    for trace in bofl:
        by_device.setdefault(trace.device, []).append(trace)
        overall[f"{trace.device}/{trace.task}"] = trace.mbo_overhead_fraction
    for device, device_traces in by_device.items():
        latencies = [m.latency for t in device_traces for m in t.mbo_runs]
        energies = [m.energy for t in device_traces for m in t.mbo_runs]
        per_device[device] = {
            "mean_latency": float(np.mean(latencies)) if latencies else 0.0,
            "max_latency": float(np.max(latencies)) if latencies else 0.0,
            "mean_energy": float(np.mean(energies)) if energies else 0.0,
            "max_energy": float(np.max(energies)) if energies else 0.0,
            "runs": len(latencies),
        }
    return {
        "per_device": per_device,
        "overall": overall,
        "paper_bands": PAPER_BANDS,
        "ratio": bofl[0].deadline_ratio,
    }


# -- summary ----------------------------------------------------------------


def render_summary(events: Sequence[Event]) -> str:
    """A human-oriented overview of a trace: kinds, campaigns, activity."""
    if not events:
        return "(empty trace)"
    counts: dict[str, int] = {}
    for event in events:
        counts[event.kind] = counts.get(event.kind, 0) + 1
    kind_table = ascii_table(
        ["kind", "events"],
        [(kind, counts[kind]) for kind in sorted(counts)],
        title="Event counts",
    )
    lines = [kind_table]
    traces = replay_campaigns(events)
    if traces:
        rows = []
        for trace in traces:
            label = (
                f"{trace.device}/{trace.task}/{trace.controller}"
                f"/r{trace.deadline_ratio:g}/s{trace.seed}"
            )
            rows.append(
                (
                    label,
                    len(trace.rounds),
                    sum(len(r.explored) for r in trace.rounds),
                    len(trace.mbo_runs),
                    f"{trace.total_energy:.0f}",
                    f"{trace.mbo_overhead_fraction * 100:.2f}%",
                )
            )
        lines.append("")
        lines.append(
            ascii_table(
                ["campaign", "rounds", "explored", "MBO runs", "energy (J)", "MBO share"],
                rows,
                title="Campaigns",
            )
        )
        for trace in traces:
            if trace.rounds:
                energy_series = [r.energy for r in trace.rounds]
                lines.append("")
                lines.append(
                    f"per-round energy {trace.device}/{trace.task}/{trace.controller}: "
                    f"{sparkline(energy_series)}"
                )
    return "\n".join(lines)


def render_view(events: Sequence[Event], view: str) -> str:
    """Render one of the supported trace views (``summary``/``tab3``/``fig13``)."""
    if view == "summary":
        return render_summary(events)
    traces = replay_campaigns(events)
    if view == "tab3":
        from repro.experiments.tab3_walkthrough import render as render_tab3

        return render_tab3(tab3_payload_from_trace(traces))
    if view == "fig13":
        from repro.experiments.fig13_overhead import render as render_fig13

        return render_fig13(fig13_payload_from_trace(traces))
    raise ConfigurationError(
        f"unknown trace view {view!r}; available: summary, tab3, fig13"
    )


def derive_overhead_fractions(
    traces: Sequence[CampaignTrace],
) -> dict[tuple[str, str], float]:
    """Fig. 13b fractions keyed by ``(device, task)`` (cross-check hook)."""
    return {
        (t.device, t.task): t.mbo_overhead_fraction
        for t in traces
        if t.controller == "bofl"
    }


def derive_tab3_counts(
    trace: CampaignTrace,
) -> list[tuple[int, str, int, int]]:
    """Per-round ``(round, phase, explored, pareto)`` rows (cross-check hook)."""
    rows: list[tuple[int, str, int, int]] = []
    for round_trace in trace.rounds:
        if round_trace.phase == "exploitation":
            break
        rows.append(
            (
                round_trace.round_index,
                round_trace.phase,
                len(round_trace.explored),
                trace.explored_on_final_front(round_trace),
            )
        )
    return rows


def find_campaign(
    traces: Sequence[CampaignTrace],
    *,
    device: Optional[str] = None,
    task: Optional[str] = None,
    controller: Optional[str] = None,
) -> CampaignTrace:
    """The first trace matching every given filter, or raise."""
    for trace in traces:
        if device is not None and trace.device != device:
            continue
        if task is not None and trace.task != task:
            continue
        if controller is not None and trace.controller != controller:
            continue
        return trace
    raise ConfigurationError(
        f"no campaign in trace matches device={device!r} task={task!r} "
        f"controller={controller!r}"
    )
