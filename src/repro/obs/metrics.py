"""In-process metrics: counters, gauges, and histogram timers.

A :class:`Metrics` registry is cheap enough to leave enabled in
benchmarks: counters and gauges are single dict operations and a
histogram observation is a handful of float updates (count/sum/min/max),
with no per-sample allocation.  Timers wrap ``time.perf_counter`` in a
context manager and feed a histogram, so wall-clock costs (GP refits,
ILP solves, campaign cells) become queryable distributions.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Protocol

from repro.errors import ConfigurationError

#: Every counter name the tree may record.  Entries ending in ``*`` are
#: sanctioned dynamic families (f-string counters keyed by a small
#: enum-like suffix).  ``repro analyze`` closes this registry in both
#: directions — an unregistered count() call and a dead entry here are
#: both findings — so keep it in lockstep with the emitting code.
COUNTER_NAMES = frozenset(
    {
        "campaign.cache_*",
        "controller.explorations",
        "controller.rounds",
        "executor.cells_*",
        "faults.cleared",
        "faults.injected",
        "fleet.aggregations",
        "fleet.compose_shards",
        "fleet.enqueues",
        "fleet.rounds",
        "fleet.staleness_drops",
        "hierarchy.aggregations",
        "hierarchy.edge_aggregations",
        "guardian.checks",
        "guardian.rejections",
        "ilp.lp_warm_attempts",
        "ilp.lp_warm_hits",
        "ilp.nodes_expanded",
        "ilp.solves",
        "mbo.ehvi_evaluations",
        "mbo.gp_fits",
        "mbo.jitter_escalations",
        "mbo.suggest_short_circuits",
        "mbo.warm_fits",
        "perfmodel.tensor_builds",
        "recovery.checkpoints",
        "recovery.escalations",
        "recovery.restores",
        "server.aggregation_fallbacks",
        "server.dropouts",
        "server.failed_rounds",
        "server.rounds",
        "servertune.exploits",
        "servertune.explores",
        "servertune.generations",
        "servertune.halts",
        "servertune.members",
        "servertune.overrides",
        "servertune.rounds",
        "service.cache_hits",
        "service.cache_misses",
        "service.coalesced",
        "service.fallbacks",
        "service.rejections",
        "service.requests",
        "service.timeouts",
    }
)


class TimerSpan(Protocol):
    """Structural type of a timing span: Timer and the shared no-op."""

    @property
    def elapsed(self) -> float: ...

    def __enter__(self) -> "TimerSpan": ...

    def __exit__(self, *exc_info: object) -> None: ...


@dataclass
class Histogram:
    """Streaming summary of one value distribution (no sample retention)."""

    count: int = 0
    total: float = 0.0
    minimum: float = math.inf
    maximum: float = -math.inf
    #: Sum of squares for variance (Welford is overkill at this precision).
    total_sq: float = 0.0

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        self.total_sq += value * value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def variance(self) -> float:
        if self.count < 2:
            return 0.0
        return max(0.0, self.total_sq / self.count - self.mean**2)

    def to_dict(self) -> dict[str, object]:
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.minimum if self.count else 0.0,
            "max": self.maximum if self.count else 0.0,
        }


class Timer:
    """Context manager feeding elapsed wall seconds into a histogram."""

    __slots__ = ("_histogram", "_started", "elapsed")

    def __init__(self, histogram: Histogram) -> None:
        self._histogram = histogram
        self._started = 0.0
        self.elapsed = 0.0

    def __enter__(self) -> "Timer":
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.elapsed = time.perf_counter() - self._started
        self._histogram.observe(self.elapsed)


class _NullTimer:
    """Shared no-op span handed out when observability is disabled."""

    __slots__ = ()
    elapsed = 0.0

    def __enter__(self) -> "_NullTimer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None


NULL_TIMER = _NullTimer()


class Metrics:
    """A named registry of counters, gauges and histograms."""

    def __init__(self) -> None:
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        self.histograms: dict[str, Histogram] = {}

    # -- counters ----------------------------------------------------------

    def count(self, name: str, amount: float = 1) -> None:
        """Increment counter ``name`` by ``amount`` (must be >= 0)."""
        if amount < 0:
            raise ConfigurationError(f"counter increments must be >= 0, got {amount}")
        self.counters[name] = self.counters.get(name, 0) + amount

    def counter(self, name: str) -> float:
        return self.counters.get(name, 0)

    # -- gauges ------------------------------------------------------------

    def gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to its latest value."""
        self.gauges[name] = float(value)

    # -- histograms / timers ----------------------------------------------

    def observe(self, name: str, value: float) -> None:
        """Fold ``value`` into histogram ``name`` (created on first use)."""
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = Histogram()
        histogram.observe(value)

    def timer(self, name: str) -> Timer:
        """A context-manager span recording wall seconds into ``name``."""
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = Histogram()
        return Timer(histogram)

    # -- export ------------------------------------------------------------

    def snapshot(self) -> dict[str, object]:
        """All metric values as one JSON-safe dict."""
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {k: h.to_dict() for k, h in self.histograms.items()},
        }

    def render(self) -> str:
        """Aligned plain-text dump (debugging / trace summaries)."""
        lines: list[str] = []
        rows: list[tuple[str, str]] = []
        for name in sorted(self.counters):
            rows.append((name, f"{self.counters[name]:g}"))
        for name in sorted(self.gauges):
            rows.append((name, f"{self.gauges[name]:g}"))
        for name in sorted(self.histograms):
            h = self.histograms[name]
            rows.append(
                (name, f"n={h.count} mean={h.mean:.6f} min={h.minimum:.6f} max={h.maximum:.6f}")
            )
        if not rows:
            return "(no metrics recorded)"
        width = max(len(name) for name, _ in rows)
        for name, value in rows:
            lines.append(f"{name.ljust(width)} : {value}")
        return "\n".join(lines)
