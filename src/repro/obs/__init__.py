"""``repro.obs`` — the structured observability layer.

Zero-dependency instrumentation for the controller, guardian, MBO loop,
ILP solver, campaign harness and FL server:

* :mod:`repro.obs.events` — typed, timestamped events with a JSONL sink
  and a bounded-memory ring option;
* :mod:`repro.obs.metrics` — counters, gauges and histogram timers cheap
  enough to leave on in benchmarks;
* :mod:`repro.obs.runtime` — the process-global on/off switch (default
  **off**; disabled emits cost one ``None`` check);
* :mod:`repro.obs.trace` — replay a JSONL trace into the existing
  Table 3 / Fig. 13 renderers.

Typical use::

    from repro import obs
    from repro.sim import run_campaign

    with obs.session() as session:
        run_campaign("agx", "vit", "bofl", 2.0, rounds=10, use_cache=False)
    session.log.dump_jsonl("trace.jsonl")

Event kinds and metric names are documented in ``docs/observability.md``.
"""

from repro.obs.columnar import (
    COLUMNAR_FORMAT,
    COLUMNAR_VERSION,
    ColumnarTraceWriter,
    iter_columnar,
    iter_trace_events,
    read_trace_events,
    sniff_format,
    write_columnar,
)
from repro.obs.events import (
    TRACE_FORMAT_VERSION,
    Event,
    EventLog,
    events_between,
    read_jsonl,
)
from repro.obs.metrics import Histogram, Metrics, Timer
from repro.obs.runtime import (
    ObsSession,
    count,
    current,
    disable,
    emit,
    enable,
    enabled,
    gauge,
    observe,
    session,
    suspended,
    timer,
)
from repro.obs.trace import (
    CampaignTrace,
    MBORunTrace,
    RoundTrace,
    derive_overhead_fractions,
    derive_tab3_counts,
    fig13_payload_from_trace,
    find_campaign,
    render_summary,
    render_view,
    replay_campaigns,
    tab3_payload_from_trace,
)

__all__ = [
    "COLUMNAR_FORMAT",
    "COLUMNAR_VERSION",
    "TRACE_FORMAT_VERSION",
    "CampaignTrace",
    "ColumnarTraceWriter",
    "Event",
    "EventLog",
    "Histogram",
    "MBORunTrace",
    "Metrics",
    "ObsSession",
    "RoundTrace",
    "Timer",
    "count",
    "current",
    "derive_overhead_fractions",
    "derive_tab3_counts",
    "disable",
    "emit",
    "enable",
    "enabled",
    "events_between",
    "fig13_payload_from_trace",
    "find_campaign",
    "gauge",
    "iter_columnar",
    "iter_trace_events",
    "observe",
    "read_jsonl",
    "read_trace_events",
    "sniff_format",
    "write_columnar",
    "render_summary",
    "render_view",
    "replay_campaigns",
    "session",
    "suspended",
    "tab3_payload_from_trace",
    "timer",
]
