"""Exact Gaussian-process regression with marginal-likelihood fitting.

A standard zero-mean GP: given observations ``(X, y)`` and a kernel ``k``,

    ``posterior mean   m(x*) = k(x*, X) K^-1 y``
    ``posterior var  v(x*) = k(x*, x*) - k(x*, X) K^-1 k(X, x*)``

with ``K = k(X, X) + noise * I`` factorized once by Cholesky.  Targets are
standardized internally so kernel hyperparameter priors are scale-free.
Hyperparameters (ARD lengthscales, signal variance, noise variance) are
fitted by multi-restart L-BFGS-B on the log marginal likelihood.
"""

from __future__ import annotations

from typing import Callable, Optional, TypeVar

import numpy as np
from scipy import linalg, optimize

from repro.bayesopt.kernels import Kernel, Matern52
from repro.errors import NotFittedError, OptimizationError
from repro.obs import runtime as obs

_T = TypeVar("_T")

#: Geometric growth factor applied to the diagonal bump on each failed
#: Cholesky retry; paired with the bounded retry count below.
_JITTER_GROWTH = 10.0
#: How many escalated retries to attempt before giving up with
#: :class:`OptimizationError` instead of a raw ``LinAlgError``.
_MAX_JITTER_RETRIES = 6


def _bumped(cov: np.ndarray, extra: float) -> np.ndarray:
    """A copy of ``cov`` with ``extra`` added to its diagonal (0.0: as-is)."""
    if extra > 0.0:
        cov = cov.copy()
        cov[np.diag_indices(cov.shape[0])] += extra
    return cov


def _attempt_with_jitter(
    attempt: Callable[[float], _T], *, first_bump: float, where: str, size: int
) -> tuple[_T, float]:
    """Run a factorization attempt under geometric jitter escalation.

    ``attempt`` receives the extra diagonal bump to apply (``0.0`` on the
    first try) and must raise ``LinAlgError`` when the factorization
    fails.  Returns ``(result, extra_jitter_used)``.  Emits one
    ``mbo.jitter_escalated`` event when any escalation was needed; raises
    :class:`OptimizationError` once the bounded retries are exhausted.
    """
    try:
        return attempt(0.0), 0.0
    except linalg.LinAlgError as error:
        last_error: Exception = error
    bump = first_bump
    for retry in range(1, _MAX_JITTER_RETRIES + 1):
        try:
            result = attempt(bump)
        except linalg.LinAlgError as error:
            last_error = error
            bump *= _JITTER_GROWTH
            continue
        if obs.enabled():
            obs.count("mbo.jitter_escalations")
            obs.emit(
                "mbo.jitter_escalated",
                where=where,
                size=size,
                jitter=float(bump),
                retries=retry,
            )
        return result, bump
    raise OptimizationError(
        f"{where}: covariance of size {size} stayed non-positive-definite "
        f"after {_MAX_JITTER_RETRIES} jitter escalations (starting at "
        f"{first_bump:g}, growing x{_JITTER_GROWTH:g} per retry)"
    ) from last_error


class GaussianProcess:
    """Exact GP regression for one scalar objective.

    Parameters
    ----------
    kernel:
        Covariance function; defaults to Matérn-5/2 with unit lengthscales.
    noise_variance:
        Initial observation-noise variance (on standardized targets).
    normalize_y:
        Standardize targets to zero mean / unit variance internally.
    jitter:
        Diagonal stabilizer added to the kernel matrix.
    """

    def __init__(
        self,
        kernel: Optional[Kernel] = None,
        *,
        input_dim: int = 3,
        noise_variance: float = 1e-4,
        normalize_y: bool = True,
        jitter: float = 1e-8,
    ) -> None:
        self.kernel = kernel if kernel is not None else Matern52(np.ones(input_dim))
        if noise_variance <= 0:
            raise OptimizationError("noise_variance must be positive")
        self.noise_variance = float(noise_variance)
        self.normalize_y = normalize_y
        self.jitter = float(jitter)
        self._x: Optional[np.ndarray] = None
        self._y_raw: Optional[np.ndarray] = None
        self._y: Optional[np.ndarray] = None
        self._y_mean = 0.0
        self._y_std = 1.0
        self._chol: Optional[np.ndarray] = None
        self._alpha: Optional[np.ndarray] = None
        #: Extra diagonal jitter the last factorization needed (0.0 almost
        #: always); rank-1 extensions reuse it so appended rows see the
        #: same effective diagonal as the existing factor.
        self._extra_jitter = 0.0
        #: How many times this GP was produced by the O(n^2) fast path of
        #: :meth:`conditioned_on` (transitively); overhead accounting.
        self.rank_one_updates = 0

    # -- fitting ---------------------------------------------------------------

    @property
    def is_fitted(self) -> bool:
        return self._chol is not None

    @property
    def n_observations(self) -> int:
        return 0 if self._x is None else self._x.shape[0]

    def fit(self, x: np.ndarray, y: np.ndarray) -> "GaussianProcess":
        """Condition the GP on data (keeping current hyperparameters)."""
        x = np.atleast_2d(np.asarray(x, dtype=float))
        y = np.asarray(y, dtype=float).ravel()
        if x.shape[0] != y.size:
            raise OptimizationError(f"X has {x.shape[0]} rows but y has {y.size} entries")
        if x.shape[0] == 0:
            raise OptimizationError("cannot fit a GP on zero observations")
        if x.shape[1] != self.kernel.input_dim:
            raise OptimizationError(
                f"X has {x.shape[1]} columns but the kernel expects {self.kernel.input_dim}"
            )
        self._x = x
        self._y_raw = y
        if self.normalize_y:
            self._y_mean = float(y.mean())
            std = float(y.std())
            self._y_std = std if std > 1e-12 else 1.0
        else:
            self._y_mean, self._y_std = 0.0, 1.0
        self._y = (y - self._y_mean) / self._y_std
        self._refactorize()
        return self

    def _refactorize(self) -> None:
        """(Re)compute the Cholesky factorization for current parameters."""
        if self._x is None or self._y is None:
            raise NotFittedError("GP has no observations to factorize")
        n = self._x.shape[0]
        cov = self.kernel(self._x, self._x)
        cov[np.diag_indices(n)] += self.noise_variance + self.jitter
        # Performance surfaces can be nearly flat; escalate the jitter
        # geometrically (bounded retries) instead of failing after one try.
        self._chol, self._extra_jitter = _attempt_with_jitter(
            lambda extra: linalg.cholesky(_bumped(cov, extra), lower=True),
            first_bump=1e-4,
            where="refactorize",
            size=n,
        )
        self._alpha = linalg.cho_solve((self._chol, True), self._y)

    def optimize_hyperparameters(
        self,
        rng: Optional[np.random.Generator] = None,
        n_restarts: int = 2,
        lengthscale_bounds: tuple[float, float] = (0.05, 10.0),
        variance_bounds: tuple[float, float] = (1e-3, 1e3),
        noise_bounds: tuple[float, float] = (1e-6, 1e-1),
    ) -> float:
        """Fit hyperparameters by maximizing the log marginal likelihood.

        Runs L-BFGS-B from the current parameters plus ``n_restarts`` random
        initializations; keeps the best.  Returns the best log marginal
        likelihood found.
        """
        if self._x is None:
            raise NotFittedError("fit() must be called before optimizing hyperparameters")
        rng = rng if rng is not None else np.random.default_rng(0)
        log_bounds = (
            [np.log(lengthscale_bounds)] * self.kernel.input_dim
            + [np.log(variance_bounds)]
            + [np.log(noise_bounds)]
        )

        def objective(theta: np.ndarray) -> float:
            return -self._log_marginal_likelihood(theta)

        starts = [np.concatenate([self.kernel.get_log_params(), [np.log(self.noise_variance)]])]
        for _ in range(n_restarts):
            starts.append(np.array([rng.uniform(lo, hi) for lo, hi in log_bounds]))

        best_theta, best_value = None, np.inf
        for theta0 in starts:
            theta0 = np.clip(theta0, [lo for lo, _ in log_bounds], [hi for _, hi in log_bounds])
            result = optimize.minimize(
                objective, theta0, method="L-BFGS-B", bounds=log_bounds
            )
            if np.isfinite(result.fun) and result.fun < best_value:
                best_value, best_theta = float(result.fun), result.x
        if best_theta is None:
            raise OptimizationError("hyperparameter optimization failed from every start")
        self._apply_theta(best_theta)
        self._refactorize()
        return -best_value

    def _apply_theta(self, theta: np.ndarray) -> None:
        self.kernel.set_log_params(theta[:-1])
        self.noise_variance = float(np.exp(theta[-1]))

    def _log_marginal_likelihood(self, theta: np.ndarray) -> float:
        """LML of the standardized data under hyperparameters ``theta``."""
        if self._x is None or self._y is None:
            raise NotFittedError("GP has no observations for the LML")
        saved_kernel = self.kernel.get_log_params()
        saved_noise = self.noise_variance
        try:
            self._apply_theta(theta)
            n = self._x.shape[0]
            cov = self.kernel(self._x, self._x)
            cov[np.diag_indices(n)] += self.noise_variance + self.jitter
            try:
                chol = linalg.cholesky(cov, lower=True)
            except linalg.LinAlgError:
                return -np.inf
            alpha = linalg.cho_solve((chol, True), self._y)
            lml = (
                -0.5 * float(self._y @ alpha)
                - float(np.sum(np.log(np.diag(chol))))
                - 0.5 * n * np.log(2.0 * np.pi)
            )
            return lml
        finally:
            self.kernel.set_log_params(saved_kernel)
            self.noise_variance = saved_noise

    def log_marginal_likelihood(self) -> float:
        """LML at the current hyperparameters."""
        if self._chol is None:
            raise NotFittedError("GP is not fitted")
        if self._y is None or self._alpha is None:
            raise NotFittedError("GP factorization is incomplete (no alpha)")
        n = self._y.size
        return (
            -0.5 * float(self._y @ self._alpha)
            - float(np.sum(np.log(np.diag(self._chol))))
            - 0.5 * n * np.log(2.0 * np.pi)
        )

    # -- prediction ---------------------------------------------------------

    def predict(self, x_star: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Posterior mean and variance (in raw target units) at ``x_star``."""
        if self._chol is None or self._x is None or self._alpha is None:
            raise NotFittedError("GP is not fitted")
        x_star = np.atleast_2d(np.asarray(x_star, dtype=float))
        k_star = self.kernel(self._x, x_star)  # (n, m)
        mean_std = k_star.T @ self._alpha
        v = linalg.solve_triangular(self._chol, k_star, lower=True)
        var_std = self.kernel.diag(x_star) - np.sum(v**2, axis=0)
        var_std = np.maximum(var_std, 1e-12)
        mean = mean_std * self._y_std + self._y_mean
        var = var_std * self._y_std**2
        return mean, var

    def posterior_samples(
        self, x_star: np.ndarray, n_samples: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Draw joint posterior samples at ``x_star``; shape (n_samples, m).

        Near-singular fantasy covariances (duplicate or near-duplicate
        ``x_star`` rows) get geometrically escalated diagonal jitter
        instead of failing; escalated retries consume additional rng draws
        (deterministically, for a given seed and query set).
        """
        if self._chol is None or self._x is None or self._alpha is None:
            raise NotFittedError("GP is not fitted")
        x_star = np.atleast_2d(np.asarray(x_star, dtype=float))
        k_star = self.kernel(self._x, x_star)
        mean_std = k_star.T @ self._alpha
        v = linalg.solve_triangular(self._chol, k_star, lower=True)
        cov = self.kernel(x_star, x_star) - v.T @ v
        m = cov.shape[0]
        cov[np.diag_indices(m)] += 1e-10
        draws, _ = _attempt_with_jitter(
            lambda extra: rng.multivariate_normal(
                mean_std, _bumped(cov, extra), size=n_samples, method="cholesky"
            ),
            first_bump=1e-8,
            where="posterior_samples",
            size=m,
        )
        return draws * self._y_std + self._y_mean

    def conditioned_on(
        self,
        x_new: np.ndarray,
        y_new: np.ndarray,
        *,
        fast: bool = True,
        l21: Optional[np.ndarray] = None,
    ) -> "GaussianProcess":
        """A new GP with (x_new, y_new) appended — for Kriging-believer batching.

        Hyperparameters are copied, not re-optimized (fantasy updates must
        be cheap; see §4.3, "Batch Selection Strategy").  With ``fast``
        (the default) the existing Cholesky factor is extended by a block
        row in O(n^2) instead of refit from scratch in O(n^3); the two
        paths agree to float rounding (see ``docs/kernel_fastpath.md``).

        ``l21`` optionally supplies the precomputed forward substitution
        ``L^-1 k(X, x_new)`` — e.g. a cached :class:`BatchPosterior`
        column when ``x_new`` is one of its candidates — skipping the
        cross-kernel evaluation and the triangular solve.
        """
        if self._x is None or self._y_raw is None:
            raise NotFittedError("GP is not fitted")
        x_new = np.atleast_2d(np.asarray(x_new, dtype=float))
        y_new = np.ravel(np.asarray(y_new, dtype=float))
        x_all = np.vstack([self._x, x_new])
        y_all = np.concatenate([self._y_raw, y_new])
        clone = GaussianProcess(
            self.kernel.clone(),
            noise_variance=self.noise_variance,
            normalize_y=self.normalize_y,
            jitter=self.jitter,
        )
        if not fast or self._chol is None:
            clone.fit(x_all, y_all)
            return clone
        # Fast path: standardize exactly as fit() would, then extend the
        # factor.  With L the current factor and k the cross-covariances,
        #     L_new = [[L, 0], [l21^T, l22]],
        #     l21 = L^-1 k,   l22 = chol(K_new - l21^T l21)
        # (the Schur complement), so only the new rows cost anything.
        clone._x = x_all
        clone._y_raw = y_all
        if clone.normalize_y:
            clone._y_mean = float(y_all.mean())
            std = float(y_all.std())
            clone._y_std = std if std > 1e-12 else 1.0
        else:
            clone._y_mean, clone._y_std = 0.0, 1.0
        clone._y = (y_all - clone._y_mean) / clone._y_std
        n, m = self._x.shape[0], x_new.shape[0]
        if m == 1:
            # k(x, x) at zero distance is exactly the signal variance; skip
            # the full kernel evaluation on the one-fantasy-per-pick path.
            k_new = self.kernel.diag(x_new)[:, None].copy()
        else:
            k_new = self.kernel(x_new, x_new)
        k_new[np.diag_indices(m)] += (
            self.noise_variance + self.jitter + self._extra_jitter
        )
        if l21 is None:
            k_cross = self.kernel(self._x, x_new)
            l21 = linalg.solve_triangular(
                self._chol, k_cross, lower=True, check_finite=False
            )
        schur = k_new - l21.T @ l21
        if m == 1:
            # A 1x1 Cholesky is a guarded square root (what dpotrf computes).
            def chol_tail(extra: float) -> np.ndarray:
                val = schur[0, 0] + extra
                if not val > 0.0:
                    raise linalg.LinAlgError("1x1 Schur complement not positive")
                return np.array([[np.sqrt(val)]])

        else:
            def chol_tail(extra: float) -> np.ndarray:
                return linalg.cholesky(_bumped(schur, extra), lower=True)

        l22, _ = _attempt_with_jitter(
            chol_tail,
            first_bump=1e-4,
            where="rank1_update",
            size=n + m,
        )
        chol = np.empty((n + m, n + m))
        chol[:n, :n] = self._chol
        chol[:n, n:] = 0.0
        chol[n:, :n] = l21.T
        chol[n:, n:] = l22
        clone._chol = chol
        clone._alpha = linalg.cho_solve((chol, True), clone._y, check_finite=False)
        clone._extra_jitter = self._extra_jitter
        clone.rank_one_updates = self.rank_one_updates + 1
        return clone


class BatchPosterior:
    """Cached posterior over a fixed candidate set, extendable in O(n·m).

    The suggest loop scores the same ~2,000-candidate set against a GP
    that grows by one fantasy observation per pick.  Rebuilding the cross
    covariances ``k(X, C)`` and the forward substitution ``v = L^-1 k``
    from scratch each pick costs O(n^2 m); this cache extends both by one
    row per appended observation instead, so each pick costs O(n m).

    ``predict`` matches :meth:`GaussianProcess.predict` on the same
    points; move to a GP produced by ``gp.conditioned_on(...)`` with
    :meth:`extended` (the new GP must extend this one's observation set).

    Pass ``capacity`` (the number of extensions expected, e.g. the batch
    size) to preallocate the row buffers once: each ``extended`` call then
    appends in place instead of reallocating.  A posterior should be
    extended at most once — extensions share the parent's buffer, and a
    second extension of the same parent would overwrite the first's rows.
    """

    def __init__(
        self,
        gp: GaussianProcess,
        x_candidates: np.ndarray,
        *,
        capacity: int = 0,
    ) -> None:
        chol, x_obs = gp._chol, gp._x
        if chol is None or x_obs is None:
            raise NotFittedError("GP is not fitted")
        self.gp = gp
        self.x_candidates = np.atleast_2d(np.asarray(x_candidates, dtype=float))
        n = x_obs.shape[0]
        k_star = gp.kernel(x_obs, self.x_candidates)
        v = linalg.solve_triangular(chol, k_star, lower=True, check_finite=False)
        cap = n + max(0, int(capacity))
        self._buf_k = np.empty((cap, k_star.shape[1]))
        self._buf_v = np.empty_like(self._buf_k)
        self._buf_k[:n] = k_star
        self._buf_v[:n] = v
        self._n = n
        self._sum_sq: np.ndarray = np.sum(v**2, axis=0)
        self._prior_var = gp.kernel.diag(self.x_candidates)

    @classmethod
    def _from_parts(
        cls,
        gp: GaussianProcess,
        x_candidates: np.ndarray,
        buf_k: np.ndarray,
        buf_v: np.ndarray,
        n: int,
        sum_sq: np.ndarray,
        prior_var: np.ndarray,
    ) -> "BatchPosterior":
        post = cls.__new__(cls)
        post.gp = gp
        post.x_candidates = x_candidates
        post._buf_k = buf_k
        post._buf_v = buf_v
        post._n = n
        post._sum_sq = sum_sq
        post._prior_var = prior_var
        return post

    def cross_column(self, i: int) -> np.ndarray:
        """The cached forward substitution ``L^-1 k(X, c_i)`` as ``(n, 1)``.

        Exactly the ``l21`` block :meth:`GaussianProcess.conditioned_on`
        needs when the appended point is candidate ``i``.
        """
        return self._buf_v[: self._n, i : i + 1]

    def predict(self) -> tuple[np.ndarray, np.ndarray]:
        """Posterior mean and variance (raw target units) over the candidates."""
        alpha = self.gp._alpha
        if alpha is None:
            raise NotFittedError("GP factorization is incomplete (no alpha)")
        k_star = self._buf_k[: self._n]
        mean = k_star.T @ alpha
        mean *= self.gp._y_std
        mean += self.gp._y_mean
        var = self._prior_var - self._sum_sq
        np.maximum(var, 1e-12, out=var)
        var *= self.gp._y_std**2
        return mean, var

    def extended(self, gp_ext: GaussianProcess) -> "BatchPosterior":
        """The posterior under ``gp_ext = self.gp.conditioned_on(...)``.

        Only the rows for the appended observations are computed: one
        cross-kernel row plus a forward substitution against the new
        factor rows.  The squared-row sum that feeds the posterior
        variance is accumulated incrementally rather than re-reduced.
        """
        chol, x_obs = gp_ext._chol, gp_ext._x
        if chol is None or x_obs is None:
            raise NotFittedError("extended GP is not fitted")
        n_old = self._n
        n_new = chol.shape[0]
        if n_new <= n_old:
            raise OptimizationError(
                "extended() needs a GP with more observations than the cached one"
            )
        x_tail = x_obs[n_old:]
        k_tail = gp_ext.kernel(x_tail, self.x_candidates)
        l21 = chol[n_old:n_new, :n_old]
        l22 = chol[n_old:n_new, n_old:]
        rhs = l21 @ self._buf_v[:n_old]
        np.subtract(k_tail, rhs, out=rhs)
        if n_new - n_old == 1:
            # A 1x1 triangular solve is a scalar division; skip the
            # LAPACK wrapper on the one-fantasy-per-pick hot path.
            v_tail = np.divide(rhs, l22[0, 0], out=rhs)
        else:
            v_tail = linalg.solve_triangular(l22, rhs, lower=True, check_finite=False)
        if self._buf_k.shape[0] >= n_new:
            buf_k, buf_v = self._buf_k, self._buf_v
            buf_k[n_old:n_new] = k_tail
            buf_v[n_old:n_new] = v_tail
        else:
            buf_k = np.vstack([self._buf_k[:n_old], k_tail])
            buf_v = np.vstack([self._buf_v[:n_old], v_tail])
        sum_sq = self._sum_sq + np.sum(v_tail**2, axis=0)
        return BatchPosterior._from_parts(
            gp_ext, self.x_candidates, buf_k, buf_v, n_new, sum_sq, self._prior_var
        )