"""Exact Gaussian-process regression with marginal-likelihood fitting.

A standard zero-mean GP: given observations ``(X, y)`` and a kernel ``k``,

    ``posterior mean   m(x*) = k(x*, X) K^-1 y``
    ``posterior var  v(x*) = k(x*, x*) - k(x*, X) K^-1 k(X, x*)``

with ``K = k(X, X) + noise * I`` factorized once by Cholesky.  Targets are
standardized internally so kernel hyperparameter priors are scale-free.
Hyperparameters (ARD lengthscales, signal variance, noise variance) are
fitted by multi-restart L-BFGS-B on the log marginal likelihood.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
from scipy import linalg, optimize

from repro.bayesopt.kernels import Kernel, Matern52
from repro.errors import NotFittedError, OptimizationError


class GaussianProcess:
    """Exact GP regression for one scalar objective.

    Parameters
    ----------
    kernel:
        Covariance function; defaults to Matérn-5/2 with unit lengthscales.
    noise_variance:
        Initial observation-noise variance (on standardized targets).
    normalize_y:
        Standardize targets to zero mean / unit variance internally.
    jitter:
        Diagonal stabilizer added to the kernel matrix.
    """

    def __init__(
        self,
        kernel: Optional[Kernel] = None,
        *,
        input_dim: int = 3,
        noise_variance: float = 1e-4,
        normalize_y: bool = True,
        jitter: float = 1e-8,
    ) -> None:
        self.kernel = kernel if kernel is not None else Matern52(np.ones(input_dim))
        if noise_variance <= 0:
            raise OptimizationError("noise_variance must be positive")
        self.noise_variance = float(noise_variance)
        self.normalize_y = normalize_y
        self.jitter = float(jitter)
        self._x: Optional[np.ndarray] = None
        self._y_raw: Optional[np.ndarray] = None
        self._y: Optional[np.ndarray] = None
        self._y_mean = 0.0
        self._y_std = 1.0
        self._chol: Optional[np.ndarray] = None
        self._alpha: Optional[np.ndarray] = None

    # -- fitting ---------------------------------------------------------------

    @property
    def is_fitted(self) -> bool:
        return self._chol is not None

    @property
    def n_observations(self) -> int:
        return 0 if self._x is None else self._x.shape[0]

    def fit(self, x: np.ndarray, y: np.ndarray) -> "GaussianProcess":
        """Condition the GP on data (keeping current hyperparameters)."""
        x = np.atleast_2d(np.asarray(x, dtype=float))
        y = np.asarray(y, dtype=float).ravel()
        if x.shape[0] != y.size:
            raise OptimizationError(f"X has {x.shape[0]} rows but y has {y.size} entries")
        if x.shape[0] == 0:
            raise OptimizationError("cannot fit a GP on zero observations")
        if x.shape[1] != self.kernel.input_dim:
            raise OptimizationError(
                f"X has {x.shape[1]} columns but the kernel expects {self.kernel.input_dim}"
            )
        self._x = x
        self._y_raw = y
        if self.normalize_y:
            self._y_mean = float(y.mean())
            std = float(y.std())
            self._y_std = std if std > 1e-12 else 1.0
        else:
            self._y_mean, self._y_std = 0.0, 1.0
        self._y = (y - self._y_mean) / self._y_std
        self._refactorize()
        return self

    def _refactorize(self) -> None:
        """(Re)compute the Cholesky factorization for current parameters."""
        if self._x is None or self._y is None:
            raise NotFittedError("GP has no observations to factorize")
        n = self._x.shape[0]
        cov = self.kernel(self._x, self._x)
        cov[np.diag_indices(n)] += self.noise_variance + self.jitter
        try:
            self._chol = linalg.cholesky(cov, lower=True)
        except linalg.LinAlgError:
            # escalate the jitter; performance surfaces can be nearly flat.
            cov[np.diag_indices(n)] += 1e-4
            self._chol = linalg.cholesky(cov, lower=True)
        self._alpha = linalg.cho_solve((self._chol, True), self._y)

    def optimize_hyperparameters(
        self,
        rng: Optional[np.random.Generator] = None,
        n_restarts: int = 2,
        lengthscale_bounds: tuple[float, float] = (0.05, 10.0),
        variance_bounds: tuple[float, float] = (1e-3, 1e3),
        noise_bounds: tuple[float, float] = (1e-6, 1e-1),
    ) -> float:
        """Fit hyperparameters by maximizing the log marginal likelihood.

        Runs L-BFGS-B from the current parameters plus ``n_restarts`` random
        initializations; keeps the best.  Returns the best log marginal
        likelihood found.
        """
        if self._x is None:
            raise NotFittedError("fit() must be called before optimizing hyperparameters")
        rng = rng if rng is not None else np.random.default_rng(0)
        log_bounds = (
            [np.log(lengthscale_bounds)] * self.kernel.input_dim
            + [np.log(variance_bounds)]
            + [np.log(noise_bounds)]
        )

        def objective(theta: np.ndarray) -> float:
            return -self._log_marginal_likelihood(theta)

        starts = [np.concatenate([self.kernel.get_log_params(), [np.log(self.noise_variance)]])]
        for _ in range(n_restarts):
            starts.append(np.array([rng.uniform(lo, hi) for lo, hi in log_bounds]))

        best_theta, best_value = None, np.inf
        for theta0 in starts:
            theta0 = np.clip(theta0, [lo for lo, _ in log_bounds], [hi for _, hi in log_bounds])
            result = optimize.minimize(
                objective, theta0, method="L-BFGS-B", bounds=log_bounds
            )
            if np.isfinite(result.fun) and result.fun < best_value:
                best_value, best_theta = float(result.fun), result.x
        if best_theta is None:
            raise OptimizationError("hyperparameter optimization failed from every start")
        self._apply_theta(best_theta)
        self._refactorize()
        return -best_value

    def _apply_theta(self, theta: np.ndarray) -> None:
        self.kernel.set_log_params(theta[:-1])
        self.noise_variance = float(np.exp(theta[-1]))

    def _log_marginal_likelihood(self, theta: np.ndarray) -> float:
        """LML of the standardized data under hyperparameters ``theta``."""
        if self._x is None or self._y is None:
            raise NotFittedError("GP has no observations for the LML")
        saved_kernel = self.kernel.get_log_params()
        saved_noise = self.noise_variance
        try:
            self._apply_theta(theta)
            n = self._x.shape[0]
            cov = self.kernel(self._x, self._x)
            cov[np.diag_indices(n)] += self.noise_variance + self.jitter
            try:
                chol = linalg.cholesky(cov, lower=True)
            except linalg.LinAlgError:
                return -np.inf
            alpha = linalg.cho_solve((chol, True), self._y)
            lml = (
                -0.5 * float(self._y @ alpha)
                - float(np.sum(np.log(np.diag(chol))))
                - 0.5 * n * np.log(2.0 * np.pi)
            )
            return lml
        finally:
            self.kernel.set_log_params(saved_kernel)
            self.noise_variance = saved_noise

    def log_marginal_likelihood(self) -> float:
        """LML at the current hyperparameters."""
        if self._chol is None:
            raise NotFittedError("GP is not fitted")
        if self._y is None or self._alpha is None:
            raise NotFittedError("GP factorization is incomplete (no alpha)")
        n = self._y.size
        return (
            -0.5 * float(self._y @ self._alpha)
            - float(np.sum(np.log(np.diag(self._chol))))
            - 0.5 * n * np.log(2.0 * np.pi)
        )

    # -- prediction ---------------------------------------------------------

    def predict(self, x_star: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Posterior mean and variance (in raw target units) at ``x_star``."""
        if self._chol is None or self._x is None or self._alpha is None:
            raise NotFittedError("GP is not fitted")
        x_star = np.atleast_2d(np.asarray(x_star, dtype=float))
        k_star = self.kernel(self._x, x_star)  # (n, m)
        mean_std = k_star.T @ self._alpha
        v = linalg.solve_triangular(self._chol, k_star, lower=True)
        var_std = self.kernel.diag(x_star) - np.sum(v**2, axis=0)
        var_std = np.maximum(var_std, 1e-12)
        mean = mean_std * self._y_std + self._y_mean
        var = var_std * self._y_std**2
        return mean, var

    def posterior_samples(
        self, x_star: np.ndarray, n_samples: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Draw joint posterior samples at ``x_star``; shape (n_samples, m)."""
        if self._chol is None or self._x is None or self._alpha is None:
            raise NotFittedError("GP is not fitted")
        x_star = np.atleast_2d(np.asarray(x_star, dtype=float))
        k_star = self.kernel(self._x, x_star)
        mean_std = k_star.T @ self._alpha
        v = linalg.solve_triangular(self._chol, k_star, lower=True)
        cov = self.kernel(x_star, x_star) - v.T @ v
        cov[np.diag_indices(cov.shape[0])] += 1e-10
        draws = rng.multivariate_normal(mean_std, cov, size=n_samples, method="cholesky")
        return draws * self._y_std + self._y_mean

    def conditioned_on(self, x_new: np.ndarray, y_new: np.ndarray) -> "GaussianProcess":
        """A new GP with (x_new, y_new) appended — for Kriging-believer batching.

        Hyperparameters are copied, not re-optimized (fantasy updates must
        be cheap; see §4.3, "Batch Selection Strategy").
        """
        if self._x is None or self._y_raw is None:
            raise NotFittedError("GP is not fitted")
        clone = GaussianProcess(
            self.kernel.clone(),
            noise_variance=self.noise_variance,
            normalize_y=self.normalize_y,
            jitter=self.jitter,
        )
        x_all = np.vstack([self._x, np.atleast_2d(np.asarray(x_new, dtype=float))])
        y_all = np.concatenate([self._y_raw, np.ravel(np.asarray(y_new, dtype=float))])
        clone.fit(x_all, y_all)
        return clone
