"""Quasi-random and uniform sampling of the discrete DVFS space.

§4.2, "Sample selection": BoFL draws its phase-1 starting points "uniformly
distributed over X, using a quasi-random number generator".  We use a
scrambled Sobol sequence in the unit cube snapped to the nearest grid
configuration, de-duplicated, which preserves low-discrepancy coverage of
the discrete space.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Optional

import numpy as np
from scipy.stats import qmc

from repro.errors import OptimizationError
from repro.hardware.frequency import ConfigurationSpace
from repro.types import DvfsConfiguration


def sobol_configurations(
    space: ConfigurationSpace,
    n: int,
    seed: int = 0,
    exclude: Optional[Sequence[DvfsConfiguration]] = None,
) -> list[DvfsConfiguration]:
    """Draw ``n`` distinct configurations via a scrambled Sobol sequence.

    Snapping to the grid can collide, so the sequence is extended until
    ``n`` distinct configurations are collected.  Configurations in
    ``exclude`` are skipped.
    """
    if n < 1:
        raise OptimizationError(f"need n >= 1 samples, got {n}")
    seen: set[DvfsConfiguration] = set(exclude) if exclude else set()
    if n > len(space) - len(seen):
        raise OptimizationError(
            f"cannot draw {n} distinct configurations from a space of "
            f"{len(space)} with {len(seen)} excluded"
        )
    sampler = qmc.Sobol(d=3, scramble=True, seed=seed)
    picks: list[DvfsConfiguration] = []
    while len(picks) < n:
        # Sobol wants power-of-two batches; over-draw to amortize collisions.
        batch = sampler.random_base2(m=max(3, int(np.ceil(np.log2(2 * n)))))
        for point in batch:
            config = space.snap(
                space.cpu.denormalize(point[0]),
                space.gpu.denormalize(point[1]),
                space.mem.denormalize(point[2]),
            )
            if config in seen:
                continue
            seen.add(config)
            picks.append(config)
            if len(picks) == n:
                break
    return picks


def uniform_configurations(
    space: ConfigurationSpace,
    n: int,
    rng: np.random.Generator,
    exclude: Optional[Sequence[DvfsConfiguration]] = None,
) -> list[DvfsConfiguration]:
    """Draw ``n`` distinct configurations uniformly at random."""
    if n < 1:
        raise OptimizationError(f"need n >= 1 samples, got {n}")
    exclude_set = set(exclude) if exclude else set()
    pool = [c for c in space.all_configurations() if c not in exclude_set]
    if n > len(pool):
        raise OptimizationError(
            f"cannot draw {n} distinct configurations from {len(pool)} available"
        )
    indices = rng.choice(len(pool), size=n, replace=False)
    return [pool[i] for i in indices]
