"""Acquisition functions: exact bi-objective EHVI and classic EI.

The Expected Hypervolume Improvement (Eqn. 6 in the paper) at a candidate
``x`` is the expected growth of the dominated hypervolume if the candidate's
objective vector — Gaussian under the two independent surrogate GPs — were
added to the current front:

    ``EHVI(x) = E_{v ~ N(mu(x), diag(var(x)))} [ HVI({v}; P, r) ]``

**Exact closed form (2-D, independent objectives).**  Sort the front
ascending in the first objective (so the second objective descends), and
split the first-objective axis into vertical strips at front coordinates:
strip ``i`` spans ``[l_i, u_i]`` with ceiling ``h_i`` (``r_2`` left of the
front, ``y2_i`` inside it).  A candidate value ``v`` gains, in strip ``i``,
the rectangle ``[max(v1, l_i), u_i] x [v2, h_i]`` — so

    ``HVI(v) = sum_i ((u_i - v1)^+ - (l_i - v1)^+) * (h_i - v2)^+``

and, because the two coordinates are independent Gaussians, the expectation
factorizes strip-by-strip into products of the standard truncated-Gaussian
moment ``psi(c) = E[(c - V)^+] = (c - mu) Phi((c - mu)/sigma) + sigma
phi((c - mu)/sigma)``:

    ``EHVI = sum_i (psi1(u_i) - psi1(l_i)) * psi2(h_i)``

This runs in O(n) per candidate and vectorizes over candidate sets, which
is what lets BoFL score the entire remaining DVFS space each round.
"""

from __future__ import annotations


import numpy as np
from scipy import stats

from repro.bayesopt.pareto import pareto_front
from repro.errors import OptimizationError


def _psi(c: np.ndarray, mean: np.ndarray, std: np.ndarray) -> np.ndarray:
    """``E[(c - V)^+]`` for ``V ~ N(mean, std^2)``, elementwise.

    ``c`` may contain ``-inf`` (contributing zero).  Shapes broadcast.
    """
    c = np.asarray(c, dtype=float)
    mean = np.asarray(mean, dtype=float)
    std = np.maximum(np.asarray(std, dtype=float), 1e-12)
    neg_inf = np.isneginf(c)
    # -inf cutoffs contribute exactly zero improvement mass; substitute a
    # finite value to keep the arithmetic warning-free, then mask.
    c_safe = np.where(neg_inf, 0.0, c)
    z = (c_safe - mean) / std
    out = (c_safe - mean) * stats.norm.cdf(z) + std * stats.norm.pdf(z)
    out = np.asarray(out)
    return np.where(np.broadcast_to(neg_inf, out.shape), 0.0, out)


def _strips(front: np.ndarray, reference: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Strip bounds ``(l, u, h)`` of the improvement region (see module doc)."""
    reference = np.asarray(reference, dtype=float).ravel()
    if reference.shape != (2,):
        raise OptimizationError(f"reference must have 2 entries, got {reference.shape}")
    front = np.atleast_2d(np.asarray(front, dtype=float))
    if front.size:
        inside = np.all(front < reference, axis=1)
        front = pareto_front(front[inside])
    if front.size == 0:
        return (
            np.array([-np.inf]),
            np.array([reference[0]]),
            np.array([reference[1]]),
        )
    y1 = front[:, 0]
    y2 = front[:, 1]
    lower = np.concatenate([[-np.inf], y1])
    upper = np.concatenate([y1, [reference[0]]])
    heights = np.concatenate([[reference[1]], y2])
    return lower, upper, heights


def expected_hypervolume_improvement(
    mean: np.ndarray,
    var: np.ndarray,
    front: np.ndarray,
    reference: np.ndarray,
) -> np.ndarray:
    """Exact 2-D EHVI for a batch of independent-Gaussian candidates.

    Parameters
    ----------
    mean, var:
        ``(m, 2)`` posterior means and variances of the candidates under
        the two objective GPs.
    front:
        ``(n, 2)`` current non-dominated observations (minimization).
    reference:
        The 2-vector reference point (componentwise worst).

    Returns
    -------
    ``(m,)`` array of EHVI values (non-negative).
    """
    mean = np.atleast_2d(np.asarray(mean, dtype=float))
    var = np.atleast_2d(np.asarray(var, dtype=float))
    if mean.shape != var.shape or mean.shape[1] != 2:
        raise OptimizationError(
            f"mean/var must both be (m, 2); got {mean.shape} and {var.shape}"
        )
    std = np.sqrt(np.maximum(var, 0.0))
    lower, upper, heights = _strips(front, reference)
    # psi tables: candidates along axis 0, strips along axis 1.
    psi1_u = _psi(upper[None, :], mean[:, 0, None], std[:, 0, None])
    psi1_l = _psi(lower[None, :], mean[:, 0, None], std[:, 0, None])
    psi2_h = _psi(heights[None, :], mean[:, 1, None], std[:, 1, None])
    ehvi = np.sum((psi1_u - psi1_l) * psi2_h, axis=1)
    return np.maximum(ehvi, 0.0)


def expected_improvement(
    mean: np.ndarray, var: np.ndarray, best: float
) -> np.ndarray:
    """Classic single-objective EI for minimization (used in ablations)."""
    mean = np.asarray(mean, dtype=float)
    std = np.sqrt(np.maximum(np.asarray(var, dtype=float), 1e-18))
    z = (best - mean) / std
    return (best - mean) * stats.norm.cdf(z) + std * stats.norm.pdf(z)
