"""Acquisition functions: exact bi-objective EHVI and classic EI.

The Expected Hypervolume Improvement (Eqn. 6 in the paper) at a candidate
``x`` is the expected growth of the dominated hypervolume if the candidate's
objective vector — Gaussian under the two independent surrogate GPs — were
added to the current front:

    ``EHVI(x) = E_{v ~ N(mu(x), diag(var(x)))} [ HVI({v}; P, r) ]``

**Exact closed form (2-D, independent objectives).**  Sort the front
ascending in the first objective (so the second objective descends), and
split the first-objective axis into vertical strips at front coordinates:
strip ``i`` spans ``[l_i, u_i]`` with ceiling ``h_i`` (``r_2`` left of the
front, ``y2_i`` inside it).  A candidate value ``v`` gains, in strip ``i``,
the rectangle ``[max(v1, l_i), u_i] x [v2, h_i]`` — so

    ``HVI(v) = sum_i ((u_i - v1)^+ - (l_i - v1)^+) * (h_i - v2)^+``

and, because the two coordinates are independent Gaussians, the expectation
factorizes strip-by-strip into products of the standard truncated-Gaussian
moment ``psi(c) = E[(c - V)^+] = (c - mu) Phi((c - mu)/sigma) + sigma
phi((c - mu)/sigma)``:

    ``EHVI = sum_i (psi1(u_i) - psi1(l_i)) * psi2(h_i)``

This runs in O(n) per candidate and vectorizes over candidate sets, which
is what lets BoFL score the entire remaining DVFS space each round.
"""

from __future__ import annotations


import numpy as np
from scipy import special

from typing import Optional

from repro.bayesopt.pareto import pareto_front
from repro.errors import OptimizationError

#: Shared standard-deviation floor below which a Gaussian is treated as
#: deterministic.  EI and EHVI must agree on this boundary: a candidate
#: with (numerically) zero posterior variance has an exactly known value,
#: so its expected improvement is the plain positive-part improvement —
#: exactly 0 for an already-observed point.
MIN_STD = 1e-12

_SQRT_2PI = np.sqrt(2.0 * np.pi)


def _norm_pdf(z: np.ndarray) -> np.ndarray:
    """Standard normal density (avoids the scipy ``stats`` wrapper overhead)."""
    return np.exp(-(z**2) / 2.0) / _SQRT_2PI


def _psi(c: np.ndarray, mean: np.ndarray, std: np.ndarray) -> np.ndarray:
    """``E[(c - V)^+]`` for ``V ~ N(mean, std^2)``, elementwise.

    ``c`` may contain ``-inf`` (contributing zero).  Shapes broadcast.
    Standard deviations at or below :data:`MIN_STD` are treated as
    deterministic: the expectation collapses to ``max(c - mean, 0)``.
    """
    c = np.asarray(c, dtype=float)
    mean = np.asarray(mean, dtype=float)
    std = np.asarray(std, dtype=float)
    deterministic = std <= MIN_STD
    std_safe = np.maximum(std, MIN_STD)
    neg_inf = np.isneginf(c)
    # -inf cutoffs contribute exactly zero improvement mass; substitute a
    # finite value to keep the arithmetic warning-free, then mask.  The
    # mask/where passes are skipped entirely when no element needs them
    # (the hot path): an all-False where returns its input unchanged.
    has_neg_inf = bool(neg_inf.any())
    c_safe = np.where(neg_inf, 0.0, c) if has_neg_inf else c
    improvement = c_safe - mean
    z = improvement / std_safe
    # In-place evaluation of (c - mean) * Phi(z) + std * phi(z): the same
    # IEEE operations as the naive expression (multiplication commutes
    # exactly), minus four large temporaries on the EHVI hot path.
    out = special.ndtr(z)
    out *= improvement
    np.square(z, out=z)
    z *= -0.5
    np.exp(z, out=z)
    z /= _SQRT_2PI
    z *= std_safe
    out += z
    out = np.asarray(out)
    if deterministic.any():
        out = np.where(
            np.broadcast_to(deterministic, out.shape),
            np.maximum(improvement, 0.0),
            out,
        )
    if has_neg_inf:
        out = np.where(np.broadcast_to(neg_inf, out.shape), 0.0, out)
    return out


def _strips(front: np.ndarray, reference: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Strip bounds ``(l, u, h)`` of the improvement region (see module doc)."""
    reference = np.asarray(reference, dtype=float).ravel()
    if reference.shape != (2,):
        raise OptimizationError(f"reference must have 2 entries, got {reference.shape}")
    front = np.atleast_2d(np.asarray(front, dtype=float))
    if front.size:
        inside = np.all(front < reference, axis=1)
        front = pareto_front(front[inside])
    if front.size == 0:
        return (
            np.array([-np.inf]),
            np.array([reference[0]]),
            np.array([reference[1]]),
        )
    y1 = front[:, 0]
    y2 = front[:, 1]
    lower = np.concatenate([[-np.inf], y1])
    upper = np.concatenate([y1, [reference[0]]])
    heights = np.concatenate([[reference[1]], y2])
    return lower, upper, heights


def expected_hypervolume_improvement(
    mean: np.ndarray,
    var: np.ndarray,
    front: np.ndarray,
    reference: np.ndarray,
) -> np.ndarray:
    """Exact 2-D EHVI for a batch of independent-Gaussian candidates.

    Parameters
    ----------
    mean, var:
        ``(m, 2)`` posterior means and variances of the candidates under
        the two objective GPs.
    front:
        ``(n, 2)`` current non-dominated observations (minimization).
    reference:
        The 2-vector reference point (componentwise worst).

    Returns
    -------
    ``(m,)`` array of EHVI values (non-negative).
    """
    mean = np.atleast_2d(np.asarray(mean, dtype=float))
    var = np.atleast_2d(np.asarray(var, dtype=float))
    if mean.shape != var.shape or mean.shape[1] != 2:
        raise OptimizationError(
            f"mean/var must both be (m, 2); got {mean.shape} and {var.shape}"
        )
    std = np.sqrt(np.maximum(var, 0.0))
    _, upper, heights = _strips(front, reference)
    return _ehvi_core(mean, std, upper, heights)


def _ehvi_core(
    mean: np.ndarray, std: np.ndarray, upper: np.ndarray, heights: np.ndarray
) -> np.ndarray:
    """EHVI from precomputed strips — rows are independent of one another."""
    # psi tables: candidates along axis 0, strips along axis 1.  Interior
    # strip boundaries are shared — ``lower[1:] == upper[:-1]`` — and psi
    # at the ``-inf`` sentinel in ``lower[0]`` is exactly zero, so the
    # single table over ``upper`` serves both cutoffs: the strip widths
    # ``psi1(upper) - psi1(lower)`` are first differences of that table.
    psi1_u = _psi(upper[None, :], mean[:, 0, None], std[:, 0, None])
    psi2_h = _psi(heights[None, :], mean[:, 1, None], std[:, 1, None])
    widths = np.empty_like(psi1_u)
    widths[:, 0] = psi1_u[:, 0]
    widths[:, 1:] = psi1_u[:, 1:] - psi1_u[:, :-1]
    ehvi = np.sum(widths * psi2_h, axis=1)
    return np.maximum(ehvi, 0.0)


#: Candidates whose exact EHVI is computed per pruning round in
#: :func:`ehvi_argmax`; bound-sorting concentrates the winner in the
#: first block for realistic surrogates.
_ARGMAX_BLOCK = 256
#: Minimum strip count before bound pruning pays for itself — the bound
#: costs about four psi columns, so narrow tables are computed exactly.
_ARGMAX_MIN_STRIPS = 14


def ehvi_argmax(
    mean: np.ndarray,
    var: np.ndarray,
    front: np.ndarray,
    reference: np.ndarray,
    active: Optional[np.ndarray] = None,
) -> tuple[int, float]:
    """Index and value of the EHVI maximizer, with sound bound pruning.

    Returns exactly ``(int(np.argmax(e)), float(e[argmax]))`` for
    ``e = expected_hypervolume_improvement(mean, var, front, reference)``
    — including NumPy's first-index tie resolution — but usually without
    building the full candidate-by-strip psi tables.  The strip sum
    telescopes to ``psi1(r_0)`` and every strip ceiling is at most
    ``r_1``, so ``EHVI(x) <= psi1(r_0; x) psi2(r_1; x)``: an O(m) bound.
    Exact EHVI is then evaluated block-wise in decreasing-bound order and
    the scan stops once no remaining bound can reach the incumbent.

    ``active`` optionally restricts the search to a boolean mask of rows
    (the returned index is still into the full arrays); the result then
    matches the argmax over the compacted active subset.
    """
    mean = np.atleast_2d(np.asarray(mean, dtype=float))
    var = np.atleast_2d(np.asarray(var, dtype=float))
    if mean.shape != var.shape or mean.shape[1] != 2:
        raise OptimizationError(
            f"mean/var must both be (m, 2); got {mean.shape} and {var.shape}"
        )
    std = np.sqrt(np.maximum(var, 0.0))
    _, upper, heights = _strips(front, reference)
    m = mean.shape[0]
    n_active = m if active is None else int(np.count_nonzero(active))
    if n_active == 0:
        raise OptimizationError("ehvi_argmax needs at least one active candidate")
    if upper.shape[0] < _ARGMAX_MIN_STRIPS or n_active <= _ARGMAX_BLOCK:
        # Narrow tables are cheaper to evaluate outright than to bound:
        # the bound costs ~4 psi columns regardless of the strip count.
        vals = _ehvi_core(mean, std, upper, heights)
        if active is not None:
            # Evaluating the handful of masked rows is cheaper than
            # compacting the arrays; mask them out of the argmax instead.
            vals[~active] = -np.inf
        best_idx = int(np.argmax(vals))
        best = float(vals[best_idx])
        if best <= 0.0:
            # Saturated: every active EHVI is exactly 0 — match the argmax
            # of an all-zero compacted array (its first active element).
            first = best_idx if active is None else int(np.argmax(active))
            return first, 0.0
        return best_idx, best
    # Two-strip coarsening of the exact sum: strip 0 kept exact, strips
    # >= 1 bounded by their common height ceiling ``heights[1]`` (heights
    # descend) with telescoped total width ``psi1(r_0) - psi1(u_0)``.
    # Much tighter than the single-product bound when the front is rich.
    psi1_b = _psi(
        np.array([upper[0], upper[-1]])[None, :], mean[:, 0, None], std[:, 0, None]
    )
    psi2_b = _psi(
        np.array([heights[0], heights[1]])[None, :], mean[:, 1, None], std[:, 1, None]
    )
    bound = psi1_b[:, 0] * psi2_b[:, 0] + (psi1_b[:, 1] - psi1_b[:, 0]) * psi2_b[:, 1]
    if active is not None:
        # psi is non-negative, so active bounds are >= 0: the masked rows
        # sort strictly last and slicing them off keeps blocks all-active.
        bound[~active] = -np.inf
    # An unstable sort is fine: equal-bound orderings cannot change the
    # result — the scan continues through bound ties and value ties are
    # resolved by original index.
    order = np.argsort(-bound)[:n_active]
    best_idx = 0
    best_val = -np.inf
    for start in range(0, n_active, _ARGMAX_BLOCK):
        block = order[start : start + _ARGMAX_BLOCK]
        # Sorted descending: if even this block's best bound cannot reach
        # the incumbent, no later block can (ties continue the scan so
        # an equal-value candidate with a smaller index is never missed).
        if bound[block[0]] < best_val:
            break
        vals = _ehvi_core(mean[block], std[block], upper, heights)
        block_max = float(vals.max())
        if block_max < best_val:
            continue
        block_idx = int(block[vals == block_max].min())
        if block_max > best_val or block_idx < best_idx:
            best_val = block_max
            best_idx = block_idx
    if best_val <= 0.0:
        # Saturated surrogate: every EHVI is exactly 0, and the argmax of
        # an all-zero array is its first element.
        return (0 if active is None else int(np.argmax(active))), 0.0
    return best_idx, best_val


def expected_improvement(
    mean: np.ndarray, var: np.ndarray, best: float
) -> np.ndarray:
    """Classic single-objective EI for minimization (used in ablations).

    Shares the :data:`MIN_STD` deterministic floor with EHVI's ``_psi``:
    a zero-variance candidate contributes ``max(best - mean, 0)`` — so an
    exactly-observed incumbent scores exactly 0, consistent across EI
    ablations and the EHVI main path.
    """
    mean = np.asarray(mean, dtype=float)
    std = np.sqrt(np.maximum(np.asarray(var, dtype=float), 0.0))
    deterministic = std <= MIN_STD
    std_safe = np.maximum(std, MIN_STD)
    improvement = best - mean
    z = improvement / std_safe
    out = np.asarray(improvement * special.ndtr(z) + std_safe * _norm_pdf(z))
    return np.where(
        np.broadcast_to(deterministic, out.shape),
        np.maximum(improvement, 0.0),
        out,
    )
