"""Covariance kernels for Gaussian-process regression.

The paper models both objectives with zero-mean GPs under the Matérn-5/2
kernel (§4.3, "MBO prior function"), the standard choice for moderately
rough performance surfaces.  An RBF kernel is provided for comparison and
ablation.

Kernels carry their hyperparameters (per-dimension ARD lengthscales and a
signal variance) in log space, so gradient-free optimizers can search an
unconstrained vector.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Sequence

import numpy as np

from repro.errors import ConfigurationError


def _scaled_sq_dists(x1: np.ndarray, x2: np.ndarray, lengthscales: np.ndarray) -> np.ndarray:
    """Pairwise squared distances after per-dimension scaling."""
    a = x1 / lengthscales
    b = x2 / lengthscales
    # ||a - b||^2 = ||a||^2 + ||b||^2 - 2 a.b, clipped for numerical safety.
    sq = (
        np.sum(a**2, axis=1)[:, None]
        + np.sum(b**2, axis=1)[None, :]
        - 2.0 * (a @ b.T)
    )
    return np.maximum(sq, 0.0)


class Kernel(ABC):
    """Base class: a positive-definite covariance function with ARD."""

    def __init__(self, lengthscales: Sequence[float], variance: float = 1.0) -> None:
        scales = np.asarray(lengthscales, dtype=float)
        if scales.ndim != 1 or scales.size == 0:
            raise ConfigurationError("lengthscales must be a non-empty 1-D sequence")
        if np.any(scales <= 0) or variance <= 0:
            raise ConfigurationError("lengthscales and variance must be positive")
        self.lengthscales = scales
        self.variance = float(variance)

    @property
    def input_dim(self) -> int:
        return self.lengthscales.size

    @property
    def n_params(self) -> int:
        """Number of free hyperparameters (lengthscales + variance)."""
        return self.input_dim + 1

    def get_log_params(self) -> np.ndarray:
        """Hyperparameters as an unconstrained log-space vector."""
        return np.concatenate([np.log(self.lengthscales), [np.log(self.variance)]])

    def set_log_params(self, theta: np.ndarray) -> None:
        """Set hyperparameters from a log-space vector."""
        theta = np.asarray(theta, dtype=float)
        if theta.shape != (self.n_params,):
            raise ConfigurationError(
                f"expected {self.n_params} parameters, got shape {theta.shape}"
            )
        self.lengthscales = np.exp(theta[:-1])
        self.variance = float(np.exp(theta[-1]))

    def clone(self) -> "Kernel":
        """A deep copy with the same hyperparameters."""
        return type(self)(self.lengthscales.copy(), self.variance)

    @abstractmethod
    def __call__(self, x1: np.ndarray, x2: np.ndarray) -> np.ndarray:
        """The covariance matrix between rows of ``x1`` and ``x2``."""

    def diag(self, x: np.ndarray) -> np.ndarray:
        """The diagonal of ``self(x, x)`` without building the full matrix."""
        return np.full(np.asarray(x).shape[0], self.variance)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(lengthscales={np.round(self.lengthscales, 4)}, "
            f"variance={self.variance:.4g})"
        )


class Matern52(Kernel):
    """The Matérn-5/2 kernel: ``v * (1 + a + a^2/3) * exp(-a)``, ``a = sqrt(5) r``.

    Twice mean-square differentiable — smooth enough for efficient search,
    rough enough for real performance surfaces; the paper's choice.
    """

    def __call__(self, x1: np.ndarray, x2: np.ndarray) -> np.ndarray:
        sq = _scaled_sq_dists(np.atleast_2d(x1), np.atleast_2d(x2), self.lengthscales)
        a = np.sqrt(5.0 * sq)
        return self.variance * (1.0 + a + a**2 / 3.0) * np.exp(-a)


class RBF(Kernel):
    """The squared-exponential kernel: ``v * exp(-r^2 / 2)``.

    Infinitely smooth; included for kernel ablations.
    """

    def __call__(self, x1: np.ndarray, x2: np.ndarray) -> np.ndarray:
        sq = _scaled_sq_dists(np.atleast_2d(x1), np.atleast_2d(x2), self.lengthscales)
        return self.variance * np.exp(-0.5 * sq)
