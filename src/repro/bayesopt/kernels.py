"""Covariance kernels for Gaussian-process regression.

The paper models both objectives with zero-mean GPs under the Matérn-5/2
kernel (§4.3, "MBO prior function"), the standard choice for moderately
rough performance surfaces.  An RBF kernel is provided for comparison and
ablation.

Kernels carry their hyperparameters (per-dimension ARD lengthscales and a
signal variance) in log space, so gradient-free optimizers can search an
unconstrained vector.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Sequence

import numpy as np

from repro.errors import ConfigurationError


def _scaled_sq_dists(x1: np.ndarray, x2: np.ndarray, lengthscales: np.ndarray) -> np.ndarray:
    """Pairwise squared distances after per-dimension scaling."""
    a = x1 / lengthscales
    b = x2 / lengthscales
    # ||a - b||^2 = ||a||^2 + ||b||^2 - 2 a.b, clipped for numerical safety.
    # Written with in-place updates (same IEEE operations, fewer large
    # temporaries): this runs once per kernel evaluation on the MBO hot path.
    sq = np.sum(a**2, axis=1)[:, None] + np.sum(b**2, axis=1)[None, :]
    cross = a @ b.T
    cross *= 2.0
    sq -= cross
    return np.maximum(sq, 0.0, out=sq)


class Kernel(ABC):
    """Base class: a positive-definite covariance function with ARD."""

    def __init__(self, lengthscales: Sequence[float], variance: float = 1.0) -> None:
        scales = np.asarray(lengthscales, dtype=float)
        if scales.ndim != 1 or scales.size == 0:
            raise ConfigurationError("lengthscales must be a non-empty 1-D sequence")
        if np.any(scales <= 0) or variance <= 0:
            raise ConfigurationError("lengthscales and variance must be positive")
        self.lengthscales = scales
        self.variance = float(variance)

    @property
    def input_dim(self) -> int:
        return self.lengthscales.size

    @property
    def n_params(self) -> int:
        """Number of free hyperparameters (lengthscales + variance)."""
        return self.input_dim + 1

    def get_log_params(self) -> np.ndarray:
        """Hyperparameters as an unconstrained log-space vector."""
        return np.concatenate([np.log(self.lengthscales), [np.log(self.variance)]])

    def set_log_params(self, theta: np.ndarray) -> None:
        """Set hyperparameters from a log-space vector."""
        theta = np.asarray(theta, dtype=float)
        if theta.shape != (self.n_params,):
            raise ConfigurationError(
                f"expected {self.n_params} parameters, got shape {theta.shape}"
            )
        self.lengthscales = np.exp(theta[:-1])
        self.variance = float(np.exp(theta[-1]))

    def clone(self) -> "Kernel":
        """A deep copy with the same hyperparameters."""
        return type(self)(self.lengthscales.copy(), self.variance)

    def __call__(self, x1: np.ndarray, x2: np.ndarray) -> np.ndarray:
        """The covariance matrix between rows of ``x1`` and ``x2``."""
        sq = _scaled_sq_dists(np.atleast_2d(x1), np.atleast_2d(x2), self.lengthscales)
        return self.from_scaled_sq_dists(sq)

    @abstractmethod
    def from_scaled_sq_dists(self, sq: np.ndarray) -> np.ndarray:
        """The covariance matrix from precomputed scaled squared distances.

        Lets callers that already hold the pairwise distances (e.g. a
        factor extension that reuses a distance block) skip recomputing
        them; ``__call__`` routes through this hook.
        """

    def diag(self, x: np.ndarray) -> np.ndarray:
        """The diagonal of ``self(x, x)`` without building the full matrix."""
        return np.full(np.asarray(x).shape[0], self.variance)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(lengthscales={np.round(self.lengthscales, 4)}, "
            f"variance={self.variance:.4g})"
        )


class Matern52(Kernel):
    """The Matérn-5/2 kernel: ``v * (1 + a + a^2/3) * exp(-a)``, ``a = sqrt(5) r``.

    Twice mean-square differentiable — smooth enough for efficient search,
    rough enough for real performance surfaces; the paper's choice.
    """

    def from_scaled_sq_dists(self, sq: np.ndarray) -> np.ndarray:
        # In-place form of ``v * (1 + a + a^2/3) * exp(-a)`` — identical
        # IEEE operations and association order, fewer large temporaries.
        t = 5.0 * sq
        a = np.sqrt(t, out=t)
        poly = 1.0 + a
        third = a * a
        third /= 3.0
        poly += third
        poly *= self.variance
        np.negative(a, out=a)
        np.exp(a, out=a)
        poly *= a
        return poly


class RBF(Kernel):
    """The squared-exponential kernel: ``v * exp(-r^2 / 2)``.

    Infinitely smooth; included for kernel ablations.
    """

    def from_scaled_sq_dists(self, sq: np.ndarray) -> np.ndarray:
        return self.variance * np.exp(-0.5 * sq)
