"""ParEGO: scalarized single-GP multi-objective optimization (extension).

An alternative acquisition strategy to compare EHVI against (Knowles,
2006): each suggestion round draws a random weight vector, collapses the
objectives with the augmented Tchebycheff scalarization

    ``s(y) = max_i(w_i * y_i) + rho * sum_i(w_i * y_i)``

over normalized objectives, fits ONE GP to the scalarized values, and
maximizes classic Expected Improvement.  Cheaper per round than EHVI
(one GP, no hypervolume machinery) but less sample-efficient at covering
the whole front — exactly the trade-off the ``abl_parego`` benchmark
quantifies.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Optional

import numpy as np

from repro.bayesopt.acquisition import expected_improvement
from repro.bayesopt.gp import GaussianProcess
from repro.bayesopt.kernels import Matern52
from repro.bayesopt.pareto import pareto_mask
from repro.errors import NotFittedError, OptimizationError
from repro.hardware.frequency import ConfigurationSpace
from repro.types import DvfsConfiguration


def tchebycheff_scalarize(
    objectives: np.ndarray, weights: np.ndarray, rho: float = 0.05
) -> np.ndarray:
    """Augmented Tchebycheff scalarization of normalized objectives."""
    objectives = np.atleast_2d(np.asarray(objectives, dtype=float))
    weights = np.asarray(weights, dtype=float).ravel()
    if weights.size != objectives.shape[1]:
        raise OptimizationError(
            f"{weights.size} weights for {objectives.shape[1]} objectives"
        )
    if np.any(weights < 0) or weights.sum() <= 0:
        raise OptimizationError("weights must be non-negative, not all zero")
    if rho < 0:
        raise OptimizationError(f"rho must be >= 0, got {rho}")
    weighted = objectives * weights[None, :]
    return weighted.max(axis=1) + rho * weighted.sum(axis=1)


class ParEGOSuggester:
    """Drop-in alternative to the EHVI optimizer's suggest() loop."""

    def __init__(self, space: ConfigurationSpace, *, seed: int = 0, rho: float = 0.05) -> None:
        self.space = space
        self.rho = rho
        self._rng = np.random.default_rng(seed)
        self._observations: dict[DvfsConfiguration, tuple[float, float]] = {}
        self._gp: Optional[GaussianProcess] = None
        self._scalarized: Optional[np.ndarray] = None

    # -- observations ---------------------------------------------------------

    def add_observation(
        self, config: DvfsConfiguration, latency: float, energy: float
    ) -> None:
        """Record one measured configuration."""
        if config not in self.space:
            raise OptimizationError(f"{config} is outside the space")
        if latency <= 0 or energy <= 0:
            raise OptimizationError("objective values must be positive")
        self._observations[config] = (float(latency), float(energy))

    @property
    def n_observations(self) -> int:
        return len(self._observations)

    def pareto_set(self) -> tuple[list[DvfsConfiguration], np.ndarray]:
        """Non-dominated observed configurations and their objectives."""
        configs = list(self._observations)
        if not configs:
            return [], np.zeros((0, 2))
        values = np.array([self._observations[c] for c in configs])
        mask = pareto_mask(values)
        return [c for c, keep in zip(configs, mask) if keep], values[mask]

    # -- suggestion -------------------------------------------------------------

    def fit(self) -> None:
        """Draw fresh weights and fit the scalarized GP."""
        configs = list(self._observations)
        if len(configs) < 2:
            raise OptimizationError("need at least 2 observations")
        y = np.array([self._observations[c] for c in configs])
        # normalize objectives to [0, 1] before scalarizing
        lo, hi = y.min(axis=0), y.max(axis=0)
        span = np.where(hi - lo > 1e-12, hi - lo, 1.0)
        normalized = (y - lo) / span
        weight = self._rng.dirichlet(np.ones(2))
        self._scalarized = tchebycheff_scalarize(normalized, weight, self.rho)
        x = self.space.normalize_many(configs)
        self._gp = GaussianProcess(Matern52(np.full(3, 0.5)))
        self._gp.fit(x, self._scalarized)
        self._gp.optimize_hyperparameters(self._rng, n_restarts=1)

    def suggest(
        self,
        batch_size: int,
        exclude: Optional[Sequence[DvfsConfiguration]] = None,
    ) -> list[DvfsConfiguration]:
        """Greedy EI batch with Kriging-believer fantasies."""
        if batch_size < 1:
            raise OptimizationError(f"batch_size must be >= 1, got {batch_size}")
        if self._gp is None or self._scalarized is None:
            raise NotFittedError("call fit() before suggest()")
        skip = set(self._observations)
        if exclude:
            skip.update(exclude)
        candidates = [c for c in self.space.all_configurations() if c not in skip]
        if not candidates:
            return []
        candidate_x = self.space.normalize_many(candidates)
        gp = self._gp
        best = float(self._scalarized.min())
        picks: list[DvfsConfiguration] = []
        active = np.ones(len(candidates), dtype=bool)
        for _ in range(min(batch_size, len(candidates))):
            idx_active = np.flatnonzero(active)
            mean, var = gp.predict(candidate_x[idx_active])
            ei = expected_improvement(mean, var, best)
            local = int(np.argmax(ei))
            chosen = idx_active[local]
            picks.append(candidates[chosen])
            active[chosen] = False
            gp = gp.conditioned_on(
                candidate_x[chosen : chosen + 1], mean[local : local + 1]
            )
            best = min(best, float(mean[local]))
        return picks
