"""Exact bi-objective hypervolume and hypervolume improvement (Eqns. 4-5).

For minimization with reference point ``r`` (the componentwise *worst*
corner), the hypervolume of a front ``P`` is the area of the region
dominated by ``P`` and bounded above by ``r``:

    ``HV(P, r) = area{ z : exists p in P with p <= z <= r }``

In two dimensions this is the staircase area, computable exactly in
O(n log n) by a sweep.  The hypervolume improvement of a batch ``Q``
relative to ``P`` is ``HV(P u Q, r) - HV(P, r)``.
"""

from __future__ import annotations

import numpy as np

from repro.bayesopt.pareto import pareto_front
from repro.errors import OptimizationError


def _validate_2d(points: np.ndarray, name: str) -> np.ndarray:
    points = np.atleast_2d(np.asarray(points, dtype=float))
    if points.size and points.shape[1] != 2:
        raise OptimizationError(f"{name} must have two objectives, got {points.shape[1]}")
    return points


def hypervolume_2d(front: np.ndarray, reference: np.ndarray) -> float:
    """Exact hypervolume of ``front`` w.r.t. ``reference`` (minimization).

    Points outside the reference box contribute only their clipped part;
    dominated points contribute nothing (the front is re-filtered
    defensively).
    """
    front = _validate_2d(front, "front")
    reference = np.asarray(reference, dtype=float).ravel()
    if reference.shape != (2,):
        raise OptimizationError(f"reference must have 2 entries, got {reference.shape}")
    if front.shape[0] == 0:
        return 0.0
    # Keep points strictly inside the reference box (clip has no effect on
    # area because a point at the boundary dominates a zero-area region).
    inside = np.all(front < reference, axis=1)
    front = front[inside]
    if front.shape[0] == 0:
        return 0.0
    front = pareto_front(front)
    # Sweep ascending in y1: each point owns the strip from its y1 to the
    # next point's y1 (or the reference), with height (r2 - y2).
    area = 0.0
    for i in range(front.shape[0]):
        right = front[i + 1, 0] if i + 1 < front.shape[0] else reference[0]
        width = right - front[i, 0]
        height = reference[1] - front[i, 1]
        area += width * height
    return float(area)


def hypervolume_improvement_2d(
    batch: np.ndarray, front: np.ndarray, reference: np.ndarray
) -> float:
    """``HVI(Q; P, r) = HV(Q u P, r) - HV(P, r)`` (Eqn. 5)."""
    batch = _validate_2d(batch, "batch")
    front = _validate_2d(front, "front")
    if batch.shape[0] == 0:
        return 0.0
    if front.shape[0] == 0:
        return hypervolume_2d(batch, reference)
    combined = np.vstack([front, batch])
    return hypervolume_2d(combined, reference) - hypervolume_2d(front, reference)


def hypervolume(front: np.ndarray, reference: np.ndarray) -> float:
    """Exact hypervolume for any number of objectives (minimization).

    Dispatches to the O(n log n) sweep for two objectives and to
    hypervolume-by-slicing-objectives (HSO) recursion for three or more:
    the points are sorted along the last objective and each slab
    ``[z_k, z_(k+1))`` contributes its depth times the (m-1)-dimensional
    hypervolume of the points already "active" at that depth.  Exponential
    in the worst case but exact and fast for the front sizes BoFL produces
    (tens of points).

    BoFL itself only needs the 2-D case (latency x energy); the general
    routine supports extensions such as adding a thermal or memory-pressure
    objective.
    """
    front = np.atleast_2d(np.asarray(front, dtype=float))
    reference = np.asarray(reference, dtype=float).ravel()
    if front.size == 0:
        return 0.0
    if front.shape[1] != reference.size:
        raise OptimizationError(
            f"front has {front.shape[1]} objectives but the reference has "
            f"{reference.size}"
        )
    if reference.size < 2:
        raise OptimizationError("hypervolume needs at least 2 objectives")
    if reference.size == 2:
        return hypervolume_2d(front, reference)
    inside = np.all(front < reference, axis=1)
    return _hv_slicing(front[inside], reference)


def _hv_slicing(points: np.ndarray, reference: np.ndarray) -> float:
    """HSO recursion; ``points`` strictly inside the reference box."""
    if points.shape[0] == 0:
        return 0.0
    if reference.size == 2:
        return hypervolume_2d(points, reference)
    order = np.argsort(points[:, -1])
    points = points[order]
    z_values = points[:, -1]
    volume = 0.0
    for k in range(points.shape[0]):
        if k + 1 < points.shape[0]:
            depth = z_values[k + 1] - z_values[k]
        else:
            depth = reference[-1] - z_values[k]
        if depth <= 0:
            continue
        active = points[: k + 1, :-1]
        volume += depth * _hv_slicing(active, reference[:-1])
    return volume


def reference_from_observations(points: np.ndarray, margin: float = 0.0) -> np.ndarray:
    """The paper's reference-point rule: the componentwise worst observed.

    §4.3: "The reference point can be selected as the combination of the
    worst performances ... we observed in phase 1."  An optional relative
    ``margin`` pushes the reference slightly further out so boundary points
    retain positive hypervolume contributions.
    """
    points = _validate_2d(points, "points")
    if points.shape[0] == 0:
        raise OptimizationError("cannot derive a reference point from zero observations")
    worst = points.max(axis=0)
    if margin:
        span = worst - points.min(axis=0)
        worst = worst + margin * np.where(span > 0, span, np.abs(worst))
    return worst
