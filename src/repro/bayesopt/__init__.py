"""Multi-objective Bayesian optimization, implemented from scratch.

The paper builds its MBO engine on the Trieste library (§5.2); this
subpackage reimplements the same ingredients on numpy/scipy so the whole
stack is self-contained:

* zero-mean Gaussian-process surrogates with the Matérn-5/2 kernel (§4.3,
  "MBO prior function"), fitted by maximizing the log marginal likelihood;
* Pareto dominance and exact 2-D hypervolume / hypervolume-improvement
  indicators (Eqns. 4-5);
* the exact 2-D Expected Hypervolume Improvement acquisition function
  (Eqn. 6), computable in closed form for independent per-objective GPs;
* sequential-greedy (Kriging believer) batch selection (§4.3, "Batch
  Selection Strategy");
* Sobol quasi-random sampling of the discrete configuration space for the
  safe random exploration phase (§4.2, "Sample selection").
"""

from repro.bayesopt.kernels import Kernel, Matern52, RBF
from repro.bayesopt.gp import GaussianProcess
from repro.bayesopt.pareto import (
    crowding_distance,
    pareto_front,
    pareto_mask,
)
from repro.bayesopt.hypervolume import (
    hypervolume,
    hypervolume_2d,
    hypervolume_improvement_2d,
)
from repro.bayesopt.acquisition import (
    expected_hypervolume_improvement,
    expected_improvement,
)
from repro.bayesopt.sampling import sobol_configurations, uniform_configurations
from repro.bayesopt.optimizer import MultiObjectiveBayesianOptimizer
from repro.bayesopt.parego import ParEGOSuggester, tchebycheff_scalarize

__all__ = [
    "GaussianProcess",
    "Kernel",
    "Matern52",
    "MultiObjectiveBayesianOptimizer",
    "RBF",
    "crowding_distance",
    "ParEGOSuggester",
    "expected_hypervolume_improvement",
    "expected_improvement",
    "hypervolume",
    "hypervolume_2d",
    "hypervolume_improvement_2d",
    "pareto_front",
    "pareto_mask",
    "sobol_configurations",
    "tchebycheff_scalarize",
    "uniform_configurations",
]
