"""Pareto dominance utilities (minimization convention throughout).

Matches the paper's §3.2: a point ``y1`` is dominated by ``y2`` iff ``y2``
is no worse in every objective and strictly better in at least one.  The
Pareto *set* is the set of non-dominated inputs; its image is the Pareto
*front*.
"""

from __future__ import annotations

import numpy as np

from repro.errors import OptimizationError


def dominates(a: np.ndarray, b: np.ndarray) -> bool:
    """Whether objective vector ``a`` Pareto-dominates ``b`` (minimization)."""
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    return bool(np.all(a <= b) and np.any(a < b))


def pareto_mask(points: np.ndarray) -> np.ndarray:
    """Boolean mask of non-dominated rows of an ``(n, m)`` objective matrix.

    Duplicate rows are all kept (none strictly dominates the other).  Uses
    an O(n log n) sweep for the bi-objective case and an O(n^2) check
    otherwise.
    """
    points = np.atleast_2d(np.asarray(points, dtype=float))
    n, m = points.shape
    if n == 0:
        return np.zeros(0, dtype=bool)
    if m < 2:
        raise OptimizationError("pareto_mask needs at least 2 objectives")
    if m == 2:
        return _pareto_mask_2d(points)
    mask = np.ones(n, dtype=bool)
    for i in range(n):
        if not mask[i]:
            continue
        others = np.delete(np.arange(n), i)
        dominated = np.all(points[others] <= points[i], axis=1) & np.any(
            points[others] < points[i], axis=1
        )
        if np.any(dominated):
            mask[i] = False
    return mask


def _pareto_mask_2d(points: np.ndarray) -> np.ndarray:
    """Sweep-based non-dominated mask for two objectives."""
    n = points.shape[0]
    # Sort by first objective ascending, ties broken by second ascending, so
    # that any dominator of a point appears before it in the sweep.
    order = np.lexsort((points[:, 1], points[:, 0]))
    mask = np.zeros(n, dtype=bool)
    best_y2 = np.inf
    best_y1_at = np.inf
    for idx in order:
        y1, y2 = points[idx]
        if y2 < best_y2:
            best_y2, best_y1_at = y2, y1
            mask[idx] = True
        elif y2 == best_y2 and y1 == best_y1_at:
            # exact duplicate of the current best: mutually non-dominating.
            mask[idx] = True
    return mask


def pareto_front(points: np.ndarray) -> np.ndarray:
    """The non-dominated rows of ``points``, sorted by the first objective."""
    points = np.atleast_2d(np.asarray(points, dtype=float))
    front = points[pareto_mask(points)]
    if front.size == 0:
        return front
    order = np.lexsort((front[:, 1], front[:, 0]))
    return front[order]


def crowding_distance(front: np.ndarray) -> np.ndarray:
    """NSGA-II crowding distance of each front point (boundaries get inf).

    Useful for picking well-spread subsets of an approximated front.
    """
    front = np.atleast_2d(np.asarray(front, dtype=float))
    n, m = front.shape
    if n == 0:
        return np.zeros(0)
    distances = np.zeros(n)
    for j in range(m):
        order = np.argsort(front[:, j])
        span = front[order[-1], j] - front[order[0], j]
        distances[order[0]] = np.inf
        distances[order[-1]] = np.inf
        if span <= 0 or n < 3:
            continue
        gaps = (front[order[2:], j] - front[order[:-2], j]) / span
        distances[order[1:-1]] += gaps
    return distances
