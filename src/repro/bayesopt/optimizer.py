"""The multi-objective Bayesian optimizer facade used by BoFL's MBO engine.

Owns the two per-objective GPs (latency and energy, modelled independently
per §4.3), the observation set, and the suggestion logic:

1. fit/refit both GPs on all observations (inputs normalized to the unit
   cube, targets standardized);
2. score every unobserved configuration with exact 2-D EHVI against the
   current observed front and reference point;
3. pick greedily, fantasize the pick at its posterior mean
   (Kriging believer), update the GPs cheaply, and repeat until the batch
   is full.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Optional

import numpy as np

from repro.bayesopt.acquisition import expected_hypervolume_improvement
from repro.bayesopt.gp import GaussianProcess
from repro.bayesopt.hypervolume import hypervolume_2d, reference_from_observations
from repro.bayesopt.kernels import Matern52
from repro.bayesopt.pareto import pareto_mask
from repro.errors import NotFittedError, OptimizationError
from repro.hardware.frequency import ConfigurationSpace
from repro.obs import runtime as obs
from repro.types import DvfsConfiguration


class MultiObjectiveBayesianOptimizer:
    """Searches the DVFS space for the latency/energy Pareto set.

    Parameters
    ----------
    space:
        The discrete configuration space to optimize over.
    seed:
        Seed for hyperparameter-fit restarts.
    fit_restarts:
        Random restarts per GP hyperparameter fit.
    reference_margin:
        Relative margin added to the observed-worst reference point so that
        boundary points keep positive hypervolume contribution.
    """

    def __init__(
        self,
        space: ConfigurationSpace,
        *,
        seed: int = 0,
        fit_restarts: int = 2,
        reference_margin: float = 0.05,
    ) -> None:
        self.space = space
        self._rng = np.random.default_rng(seed)
        self.fit_restarts = fit_restarts
        self.reference_margin = reference_margin
        self._observations: dict[DvfsConfiguration, tuple[float, float]] = {}
        self._gp_latency: Optional[GaussianProcess] = None
        self._gp_energy: Optional[GaussianProcess] = None
        self._reference: Optional[np.ndarray] = None
        self._fit_count = 0
        self._last_max_ehvi: Optional[float] = None

    # -- observations -----------------------------------------------------

    def add_observation(
        self, config: DvfsConfiguration, latency: float, energy: float
    ) -> None:
        """Record (or overwrite with fresher data) one measured configuration."""
        if config not in self.space:
            raise OptimizationError(f"{config} is outside the optimizer's space")
        if latency <= 0 or energy <= 0:
            raise OptimizationError("objective values must be positive")
        self._observations[config] = (float(latency), float(energy))

    @property
    def n_observations(self) -> int:
        return len(self._observations)

    @property
    def observed_configurations(self) -> list[DvfsConfiguration]:
        return list(self._observations)

    @property
    def fit_count(self) -> int:
        """How many GP refits have run (drives the MBO overhead model)."""
        return self._fit_count

    def objectives_matrix(self) -> tuple[list[DvfsConfiguration], np.ndarray]:
        """All observations as ``(configs, (n, 2) [latency, energy])``."""
        configs = list(self._observations)
        if not configs:
            return configs, np.zeros((0, 2))
        values = np.array([self._observations[c] for c in configs])
        return configs, values

    # -- front / hypervolume ------------------------------------------------

    def reference_point(self) -> np.ndarray:
        """The fixed reference point (set on first use from observations)."""
        if self._reference is None:
            _, values = self.objectives_matrix()
            self._reference = reference_from_observations(
                values, margin=self.reference_margin
            )
        return self._reference

    def freeze_reference(self) -> np.ndarray:
        """Pin the reference point to the current observed worsts.

        The paper fixes the reference at the end of phase 1 ("the
        combination of the worst performances ... we observed in phase 1")
        so hypervolume numbers are comparable across rounds.
        """
        _, values = self.objectives_matrix()
        self._reference = reference_from_observations(values, margin=self.reference_margin)
        return self._reference

    def pareto_set(self) -> tuple[list[DvfsConfiguration], np.ndarray]:
        """The non-dominated observed configurations and their objectives."""
        configs, values = self.objectives_matrix()
        if not configs:
            return [], values
        mask = pareto_mask(values)
        front_configs = [c for c, keep in zip(configs, mask) if keep]
        return front_configs, values[mask]

    def hypervolume(self) -> float:
        """Hypervolume of the observed front w.r.t. the frozen reference."""
        _, values = self.objectives_matrix()
        if values.shape[0] == 0:
            return 0.0
        return hypervolume_2d(values, self.reference_point())

    # -- fitting ----------------------------------------------------------

    def fit(self, optimize_hyperparameters: bool = True) -> None:
        """(Re)fit both objective GPs on all observations."""
        configs, values = self.objectives_matrix()
        if len(configs) < 2:
            raise OptimizationError(
                f"need at least 2 observations to fit the surrogates, have {len(configs)}"
            )
        x = self.space.normalize_many(configs)
        with obs.timer("mbo.gp_fit_seconds") as span:
            self._gp_latency = GaussianProcess(Matern52(np.full(3, 0.5)))
            self._gp_energy = GaussianProcess(Matern52(np.full(3, 0.5)))
            self._gp_latency.fit(x, values[:, 0])
            self._gp_energy.fit(x, values[:, 1])
            if optimize_hyperparameters:
                self._gp_latency.optimize_hyperparameters(self._rng, n_restarts=self.fit_restarts)
                self._gp_energy.optimize_hyperparameters(self._rng, n_restarts=self.fit_restarts)
        self._fit_count += 1
        if obs.enabled():
            obs.count("mbo.gp_fits")
            obs.emit(
                "mbo.fit",
                n_observations=len(configs),
                hyperparameters_optimized=optimize_hyperparameters,
                seconds=span.elapsed,
            )

    @property
    def is_fitted(self) -> bool:
        return self._gp_latency is not None and self._gp_energy is not None

    def predict(self, configs: Sequence[DvfsConfiguration]) -> tuple[np.ndarray, np.ndarray]:
        """Posterior ``(mean, var)`` as ``(m, 2)`` arrays over ``configs``."""
        if self._gp_latency is None or self._gp_energy is None:
            raise NotFittedError("call fit() before predict()")
        x = self.space.normalize_many(configs)
        mean_l, var_l = self._gp_latency.predict(x)
        mean_e, var_e = self._gp_energy.predict(x)
        return np.stack([mean_l, mean_e], axis=1), np.stack([var_l, var_e], axis=1)

    # -- suggestion -----------------------------------------------------------

    def suggest(
        self,
        batch_size: int,
        exclude: Optional[Sequence[DvfsConfiguration]] = None,
    ) -> list[DvfsConfiguration]:
        """Propose up to ``batch_size`` configurations to explore next.

        Sequential greedy EHVI with Kriging-believer fantasies (§4.3).
        Already-observed configurations and ``exclude`` are never proposed.
        Returns fewer than ``batch_size`` picks only when the space is
        nearly exhausted.
        """
        if batch_size < 1:
            raise OptimizationError(f"batch_size must be >= 1, got {batch_size}")
        if self._gp_latency is None or self._gp_energy is None:
            raise NotFittedError("call fit() before suggest()")
        skip = set(self._observations)
        if exclude:
            skip.update(exclude)
        candidates = [c for c in self.space.all_configurations() if c not in skip]
        if not candidates:
            return []
        candidate_x = self.space.normalize_many(candidates)
        reference = self.reference_point()

        gp_l, gp_e = self._gp_latency, self._gp_energy
        _, observed = self.objectives_matrix()
        front = observed[pareto_mask(observed)]

        picks: list[DvfsConfiguration] = []
        active = np.ones(len(candidates), dtype=bool)
        max_ehvi_first = None
        ehvi_evaluations = 0
        for _ in range(min(batch_size, len(candidates))):
            idx_active = np.flatnonzero(active)
            x_active = candidate_x[idx_active]
            mean_l, var_l = gp_l.predict(x_active)
            mean_e, var_e = gp_e.predict(x_active)
            mean = np.stack([mean_l, mean_e], axis=1)
            var = np.stack([var_l, var_e], axis=1)
            ehvi = expected_hypervolume_improvement(mean, var, front, reference)
            ehvi_evaluations += int(ehvi.size)
            best_local = int(np.argmax(ehvi))
            if max_ehvi_first is None:
                max_ehvi_first = float(ehvi[best_local])
            best = idx_active[best_local]
            picks.append(candidates[best])
            active[best] = False
            # Kriging believer: pretend the pick returned its posterior mean.
            fantasy_x = candidate_x[best : best + 1]
            gp_l = gp_l.conditioned_on(fantasy_x, mean_l[best_local : best_local + 1])
            gp_e = gp_e.conditioned_on(fantasy_x, mean_e[best_local : best_local + 1])
            front = np.vstack([front, mean[best_local]])
        self._last_max_ehvi = max_ehvi_first
        if obs.enabled():
            obs.count("mbo.ehvi_evaluations", ehvi_evaluations)
            obs.emit(
                "mbo.suggest",
                batch_size=batch_size,
                picks=len(picks),
                candidates=len(candidates),
                ehvi_evaluations=ehvi_evaluations,
                max_ehvi=max_ehvi_first,
            )
        return picks

    @property
    def last_max_ehvi(self) -> Optional[float]:
        """Max EHVI seen at the head of the most recent suggestion batch.

        Used by the phase-2 stopping condition: a small value means the
        surrogate expects little further hypervolume gain anywhere.
        """
        return self._last_max_ehvi
