"""The multi-objective Bayesian optimizer facade used by BoFL's MBO engine.

Owns the two per-objective GPs (latency and energy, modelled independently
per §4.3), the observation set, and the suggestion logic:

1. fit/refit both GPs on all observations (inputs normalized to the unit
   cube, targets standardized);
2. score every unobserved configuration with exact 2-D EHVI against the
   current observed front and reference point;
3. pick greedily, fantasize the pick at its posterior mean
   (Kriging believer), update the GPs cheaply, and repeat until the batch
   is full.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Optional

import numpy as np

from repro.bayesopt.acquisition import (
    ehvi_argmax,
    expected_hypervolume_improvement,
)
from repro.bayesopt.gp import BatchPosterior, GaussianProcess
from repro.bayesopt.hypervolume import hypervolume_2d, reference_from_observations
from repro.bayesopt.kernels import Matern52
from repro.bayesopt.pareto import pareto_mask
from repro.errors import NotFittedError, OptimizationError
from repro.hardware.frequency import ConfigurationSpace
from repro.obs import runtime as obs
from repro.types import DvfsConfiguration


class MultiObjectiveBayesianOptimizer:
    """Searches the DVFS space for the latency/energy Pareto set.

    Parameters
    ----------
    space:
        The discrete configuration space to optimize over.
    seed:
        Seed for hyperparameter-fit restarts.
    fit_restarts:
        Random restarts per GP hyperparameter fit.
    reference_margin:
        Relative margin added to the observed-worst reference point so that
        boundary points keep positive hypervolume contribution.
    warm_start:
        Seed refits from the previous round's fitted hyperparameters
        (lengthscales, signal and noise variance) instead of rebuilding
        both GPs from the ``Matern52(0.5)`` prior.  Warm refits skip the
        random L-BFGS-B restarts: the incumbent start is already near the
        optimum, which is what makes repeated refits cheap.  The first fit
        is always cold, so single-fit behavior is unchanged.
    fast_path:
        Use the O(n^2) rank-1 Cholesky extension and the cached candidate
        posterior in :meth:`suggest` (see ``docs/kernel_fastpath.md``).
        ``False`` restores the O(n^3)-per-pick refit loop — kept for the
        equivalence tests and benchmarks.
    """

    def __init__(
        self,
        space: ConfigurationSpace,
        *,
        seed: int = 0,
        fit_restarts: int = 2,
        reference_margin: float = 0.05,
        warm_start: bool = True,
        fast_path: bool = True,
    ) -> None:
        self.space = space
        self._rng = np.random.default_rng(seed)
        self.fit_restarts = fit_restarts
        self.reference_margin = reference_margin
        self.warm_start = warm_start
        self.fast_path = fast_path
        self._observations: dict[DvfsConfiguration, tuple[float, float]] = {}
        self._gp_latency: Optional[GaussianProcess] = None
        self._gp_energy: Optional[GaussianProcess] = None
        self._reference: Optional[np.ndarray] = None
        self._fit_count = 0
        self._last_max_ehvi: Optional[float] = None
        self._suggest_cache: Optional[
            tuple[
                tuple[int, int, int],
                list[DvfsConfiguration],
                np.ndarray,
                BatchPosterior,
                BatchPosterior,
            ]
        ] = None

    # -- observations -----------------------------------------------------

    def add_observation(
        self, config: DvfsConfiguration, latency: float, energy: float
    ) -> None:
        """Record (or overwrite with fresher data) one measured configuration."""
        if config not in self.space:
            raise OptimizationError(f"{config} is outside the optimizer's space")
        if latency <= 0 or energy <= 0:
            raise OptimizationError("objective values must be positive")
        self._observations[config] = (float(latency), float(energy))

    @property
    def n_observations(self) -> int:
        return len(self._observations)

    @property
    def observed_configurations(self) -> list[DvfsConfiguration]:
        return list(self._observations)

    @property
    def fit_count(self) -> int:
        """How many GP refits have run (drives the MBO overhead model)."""
        return self._fit_count

    def objectives_matrix(self) -> tuple[list[DvfsConfiguration], np.ndarray]:
        """All observations as ``(configs, (n, 2) [latency, energy])``."""
        configs = list(self._observations)
        if not configs:
            return configs, np.zeros((0, 2))
        values = np.array([self._observations[c] for c in configs])
        return configs, values

    # -- front / hypervolume ------------------------------------------------

    def reference_point(self) -> np.ndarray:
        """The fixed reference point (set on first use from observations)."""
        if self._reference is None:
            _, values = self.objectives_matrix()
            self._reference = reference_from_observations(
                values, margin=self.reference_margin
            )
        return self._reference

    def freeze_reference(self) -> np.ndarray:
        """Pin the reference point to the current observed worsts.

        The paper fixes the reference at the end of phase 1 ("the
        combination of the worst performances ... we observed in phase 1")
        so hypervolume numbers are comparable across rounds.
        """
        _, values = self.objectives_matrix()
        self._reference = reference_from_observations(values, margin=self.reference_margin)
        return self._reference

    def pareto_set(self) -> tuple[list[DvfsConfiguration], np.ndarray]:
        """The non-dominated observed configurations and their objectives."""
        configs, values = self.objectives_matrix()
        if not configs:
            return [], values
        mask = pareto_mask(values)
        front_configs = [c for c, keep in zip(configs, mask) if keep]
        return front_configs, values[mask]

    def hypervolume(self) -> float:
        """Hypervolume of the observed front w.r.t. the frozen reference."""
        _, values = self.objectives_matrix()
        if values.shape[0] == 0:
            return 0.0
        return hypervolume_2d(values, self.reference_point())

    # -- fitting ----------------------------------------------------------

    def fit(self, optimize_hyperparameters: bool = True) -> None:
        """(Re)fit both objective GPs on all observations."""
        configs, values = self.objectives_matrix()
        if len(configs) < 2:
            raise OptimizationError(
                f"need at least 2 observations to fit the surrogates, have {len(configs)}"
            )
        x = self.space.normalize_many(configs)
        prev_latency, prev_energy = self._gp_latency, self._gp_energy
        warm = self.warm_start and prev_latency is not None and prev_energy is not None
        with obs.timer("mbo.gp_fit_seconds") as span:
            if self.warm_start and prev_latency is not None and prev_energy is not None:
                # Reuse the previous round's fitted hyperparameters as the
                # L-BFGS-B incumbent and skip the random restarts — the
                # surface moved by one batch of observations, not far.
                gp_latency = GaussianProcess(
                    prev_latency.kernel.clone(),
                    noise_variance=prev_latency.noise_variance,
                )
                gp_energy = GaussianProcess(
                    prev_energy.kernel.clone(),
                    noise_variance=prev_energy.noise_variance,
                )
                restarts = 0
            else:
                gp_latency = GaussianProcess(Matern52(np.full(3, 0.5)))
                gp_energy = GaussianProcess(Matern52(np.full(3, 0.5)))
                restarts = self.fit_restarts
            self._gp_latency = gp_latency
            self._gp_energy = gp_energy
            self._gp_latency.fit(x, values[:, 0])
            self._gp_energy.fit(x, values[:, 1])
            if optimize_hyperparameters:
                self._gp_latency.optimize_hyperparameters(self._rng, n_restarts=restarts)
                self._gp_energy.optimize_hyperparameters(self._rng, n_restarts=restarts)
        self._fit_count += 1
        if warm and obs.enabled():
            obs.count("mbo.warm_fits")
        if obs.enabled():
            obs.count("mbo.gp_fits")
            obs.emit(
                "mbo.fit",
                n_observations=len(configs),
                hyperparameters_optimized=optimize_hyperparameters,
                seconds=span.elapsed,
            )

    @property
    def is_fitted(self) -> bool:
        return self._gp_latency is not None and self._gp_energy is not None

    def predict(self, configs: Sequence[DvfsConfiguration]) -> tuple[np.ndarray, np.ndarray]:
        """Posterior ``(mean, var)`` as ``(m, 2)`` arrays over ``configs``."""
        if self._gp_latency is None or self._gp_energy is None:
            raise NotFittedError("call fit() before predict()")
        x = self.space.normalize_many(configs)
        mean_l, var_l = self._gp_latency.predict(x)
        mean_e, var_e = self._gp_energy.predict(x)
        return np.stack([mean_l, mean_e], axis=1), np.stack([var_l, var_e], axis=1)

    # -- suggestion -----------------------------------------------------------

    def suggest(
        self,
        batch_size: int,
        exclude: Optional[Sequence[DvfsConfiguration]] = None,
    ) -> list[DvfsConfiguration]:
        """Propose up to ``batch_size`` configurations to explore next.

        Sequential greedy EHVI with Kriging-believer fantasies (§4.3).
        Already-observed configurations and ``exclude`` are never proposed.
        Returns fewer than ``batch_size`` picks only when the space is
        nearly exhausted.
        """
        if batch_size < 1:
            raise OptimizationError(f"batch_size must be >= 1, got {batch_size}")
        if self._gp_latency is None or self._gp_energy is None:
            raise NotFittedError("call fit() before suggest()")
        gp_l, gp_e = self._gp_latency, self._gp_energy
        fast = self.fast_path
        # The candidate set and the base posteriors are pure functions of
        # (fitted GPs, observation set), so repeated suggests against an
        # unchanged optimizer reuse them.  Any refit bumps ``fit_count``
        # and any new observation changes ``n_observations``, so staleness
        # is impossible; ``exclude`` bypasses the cache entirely.
        cached = self._suggest_cache if fast and not exclude else None
        candidates: Optional[list[DvfsConfiguration]] = None
        post_l: Optional[BatchPosterior] = None
        post_e: Optional[BatchPosterior] = None
        if cached is not None:
            key, candidates, candidate_x, post_l, post_e = cached
            if key[:2] != (self._fit_count, self.n_observations) or key[2] < batch_size:
                candidates = post_l = post_e = None
        if candidates is None:
            skip = set(self._observations)
            if exclude:
                skip.update(exclude)
            candidates = [c for c in self.space.all_configurations() if c not in skip]
            if not candidates:
                return []
            candidate_x = self.space.normalize_many(candidates)
        if not candidates:
            return []
        reference = self.reference_point()

        _, observed = self.objectives_matrix()
        front = observed[pareto_mask(observed)]

        n_picks = min(batch_size, len(candidates))
        if fast and post_l is None:
            # Cache k(X, C) and L^-1 k(X, C) over the full candidate set
            # once; each fantasy pick extends them by a single row instead
            # of rebuilding the O(n^2 m) substitution from scratch.  The
            # capacity preallocates one buffer row per upcoming fantasy.
            post_l = BatchPosterior(gp_l, candidate_x, capacity=n_picks)
            post_e = BatchPosterior(gp_e, candidate_x, capacity=n_picks)
            if not exclude:
                self._suggest_cache = (
                    (self._fit_count, self.n_observations, n_picks),
                    candidates,
                    candidate_x,
                    post_l,
                    post_e,
                )

        picks: list[DvfsConfiguration] = []
        active = np.ones(len(candidates), dtype=bool)
        max_ehvi_first = None
        ehvi_evaluations = 0
        n_active = len(candidates)
        for _ in range(n_picks):
            if fast and post_l is not None and post_e is not None:
                # Work in global candidate indices: the cached posteriors
                # cover every candidate, and ehvi_argmax masks out the
                # already-picked rows — no per-pick array compaction.
                mean_l, var_l = post_l.predict()
                mean_e, var_e = post_e.predict()
                mean = np.stack([mean_l, mean_e], axis=1)
                var = np.stack([var_l, var_e], axis=1)
                best, best_ehvi = ehvi_argmax(
                    mean, var, front, reference, active=active
                )
            else:
                idx_active = np.flatnonzero(active)
                x_active = candidate_x[idx_active]
                mean_l, var_l = gp_l.predict(x_active)
                mean_e, var_e = gp_e.predict(x_active)
                mean = np.stack([mean_l, mean_e], axis=1)
                var = np.stack([var_l, var_e], axis=1)
                ehvi = expected_hypervolume_improvement(mean, var, front, reference)
                best_local = int(np.argmax(ehvi))
                best_ehvi = float(ehvi[best_local])
                best = int(idx_active[best_local])
            ehvi_evaluations += n_active
            if max_ehvi_first is None:
                max_ehvi_first = best_ehvi
            if best_ehvi <= 0.0:
                # Surrogate saturated: no candidate improves the fantasy
                # front anywhere.  Every further iteration would fantasize
                # another zero-EHVI argmax — deterministically the first
                # active candidate — so emit the remaining picks directly
                # instead of paying two GP updates per pick for nothing.
                remaining = np.flatnonzero(active)[: n_picks - len(picks)]
                picks.extend(candidates[int(i)] for i in remaining)
                if obs.enabled():
                    obs.count("mbo.suggest_short_circuits")
                break
            picks.append(candidates[best])
            active[best] = False
            n_active -= 1
            # Kriging believer: pretend the pick returned its posterior mean.
            fantasy_x = candidate_x[best : best + 1]
            if fast and post_l is not None and post_e is not None:
                # The fantasy point is a candidate: its cross-kernel
                # forward substitution is already a cached column.
                fantasy_row = best
                gp_l = gp_l.conditioned_on(
                    fantasy_x,
                    mean_l[fantasy_row : fantasy_row + 1],
                    l21=post_l.cross_column(best),
                )
                gp_e = gp_e.conditioned_on(
                    fantasy_x,
                    mean_e[fantasy_row : fantasy_row + 1],
                    l21=post_e.cross_column(best),
                )
                post_l = post_l.extended(gp_l)
                post_e = post_e.extended(gp_e)
                front = np.vstack([front, mean[fantasy_row]])
            else:
                gp_l = gp_l.conditioned_on(
                    fantasy_x, mean_l[best_local : best_local + 1], fast=fast
                )
                gp_e = gp_e.conditioned_on(
                    fantasy_x, mean_e[best_local : best_local + 1], fast=fast
                )
                front = np.vstack([front, mean[best_local]])
        self._last_max_ehvi = max_ehvi_first
        if obs.enabled():
            obs.count("mbo.ehvi_evaluations", ehvi_evaluations)
            obs.emit(
                "mbo.suggest",
                batch_size=batch_size,
                picks=len(picks),
                candidates=len(candidates),
                ehvi_evaluations=ehvi_evaluations,
                max_ehvi=max_ehvi_first,
            )
        return picks

    @property
    def last_max_ehvi(self) -> Optional[float]:
        """Max EHVI seen at the head of the most recent suggestion batch.

        Used by the phase-2 stopping condition: a small value means the
        surrogate expects little further hypervolume gain anywhere.
        """
        return self._last_max_ehvi
