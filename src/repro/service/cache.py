"""The archetype-keyed decision cache.

An in-memory LRU store of :class:`~repro.service.api.DecisionPlan` values
keyed by the request token hash — the same key/schema discipline as the
persistent campaign cache (:mod:`repro.sim.cache`): keys are schema-
versioned canonical tokens, a token mismatch under a colliding hash reads
as a miss rather than serving a wrong plan, and eviction is LRU bounded
by ``max_entries``.  Because identity fields stay out of the token, a
fleet of clients sharing one archetype collapses onto one entry — the
property that makes fleet-rate decision serving cheap.

Unlike the campaign cache this one is memory-only: plans are milliseconds
to recompute, so durability buys nothing, but the *shape* (stats, token
validation, eviction counters) is kept identical so the two caches read
the same in traces and docs.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigurationError
from repro.service.api import (
    DECISION_SCHEMA_VERSION,
    DecisionPlan,
    DecisionRequest,
    request_key_hash,
)


@dataclass(frozen=True)
class DecisionCacheStats:
    """A point-in-time snapshot of one decision cache."""

    entries: int
    max_entries: int
    hits: int
    misses: int
    writes: int
    evictions: int

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def render(self) -> str:
        lines = [
            f"entries      : {self.entries} / {self.max_entries}",
            f"hits         : {self.hits}",
            f"misses       : {self.misses}",
            f"hit rate     : {self.hit_rate:.1%}",
            f"writes       : {self.writes}",
            f"evictions    : {self.evictions}",
        ]
        return "\n".join(lines)


class DecisionCache:
    """LRU cache of decision plans keyed by request-token hashes."""

    def __init__(self, max_entries: int = 2048) -> None:
        if max_entries < 1:
            raise ConfigurationError(
                f"max_entries must be >= 1, got {max_entries}"
            )
        self.max_entries = max_entries
        #: hash -> (token, plan); insertion order doubles as LRU order.
        self._entries: "OrderedDict[str, tuple[dict[str, object], DecisionPlan]]" = (
            OrderedDict()
        )
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.evictions = 0

    def get(self, request: DecisionRequest) -> Optional[DecisionPlan]:
        """The cached plan for ``request``, or None on any kind of miss.

        A stored token that does not equal the request's token (hash
        collision, or a schema bump that left a stale entry behind) is a
        miss — the mismatched entry is dropped, never served.
        """
        key = request_key_hash(request)
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        token, plan = entry
        if token != request.token() or plan.schema != DECISION_SCHEMA_VERSION:
            del self._entries[key]
            self.misses += 1
            return None
        self._entries.move_to_end(key)  # LRU touch
        self.hits += 1
        return plan

    def put(self, request: DecisionRequest, plan: DecisionPlan) -> str:
        """Store ``plan`` under the request's key and enforce the bound."""
        key = request_key_hash(request)
        self._entries[key] = (request.token(), plan)
        self._entries.move_to_end(key)
        self.writes += 1
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.evictions += 1
        return key

    def contains(self, request: DecisionRequest) -> bool:
        """Membership check that does not disturb LRU order or counters."""
        return self.peek(request) is not None

    def peek(self, request: DecisionRequest) -> Optional[DecisionPlan]:
        """Pure lookup: no counter updates, no LRU touch.

        The service engine peeks while an evaluation is only *tentatively*
        settled (it may still be in flight); the counters are updated by a
        real :meth:`get` once the completion is committed.
        """
        entry = self._entries.get(request_key_hash(request))
        if entry is None or entry[0] != request.token():
            return None
        return entry[1]

    def clear(self) -> int:
        removed = len(self._entries)
        self._entries.clear()
        return removed

    def stats(self) -> DecisionCacheStats:
        return DecisionCacheStats(
            entries=len(self._entries),
            max_entries=self.max_entries,
            hits=self.hits,
            misses=self.misses,
            writes=self.writes,
            evictions=self.evictions,
        )

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DecisionCache(entries={len(self._entries)}, max_entries={self.max_entries})"
