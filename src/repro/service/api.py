"""The pace-decision request/response schema.

BoFL's end product is a per-device answer: *given this device profile,
deadline and workload, here is the local training pace plan*.  A
:class:`DecisionRequest` carries exactly the semantic fields that
determine that answer; a :class:`DecisionPlan` is the answer itself — the
Eqn. 1 schedule as (configuration, job count) steps plus its expected
totals and the provenance of how the service produced it.

Key discipline mirrors :mod:`repro.sim.cache`: a request canonicalizes to
a JSON-stable *token* (schema-versioned, sorted keys, floats normalized
through ``float()``), and :func:`request_key_hash` digests that token.
Two requests that differ only in field ordering or float formatting hash
identically; any semantic change produces a different hash.  Identity
fields (``client_id``) deliberately stay out of the token so a thousand
clients with one archetype share a single cache entry.
"""

from __future__ import annotations

import hashlib
import json
from collections.abc import Mapping
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import ConfigurationError
from repro.types import Joules, Schedule, Seconds

#: Bump whenever the request token layout or the serialized plan format
#: changes; older decision-cache entries then read as misses.
DECISION_SCHEMA_VERSION = 1

#: Plan provenance values (``DecisionPlan.source``).
PLAN_SOURCES = ("computed", "cache", "coalesced", "fallback")


@dataclass(frozen=True)
class DecisionRequest:
    """One pace-decision question posed to the service.

    Semantic fields (everything except ``client_id``) fully determine the
    plan: the device archetype, the workload, the number of local training
    jobs in the round, the round deadline, and the planner's safety
    margin.  ``client_id`` is routing metadata — it appears in decision
    logs but never in cache keys.
    """

    device: str
    task: str
    jobs: int
    deadline: Seconds
    safety_margin: float = 0.02
    client_id: str = ""  # key_exempt: routing metadata — logged, never keyed

    def __post_init__(self) -> None:
        if not self.device:
            raise ConfigurationError("request device must be non-empty")
        if not self.task:
            raise ConfigurationError("request task must be non-empty")
        if self.jobs < 1:
            raise ConfigurationError(f"request jobs must be >= 1, got {self.jobs}")
        if self.deadline <= 0:
            raise ConfigurationError(
                f"request deadline must be positive, got {self.deadline}"
            )
        if not 0.0 <= self.safety_margin < 1.0:
            raise ConfigurationError(
                f"safety_margin must lie in [0, 1), got {self.safety_margin}"
            )

    def token(self) -> dict[str, object]:
        """The JSON-stable semantic identity of this request.

        The same discipline as :func:`repro.sim.cache.cache_token`: every
        semantic field, schema-versioned, floats passed through
        ``float()`` so ``2`` and ``2.0`` canonicalize identically.
        """
        return {
            "schema": DECISION_SCHEMA_VERSION,
            "kind": "decision",
            "device": self.device,
            "task": self.task,
            "jobs": int(self.jobs),
            "deadline": float(self.deadline),
            "safety_margin": float(self.safety_margin),
        }

    def to_dict(self) -> dict[str, object]:
        """The ``repro serve`` wire format (round-trips via :meth:`from_dict`)."""
        return {
            "device": self.device,
            "task": self.task,
            "jobs": int(self.jobs),
            "deadline": float(self.deadline),
            "safety_margin": float(self.safety_margin),
            "client_id": self.client_id,
        }

    @classmethod
    def from_dict(cls, raw: Mapping[str, object]) -> "DecisionRequest":
        """Build a request from a JSON object (``repro serve`` wire format)."""
        try:
            return cls(
                device=str(raw["device"]),
                task=str(raw["task"]),
                jobs=int(raw["jobs"]),  # type: ignore[call-overload]
                deadline=float(raw["deadline"]),  # type: ignore[arg-type]
                safety_margin=float(raw.get("safety_margin", 0.02)),  # type: ignore[arg-type]
                client_id=str(raw.get("client_id", "")),
            )
        except KeyError as error:
            raise ConfigurationError(
                f"decision request is missing field {error.args[0]!r}"
            ) from None
        except (TypeError, ValueError) as error:
            raise ConfigurationError(f"malformed decision request: {error}") from None


def request_key_hash(request: DecisionRequest) -> str:
    """A stable hex digest of the request token (the cache key).

    Uses sha256 over the canonical JSON encoding, exactly like
    :func:`repro.sim.cache.cache_key_hash` does for campaign keys.
    """
    canonical = json.dumps(request.token(), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class PlanStep:
    """Run ``jobs`` training jobs at the DVFS setting ``frequencies``."""

    frequencies: tuple[float, ...]
    jobs: int

    def to_dict(self) -> dict[str, object]:
        return {"frequencies": list(self.frequencies), "jobs": self.jobs}


@dataclass(frozen=True)
class DecisionPlan:
    """The service's answer: an executable pace plan plus provenance.

    ``source`` records how the plan was produced — ``computed`` (a fresh
    profile + ILP evaluation), ``cache`` (decision-cache hit),
    ``coalesced`` (shared an in-flight evaluation with an identical
    request) or ``fallback`` (graceful degradation: every job at
    ``x_max``).
    """

    request_hash: str
    steps: tuple[PlanStep, ...]
    expected_latency: Seconds
    expected_energy: Joules
    source: str = "computed"
    schema: int = DECISION_SCHEMA_VERSION

    def __post_init__(self) -> None:
        if self.source not in PLAN_SOURCES:
            raise ConfigurationError(
                f"unknown plan source {self.source!r}; "
                f"available: {', '.join(PLAN_SOURCES)}"
            )

    @property
    def total_jobs(self) -> int:
        return sum(step.jobs for step in self.steps)

    def with_source(self, source: str) -> "DecisionPlan":
        """The same plan relabelled with a different provenance."""
        if source == self.source:
            return self
        return DecisionPlan(
            request_hash=self.request_hash,
            steps=self.steps,
            expected_latency=self.expected_latency,
            expected_energy=self.expected_energy,
            source=source,
            schema=self.schema,
        )

    def to_dict(self) -> dict[str, object]:
        return {
            "schema": self.schema,
            "request_hash": self.request_hash,
            "steps": [step.to_dict() for step in self.steps],
            "expected_latency": float(self.expected_latency),
            "expected_energy": float(self.expected_energy),
            "source": self.source,
        }

    @classmethod
    def from_dict(cls, raw: Mapping[str, object]) -> "DecisionPlan":
        try:
            steps = tuple(
                PlanStep(
                    frequencies=tuple(float(f) for f in step["frequencies"]),  # type: ignore[index]
                    jobs=int(step["jobs"]),  # type: ignore[index]
                )
                for step in raw["steps"]  # type: ignore[union-attr]
            )
            return cls(
                request_hash=str(raw["request_hash"]),
                steps=steps,
                expected_latency=float(raw["expected_latency"]),  # type: ignore[arg-type]
                expected_energy=float(raw["expected_energy"]),  # type: ignore[arg-type]
                source=str(raw.get("source", "computed")),
                schema=int(raw.get("schema", DECISION_SCHEMA_VERSION)),  # type: ignore[call-overload]
            )
        except (KeyError, TypeError, ValueError) as error:
            raise ConfigurationError(f"malformed decision plan: {error}") from None

    @classmethod
    def from_schedule(
        cls, request_hash: str, schedule: Schedule, source: str = "computed"
    ) -> "DecisionPlan":
        """Wrap an ILP :class:`~repro.types.Schedule` as a wire-format plan."""
        steps = tuple(
            PlanStep(frequencies=entry.config.as_tuple(), jobs=entry.jobs)
            for entry in schedule.entries
            if entry.jobs > 0
        )
        return cls(
            request_hash=request_hash,
            steps=steps,
            expected_latency=float(schedule.expected_latency),
            expected_energy=float(schedule.expected_energy),
            source=source,
        )


@dataclass(frozen=True)
class Decision:
    """One completed request/response exchange, stamped in simulated time.

    ``latency`` is simulated decision latency — completion minus arrival
    on the service clock — which is what the loadtest percentiles and the
    CI p99 gate measure; wall-clock throughput is reported separately by
    the load generator.
    """

    request: DecisionRequest
    plan: DecisionPlan
    arrival: Seconds
    completed: Seconds
    coalesced: bool = False
    degraded: Optional[str] = None
    sequence: int = field(default=0)

    @property
    def latency(self) -> Seconds:
        return self.completed - self.arrival

    def log_record(self) -> dict[str, object]:
        """The canonical decision-log line (byte-stable across runs).

        Everything in it is a pure function of the request stream and the
        service configuration: simulated times, the plan, and provenance.
        Two identically-seeded loadtest runs must serialize identical
        records — the CI ``service-smoke`` job diffs exactly this.
        """
        record: dict[str, object] = {
            "seq": self.sequence,
            "client_id": self.request.client_id,
            "request_hash": request_key_hash(self.request),
            "arrival": round(float(self.arrival), 9),
            "completed": round(float(self.completed), 9),
            "latency": round(float(self.latency), 9),
            "source": self.plan.source,
            "coalesced": self.coalesced,
            "expected_latency": float(self.plan.expected_latency),
            "expected_energy": float(self.plan.expected_energy),
            "steps": [step.to_dict() for step in self.plan.steps],
        }
        if self.degraded is not None:
            record["degraded"] = self.degraded
        return record

    def log_line(self) -> str:
        return json.dumps(self.log_record(), sort_keys=True, separators=(",", ":"))
