"""Deterministic load generation: replay fleet traces as decision traffic.

The load generator turns a :class:`~repro.sim.fleet.FleetSpec` population
into a simulated-clock request stream: every (client, round) pair of the
fleet becomes one :class:`~repro.service.api.DecisionRequest` whose jobs
and deadline are derived exactly the way the campaign runner derives them
(same crc32 scenario seeds, same :class:`UniformDeadlines` draws), so the
service is answering precisely the questions the simulated campaigns
answer — at traffic rates instead of one campaign at a time.

Arrivals come in per-round waves with seeded uniform jitter: archetype
mates ask identical questions within a wave, which is what gives the
decision cache and the coalescing path realistic traffic to work with.
Everything — arrival times, request contents, service outcomes — is a
pure function of ``(spec, rate, passes)``, so two runs of the same
loadtest produce byte-identical decision logs; the CI ``service-smoke``
job diffs them.

Latency percentiles are nearest-rank over simulated decision latencies.
Wall-clock throughput is measured around the whole replay through
``repro.obs`` timers (the one sanctioned wall-clock path) and reported
separately — it never enters the decision log.
"""

from __future__ import annotations

import json
import pathlib
import zlib
from dataclasses import dataclass, field
from typing import Optional, Union

import numpy as np

from repro.errors import ConfigurationError
from repro.federated.deadlines import UniformDeadlines
from repro.obs import runtime as obs
from repro.obs.events import Event, read_jsonl
from repro.service.api import Decision, DecisionRequest
from repro.service.archetypes import get_profile
from repro.service.engine import PaceDecisionService, ServiceConfig, ServiceStats
from repro.sim.fleet import FleetSpec, build_fleet_clients
from repro.types import Seconds


def quantile(values: list[float], q: float) -> float:
    """Nearest-rank quantile (deterministic, interpolation-free)."""
    if not values:
        return 0.0
    if not 0.0 < q <= 1.0:
        raise ConfigurationError(f"quantile must lie in (0, 1], got {q}")
    ordered = sorted(values)
    rank = max(1, int(np.ceil(q * len(ordered))))
    return float(ordered[rank - 1])


def _scenario_seed(device: str, task: str, trace_seed: int) -> int:
    """The campaign runner's deadline/noise seed for one scenario."""
    return zlib.crc32(f"{device}/{task}/{trace_seed}".encode()) % (2**31)


@dataclass(frozen=True)
class TimedRequest:
    """One request plus its simulated arrival offset within a pass."""

    offset: Seconds
    request: DecisionRequest


def fleet_requests(spec: FleetSpec, rate: float) -> list[TimedRequest]:
    """The deterministic request stream one fleet replay generates.

    One request per (client, round).  Round ``r`` arrives in a wave
    starting at ``r * wave_interval`` where the wave is wide enough for
    the whole fleet at ``rate`` requests/second; within the wave each
    client gets seeded uniform jitter.  Stable sort by (offset, client
    index) makes the stream order reproducible even under jitter ties.
    """
    if rate <= 0:
        raise ConfigurationError(f"rate must be positive, got {rate}")
    clients = build_fleet_clients(spec)
    wave_spread = spec.n_clients / rate
    wave_interval = wave_spread * 1.25  # waves overlap-free but back to back
    rng = np.random.default_rng(spec.seed + 0x5E41)
    jitter = rng.uniform(0.0, wave_spread, size=(spec.rounds, spec.n_clients))
    deadline_cache: dict[tuple[str, str], list[Seconds]] = {}
    stream: list[tuple[Seconds, int, DecisionRequest]] = []
    for client in clients:
        profile = get_profile(client.device, client.task)
        jobs = profile.jobs_per_round
        # Deadlines are an *archetype* property keyed on the fleet seed —
        # not on per-client trace seeds — so clients sharing (device, task)
        # ask the service the identical question each round.  That shared
        # traffic is what exercises the decision cache and the coalescer.
        key = (client.device, client.task)
        deadlines = deadline_cache.get(key)
        if deadlines is None:
            seed = _scenario_seed(client.device, client.task, spec.seed)
            t_min = profile.t_xmax * jobs
            deadlines = UniformDeadlines(spec.deadline_ratio).generate(
                t_min, spec.rounds, seed=seed + 1
            )
            deadline_cache[key] = deadlines
        for round_index in range(spec.rounds):
            offset = (
                round_index * wave_interval
                + float(jitter[round_index, client.index])
            )
            stream.append(
                (
                    offset,
                    client.index,
                    DecisionRequest(
                        device=client.device,
                        task=client.task,
                        jobs=jobs,
                        deadline=deadlines[round_index],
                        client_id=client.client_id,
                    ),
                )
            )
    stream.sort(key=lambda item: (item[0], item[1]))
    return [TimedRequest(offset=offset, request=request) for offset, _, request in stream]


@dataclass(frozen=True)
class PassStats:
    """Latency/cache telemetry of one replay pass."""

    index: int
    requests: int
    p50: Seconds
    p99: Seconds
    mean: Seconds
    max: Seconds
    cache_hits: int
    cache_misses: int
    coalesced: int
    timeouts: int
    rejections: int
    fallbacks: int
    evaluations: int

    @property
    def cache_hit_rate(self) -> float:
        probes = self.cache_hits + self.cache_misses
        return self.cache_hits / probes if probes else 0.0

    @property
    def coalescing_ratio(self) -> float:
        return self.coalesced / self.requests if self.requests else 0.0

    def to_dict(self) -> dict[str, object]:
        return {
            "pass": self.index,
            "requests": self.requests,
            "p50_latency_s": self.p50,
            "p99_latency_s": self.p99,
            "mean_latency_s": self.mean,
            "max_latency_s": self.max,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_hit_rate": self.cache_hit_rate,
            "coalesced": self.coalesced,
            "coalescing_ratio": self.coalescing_ratio,
            "timeouts": self.timeouts,
            "rejections": self.rejections,
            "fallbacks": self.fallbacks,
            "evaluations": self.evaluations,
        }


@dataclass
class LoadTestReport:
    """The full outcome of one deterministic loadtest."""

    clients: int
    rounds: int
    passes: int
    rate: float
    seed: int
    requests: int
    makespan: Seconds
    p50: Seconds
    p99: Seconds
    mean: Seconds
    max: Seconds
    throughput_rps: float
    stats: ServiceStats
    per_pass: list[PassStats] = field(default_factory=list)
    decisions: list[Decision] = field(default_factory=list)
    #: Wall seconds spent replaying (observability timer; 0 when no
    #: session was active).  Never part of the decision log.
    wall_seconds: float = 0.0

    @property
    def wall_throughput_rps(self) -> float:
        return self.requests / self.wall_seconds if self.wall_seconds > 0 else 0.0

    def decision_log_lines(self) -> list[str]:
        """Canonical, byte-stable JSON lines — one per decision."""
        return [decision.log_line() for decision in self.decisions]

    def write_decision_log(self, path: Union[str, pathlib.Path]) -> pathlib.Path:
        path = pathlib.Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("".join(line + "\n" for line in self.decision_log_lines()))
        return path

    def to_dict(self) -> dict[str, object]:
        return {
            "clients": self.clients,
            "rounds": self.rounds,
            "passes": self.passes,
            "rate": self.rate,
            "seed": self.seed,
            "requests": self.requests,
            "makespan_s": self.makespan,
            "p50_latency_s": self.p50,
            "p99_latency_s": self.p99,
            "mean_latency_s": self.mean,
            "max_latency_s": self.max,
            "throughput_rps": self.throughput_rps,
            "wall_seconds": self.wall_seconds,
            "wall_throughput_rps": self.wall_throughput_rps,
            "cache_hit_rate": self.stats.cache_hit_rate,
            "coalescing_ratio": self.stats.coalescing_ratio,
            "evaluations": self.stats.evaluations,
            "timeouts": self.stats.timeouts,
            "rejections": self.stats.rejections,
            "fallbacks": self.stats.fallbacks,
            "peak_queue_depth": self.stats.peak_queue_depth,
            "passes_detail": [p.to_dict() for p in self.per_pass],
        }

    def write_json(self, path: Union[str, pathlib.Path]) -> pathlib.Path:
        path = pathlib.Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n")
        return path

    def render(self) -> str:
        lines = [
            "Loadtest summary",
            f"  fleet            : {self.clients} clients x {self.rounds} rounds"
            f" x {self.passes} pass(es), seed {self.seed}",
            f"  requests         : {self.requests} at {self.rate:g} req/s"
            f" (makespan {self.makespan:.3f} s simulated)",
            f"  decision latency : p50 {self.p50 * 1e3:.3f} ms"
            f"  p99 {self.p99 * 1e3:.3f} ms  mean {self.mean * 1e3:.3f} ms"
            f"  max {self.max * 1e3:.3f} ms",
            f"  throughput       : {self.throughput_rps:.1f} req/s simulated"
            + (
                f", {self.wall_throughput_rps:.0f} req/s wall"
                if self.wall_seconds > 0
                else ""
            ),
            f"  cache hit rate   : {self.stats.cache_hit_rate:.1%}"
            f"  (hits {self.stats.cache_hits}, misses {self.stats.cache_misses})",
            f"  coalescing ratio : {self.stats.coalescing_ratio:.1%}"
            f"  ({self.stats.coalesced} of {self.stats.requests} requests)",
            f"  degradations     : {self.stats.timeouts} timeout(s),"
            f" {self.stats.rejections} rejection(s), {self.stats.fallbacks} fallback(s)",
            f"  evaluations      : {self.stats.evaluations}"
            f"  (peak queue depth {self.stats.peak_queue_depth})",
        ]
        for stats in self.per_pass:
            lines.append(
                f"  pass {stats.index}           : p50 {stats.p50 * 1e3:.3f} ms"
                f"  p99 {stats.p99 * 1e3:.3f} ms"
                f"  hit rate {stats.cache_hit_rate:.1%}"
                f"  coalesced {stats.coalescing_ratio:.1%}"
            )
        return "\n".join(lines)


def _pass_stats(
    index: int,
    decisions: list[Decision],
    before: ServiceStats,
    after: ServiceStats,
) -> PassStats:
    latencies = [d.latency for d in decisions]
    return PassStats(
        index=index,
        requests=len(decisions),
        p50=quantile(latencies, 0.50),
        p99=quantile(latencies, 0.99),
        mean=float(np.mean(latencies)) if latencies else 0.0,
        max=max(latencies) if latencies else 0.0,
        cache_hits=after.cache_hits - before.cache_hits,
        cache_misses=after.cache_misses - before.cache_misses,
        coalesced=after.coalesced - before.coalesced,
        timeouts=after.timeouts - before.timeouts,
        rejections=after.rejections - before.rejections,
        fallbacks=after.fallbacks - before.fallbacks,
        evaluations=after.evaluations - before.evaluations,
    )


def run_loadtest(
    spec: FleetSpec,
    *,
    rate: float = 200.0,
    passes: int = 1,
    config: Optional[ServiceConfig] = None,
    service: Optional[PaceDecisionService] = None,
) -> LoadTestReport:
    """Replay the fleet's request trace ``passes`` times through a service.

    Every pass replays the *same* trace (same requests, same relative
    arrival offsets), shifted to start after the previous pass drained —
    so a second pass measures a warm decision cache, which is exactly
    what the CI smoke gate asserts (>= 50% hit rate on pass two).
    """
    if passes < 1:
        raise ConfigurationError(f"passes must be >= 1, got {passes}")
    service = service if service is not None else PaceDecisionService(config)
    trace = fleet_requests(spec, rate)
    per_pass: list[PassStats] = []
    with obs.timer("service.loadtest_wall_s") as span:
        for pass_index in range(passes):
            base = service.clock.now
            before = service.stats()
            first_decision = len(service.decisions)
            for timed in trace:
                service.submit(timed.request, at=base + timed.offset)
            service.drain()
            after = service.stats()
            stats = _pass_stats(
                pass_index + 1,
                service.decisions[first_decision:],
                before,
                after,
            )
            per_pass.append(stats)
            if obs.enabled():
                obs.emit(
                    "loadgen.pass",
                    t=service.clock.now,
                    index=stats.index,
                    requests=stats.requests,
                    p50=stats.p50,
                    p99=stats.p99,
                    cache_hit_rate=stats.cache_hit_rate,
                    coalescing_ratio=stats.coalescing_ratio,
                )
    final = service.close()
    decisions = list(service.decisions)
    latencies = [d.latency for d in decisions]
    makespan = service.clock.now
    return LoadTestReport(
        clients=spec.n_clients,
        rounds=spec.rounds,
        passes=passes,
        rate=rate,
        seed=spec.seed,
        requests=len(decisions),
        makespan=makespan,
        p50=quantile(latencies, 0.50),
        p99=quantile(latencies, 0.99),
        mean=float(np.mean(latencies)) if latencies else 0.0,
        max=max(latencies) if latencies else 0.0,
        throughput_rps=len(decisions) / makespan if makespan > 0 else 0.0,
        stats=final,
        per_pass=per_pass,
        decisions=decisions,
        wall_seconds=span.elapsed,
    )


def service_report_from_trace(path: Union[str, pathlib.Path]) -> str:
    """Recompute a loadtest summary from a recorded observability trace.

    The ``service.decision`` events carry each decision's simulated
    latency and provenance, so the percentiles and ratios rendered here
    are exactly reproducible from the JSONL alone — the same replay
    discipline as ``repro chaos report`` / ``repro fleet report``.
    """
    events = read_jsonl(path)
    decisions = [e for e in events if e.kind == "service.decision"]
    if not decisions:
        raise ConfigurationError(
            f"{path} contains no service.decision events; was it recorded "
            "by `repro loadtest --trace`?"
        )
    latencies = [float(_payload_number(e, "latency")) for e in decisions]
    sources: dict[str, int] = {}
    for event in decisions:
        source = str(event.payload.get("source", "?"))
        sources[source] = sources.get(source, 0) + 1
    coalesced = sum(1 for e in decisions if e.payload.get("coalesced"))
    degraded = sum(1 for e in decisions if e.payload.get("degraded"))
    evaluations = sum(1 for e in events if e.kind == "service.evaluate")
    makespan = max(e.t for e in decisions)
    lines = [
        "Service trace summary",
        f"  decisions        : {len(decisions)} over {makespan:.3f} s simulated",
        f"  decision latency : p50 {quantile(latencies, 0.5) * 1e3:.3f} ms"
        f"  p99 {quantile(latencies, 0.99) * 1e3:.3f} ms",
        "  sources          : "
        + ", ".join(f"{k}={sources[k]}" for k in sorted(sources)),
        f"  coalesced        : {coalesced}",
        f"  degraded         : {degraded}",
        f"  evaluations      : {evaluations}",
    ]
    passes = [e for e in events if e.kind == "loadgen.pass"]
    for event in passes:
        lines.append(
            f"  pass {event.payload.get('index')}           : "
            f"p99 {float(_payload_number(event, 'p99')) * 1e3:.3f} ms  "
            f"hit rate {float(_payload_number(event, 'cache_hit_rate')):.1%}"
        )
    return "\n".join(lines)


def _payload_number(event: Event, key: str) -> float:
    value = event.payload.get(key, 0.0)
    if not isinstance(value, (int, float)):
        raise ConfigurationError(
            f"event {event.kind} payload field {key!r} is not numeric: {value!r}"
        )
    return float(value)
