"""The long-running pace-decision service (see docs/pace_decision_service.md).

BoFL's end product as a request/response API: a
:class:`DecisionRequest` (device archetype, workload, deadline) in, a
:class:`DecisionPlan` (the Eqn. 1 pace schedule) out — served at fleet
rates through an archetype-keyed decision cache, request coalescing, and
graceful degradation, with a deterministic load-generation harness that
replays fleet traces as traffic and reports p50/p99 decision latency.
"""

from repro.service.api import (
    DECISION_SCHEMA_VERSION,
    Decision,
    DecisionPlan,
    DecisionRequest,
    PlanStep,
    request_key_hash,
)
from repro.service.archetypes import (
    ArchetypeProfile,
    clear_profile_cache,
    get_profile,
    plan_or_fallback,
)
from repro.service.cache import DecisionCache, DecisionCacheStats
from repro.service.engine import (
    PaceDecisionService,
    ServiceConfig,
    ServiceCostModel,
    ServiceStats,
)
from repro.service.loadgen import (
    LoadTestReport,
    PassStats,
    TimedRequest,
    fleet_requests,
    quantile,
    run_loadtest,
    service_report_from_trace,
)

__all__ = [
    "DECISION_SCHEMA_VERSION",
    "ArchetypeProfile",
    "Decision",
    "DecisionCache",
    "DecisionCacheStats",
    "DecisionPlan",
    "DecisionRequest",
    "LoadTestReport",
    "PaceDecisionService",
    "PassStats",
    "PlanStep",
    "ServiceConfig",
    "ServiceCostModel",
    "ServiceStats",
    "TimedRequest",
    "clear_profile_cache",
    "fleet_requests",
    "get_profile",
    "plan_or_fallback",
    "quantile",
    "request_key_hash",
    "run_loadtest",
    "service_report_from_trace",
]
