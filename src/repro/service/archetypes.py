"""Archetype profiles: the per-(device, task) candidate pool a decision needs.

A pace decision reduces to the Eqn. 1 ILP over a Pareto candidate set.
For a fleet-scale service the candidate set is an *archetype* property —
every AGX-class client running ViT shares one calibrated ``T(x)/E(x)``
surface (see :class:`repro.hardware.perfmodel.ObjectiveTensor`) — so the
profile is built once per (device, task) and shared by every request,
exactly like the fleet layer pools clients onto archetype trace seeds.

Two profile sources exist:

* :meth:`ArchetypeProfile.from_surfaces` — the offline-profiling view
  (the Oracle baseline's candidate pool): exact Pareto set of the
  whole-space objective tensor.  This is what the long-running service
  uses by default.
* :meth:`ArchetypeProfile.from_candidates` — explicit points, e.g. a
  :class:`~repro.core.controller.BoFLController`'s learned candidates via
  :meth:`~repro.core.controller.BoFLController.decision_candidates`, so a
  device that ran BoFL locally can be served plans from its own
  measurements instead of the analytic surface.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bayesopt.pareto import pareto_mask
from repro.core.exploitation import ExploitationPlanner
from repro.errors import ConfigurationError, InfeasibleError
from repro.federated.task import FLTaskSpec, cifar10_vit, imagenet_resnet50, imdb_lstm
from repro.hardware.devices import get_device
from repro.types import DvfsConfiguration, Schedule, ScheduleEntry, Seconds

#: Task registry by short name (the campaign runner's, duplicated here to
#: avoid importing the whole sim layer into the service).
_TASKS = {
    "vit": cifar10_vit,
    "resnet50": imagenet_resnet50,
    "lstm": imdb_lstm,
}


def task_by_name(name: str) -> FLTaskSpec:
    """The :class:`FLTaskSpec` for a short task name."""
    try:
        return _TASKS[name]()
    except KeyError:
        raise ConfigurationError(
            f"unknown task {name!r}; available: {', '.join(sorted(_TASKS))}"
        ) from None


@dataclass(frozen=True)
class ArchetypeProfile:
    """The decision-relevant summary of one (device, task) archetype.

    Candidate configurations with their per-job latency/energy, plus the
    guardian anchor ``x_max`` — everything the ILP planner and the
    fallback path need.  Arrays are aligned with ``configs``.
    """

    device: str
    task: str
    configs: tuple[DvfsConfiguration, ...]
    latencies: np.ndarray
    energies: np.ndarray
    x_max: DvfsConfiguration
    t_xmax: Seconds
    e_xmax: float
    #: Default jobs-per-round for this archetype's workload (``W = E x N``).
    jobs_per_round: int

    @property
    def n_candidates(self) -> int:
        return len(self.configs)

    @classmethod
    def from_candidates(
        cls,
        device: str,
        task: str,
        configs: tuple[DvfsConfiguration, ...],
        latencies: np.ndarray,
        energies: np.ndarray,
        x_max: DvfsConfiguration,
        jobs_per_round: int = 1,
    ) -> "ArchetypeProfile":
        """Build a profile from explicit candidate points.

        The fastest candidate is treated as the fallback anchor when
        ``x_max`` itself is not among the candidates (a learned store may
        not have measured it under the exact same noise window).
        """
        if len(configs) == 0:
            raise ConfigurationError("a profile needs at least one candidate")
        latencies = np.asarray(latencies, dtype=float)
        energies = np.asarray(energies, dtype=float)
        if x_max in configs:
            anchor = configs.index(x_max)
        else:
            anchor = int(np.argmin(latencies))
        return cls(
            device=device,
            task=task,
            configs=tuple(configs),
            latencies=latencies,
            energies=energies,
            x_max=configs[anchor],
            t_xmax=float(latencies[anchor]),
            e_xmax=float(energies[anchor]),
            jobs_per_round=jobs_per_round,
        )

    @classmethod
    def from_surfaces(cls, device: str, task: str) -> "ArchetypeProfile":
        """Offline-profiling view: exact Pareto set of the analytic surface.

        The same construction as the Oracle baseline — whole-space
        ``T(x)/E(x)`` tensor, Pareto mask, plus ``x_max`` guaranteed in
        the pool so the ILP stays feasible whenever the deadline is
        meetable at all.
        """
        spec = get_device(device)
        task_spec = task_by_name(task)
        model = task_spec.workload.performance_model(spec)
        tensor = model.objective_tensor()
        values = np.stack([tensor.latencies, tensor.energies], axis=1)
        mask = pareto_mask(values)
        all_configs = spec.space.all_configurations()
        configs = [c for c, keep in zip(all_configs, mask) if keep]
        kept = values[mask]
        x_max = spec.space.max_configuration()
        if x_max not in configs:
            index = all_configs.index(x_max)
            configs.append(x_max)
            kept = np.vstack([kept, values[index]])
        anchor = configs.index(x_max)
        return cls(
            device=device,
            task=task,
            configs=tuple(configs),
            latencies=kept[:, 0].copy(),
            energies=kept[:, 1].copy(),
            x_max=x_max,
            t_xmax=float(kept[anchor, 0]),
            e_xmax=float(kept[anchor, 1]),
            jobs_per_round=task_spec.jobs_per_round(spec),
        )

    # -- planning ----------------------------------------------------------

    def plan(
        self, jobs: int, deadline: Seconds, safety_margin: float = 0.02
    ) -> Schedule:
        """Solve the Eqn. 1 ILP over this profile's candidates.

        Raises :class:`~repro.errors.InfeasibleError` when not even the
        fastest candidate meets the deadline; callers degrade to
        :meth:`fallback_plan`.
        """
        planner = ExploitationPlanner(safety_margin)
        return planner.plan_from_points(
            list(self.configs), self.latencies, self.energies, jobs, deadline
        )

    def fallback_plan(self, jobs: int) -> Schedule:
        """The graceful-degradation plan: every job at ``x_max``.

        Always constructible without an ILP solve; the expected totals
        come straight from the anchor point.
        """
        entry = ScheduleEntry(self.x_max, jobs)
        return Schedule(
            entries=(entry,),
            expected_latency=self.t_xmax * jobs,
            expected_energy=self.e_xmax * jobs,
        )


#: Process-wide profile cache, keyed by (device, task) — the service and
#: the load generator share builds, mirroring the perfmodel tensor cache.
_PROFILE_CACHE: dict[tuple[str, str], ArchetypeProfile] = {}


def get_profile(device: str, task: str) -> ArchetypeProfile:
    """The cached offline-profiling archetype profile for (device, task)."""
    key = (device, task)
    cached = _PROFILE_CACHE.get(key)
    if cached is not None:
        return cached
    profile = ArchetypeProfile.from_surfaces(device, task)
    _PROFILE_CACHE[key] = profile
    return profile


def clear_profile_cache() -> None:
    """Drop every cached profile (tests and recalibration)."""
    _PROFILE_CACHE.clear()


def plan_or_fallback(
    profile: ArchetypeProfile,
    jobs: int,
    deadline: Seconds,
    safety_margin: float = 0.02,
) -> tuple[Schedule, bool]:
    """Plan via the ILP, degrading to the ``x_max`` sprint when infeasible.

    Returns ``(schedule, fell_back)``.
    """
    try:
        return profile.plan(jobs, deadline, safety_margin), False
    except InfeasibleError:
        return profile.fallback_plan(jobs), True


__all__ = [
    "ArchetypeProfile",
    "clear_profile_cache",
    "get_profile",
    "plan_or_fallback",
    "task_by_name",
]
