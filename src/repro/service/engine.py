"""The long-running pace-decision service.

A deterministic single-solver queueing model over the archetype profiles
and the Eqn. 1 ILP, driven entirely by simulated time so loadtests are
byte-reproducible:

* **Requests** arrive with nondecreasing simulated timestamps
  (:meth:`PaceDecisionService.submit`) and drain FIFO through one solver
  lane.  Each serviced entry occupies the lane for a deterministic
  service time from :class:`ServiceCostModel` — a cache hit costs
  microseconds, a full profile + ILP evaluation costs milliseconds, and
  the first request against a cold archetype additionally pays the
  profile-build cost.  Queueing delay under load is what the p50/p99
  percentiles measure.
* **Coalescing** — a request whose token hash matches an entry that is
  still queued *or in flight* joins that entry and shares its single
  evaluation; joiners complete at the shared completion time with source
  ``coalesced``.
* **Graceful degradation** — the queue is bounded: submits beyond
  ``max_queue`` distinct entries are answered immediately from the
  decision cache (stale-tolerant) or with the ``x_max`` fallback plan.
  Entries that waited longer than ``timeout`` before their evaluation
  started are answered the same way at ``arrival + timeout`` by the
  deadline watchdog instead of the solver.  Both paths emit a
  ``service.degraded`` event.

Nothing here reads the wall clock; wall-clock throughput is measured by
the load generator around the whole replay, through ``repro.obs`` timers.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.clock import SimulationClock
from repro.errors import ConfigurationError
from repro.obs import runtime as obs
from repro.service.api import (
    Decision,
    DecisionPlan,
    DecisionRequest,
    request_key_hash,
)
from repro.service.archetypes import ArchetypeProfile, get_profile, plan_or_fallback
from repro.service.cache import DecisionCache, DecisionCacheStats
from repro.types import Seconds

#: How the service obtains an archetype profile; injectable for tests.
ProfileResolver = Callable[[str, str], ArchetypeProfile]


@dataclass(frozen=True)
class ServiceCostModel:
    """Deterministic simulated service times (seconds) per decision path.

    Defaults are calibrated against the measured wall-clock cost of the
    corresponding operations on the development machine (see
    ``benchmarks/bench_service.py``): an ILP solve over a few dozen
    Pareto candidates lands in the low milliseconds, a cache hit is a
    dictionary probe, and building an archetype profile (whole-space
    tensor + Pareto mask) is a one-off tens-of-milliseconds cost.
    """

    #: Decision served from the decision cache.
    hit: Seconds = 2e-4
    #: Base cost of one profile + ILP evaluation...
    evaluate: Seconds = 2e-3
    #: ...plus this much per Pareto candidate in the ILP.
    per_candidate: Seconds = 2e-5
    #: One-off cost the first time an archetype is profiled.
    profile_build: Seconds = 5e-2
    #: Watchdog response (timeout / queue-full degradation).
    degraded: Seconds = 1e-4

    def __post_init__(self) -> None:
        for name in ("hit", "evaluate", "per_candidate", "profile_build", "degraded"):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"cost model field {name} must be >= 0")

    def evaluation_time(self, candidates: int, cold_profile: bool) -> Seconds:
        extra = self.profile_build if cold_profile else 0.0
        return self.evaluate + self.per_candidate * candidates + extra


@dataclass(frozen=True)
class ServiceConfig:
    """Tunables of one :class:`PaceDecisionService` instance."""

    #: Maximum distinct queued/in-flight evaluations before submits degrade.
    max_queue: int = 256
    #: Queueing-delay budget: entries that wait longer are answered by the
    #: watchdog (cache or fallback) instead of the solver.
    timeout: Seconds = 0.25
    #: Decision-cache capacity (LRU entries).
    cache_entries: int = 2048
    costs: ServiceCostModel = field(default_factory=ServiceCostModel)

    def __post_init__(self) -> None:
        if self.max_queue < 1:
            raise ConfigurationError(f"max_queue must be >= 1, got {self.max_queue}")
        if self.timeout <= 0:
            raise ConfigurationError(f"timeout must be positive, got {self.timeout}")
        if self.cache_entries < 1:
            raise ConfigurationError(
                f"cache_entries must be >= 1, got {self.cache_entries}"
            )


@dataclass(frozen=True)
class ServiceStats:
    """Aggregate telemetry of one service lifetime."""

    requests: int
    decisions: int
    evaluations: int
    cache_hits: int
    cache_misses: int
    coalesced: int
    timeouts: int
    rejections: int
    fallbacks: int
    peak_queue_depth: int
    cache: DecisionCacheStats

    @property
    def cache_hit_rate(self) -> float:
        probes = self.cache_hits + self.cache_misses
        return self.cache_hits / probes if probes else 0.0

    @property
    def coalescing_ratio(self) -> float:
        return self.coalesced / self.requests if self.requests else 0.0


@dataclass
class _Waiter:
    """One request waiting on a pending entry."""

    sequence: int
    request: DecisionRequest
    arrival: Seconds
    is_leader: bool


@dataclass
class _Pending:
    """One distinct queued/in-flight evaluation and its waiters."""

    key: str
    arrival: Seconds
    waiters: list[_Waiter]
    #: Memoized (plan, cold-profile?, candidates, service_time) — the
    #: evaluation itself is a pure function of the leader request and of
    #: cache/profile state, which cannot change while this entry is
    #: pending (only the head commits, and coalescing keeps identical
    #: keys on one entry).  Without the memo every tentative settle peek
    #: would re-solve the ILP.
    outcome: Optional[tuple[DecisionPlan, bool, int, Seconds]] = None


class PaceDecisionService:
    """Request/response pace decisions over a deterministic solver queue."""

    def __init__(
        self,
        config: Optional[ServiceConfig] = None,
        *,
        clock: Optional[SimulationClock] = None,
        profiles: Optional[ProfileResolver] = None,
    ) -> None:
        self.config = config if config is not None else ServiceConfig()
        self.clock = clock if clock is not None else SimulationClock()
        self._resolve_profile: ProfileResolver = (
            profiles if profiles is not None else get_profile
        )
        self.cache = DecisionCache(self.config.cache_entries)
        self._pending: "OrderedDict[str, _Pending]" = OrderedDict()
        self._warm_archetypes: set[tuple[str, str]] = set()
        self._busy_until: Seconds = 0.0
        self._sequence = 0
        self._last_arrival: Seconds = 0.0
        self.decisions: list[Decision] = []
        # Telemetry
        self.requests = 0
        self.evaluations = 0
        self.coalesced = 0
        self.timeouts = 0
        self.rejections = 0
        self.fallbacks = 0
        self.peak_queue_depth = 0
        if obs.enabled():
            obs.emit(
                "service.start",
                t=self.clock.now,
                max_queue=self.config.max_queue,
                timeout=self.config.timeout,
                cache_entries=self.config.cache_entries,
            )

    # -- public API ---------------------------------------------------------

    def submit(self, request: DecisionRequest, at: Optional[Seconds] = None) -> None:
        """Enqueue one request arriving at simulated time ``at``.

        Arrivals must be nondecreasing (the load generator submits in
        time order); ``at=None`` means "now".  The call first settles
        every evaluation that completes before ``at``, so coalescing only
        joins entries that are genuinely still queued or in flight.
        """
        arrival = self.clock.now if at is None else float(at)
        if arrival < self._last_arrival:
            raise ConfigurationError(
                f"arrivals must be nondecreasing: {arrival} after {self._last_arrival}"
            )
        self._last_arrival = arrival
        self._settle(arrival)
        self.clock.advance_to(arrival)
        self.requests += 1
        if obs.enabled():
            obs.count("service.requests")
        key = request_key_hash(request)
        self._sequence += 1
        waiter = _Waiter(self._sequence, request, arrival, is_leader=False)
        pending = self._pending.get(key)
        if pending is not None:
            # Coalesce: share the queued/in-flight evaluation.
            pending.waiters.append(waiter)
            self.coalesced += 1
            if obs.enabled():
                obs.count("service.coalesced")
            return
        if len(self._pending) >= self.config.max_queue:
            # Bounded queue: answer from the watchdog immediately.
            self.rejections += 1
            self._degrade(waiter, reason="queue_full")
            return
        waiter.is_leader = True
        self._pending[key] = _Pending(key=key, arrival=arrival, waiters=[waiter])
        self.peak_queue_depth = max(self.peak_queue_depth, len(self._pending))

    def decide(
        self, request: DecisionRequest, at: Optional[Seconds] = None
    ) -> Decision:
        """Synchronous convenience: submit, drain, return the decision."""
        before = len(self.decisions)
        self.submit(request, at)
        self.drain()
        for decision in self.decisions[before:]:
            if decision.request is request:
                return decision
        # A coalesced or degraded submit still lands exactly one decision.
        return self.decisions[-1]

    def drain(self) -> None:
        """Settle every queued evaluation (advance time past the backlog)."""
        self._settle(None)

    def close(self) -> ServiceStats:
        """Drain, emit the end-of-life event, and return final stats."""
        self.drain()
        stats = self.stats()
        if obs.enabled():
            obs.emit(
                "service.end",
                t=self.clock.now,
                requests=stats.requests,
                decisions=stats.decisions,
                evaluations=stats.evaluations,
                cache_hits=stats.cache_hits,
                coalesced=stats.coalesced,
                timeouts=stats.timeouts,
                rejections=stats.rejections,
                fallbacks=stats.fallbacks,
            )
        return stats

    def stats(self) -> ServiceStats:
        cache_stats = self.cache.stats()
        return ServiceStats(
            requests=self.requests,
            decisions=len(self.decisions),
            evaluations=self.evaluations,
            cache_hits=cache_stats.hits,
            cache_misses=cache_stats.misses,
            coalesced=self.coalesced,
            timeouts=self.timeouts,
            rejections=self.rejections,
            fallbacks=self.fallbacks,
            peak_queue_depth=self.peak_queue_depth,
            cache=cache_stats,
        )

    # -- queue machinery ----------------------------------------------------

    def _settle(self, until: Optional[Seconds]) -> None:
        """Finalize FIFO entries whose evaluation completes by ``until``.

        ``until=None`` settles everything.  An entry whose evaluation
        would still be running at ``until`` is left pending — it is the
        in-flight entry new arrivals may coalesce onto.
        """
        while self._pending:
            head = next(iter(self._pending.values()))
            start = max(self._busy_until, head.arrival)
            if until is not None and start > until:
                break
            served, timed_out = self._split_by_timeout(head, start)
            if not served:
                # Every waiter timed out in queue; the solver never runs.
                del self._pending[head.key]
                for waiter in timed_out:
                    self._watchdog_answer(waiter, reason="timeout")
                continue
            if head.outcome is None:
                head.outcome = self._evaluation_outcome(served[0].request)
            plan, cold, candidates, service_time = head.outcome
            completion = start + service_time
            if until is not None and completion > until:
                break
            del self._pending[head.key]
            for waiter in timed_out:
                self._watchdog_answer(waiter, reason="timeout")
            self._commit_evaluation(
                head, served, start, completion, plan, cold, candidates
            )

    def _split_by_timeout(
        self, entry: _Pending, start: Seconds
    ) -> tuple[list[_Waiter], list[_Waiter]]:
        """Partition an entry's waiters into (served, timed out) at ``start``."""
        served: list[_Waiter] = []
        timed_out: list[_Waiter] = []
        for waiter in entry.waiters:
            if start - waiter.arrival > self.config.timeout:
                timed_out.append(waiter)
            else:
                served.append(waiter)
        return served, timed_out

    def _evaluation_outcome(
        self, leader: DecisionRequest
    ) -> tuple[DecisionPlan, bool, int, Seconds]:
        """The (plan, cold-profile?, candidates, service_time) of one evaluation.

        Pure with respect to the service: cache/profile/counter state is
        only mutated in :meth:`_commit_evaluation` once the completion is
        accepted, so :meth:`_settle` can peek at in-flight completions.
        """
        cached = self.cache.peek(leader)
        if cached is not None:
            return cached.with_source("cache"), False, 0, self.config.costs.hit
        archetype = (leader.device, leader.task)
        cold = archetype not in self._warm_archetypes
        profile = self._resolve_profile(*archetype)
        schedule, fell_back = plan_or_fallback(
            profile, leader.jobs, leader.deadline, leader.safety_margin
        )
        source = "fallback" if fell_back else "computed"
        plan = DecisionPlan.from_schedule(request_key_hash(leader), schedule, source)
        service_time = self.config.costs.evaluation_time(profile.n_candidates, cold)
        return plan, cold, profile.n_candidates, service_time

    def _commit_evaluation(
        self,
        entry: _Pending,
        served: list[_Waiter],
        start: Seconds,
        completion: Seconds,
        plan: DecisionPlan,
        cold: bool,
        candidates: int,
    ) -> None:
        """Apply one settled evaluation: cache, clock, decisions, telemetry."""
        leader = served[0].request
        if plan.source == "cache":
            self.cache.get(leader)  # register the hit + LRU touch
            if obs.enabled():
                obs.count("service.cache_hits")
        else:
            self.cache.get(leader)  # register the miss
            self.evaluations += 1
            if cold:
                self._warm_archetypes.add((leader.device, leader.task))
            if plan.source == "fallback":
                self.fallbacks += 1
                if obs.enabled():
                    obs.count("service.fallbacks")
            self.cache.put(leader, plan.with_source("computed"))
            if obs.enabled():
                obs.count("service.cache_misses")
                obs.emit(
                    "service.evaluate",
                    t=completion,
                    device=leader.device,
                    task=leader.task,
                    candidates=candidates,
                    service_time=completion - start,
                    cold_profile=cold,
                    queue_depth=len(self._pending),
                )
        self._busy_until = completion
        self.clock.advance_to(completion)
        for position, waiter in enumerate(served):
            source = plan.source if position == 0 else "coalesced"
            self._record(
                Decision(
                    request=waiter.request,
                    plan=plan.with_source(source),
                    arrival=waiter.arrival,
                    completed=completion,
                    coalesced=position > 0,
                    sequence=waiter.sequence,
                )
            )

    # -- degradation paths ---------------------------------------------------

    def _degrade(self, waiter: _Waiter, reason: str) -> None:
        """Queue-full path: answer immediately, off the solver lane."""
        self._watchdog_answer(waiter, reason=reason, at=waiter.arrival)

    def _watchdog_answer(
        self, waiter: _Waiter, reason: str, at: Optional[Seconds] = None
    ) -> None:
        """Serve a degraded answer: cached plan if present, else x_max.

        Timeout answers complete at ``arrival + timeout`` (the watchdog
        fires when the budget expires); queue-full answers complete after
        the watchdog's own constant cost.
        """
        request = waiter.request
        if reason == "timeout":
            self.timeouts += 1
            completed = waiter.arrival + self.config.timeout
            if obs.enabled():
                obs.count("service.timeouts")
        else:
            completed = (waiter.arrival if at is None else at) + self.config.costs.degraded
            if obs.enabled():
                obs.count("service.rejections")
        cached = self.cache.get(request)
        if cached is not None:
            plan = cached.with_source("cache")
        else:
            profile = self._resolve_profile(request.device, request.task)
            schedule = profile.fallback_plan(request.jobs)
            plan = DecisionPlan.from_schedule(
                request_key_hash(request), schedule, "fallback"
            )
            self.fallbacks += 1
            if obs.enabled():
                obs.count("service.fallbacks")
        if obs.enabled():
            obs.emit(
                "service.degraded",
                t=completed,
                reason=reason,
                source=plan.source,
                client_id=request.client_id,
                queue_depth=len(self._pending),
            )
        self._record(
            Decision(
                request=request,
                plan=plan,
                arrival=waiter.arrival,
                completed=completed,
                coalesced=False,
                degraded=reason,
                sequence=waiter.sequence,
            )
        )

    def _record(self, decision: Decision) -> None:
        self.decisions.append(decision)
        if obs.enabled():
            obs.observe("service.decision_latency_s", decision.latency)
            obs.emit(
                "service.decision",
                t=decision.completed,
                client_id=decision.request.client_id,
                request_hash=request_key_hash(decision.request),
                source=decision.plan.source,
                latency=decision.latency,
                coalesced=decision.coalesced,
                degraded=decision.degraded or "",
                jobs=decision.request.jobs,
                deadline=decision.request.deadline,
            )
