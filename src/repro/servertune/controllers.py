"""Server-side global-knob controllers (the FedGPO / FedTune families).

BoFL optimizes each client's *local* pace; the global knobs the server
owns — round deadline slack, participation count, async buffer length,
and the rounds budget itself — stay fixed.  FedGPO and FedTune (see
PAPERS.md) show those server-side parameters dominate fleet-level energy
and latency once client pace is tuned.  This module provides the knob
vocabulary and three controllers:

``StaticKnobs``
    The identity controller: every round gets the default knobs, which
    reproduces the pre-subsystem behaviour byte-for-byte.
``FedGPOController``
    Heterogeneity-aware adaptation: an EWMA of the observed straggler
    rate widens the deadline (and restores participation) when rounds
    are straggler-heavy, and tightens the deadline (shrinking
    participation toward ``min_participation``) when the fleet is
    comfortably inside its budget — cutting both tail latency and the
    energy of reports that would be discarded anyway.
``FedTuneController``
    Multi-objective preference-weighted hill climbing: each round's
    (energy-per-aggregated-report, latency) is scored against the first
    round's baseline under ``alpha_energy``/``alpha_time`` weights; the
    controller keeps its current knob direction while the score improves
    and reverses course when it worsens.  ``patience`` rounds without
    improvement raise the ``halt`` knob (FedTune's rounds budget).

Determinism contract: controllers carry **no RNG** — every knob
trajectory is a pure function of the spec and the observed feedback
sequence, so identical feedback yields identical knobs in any process.
State changes only inside :meth:`ServerController.observe`;
:meth:`ServerController.knobs_for` is a pure read, which lets callers
query a round's knobs any number of times (engine, trace emitters)
without perturbing the trajectory.

Cache coupling: at the campaign level an adaptive controller reshapes
the per-round deadlines a client trains against, so a non-static
:class:`ServerTuneSpec` is part of the campaign cache key (see
:func:`repro.sim.cache.cache_token`); :func:`normalize_servertune` maps
static/no-op specs to ``None`` so they share keys — and bytes — with
pre-subsystem campaigns.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigurationError

#: Controller names :func:`make_server_controller` accepts.
SERVERTUNE_CONTROLLERS: tuple[str, ...] = ("static", "fedgpo", "fedtune")


@dataclass(frozen=True)
class ServerKnobs:
    """One round's global-knob settings, as multipliers on the static run.

    The defaults are the identity: a controller that always returns
    ``ServerKnobs()`` is indistinguishable from no controller at all.
    """

    #: Multiplier on the round's deadline budget (campaign level) and on
    #: the server's round-close patience (fleet composition level).
    deadline_scale: float = 1.0
    #: Fraction of the configured selection size to actually select.
    participation: float = 1.0
    #: ``async`` only: multiplier on the FedBuff commit threshold.
    buffer_scale: float = 1.0
    #: Stop the run before this round starts (the rounds-budget knob).
    halt: bool = False

    def __post_init__(self) -> None:
        if self.deadline_scale <= 0:
            raise ConfigurationError(
                f"deadline_scale must be positive, got {self.deadline_scale}"
            )
        if not 0.0 < self.participation <= 1.0:
            raise ConfigurationError(
                f"participation must lie in (0, 1], got {self.participation}"
            )
        if self.buffer_scale <= 0:
            raise ConfigurationError(
                f"buffer_scale must be positive, got {self.buffer_scale}"
            )

    @property
    def is_default(self) -> bool:
        """True when these knobs change nothing about the round."""
        return (
            self.deadline_scale == 1.0
            and self.participation == 1.0
            and self.buffer_scale == 1.0
            and not self.halt
        )


#: The identity knobs (shared instance; ServerKnobs is frozen).
DEFAULT_KNOBS = ServerKnobs()


@dataclass(frozen=True)
class RoundFeedback:
    """What the server observed about one completed round.

    Built from :class:`~repro.federated.server.ServerRound` /
    :class:`~repro.federated.async_engine.FleetRound` records (or, at the
    campaign level, from a single client's
    :class:`~repro.core.records.RoundRecord`).
    """

    round_index: int
    #: Clients asked to train this round.
    participants: int
    #: Reports that made it into the aggregation.
    buffered: int
    #: Reports that arrived but could not be aggregated (deadline miss,
    #: cutoff, staleness drop).
    stragglers: int
    #: Energy the round consumed across every participant.
    energy: float
    #: The round's latency on the server's clock.
    latency: float
    #: Running totals, for controllers that track campaign trajectory.
    total_energy: float = 0.0
    makespan: float = 0.0

    @property
    def straggler_rate(self) -> float:
        """Fraction of this round's participants whose work was wasted."""
        return self.stragglers / max(self.participants, 1)

    @property
    def energy_per_report(self) -> float:
        """Energy per aggregated report (the FedGPO efficiency signal)."""
        return self.energy / max(self.buffered, 1)


@dataclass(frozen=True)
class ServerTuneSpec:
    """Declarative configuration of one server controller.

    Frozen and key-bearing: a non-static spec joins the campaign cache
    key (the controller reshapes client traces), so every field below is
    read by :meth:`to_dict` — the key-completeness contract in
    ``repro analyze`` enforces that.
    """

    controller: str = "static"
    #: Multiplicative step applied to ``deadline_scale`` per adjustment.
    deadline_step: float = 0.15
    #: Multiplicative step applied to ``participation`` per adjustment.
    participation_step: float = 0.1
    #: FedGPO: straggler-rate EWMA above this widens the deadline.
    straggler_upper: float = 0.25
    #: FedGPO: straggler-rate EWMA below this tightens the deadline.
    straggler_lower: float = 0.05
    #: EWMA smoothing for observed rates/scores.
    smoothing: float = 0.5
    #: FedTune: preference weight on round latency.
    alpha_time: float = 0.5
    #: FedTune: preference weight on energy per aggregated report.
    alpha_energy: float = 0.5
    #: FedTune: halt after this many rounds without score improvement
    #: (0 disables the rounds-budget knob).
    patience: int = 0
    #: Declared bounds every controller clamps its knobs into.
    min_deadline_scale: float = 0.6
    max_deadline_scale: float = 1.8
    min_participation: float = 0.3

    def __post_init__(self) -> None:
        if self.controller not in SERVERTUNE_CONTROLLERS:
            raise ConfigurationError(
                f"unknown server controller {self.controller!r}; available: "
                f"{', '.join(SERVERTUNE_CONTROLLERS)}"
            )
        for name, value in (
            ("deadline_step", self.deadline_step),
            ("participation_step", self.participation_step),
        ):
            if not 0.0 < value < 1.0:
                raise ConfigurationError(
                    f"{name} must lie in (0, 1), got {value}"
                )
        if not 0.0 <= self.straggler_lower < self.straggler_upper <= 1.0:
            raise ConfigurationError(
                "straggler thresholds must satisfy 0 <= lower < upper <= 1, "
                f"got lower={self.straggler_lower} upper={self.straggler_upper}"
            )
        if not 0.0 < self.smoothing <= 1.0:
            raise ConfigurationError(
                f"smoothing must lie in (0, 1], got {self.smoothing}"
            )
        if self.alpha_time < 0 or self.alpha_energy < 0:
            raise ConfigurationError("preference weights must be >= 0")
        if self.alpha_time + self.alpha_energy <= 0:
            raise ConfigurationError("preference weights must not both be 0")
        if self.patience < 0:
            raise ConfigurationError(
                f"patience must be >= 0, got {self.patience}"
            )
        if not 0.0 < self.min_deadline_scale <= 1.0 <= self.max_deadline_scale:
            raise ConfigurationError(
                "deadline-scale bounds must satisfy 0 < min <= 1 <= max, got "
                f"min={self.min_deadline_scale} max={self.max_deadline_scale}"
            )
        if not 0.0 < self.min_participation <= 1.0:
            raise ConfigurationError(
                f"min_participation must lie in (0, 1], got "
                f"{self.min_participation}"
            )

    @property
    def is_static(self) -> bool:
        """True when this spec configures the identity controller."""
        return self.controller == "static"

    def to_dict(self) -> dict[str, object]:
        """JSON-stable token of this spec (cache keys, PBT state files).

        Every field is read explicitly — not via ``dataclasses.asdict`` —
        so the key-completeness checker can prove the cache key covers
        the whole spec surface.
        """
        return {
            "kind": "servertune",
            "controller": self.controller,
            "deadline_step": float(self.deadline_step),
            "participation_step": float(self.participation_step),
            "straggler_upper": float(self.straggler_upper),
            "straggler_lower": float(self.straggler_lower),
            "smoothing": float(self.smoothing),
            "alpha_time": float(self.alpha_time),
            "alpha_energy": float(self.alpha_energy),
            "patience": int(self.patience),
            "min_deadline_scale": float(self.min_deadline_scale),
            "max_deadline_scale": float(self.max_deadline_scale),
            "min_participation": float(self.min_participation),
        }

    @classmethod
    def from_dict(cls, raw: dict[str, object]) -> "ServerTuneSpec":
        """Rebuild a spec from :meth:`to_dict` output (PBT resume files)."""
        if not isinstance(raw, dict):
            raise ConfigurationError(f"not a servertune spec: {raw!r}")
        payload = {k: v for k, v in raw.items() if k != "kind"}
        try:
            return cls(**payload)  # type: ignore[arg-type]
        except TypeError as error:
            raise ConfigurationError(
                f"malformed servertune spec {raw!r}: {error}"
            ) from error


def normalize_servertune(
    spec: Optional[ServerTuneSpec],
) -> Optional[ServerTuneSpec]:
    """Map static/no-op specs to ``None`` for key purposes.

    A static spec changes nothing about a run, so it must share cache
    keys (and traces) with runs that never heard of the subsystem.
    """
    if spec is None or spec.is_static:
        return None
    return spec


def _clamp(value: float, lower: float, upper: float) -> float:
    return min(upper, max(lower, value))


class ServerController(ABC):
    """Per-round global-knob policy (the subsystem's protocol).

    Lifecycle: the engine calls :meth:`knobs_for` at the top of round
    ``i`` (a pure read), runs the round under those knobs, then calls
    :meth:`observe` with the round's feedback.  :meth:`reset` restores
    the initial state so one instance can drive repeated compositions.
    """

    def __init__(self, spec: ServerTuneSpec) -> None:
        self.spec = spec
        self.reset()

    @property
    def name(self) -> str:
        return self.spec.controller

    def reset(self) -> None:
        """Restore the pre-campaign state (default: stateless)."""

    @abstractmethod
    def knobs_for(self, round_index: int) -> ServerKnobs:
        """The knobs for round ``round_index`` (pure; no state change)."""

    def observe(self, feedback: RoundFeedback) -> None:
        """Fold one completed round's feedback into the controller state."""


class StaticKnobs(ServerController):
    """Today's behaviour: every round runs under the default knobs."""

    def knobs_for(self, round_index: int) -> ServerKnobs:
        return DEFAULT_KNOBS


class FedGPOController(ServerController):
    """Heterogeneity-aware deadline/participation adaptation.

    Tracks an EWMA of the straggler rate.  Above ``straggler_upper`` the
    fleet is wasting energy on discarded reports: widen the deadline by
    ``deadline_step`` and restore participation.  Below
    ``straggler_lower`` every report lands comfortably: tighten the
    deadline and shed participants toward ``min_participation`` — fewer,
    faster rounds at lower energy.  Between the thresholds the knobs
    hold steady.
    """

    def reset(self) -> None:
        self._deadline_scale = 1.0
        self._participation = 1.0
        self._miss_ewma: Optional[float] = None

    @property
    def straggler_ewma(self) -> Optional[float]:
        """The smoothed straggler rate (None before any feedback)."""
        return self._miss_ewma

    def knobs_for(self, round_index: int) -> ServerKnobs:
        return ServerKnobs(
            deadline_scale=self._deadline_scale,
            participation=self._participation,
            buffer_scale=self._participation,
        )

    def observe(self, feedback: RoundFeedback) -> None:
        spec = self.spec
        rate = feedback.straggler_rate
        if self._miss_ewma is None:
            self._miss_ewma = rate
        else:
            self._miss_ewma = (
                (1 - spec.smoothing) * self._miss_ewma + spec.smoothing * rate
            )
        if self._miss_ewma > spec.straggler_upper:
            self._deadline_scale *= 1 + spec.deadline_step
            self._participation = _clamp(
                self._participation * (1 + spec.participation_step),
                spec.min_participation,
                1.0,
            )
        elif self._miss_ewma < spec.straggler_lower:
            self._deadline_scale *= 1 - spec.deadline_step
            self._participation = _clamp(
                self._participation * (1 - spec.participation_step),
                spec.min_participation,
                1.0,
            )
        self._deadline_scale = _clamp(
            self._deadline_scale, spec.min_deadline_scale, spec.max_deadline_scale
        )


class FedTuneController(ServerController):
    """Preference-weighted multi-objective hill climbing.

    Score per round: ``alpha_energy * (energy-per-report / baseline) +
    alpha_time * (latency / baseline)`` where the baseline is the first
    observed round.  While the smoothed score improves, the current knob
    directions are kept; when it worsens, both reverse.  ``patience``
    consecutive rounds without improving on the best score raise the
    ``halt`` knob — the server stops spending rounds that no longer buy
    anything under the stated preference.
    """

    def reset(self) -> None:
        self._deadline_scale = 1.0
        self._participation = 1.0
        self._dir_deadline = -1.0
        self._dir_participation = -1.0
        self._baseline: Optional[tuple[float, float]] = None
        self._score_ewma: Optional[float] = None
        self._best_score = float("inf")
        self._stalled = 0
        self._halted = False

    @property
    def halted(self) -> bool:
        return self._halted

    def knobs_for(self, round_index: int) -> ServerKnobs:
        return ServerKnobs(
            deadline_scale=self._deadline_scale,
            participation=self._participation,
            buffer_scale=self._participation,
            halt=self._halted,
        )

    def _score(self, feedback: RoundFeedback) -> float:
        if self._baseline is None:
            raise ConfigurationError(
                "FedTune score requested before the baseline round arrived"
            )
        base_energy, base_latency = self._baseline
        spec = self.spec
        scale = spec.alpha_time + spec.alpha_energy
        energy_term = feedback.energy_per_report / max(base_energy, 1e-12)
        time_term = feedback.latency / max(base_latency, 1e-12)
        return (
            spec.alpha_energy * energy_term + spec.alpha_time * time_term
        ) / scale

    def observe(self, feedback: RoundFeedback) -> None:
        spec = self.spec
        if self._baseline is None:
            # The first round (run at default knobs) defines "1.0".
            self._baseline = (
                max(feedback.energy_per_report, 1e-12),
                max(feedback.latency, 1e-12),
            )
        score = self._score(feedback)
        if self._score_ewma is not None and score > self._score_ewma:
            # The last adjustment made things worse: reverse course.
            self._dir_deadline = -self._dir_deadline
            self._dir_participation = -self._dir_participation
        self._score_ewma = (
            score
            if self._score_ewma is None
            else (1 - spec.smoothing) * self._score_ewma + spec.smoothing * score
        )
        if score < self._best_score - 1e-9:
            self._best_score = score
            self._stalled = 0
        else:
            self._stalled += 1
            if spec.patience and self._stalled >= spec.patience:
                self._halted = True
        self._deadline_scale = _clamp(
            self._deadline_scale * (1 + self._dir_deadline * spec.deadline_step),
            spec.min_deadline_scale,
            spec.max_deadline_scale,
        )
        self._participation = _clamp(
            self._participation
            * (1 + self._dir_participation * spec.participation_step),
            spec.min_participation,
            1.0,
        )


def make_server_controller(spec: Optional[ServerTuneSpec]) -> ServerController:
    """Instantiate the controller a spec names (``None`` means static)."""
    if spec is None:
        spec = ServerTuneSpec()
    if spec.controller == "static":
        return StaticKnobs(spec)
    if spec.controller == "fedgpo":
        return FedGPOController(spec)
    if spec.controller == "fedtune":
        return FedTuneController(spec)
    raise ConfigurationError(
        f"unknown server controller {spec.controller!r}; available: "
        f"{', '.join(SERVERTUNE_CONTROLLERS)}"
    )
