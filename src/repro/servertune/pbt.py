"""Population-based search over server-controller hyperparameters.

The PBT driver of the server co-optimization subsystem: a population of
:class:`~repro.servertune.controllers.ServerTuneSpec` members is
evaluated against one shared fleet workload (each member is a full fleet
campaign riding the :class:`~repro.sim.executor.CampaignExecutor`
machinery, so archetype traces are computed once and shared across the
whole population), then evolved with the classic exploit/explore rule:
the bottom ``exploit_fraction`` of members copy the spec of a
seed-chosen elite and perturb every searched hyperparameter by a
seed-chosen explore factor.

Determinism contract
--------------------
Every stochastic decision — member initialization, donor choice,
explore factors — draws from ``np.random.default_rng((seed, generation,
member))``: a pure function of the PBT spec, never of execution order,
worker count, or cache state.  Member evaluations are pure fleet
compositions of deterministic traces.  Hence same-seed runs, serial or
sharded, produce identical surviving populations and byte-identical
deterministic obs traces; trace gathering runs under
:func:`repro.obs.runtime.suspended` so executor/cache events (which *do*
depend on worker count) never leak into the deterministic trace.

Resume: :class:`PBTState` serializes the surviving population plus the
full evaluation history; ``run_pbt(..., state=...)`` continues from
``state.next_generation`` and — because every RNG draw is addressed by
``(seed, generation, member)`` — lands on exactly the trajectory an
uninterrupted run would have taken.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.obs import runtime as obs
from repro.servertune.controllers import (
    SERVERTUNE_CONTROLLERS,
    ServerTuneSpec,
)
from repro.sim.cache import PersistentCampaignCache
from repro.sim.executor import ProgressCallback
from repro.sim.fleet import FleetSpec, compose_fleet, prepare_fleet

#: The searched hyperparameters and the bounds mutation clamps into.
#: Ranges keep every sampled/perturbed spec valid by construction
#: (``straggler_lower`` stays strictly below ``straggler_upper``).
SEARCH_SPACE: dict[str, tuple[float, float]] = {
    "deadline_step": (0.05, 0.35),
    "participation_step": (0.05, 0.35),
    "straggler_upper": (0.15, 0.5),
    "straggler_lower": (0.01, 0.1),
    "smoothing": (0.2, 0.9),
    "min_participation": (0.25, 0.8),
}

#: Controllers PBT may search over (the static identity is the baseline,
#: not a member).
PBT_CONTROLLERS: tuple[str, ...] = tuple(
    name for name in SERVERTUNE_CONTROLLERS if name != "static"
)


@dataclass(frozen=True)
class PBTSpec:
    """One declarative PBT campaign over server-controller populations."""

    population: int = 8
    generations: int = 3
    seed: int = 0
    #: Fraction of the population that is elite (and, symmetrically, the
    #: fraction that exploits an elite each generation).
    exploit_fraction: float = 0.25
    #: Multiplicative perturbations explore applies per hyperparameter.
    explore_factors: tuple[float, ...] = (0.8, 1.25)
    #: Controller kinds seeded round-robin across the population.
    controllers: tuple[str, ...] = PBT_CONTROLLERS
    #: Preference weights scoring (energy-per-aggregation, latency).
    alpha_energy: float = 0.5
    alpha_time: float = 0.5
    #: FedTune members' rounds-budget patience.
    patience: int = 3

    def __post_init__(self) -> None:
        if self.population < 2:
            raise ConfigurationError(
                f"population must be >= 2, got {self.population}"
            )
        if self.generations < 1:
            raise ConfigurationError(
                f"generations must be >= 1, got {self.generations}"
            )
        if not 0.0 < self.exploit_fraction < 1.0:
            raise ConfigurationError(
                f"exploit_fraction must lie in (0, 1), got {self.exploit_fraction}"
            )
        if not self.explore_factors or any(f <= 0 for f in self.explore_factors):
            raise ConfigurationError("explore_factors must be positive and non-empty")
        if not self.controllers:
            raise ConfigurationError("controllers must be non-empty")
        for name in self.controllers:
            if name not in PBT_CONTROLLERS:
                raise ConfigurationError(
                    f"unknown PBT controller {name!r}; available: "
                    f"{', '.join(PBT_CONTROLLERS)}"
                )
        if self.alpha_energy < 0 or self.alpha_time < 0:
            raise ConfigurationError("preference weights must be >= 0")
        if self.alpha_energy + self.alpha_time <= 0:
            raise ConfigurationError("preference weights must not both be 0")
        if self.patience < 0:
            raise ConfigurationError(f"patience must be >= 0, got {self.patience}")

    @property
    def elite_count(self) -> int:
        return max(1, int(math.floor(self.population * self.exploit_fraction)))

    def to_dict(self) -> dict[str, object]:
        """JSON-stable token (state files; key-completeness contract)."""
        return {
            "kind": "pbt",
            "population": int(self.population),
            "generations": int(self.generations),
            "seed": int(self.seed),
            "exploit_fraction": float(self.exploit_fraction),
            "explore_factors": [float(f) for f in self.explore_factors],
            "controllers": list(self.controllers),
            "alpha_energy": float(self.alpha_energy),
            "alpha_time": float(self.alpha_time),
            "patience": int(self.patience),
        }


@dataclass(frozen=True)
class MemberRecord:
    """One member's evaluation in one generation."""

    generation: int
    member: int
    controller: str
    score: float
    energy_per_aggregation: float
    mean_latency: float
    aggregations: int
    total_energy: float
    makespan: float
    spec: ServerTuneSpec

    def to_dict(self) -> dict[str, object]:
        return {
            "generation": self.generation,
            "member": self.member,
            "controller": self.controller,
            "score": self.score,
            "energy_per_aggregation": self.energy_per_aggregation,
            "mean_latency": self.mean_latency,
            "aggregations": self.aggregations,
            "total_energy": self.total_energy,
            "makespan": self.makespan,
            "spec": self.spec.to_dict(),
        }

    @classmethod
    def from_dict(cls, raw: dict[str, object]) -> "MemberRecord":
        try:
            return cls(
                generation=int(raw["generation"]),  # type: ignore[arg-type]
                member=int(raw["member"]),  # type: ignore[arg-type]
                controller=str(raw["controller"]),
                score=float(raw["score"]),  # type: ignore[arg-type]
                energy_per_aggregation=float(raw["energy_per_aggregation"]),  # type: ignore[arg-type]
                mean_latency=float(raw["mean_latency"]),  # type: ignore[arg-type]
                aggregations=int(raw["aggregations"]),  # type: ignore[arg-type]
                total_energy=float(raw["total_energy"]),  # type: ignore[arg-type]
                makespan=float(raw["makespan"]),  # type: ignore[arg-type]
                spec=ServerTuneSpec.from_dict(raw["spec"]),  # type: ignore[arg-type]
            )
        except (KeyError, TypeError, ValueError) as error:
            raise ConfigurationError(
                f"malformed member record {raw!r}: {error}"
            ) from error


@dataclass
class PBTState:
    """Resumable driver state: the population plus evaluation history."""

    next_generation: int = 0
    members: list[ServerTuneSpec] = field(default_factory=list)
    history: list[MemberRecord] = field(default_factory=list)

    def to_dict(self) -> dict[str, object]:
        return {
            "kind": "pbt_state",
            "next_generation": self.next_generation,
            "members": [m.to_dict() for m in self.members],
            "history": [r.to_dict() for r in self.history],
        }

    @classmethod
    def from_dict(cls, raw: dict[str, object]) -> "PBTState":
        if not isinstance(raw, dict) or raw.get("kind") != "pbt_state":
            raise ConfigurationError(f"not a PBT state payload: {raw!r}")
        members = raw.get("members", [])
        history = raw.get("history", [])
        if not isinstance(members, list) or not isinstance(history, list):
            raise ConfigurationError(f"malformed PBT state payload: {raw!r}")
        return cls(
            next_generation=int(raw.get("next_generation", 0)),  # type: ignore[arg-type]
            members=[ServerTuneSpec.from_dict(m) for m in members],
            history=[MemberRecord.from_dict(r) for r in history],
        )


@dataclass
class PBTResult:
    """The outcome of one :func:`run_pbt` call."""

    spec: PBTSpec
    baseline: MemberRecord
    history: list[MemberRecord]
    population: list[ServerTuneSpec]
    frontier: list[MemberRecord]
    state: PBTState

    @property
    def best(self) -> MemberRecord:
        return min(self.history, key=lambda r: (r.score, r.generation, r.member))

    def to_dict(self) -> dict[str, object]:
        """The frontier artifact the CI smoke job uploads."""
        return {
            "kind": "pbt_result",
            "spec": self.spec.to_dict(),
            "baseline": self.baseline.to_dict(),
            "best": self.best.to_dict(),
            "frontier": [r.to_dict() for r in self.frontier],
            "population": [m.to_dict() for m in self.population],
            "history": [r.to_dict() for r in self.history],
        }

    def render(self) -> str:
        lines = [
            f"PBT: {self.spec.population} members x "
            f"{self.spec.generations} generations (seed {self.spec.seed})",
            f"  baseline (static): energy/agg {self.baseline.energy_per_aggregation:.1f} J, "
            f"latency {self.baseline.mean_latency:.1f} s",
        ]
        best = self.best
        lines.append(
            f"  best ({best.controller}, gen {best.generation}, member {best.member}): "
            f"score {best.score:.4f}, energy/agg {best.energy_per_aggregation:.1f} J, "
            f"latency {best.mean_latency:.1f} s"
        )
        lines.append("  frontier (energy/agg J, latency s, controller):")
        for record in self.frontier:
            lines.append(
                f"    {record.energy_per_aggregation:10.1f} "
                f"{record.mean_latency:8.1f}  {record.controller}"
                f"[g{record.generation}.m{record.member}]"
            )
        return "\n".join(lines)


def member_rng(seed: int, generation: int, member: int) -> np.random.Generator:
    """The RNG for one (seed, generation, member) decision point.

    Addressed, not streamed: any member's draws can be replayed in
    isolation, which is what makes resume land on the uninterrupted
    trajectory.
    """
    return np.random.default_rng((seed, generation, member))


def init_population(spec: PBTSpec) -> list[ServerTuneSpec]:
    """Seed-derived initial population: controllers round-robin, searched
    hyperparameters sampled uniformly inside :data:`SEARCH_SPACE`."""
    members = []
    for member in range(spec.population):
        rng = member_rng(spec.seed, 0, member)
        controller = spec.controllers[member % len(spec.controllers)]
        sampled = {
            name: float(rng.uniform(lo, hi))
            for name, (lo, hi) in SEARCH_SPACE.items()
        }
        members.append(
            ServerTuneSpec(
                controller=controller,
                alpha_time=spec.alpha_time,
                alpha_energy=spec.alpha_energy,
                patience=spec.patience if controller == "fedtune" else 0,
                **sampled,
            )
        )
    return members


def _evaluate(
    pbt: PBTSpec,
    fleet: FleetSpec,
    member_spec: Optional[ServerTuneSpec],
    *,
    generation: int,
    member: int,
    baseline: Optional[MemberRecord],
    workers: Optional[int],
    cache: Optional[PersistentCampaignCache],
    progress: Optional[ProgressCallback],
) -> MemberRecord:
    """Evaluate one member (or, with ``member_spec=None``, the static
    baseline) on the shared fleet workload."""
    candidate = dataclasses.replace(fleet, servertune=member_spec)
    # Trace gathering hits the executor and its caches, whose events
    # depend on worker count and cache warmth; keep them off the
    # deterministic trace.  Composition below runs under the caller's
    # obs session and is pure.
    with obs.suspended():
        clients = prepare_fleet(
            candidate, workers=workers, cache=cache, progress=progress
        )
    result = compose_fleet(candidate, clients)
    aggregations = result.aggregations
    energy_per_agg = result.total_energy / max(aggregations, 1)
    mean_latency = result.mean_round_latency
    if baseline is None:
        score = 1.0
    elif aggregations == 0:
        score = float("inf")
    else:
        scale = pbt.alpha_energy + pbt.alpha_time
        score = (
            pbt.alpha_energy
            * (energy_per_agg / max(baseline.energy_per_aggregation, 1e-12))
            + pbt.alpha_time
            * (mean_latency / max(baseline.mean_latency, 1e-12))
        ) / scale
    return MemberRecord(
        generation=generation,
        member=member,
        controller="static" if member_spec is None else member_spec.controller,
        score=score,
        energy_per_aggregation=energy_per_agg,
        mean_latency=mean_latency,
        aggregations=aggregations,
        total_energy=result.total_energy,
        makespan=result.makespan,
        spec=member_spec if member_spec is not None else ServerTuneSpec(),
    )


def evolve(
    pbt: PBTSpec,
    generation: int,
    members: list[ServerTuneSpec],
    records: list[MemberRecord],
) -> list[ServerTuneSpec]:
    """One exploit/explore step; returns the next generation's population.

    Members are ranked by score (ties break on index, keeping the order
    total and deterministic).  The bottom ``elite_count`` members copy a
    seed-chosen elite's spec (exploit) and perturb every searched
    hyperparameter by a seed-chosen explore factor, clamped into
    :data:`SEARCH_SPACE` bounds.  Survivors keep their specs untouched.
    """
    ranked = sorted(range(len(members)), key=lambda i: (records[i].score, i))
    elites = ranked[: pbt.elite_count]
    replaced = ranked[len(ranked) - pbt.elite_count:]
    evolved = list(members)
    for member in replaced:
        if member in elites:
            continue  # tiny populations: never mutate an elite
        rng = member_rng(pbt.seed, generation + 1, member)
        donor = elites[int(rng.integers(len(elites)))]
        base = members[donor]
        perturbed: dict[str, float] = {}
        for name, (lo, hi) in SEARCH_SPACE.items():
            factor = pbt.explore_factors[int(rng.integers(len(pbt.explore_factors)))]
            perturbed[name] = float(min(hi, max(lo, getattr(base, name) * factor)))
        evolved[member] = dataclasses.replace(base, **perturbed)
        if obs.enabled():
            obs.emit(
                "servertune.mutation",
                generation=generation,
                member=member,
                donor=donor,
                controller=base.controller,
                spec=evolved[member].to_dict(),
            )
            obs.count("servertune.exploits")
            obs.count("servertune.explores")
    return evolved


def pareto_front(records: list[MemberRecord]) -> list[MemberRecord]:
    """Non-dominated records under (energy-per-aggregation, latency) min.

    Strict dominance on both axes removes a point; ties survive.  Output
    is sorted by energy for stable rendering.
    """
    front = []
    for candidate in records:
        dominated = any(
            other.energy_per_aggregation < candidate.energy_per_aggregation
            and other.mean_latency < candidate.mean_latency
            for other in records
        )
        if not dominated:
            front.append(candidate)
    return sorted(
        front,
        key=lambda r: (r.energy_per_aggregation, r.mean_latency, r.generation, r.member),
    )


def render_frontier_artifact(payload: dict[str, object]) -> str:
    """Human-readable summary of a serialized :meth:`PBTResult.to_dict`.

    The read half of ``repro servertune report``: validates the artifact
    shape and renders the baseline, the best member, and the frontier.
    """
    if not isinstance(payload, dict) or payload.get("kind") != "pbt_result":
        raise ConfigurationError(f"not a PBT frontier artifact: {type(payload)!r}")
    try:
        spec = PBTSpec(
            **{
                k: (tuple(v) if isinstance(v, list) else v)
                for k, v in dict(payload["spec"]).items()  # type: ignore[arg-type]
                if k != "kind"
            }
        )
        baseline = MemberRecord.from_dict(payload["baseline"])  # type: ignore[arg-type]
        history = [MemberRecord.from_dict(r) for r in payload["history"]]  # type: ignore[union-attr]
        frontier = [MemberRecord.from_dict(r) for r in payload["frontier"]]  # type: ignore[union-attr]
        population = [
            ServerTuneSpec.from_dict(m) for m in payload["population"]  # type: ignore[union-attr]
        ]
    except (KeyError, TypeError, ValueError) as error:
        raise ConfigurationError(
            f"malformed PBT frontier artifact: {error}"
        ) from error
    result = PBTResult(
        spec=spec,
        baseline=baseline,
        history=history,
        population=population,
        frontier=frontier,
        state=PBTState(
            next_generation=spec.generations,
            members=population,
            history=history,
        ),
    )
    return result.render()


def run_pbt(
    pbt: PBTSpec,
    fleet: FleetSpec,
    *,
    workers: Optional[int] = None,
    cache: Optional[PersistentCampaignCache] = None,
    progress: Optional[ProgressCallback] = None,
    state: Optional[PBTState] = None,
) -> PBTResult:
    """Drive a full PBT campaign (or resume one from ``state``)."""
    if fleet.servertune is not None:
        raise ConfigurationError(
            "the base fleet spec must not carry a servertune spec; "
            "PBT attaches each member's spec itself"
        )
    if state is None:
        state = PBTState(next_generation=0, members=init_population(pbt))
    elif len(state.members) != pbt.population:
        raise ConfigurationError(
            f"resume state carries {len(state.members)} members but the "
            f"spec population is {pbt.population}"
        )
    baseline = _evaluate(
        pbt, fleet, None,
        generation=-1, member=-1, baseline=None,
        workers=workers, cache=cache, progress=progress,
    )
    for generation in range(state.next_generation, pbt.generations):
        records = []
        for member, member_spec in enumerate(state.members):
            record = _evaluate(
                pbt, fleet, member_spec,
                generation=generation, member=member, baseline=baseline,
                workers=workers, cache=cache, progress=progress,
            )
            records.append(record)
            if obs.enabled():
                obs.emit(
                    "servertune.member",
                    generation=generation,
                    member=member,
                    controller=record.controller,
                    score=record.score,
                    energy_per_aggregation=record.energy_per_aggregation,
                    mean_latency=record.mean_latency,
                    aggregations=record.aggregations,
                )
                obs.count("servertune.members")
        best = min(records, key=lambda r: (r.score, r.member))
        if obs.enabled():
            obs.emit(
                "servertune.generation",
                generation=generation,
                best_member=best.member,
                best_score=best.score,
                mean_score=sum(r.score for r in records) / len(records),
            )
            obs.count("servertune.generations")
        state.history.extend(records)
        state.members = evolve(pbt, generation, state.members, records)
        state.next_generation = generation + 1
    frontier = pareto_front(state.history + [baseline])
    if obs.enabled():
        obs.emit(
            "servertune.frontier",
            points=[
                [r.energy_per_aggregation, r.mean_latency, r.controller]
                for r in frontier
            ],
            baseline_energy_per_aggregation=baseline.energy_per_aggregation,
            baseline_mean_latency=baseline.mean_latency,
        )
    return PBTResult(
        spec=pbt,
        baseline=baseline,
        history=list(state.history),
        population=list(state.members),
        frontier=frontier,
        state=state,
    )
