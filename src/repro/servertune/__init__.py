"""``repro.servertune`` — server-side co-optimization of global FL knobs.

BoFL tunes each client's local pace; this subsystem tunes the knobs the
*server* owns — round deadline slack, participation, async buffer
length, and the rounds budget — and searches their controller
hyperparameters with population-based training:

* :mod:`repro.servertune.controllers` — the :class:`ServerController`
  protocol plus the ``static`` / ``fedgpo`` / ``fedtune`` policies and
  the key-bearing :class:`ServerTuneSpec`;
* :mod:`repro.servertune.pbt` — the exploit/explore population driver
  on top of the campaign executor, with deterministic resume.

See ``docs/server_cooptimization.md`` for the controller API, the PBT
driver, and the determinism contract.

Import layering: ``controllers`` depends only on the error types, so the
federation engine and fleet layers may import it freely.  ``pbt`` sits
*above* the fleet layer; it is exposed lazily (PEP 562) to keep
``repro.sim.fleet -> repro.servertune.controllers`` acyclic.
"""

from repro.servertune.controllers import (
    DEFAULT_KNOBS,
    SERVERTUNE_CONTROLLERS,
    FedGPOController,
    FedTuneController,
    RoundFeedback,
    ServerController,
    ServerKnobs,
    ServerTuneSpec,
    StaticKnobs,
    make_server_controller,
    normalize_servertune,
)

#: Names served lazily from :mod:`repro.servertune.pbt` (PEP 562).
_PBT_EXPORTS = (
    "MemberRecord",
    "PBTResult",
    "PBTSpec",
    "PBTState",
    "PBT_CONTROLLERS",
    "SEARCH_SPACE",
    "evolve",
    "init_population",
    "pareto_front",
    "render_frontier_artifact",
    "run_pbt",
)

__all__ = [
    "DEFAULT_KNOBS",
    "SERVERTUNE_CONTROLLERS",
    "FedGPOController",
    "FedTuneController",
    "RoundFeedback",
    "ServerController",
    "ServerKnobs",
    "ServerTuneSpec",
    "StaticKnobs",
    "make_server_controller",
    "normalize_servertune",
    *_PBT_EXPORTS,
]


def __getattr__(name: str) -> object:
    if name in _PBT_EXPORTS:
        from repro.servertune import pbt

        return getattr(pbt, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
