"""JSON persistence for campaign results.

Campaigns are cheap to re-run in simulation but expensive on real boards;
a JSON round-trip lets harnesses archive results, diff reruns, and feed
external plotting without pickling Python objects.
"""

from __future__ import annotations

import json
import pathlib
from typing import Union

from repro.core.records import CampaignResult, ChaosSummary, MBOReport, RoundRecord
from repro.errors import ConfigurationError
from repro.types import DvfsConfiguration

FORMAT_VERSION = 1


def _config_to_list(config: DvfsConfiguration) -> list:
    return [config.cpu, config.gpu, config.mem]


def _record_to_dict(record: RoundRecord) -> dict:
    payload = {
        "round_index": record.round_index,
        "phase": record.phase,
        "deadline": record.deadline,
        "jobs": record.jobs,
        "elapsed": record.elapsed,
        "energy": record.energy,
        "missed": record.missed,
        "explored": [_config_to_list(c) for c in record.explored],
        "explored_on_final_front": record.explored_on_final_front,
        "exploited_jobs": record.exploited_jobs,
        "guardian_triggered": record.guardian_triggered,
    }
    if record.mbo is not None:
        payload["mbo"] = {
            "latency": record.mbo.latency,
            "energy": record.mbo.energy,
            "n_observations": record.mbo.n_observations,
            "batch_size": record.mbo.batch_size,
            "suggestions": [_config_to_list(c) for c in record.mbo.suggestions],
        }
    return payload


def _record_from_dict(payload: dict) -> RoundRecord:
    mbo = None
    if payload.get("mbo") is not None:
        raw = payload["mbo"]
        mbo = MBOReport(
            latency=raw["latency"],
            energy=raw["energy"],
            n_observations=raw["n_observations"],
            batch_size=raw["batch_size"],
            suggestions=tuple(DvfsConfiguration(*c) for c in raw["suggestions"]),
        )
    return RoundRecord(
        round_index=payload["round_index"],
        phase=payload["phase"],
        deadline=payload["deadline"],
        jobs=payload["jobs"],
        elapsed=payload["elapsed"],
        energy=payload["energy"],
        missed=payload["missed"],
        explored=[DvfsConfiguration(*c) for c in payload["explored"]],
        explored_on_final_front=payload.get("explored_on_final_front"),
        exploited_jobs=payload.get("exploited_jobs", 0),
        guardian_triggered=payload.get("guardian_triggered", False),
        mbo=mbo,
    )


def campaign_to_dict(result: CampaignResult) -> dict:
    """A JSON-safe representation of a campaign result."""
    payload = {
        "format_version": FORMAT_VERSION,
        "controller": result.controller,
        "device": result.device,
        "task": result.task,
        "deadline_ratio": result.deadline_ratio,
        "records": [_record_to_dict(r) for r in result.records],
        "final_front": result.final_front,
    }
    if result.chaos is not None:
        payload["chaos"] = {
            "injected": [[r, k] for r, k in result.chaos.injected],
            "checkpoints": result.chaos.checkpoints,
            "restores": result.chaos.restores,
            "escalations": result.chaos.escalations,
            "dropped_rounds": result.chaos.dropped_rounds,
            "lost_reports": result.chaos.lost_reports,
        }
    return payload


def campaign_from_dict(payload: dict) -> CampaignResult:
    """Rebuild a :class:`CampaignResult` from :func:`campaign_to_dict` output."""
    version = payload.get("format_version")
    if version != FORMAT_VERSION:
        raise ConfigurationError(
            f"unsupported campaign format version {version!r} "
            f"(this library reads version {FORMAT_VERSION})"
        )
    result = CampaignResult(
        controller=payload["controller"],
        device=payload["device"],
        task=payload["task"],
        deadline_ratio=payload["deadline_ratio"],
        records=[_record_from_dict(r) for r in payload["records"]],
    )
    front = payload.get("final_front")
    result.final_front = (
        None if front is None else [(float(t), float(e)) for t, e in front]
    )
    chaos = payload.get("chaos")
    if chaos is not None:
        result.chaos = ChaosSummary(
            injected=tuple((int(r), str(k)) for r, k in chaos["injected"]),
            checkpoints=chaos.get("checkpoints", 0),
            restores=chaos.get("restores", 0),
            escalations=chaos.get("escalations", 0),
            dropped_rounds=chaos.get("dropped_rounds", 0),
            lost_reports=chaos.get("lost_reports", 0),
        )
    return result


def save_campaign(result: CampaignResult, path: Union[str, pathlib.Path]) -> None:
    """Write a campaign result to ``path`` as JSON."""
    path = pathlib.Path(path)
    path.write_text(json.dumps(campaign_to_dict(result), indent=2))


def load_campaign(path: Union[str, pathlib.Path]) -> CampaignResult:
    """Read a campaign result previously written by :func:`save_campaign`."""
    path = pathlib.Path(path)
    try:
        payload = json.loads(path.read_text())
    except json.JSONDecodeError as error:
        raise ConfigurationError(f"{path} is not valid campaign JSON: {error}") from error
    return campaign_from_dict(payload)
