"""Metrics and report rendering for the evaluation experiments."""

from repro.analysis.metrics import (
    energy_spread,
    exploration_summary,
    front_coverage,
    hypervolume_ratio,
    improvement_vs_performant,
    latency_spread,
    regret_vs_oracle,
)
from repro.analysis.tables import ascii_table, format_series, render_kv
from repro.analysis.charts import line_chart, sparkline
from repro.analysis.io import (
    campaign_from_dict,
    campaign_to_dict,
    load_campaign,
    save_campaign,
)

__all__ = [
    "ascii_table",
    "campaign_from_dict",
    "campaign_to_dict",
    "line_chart",
    "load_campaign",
    "save_campaign",
    "sparkline",
    "energy_spread",
    "exploration_summary",
    "format_series",
    "front_coverage",
    "hypervolume_ratio",
    "improvement_vs_performant",
    "latency_spread",
    "regret_vs_oracle",
    "render_kv",
]
