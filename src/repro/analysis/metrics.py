"""Evaluation metrics, defined exactly as the paper does (§6.4).

* Improvement vs Performant: ``1 - E_BoFL / E_Performant``.
* Regret vs Oracle: ``E_BoFL / E_Oracle - 1``.

Energy totals include the MBO overhead energy — BoFL must pay for its own
intelligence.
"""

from __future__ import annotations


import numpy as np

from repro.bayesopt.hypervolume import hypervolume_2d
from repro.bayesopt.pareto import pareto_front
from repro.core.records import CampaignResult
from repro.errors import ConfigurationError
from repro.hardware.perfmodel import AnalyticPerformanceModel


def improvement_vs_performant(
    bofl: CampaignResult, performant: CampaignResult
) -> float:
    """Fractional energy reduction of ``bofl`` relative to ``performant``."""
    _check_comparable(bofl, performant)
    return 1.0 - bofl.total_energy / performant.total_energy


def regret_vs_oracle(bofl: CampaignResult, oracle: CampaignResult) -> float:
    """Fractional energy overhead of ``bofl`` relative to ``oracle``."""
    _check_comparable(bofl, oracle)
    return bofl.total_energy / oracle.total_energy - 1.0


def _check_comparable(a: CampaignResult, b: CampaignResult) -> None:
    same = (
        a.device == b.device
        and a.task == b.task
        and a.deadline_ratio == b.deadline_ratio
        and a.rounds == b.rounds
    )
    if not same:
        raise ConfigurationError(
            f"campaigns are not comparable: ({a.device},{a.task},{a.deadline_ratio},"
            f"{a.rounds} rounds) vs ({b.device},{b.task},{b.deadline_ratio},{b.rounds})"
        )


def latency_spread(model: AnalyticPerformanceModel) -> float:
    """Max/min per-job latency over the whole space (Fig. 2's '8x')."""
    latencies, _ = model.profile_space()
    return float(latencies.max() / latencies.min())


def energy_spread(model: AnalyticPerformanceModel) -> float:
    """Max/min per-job energy over the whole space (Fig. 2's '4x')."""
    _, energies = model.profile_space()
    return float(energies.max() / energies.min())


def hypervolume_ratio(
    found_front: np.ndarray, true_front: np.ndarray, reference: np.ndarray
) -> float:
    """HV(found) / HV(true) — how much of the ideal front was captured."""
    true_hv = hypervolume_2d(true_front, reference)
    if true_hv <= 0:
        raise ConfigurationError("true front has zero hypervolume at this reference")
    return hypervolume_2d(found_front, reference) / true_hv


def front_coverage(
    found_front: np.ndarray, true_front: np.ndarray, tolerance: float = 0.02
) -> float:
    """Fraction of true-front points approached within relative ``tolerance``.

    A true point counts as covered if some found point is within
    ``tolerance`` (relative, per objective) of it or dominates it.
    """
    found = pareto_front(np.asarray(found_front, dtype=float))
    true = pareto_front(np.asarray(true_front, dtype=float))
    if true.shape[0] == 0:
        raise ConfigurationError("true front is empty")
    if found.shape[0] == 0:
        return 0.0
    covered = 0
    for point in true:
        slack = point * (1.0 + tolerance)
        if np.any(np.all(found <= slack[None, :], axis=1)):
            covered += 1
    return covered / true.shape[0]


def exploration_summary(result: CampaignResult) -> tuple[int, int, int]:
    """(exploration rounds, configs explored, exploitation rounds)."""
    explore_rounds = sum(
        1
        for r in result.records
        if r.phase in ("random_exploration", "pareto_construction")
    )
    return (
        explore_rounds,
        result.explored_total,
        result.rounds - explore_rounds,
    )
