"""Terminal line charts — matplotlib-free rendering of figure series.

The paper's evaluation figures are line plots; these helpers render the
same series as Unicode block charts so a terminal-only reproduction can
still *show* the curves (e.g. the Fig. 9 energy traces), not just list
numbers.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.errors import ConfigurationError

#: Glyphs from low to high for sub-row resolution.
_BLOCKS = " ▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float]) -> str:
    """A one-line miniature chart (eight vertical levels)."""
    values = [float(v) for v in values]
    if not values:
        raise ConfigurationError("cannot chart an empty series")
    lo, hi = min(values), max(values)
    span = hi - lo
    if span <= 0:
        return _BLOCKS[4] * len(values)
    cells = []
    for value in values:
        level = int(round((value - lo) / span * (len(_BLOCKS) - 2))) + 1
        cells.append(_BLOCKS[level])
    return "".join(cells)


def line_chart(
    series: dict[str, Sequence[float]],
    *,
    height: int = 10,
    y_label: str = "",
    markers: str = "*+ox#@",
) -> str:
    """A multi-series ASCII line chart with a shared y-axis.

    Each series gets one marker character; collisions show the later
    series' marker.  The x-axis is the sample index.
    """
    if not series:
        raise ConfigurationError("need at least one series")
    if height < 3:
        raise ConfigurationError(f"height must be >= 3, got {height}")
    lengths = {len(v) for v in series.values()}
    if len(lengths) != 1:
        raise ConfigurationError(f"series lengths differ: {sorted(lengths)}")
    (width,) = lengths
    if width == 0:
        raise ConfigurationError("cannot chart empty series")

    all_values = [float(v) for values in series.values() for v in values]
    lo, hi = min(all_values), max(all_values)
    span = hi - lo if hi > lo else 1.0

    grid: list[list[str]] = [[" "] * width for _ in range(height)]
    for marker, (name, values) in zip(markers, series.items()):
        for x, value in enumerate(values):
            row = int(round((float(value) - lo) / span * (height - 1)))
            grid[height - 1 - row][x] = marker

    axis_labels = [f"{hi:.0f}", f"{(hi + lo) / 2:.0f}", f"{lo:.0f}"]
    label_width = max(len(label) for label in axis_labels)
    lines = []
    for row_index, row in enumerate(grid):
        if row_index == 0:
            label = axis_labels[0]
        elif row_index == height // 2:
            label = axis_labels[1]
        elif row_index == height - 1:
            label = axis_labels[2]
        else:
            label = ""
        lines.append(f"{label.rjust(label_width)} |" + "".join(row))
    lines.append(" " * label_width + "-+" + "-" * width)
    legend = "   ".join(
        f"{marker} {name}" for marker, name in zip(markers, series)
    )
    lines.append(" " * label_width + "  " + legend)
    if y_label:
        lines.insert(0, f"{y_label}")
    return "\n".join(lines)
