"""Plain-text rendering of tables and series.

The paper's figures are line plots; a terminal reproduction renders the
same data as aligned tables and compact numeric series so the rows can be
compared against the published curves directly.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.errors import ConfigurationError


def ascii_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Render rows as an aligned monospace table."""
    rows = [[_fmt(cell) for cell in row] for row in rows]
    for row in rows:
        if len(row) != len(headers):
            raise ConfigurationError(
                f"row has {len(row)} cells but there are {len(headers)} headers"
            )
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in rows:
        lines.append(" | ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}" if abs(cell) < 1000 else f"{cell:.1f}"
    return str(cell)


def format_series(values: Sequence[float], per_line: int = 10, precision: int = 1) -> str:
    """Render a numeric series as wrapped, aligned text (figure data dumps)."""
    if per_line < 1:
        raise ConfigurationError(f"per_line must be >= 1, got {per_line}")
    cells = [f"{v:.{precision}f}" for v in values]
    width = max((len(c) for c in cells), default=1)
    lines = []
    for start in range(0, len(cells), per_line):
        chunk = cells[start : start + per_line]
        lines.append(
            f"  [{start:3d}] " + " ".join(c.rjust(width) for c in chunk)
        )
    return "\n".join(lines)


def render_kv(pairs: Sequence[tuple[str, object]], title: str = "") -> str:
    """Render key/value pairs as aligned lines."""
    if not pairs:
        raise ConfigurationError("render_kv needs at least one pair")
    width = max(len(k) for k, _ in pairs)
    lines = [title] if title else []
    for key, value in pairs:
        lines.append(f"  {key.ljust(width)} : {_fmt(value)}")
    return "\n".join(lines)
