"""Exception hierarchy for the BoFL reproduction library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause, while
still being able to discriminate the failure domain (hardware simulation,
optimization, federated orchestration, ...).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigurationError(ReproError):
    """An invalid configuration object or parameter value was supplied."""


class FrequencyError(ConfigurationError):
    """A DVFS frequency is outside the device's supported table."""


class DeviceError(ReproError):
    """The simulated device rejected an operation (bad state, bad knob)."""


class WorkloadError(ReproError):
    """A workload profile is malformed or unknown."""


class OptimizationError(ReproError):
    """An optimization routine (GP fit, acquisition, ILP) failed."""


class InfeasibleError(OptimizationError):
    """The optimization problem has no feasible solution.

    Raised, e.g., when a round deadline is shorter than the time needed to
    run all jobs at the fastest configuration.
    """


class UnboundedError(OptimizationError):
    """A linear program is unbounded below (objective can decrease forever)."""


class SolverError(OptimizationError):
    """A solver hit an internal numerical failure or iteration limit."""


class DeadlineMissError(ReproError):
    """A training round finished after its deadline.

    The BoFL guardian is designed to prevent this; seeing it in a campaign
    indicates either a disabled guardian (ablation mode) or a bug.
    """

    def __init__(self, round_index: int, deadline: float, elapsed: float) -> None:
        self.round_index = round_index
        self.deadline = deadline
        self.elapsed = elapsed
        super().__init__(
            f"round {round_index} missed its deadline: "
            f"elapsed {elapsed:.3f}s > deadline {deadline:.3f}s"
        )


class PhaseError(ReproError):
    """The BoFL controller was driven in an order its state machine forbids."""


class NotFittedError(OptimizationError):
    """A model was queried before being fitted to any data."""
