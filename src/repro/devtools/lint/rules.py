"""The built-in ``repro lint`` rules.

Each rule guards one reproducibility invariant of this codebase; the
rationale strings (and ``docs/static_analysis.md``) tie every rule to
the dynamic guarantee it protects.  Rules self-register on import via
:func:`repro.devtools.lint.engine.register_rule`.
"""

from __future__ import annotations

import ast
import pathlib
from collections.abc import Iterator
from typing import Optional

from repro.devtools.lint.engine import Rule, SourceFile, Violation, register_rule
from repro.obs.events import EVENT_KINDS

# --------------------------------------------------------------------------
# Import-aware name resolution
# --------------------------------------------------------------------------


def _module_package(relpath: str) -> str:
    """The dotted package a repo-relative ``.py`` path belongs to.

    ``src/repro/sim/runner.py`` -> ``repro.sim``;
    ``src/repro/sim/__init__.py`` -> ``repro.sim`` (the package itself).
    Paths outside a ``src/`` layout resolve the same way minus the
    leading segment they do have; an unanchorable path yields ``""``
    (relative imports in it stay unresolved).
    """
    parts = list(pathlib.PurePosixPath(relpath).parts)
    if not parts or not parts[-1].endswith(".py"):
        return ""
    if parts[0] == "src":
        parts = parts[1:]
    if parts[-1] == "__init__.py":
        parts = parts[:-1]
    else:
        parts = parts[:-1]
        if not parts:
            return ""
    return ".".join(parts)


def _resolve_relative(package: str, level: int, module: Optional[str]) -> Optional[str]:
    """The absolute module a ``from ...X import`` refers to, or None.

    ``level`` counts leading dots; ``level=1`` is the current package.
    Climbing past the top of ``package`` is unresolvable (and would be an
    ImportError at runtime anyway).
    """
    if not package:
        return None
    parts = package.split(".")
    if level - 1 > len(parts):
        return None
    base = parts[: len(parts) - (level - 1)]
    if module:
        base = [*base, *module.split(".")]
    return ".".join(base) if base else None


def _import_aliases(tree: ast.Module, package: str = "") -> dict[str, str]:
    """Map local names to canonical dotted origins for a module's imports.

    ``import numpy as np`` -> ``{"np": "numpy"}``; ``from time import
    perf_counter as pc`` -> ``{"pc": "time.perf_counter"}``.  Relative
    imports resolve against ``package`` (the importing module's dotted
    package, from :func:`_module_package`): in ``repro.sim``, ``from
    .timing import now as n`` -> ``{"n": "repro.sim.timing.now"}``.
    Without a package, relative imports stay unresolved.
    """
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for item in node.names:
                local = item.asname or item.name.split(".", 1)[0]
                canonical = item.name if item.asname else item.name.split(".", 1)[0]
                aliases[local] = canonical
        elif isinstance(node, ast.ImportFrom):
            if node.level == 0:
                origin = node.module
            else:
                origin = _resolve_relative(package, node.level, node.module)
            if origin is None:
                continue
            for item in node.names:
                local = item.asname or item.name
                aliases[local] = f"{origin}.{item.name}"
    return aliases


def _dotted(node: ast.AST) -> Optional[list[str]]:
    """``a.b.c`` as ``["a", "b", "c"]``; None for non-name expressions."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return list(reversed(parts))


def _canonical_call(
    node: ast.Call, aliases: dict[str, str]
) -> Optional[str]:
    """The canonical dotted name a call resolves to through the imports.

    Returns None when the callee's base name was not introduced by an
    import (locals never count — a variable named ``random`` is not the
    ``random`` module).
    """
    parts = _dotted(node.func)
    if not parts:
        return None
    base = parts[0]
    if base not in aliases:
        return None
    return ".".join([aliases[base], *parts[1:]])


#: Public aliases — the interprocedural analyzer reuses the import-aware
#: resolver rather than growing a second, subtly different one.
module_package = _module_package
import_aliases = _import_aliases
dotted_parts = _dotted
canonical_call = _canonical_call


def _violation(
    source: SourceFile, node: ast.AST, rule_id: str, message: str
) -> Violation:
    return Violation(
        rule=rule_id,
        path=source.relpath,
        line=getattr(node, "lineno", 0),
        col=getattr(node, "col_offset", 0),
        message=message,
    )


# --------------------------------------------------------------------------
# Rule 1: wall-clock
# --------------------------------------------------------------------------

_WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: Public alias — the interprocedural analyzer shares the source list.
WALL_CLOCK_CALLS = _WALL_CLOCK_CALLS


def _check_wall_clock(source: SourceFile) -> Iterator[Violation]:
    aliases = _import_aliases(source.tree, _module_package(source.relpath))
    for node in ast.walk(source.tree):
        if not isinstance(node, ast.Call):
            continue
        name = _canonical_call(node, aliases)
        if name in _WALL_CLOCK_CALLS:
            yield _violation(
                source,
                node,
                "wall-clock",
                f"{name}() reads the wall clock; simulation code must use "
                "repro.clock (simulated time) — wall time belongs only in "
                "the allowlisted timing modules",
            )


register_rule(
    Rule(
        id="wall-clock",
        summary="no wall-clock reads outside the allowlisted timing modules",
        rationale=(
            "Campaign results are keyed and cached by simulated time from "
            "repro.clock; a wall-clock read makes results machine-dependent "
            "and silently breaks the serial==parallel executor guarantee "
            "and the schema-versioned campaign cache."
        ),
        check=_check_wall_clock,
        include=("src/repro/**",),
        # The two modules whose whole point is measuring wall time, and
        # the benchmark tree (outside src/ but listed for clarity).
        exempt=(
            "src/repro/obs/metrics.py",
            "src/repro/sim/executor.py",
            "benchmarks/**",
        ),
    )
)


# --------------------------------------------------------------------------
# Rule 2: unseeded-random
# --------------------------------------------------------------------------

#: Seeded-generator constructors remain allowed; the module-level API
#: (global hidden state) is what destroys reproducibility.
_ALLOWED_RANDOM_CALLS = frozenset(
    {
        "random.Random",
        "random.SystemRandom",
        "numpy.random.default_rng",
        "numpy.random.Generator",
        "numpy.random.SeedSequence",
        "numpy.random.BitGenerator",
        "numpy.random.PCG64",
        "numpy.random.PCG64DXSM",
        "numpy.random.Philox",
        "numpy.random.SFC64",
        "numpy.random.MT19937",
    }
)

#: Public alias — the interprocedural analyzer shares the allowlist.
ALLOWED_RANDOM_CALLS = _ALLOWED_RANDOM_CALLS


def _check_unseeded_random(source: SourceFile) -> Iterator[Violation]:
    aliases = _import_aliases(source.tree, _module_package(source.relpath))
    for node in ast.walk(source.tree):
        if not isinstance(node, ast.Call):
            continue
        name = _canonical_call(node, aliases)
        if name is None or name in _ALLOWED_RANDOM_CALLS:
            continue
        if name.startswith("random.") or name.startswith("numpy.random."):
            yield _violation(
                source,
                node,
                "unseeded-random",
                f"{name}() draws from global random state; thread a seeded "
                "numpy.random.Generator (or random.Random) through the call "
                "chain instead",
            )


register_rule(
    Rule(
        id="unseeded-random",
        summary="no module-level random.* / np.random.* API in library code",
        rationale=(
            "Every stochastic component takes a Generator derived from the "
            "campaign seed; global-state randomness would give different "
            "results per process and break the executor's paired-determinism "
            "and the persistent result cache."
        ),
        check=_check_unseeded_random,
        include=("src/repro/**",),
    )
)


# --------------------------------------------------------------------------
# Rule 3: assert-validation
# --------------------------------------------------------------------------


def _check_assert_validation(source: SourceFile) -> Iterator[Violation]:
    for node in ast.walk(source.tree):
        if isinstance(node, ast.Assert):
            yield _violation(
                source,
                node,
                "assert-validation",
                "assert statements vanish under 'python -O'; validate with "
                "an explicit raise of a repro.errors exception",
            )


register_rule(
    Rule(
        id="assert-validation",
        summary="no assert-as-validation in library code",
        rationale=(
            "Library invariants enforced via assert silently disappear when "
            "Python runs with -O/-OO, turning guarded states (unfitted "
            "models, infeasible solver output) into corrupt downstream "
            "results instead of clean ReproError failures."
        ),
        check=_check_assert_validation,
        include=("src/repro/**",),
    )
)


# --------------------------------------------------------------------------
# Rule 4: float-equality
# --------------------------------------------------------------------------

#: Identifier substrings that mark a value as a latency/energy objective.
_OBJECTIVE_NAME_PARTS = ("latency", "energy", "objective", "hypervolume")


def _objective_like(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Attribute):
        terminal = node.attr
    elif isinstance(node, ast.Name):
        terminal = node.id
    else:
        return None
    lowered = terminal.lower()
    for part in _OBJECTIVE_NAME_PARTS:
        if part in lowered:
            return terminal
    return None


def _check_float_equality(source: SourceFile) -> Iterator[Violation]:
    for node in ast.walk(source.tree):
        if not isinstance(node, ast.Compare):
            continue
        operands = [node.left, *node.comparators]
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            name = _objective_like(left) or _objective_like(right)
            if name is not None:
                yield _violation(
                    source,
                    node,
                    "float-equality",
                    f"float ==/!= on objective value {name!r}; use "
                    "math.isclose / a tolerance — exact float comparison on "
                    "latency/energy objectives is representation-dependent",
                )


register_rule(
    Rule(
        id="float-equality",
        summary="no ==/!= on latency/energy objective floats",
        rationale=(
            "Latency and energy objectives are accumulated floats; exact "
            "equality depends on summation order, which the parallel "
            "executor deliberately does not fix — comparisons must be "
            "tolerance-based (the guardian's Eqn. 2 margin is, too)."
        ),
        check=_check_float_equality,
        include=("src/repro/**",),
    )
)


# --------------------------------------------------------------------------
# Rule 5: pickle-safety
# --------------------------------------------------------------------------


def _lambdas_under(node: ast.AST) -> Iterator[ast.Lambda]:
    for child in ast.walk(node):
        if isinstance(child, ast.Lambda):
            yield child


def _check_pickle_safety(source: SourceFile) -> Iterator[Violation]:
    for node in ast.walk(source.tree):
        if not isinstance(node, ast.Call):
            continue
        parts = _dotted(node.func)
        target: Optional[str] = None
        if parts and parts[-1] == "CampaignSpec":
            target = "CampaignSpec(...)"
        elif isinstance(node.func, ast.Attribute) and node.func.attr == "submit":
            target = ".submit(...)"
        if target is None:
            continue
        subtrees = [*node.args, *(kw.value for kw in node.keywords)]
        for subtree in subtrees:
            for lam in _lambdas_under(subtree):
                yield _violation(
                    source,
                    lam,
                    "pickle-safety",
                    f"lambda passed into {target} cannot cross the "
                    "ProcessPoolExecutor boundary (not picklable); use a "
                    "module-level function",
                )


register_rule(
    Rule(
        id="pickle-safety",
        summary="no lambdas/closures crossing the process-pool boundary",
        rationale=(
            "CampaignSpec objects and submit() payloads are pickled into "
            "worker processes; lambdas and closures fail to pickle only at "
            "runtime and only on the workers>1 path, which unit tests "
            "(workers=1) never exercise."
        ),
        check=_check_pickle_safety,
        include=("src/repro/**",),
    )
)


# --------------------------------------------------------------------------
# Rule 6: obs-event-kind
# --------------------------------------------------------------------------


def _check_obs_event_kind(source: SourceFile) -> Iterator[Violation]:
    for node in ast.walk(source.tree):
        if not isinstance(node, ast.Call):
            continue
        if not (isinstance(node.func, ast.Attribute) and node.func.attr == "emit"):
            continue
        for keyword in node.keywords:
            if keyword.arg is None:
                yield _violation(
                    source,
                    node,
                    "obs-event-kind",
                    "emit() payload must be explicit keyword arguments, not "
                    "an unpacked ad-hoc dict — the trace schema is typed",
                )
        if not node.args:
            continue
        kind_node = node.args[0]
        if not (
            isinstance(kind_node, ast.Constant) and isinstance(kind_node.value, str)
        ):
            yield _violation(
                source,
                node,
                "obs-event-kind",
                "emit() kind must be a string literal from "
                "repro.obs.events.EVENT_KINDS so traces stay replayable",
            )
            continue
        if kind_node.value not in EVENT_KINDS:
            yield _violation(
                source,
                node,
                "obs-event-kind",
                f"event kind {kind_node.value!r} is not registered in "
                "repro.obs.events.EVENT_KINDS; register and document it in "
                "docs/observability.md",
            )


register_rule(
    Rule(
        id="obs-event-kind",
        summary="events emitted only with kinds from the typed registry",
        rationale=(
            "'repro trace' replays archived JSONL traces through schema-"
            "aware renderers; an unregistered or dynamically-built event "
            "kind produces traces the replayer cannot interpret, which the "
            "trace format version cannot catch."
        ),
        check=_check_obs_event_kind,
        include=("src/repro/**",),
        # The obs package itself is the plumbing that forwards kinds.
        exempt=("src/repro/obs/**",),
    )
)
