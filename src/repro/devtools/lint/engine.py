"""The ``repro lint`` rule engine.

The test suite can only spot-check the repo's reproducibility invariants
dynamically (serial == parallel executor results, schema-stable traces,
seed-derived randomness); this module is the compile-time counterpart: a
small registry of AST-based design-rule checkers that walk the source
tree and fail the build when an invariant is violated *structurally* —
a wall-clock read in simulation code, an unseeded ``random.*`` call, an
event kind outside the typed registry.

Architecture:

* :class:`Rule` — one named checker with an *include/exempt* path scope
  (repo-root-relative globs) and an AST ``check`` callable;
* the module-level registry (:func:`register_rule`, :func:`iter_rules`)
  — rules self-register at import, ``repro lint --list-rules`` renders it;
* :class:`SourceFile` — one parsed file shared by every rule;
* suppressions — ``# repro: allow[rule-id] -- justification`` on the
  flagged line.  The justification is **required**: a bare suppression
  does not suppress and is itself reported (rule ``suppression``);
* :func:`lint_paths` — the driver; returns a :class:`LintReport` that
  renders as human-readable lines or as a versioned JSON document.
"""

from __future__ import annotations

import ast
import fnmatch
import io
import json
import pathlib
import re
import tokenize
from dataclasses import dataclass, field
from collections.abc import Callable, Iterable, Iterator, Sequence
from typing import Optional

from repro.errors import ConfigurationError

#: Bump when the JSON report layout changes; CI consumers pin on this.
LINT_REPORT_VERSION = 1

#: Rule id reserved for suppression-comment misuse (always enabled).
SUPPRESSION_RULE_ID = "suppression"

#: Rule id reserved for unparseable files (always enabled).
PARSE_RULE_ID = "parse-error"

#: The allow-comment marker, with an optional justification tail.  The
#: bracket accepts a comma-separated id list ("allow[wall-clock,
#: unseeded-random] -- why") so one line hit by several rules needs only
#: one comment; the justification is shared by every listed id.
_SUPPRESSION_RE = re.compile(
    r"#\s*repro:\s*allow\[(?P<rules>[A-Za-z0-9_-]+(?:\s*,\s*[A-Za-z0-9_-]+)*)\]"
    r"(?:\s*--\s*(?P<why>.*\S))?"
)


@dataclass(frozen=True)
class Violation:
    """One rule hit at one source location."""

    rule: str
    path: str  # repo-root-relative, posix separators
    line: int
    col: int
    message: str

    def to_dict(self) -> dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: [{self.rule}] {self.message}"


@dataclass(frozen=True)
class Suppression:
    """One parsed ``# repro: allow[...]`` comment."""

    rule: str
    line: int
    justification: Optional[str]


@dataclass
class SourceFile:
    """One file on disk, parsed once and shared by every rule."""

    path: pathlib.Path
    relpath: str
    text: str
    tree: ast.Module

    @classmethod
    def load(cls, path: pathlib.Path, root: pathlib.Path) -> "SourceFile":
        text = path.read_text(encoding="utf-8")
        tree = ast.parse(text, filename=str(path))
        relpath = path.resolve().relative_to(root.resolve()).as_posix()
        return cls(path=path, relpath=relpath, text=text, tree=tree)

    def suppressions(self) -> list[Suppression]:
        """Allow-comments, found via real COMMENT tokens (never docstrings)."""
        found = []
        try:
            tokens = list(tokenize.generate_tokens(io.StringIO(self.text).readline))
        except tokenize.TokenizeError:  # the ast parse already succeeded
            return []
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _SUPPRESSION_RE.search(token.string)
            if match is not None:
                for rule in match.group("rules").split(","):
                    found.append(
                        Suppression(
                            rule=rule.strip(),
                            line=token.start[0],
                            justification=match.group("why"),
                        )
                    )
        return found


#: A rule's checker: yields violations for one parsed file.
CheckFn = Callable[[SourceFile], Iterable[Violation]]


@dataclass(frozen=True)
class Rule:
    """One registered design-rule checker.

    ``include``/``exempt`` are repo-root-relative glob patterns deciding
    which files the rule sees at all; exemptions are the *structural*
    allowlist (e.g. the two timing modules for ``wall-clock``), distinct
    from per-line suppression comments, which require a justification.
    """

    id: str
    summary: str
    rationale: str
    check: CheckFn
    include: tuple[str, ...] = ("src/repro/**",)
    exempt: tuple[str, ...] = ()

    def applies_to(self, relpath: str) -> bool:
        if not any(_glob_match(relpath, pattern) for pattern in self.include):
            return False
        return not any(_glob_match(relpath, pattern) for pattern in self.exempt)


def _glob_match(relpath: str, pattern: str) -> bool:
    """``fnmatch`` with ``**`` spanning directory separators."""
    if fnmatch.fnmatch(relpath, pattern):
        return True
    # "pkg/**" should also match "pkg" itself and files directly under it.
    if pattern.endswith("/**"):
        base = pattern[:-3]
        return relpath == base or relpath.startswith(base + "/")
    return False


_REGISTRY: dict[str, Rule] = {}


def register_rule(rule: Rule) -> Rule:
    """Add ``rule`` to the global registry (id collisions are a bug)."""
    if rule.id in _REGISTRY:
        raise ConfigurationError(f"duplicate lint rule id: {rule.id!r}")
    if rule.id in (SUPPRESSION_RULE_ID, PARSE_RULE_ID):
        raise ConfigurationError(f"lint rule id {rule.id!r} is reserved")
    _REGISTRY[rule.id] = rule
    return rule


def iter_rules() -> list[Rule]:
    """All registered rules, sorted by id."""
    _ensure_builtin_rules()
    return [_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)]


def get_rule(rule_id: str) -> Rule:
    _ensure_builtin_rules()
    try:
        return _REGISTRY[rule_id]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ConfigurationError(
            f"unknown lint rule {rule_id!r} (known: {known})"
        ) from None


def _ensure_builtin_rules() -> None:
    # The built-in checkers live in a sibling module that registers them
    # at import; imported lazily so engine <-> rules stay acyclic.
    from repro.devtools.lint import rules as _rules  # noqa: F401


def _analyzer_checker_ids() -> frozenset[str]:
    # ``repro analyze`` findings share the allow-comment syntax, so a
    # suppression naming one of its checkers is not "unknown" to lint.
    # Imported lazily to keep the lint <-> analyze layering acyclic.
    from repro.devtools.analyze.findings import CHECKER_IDS

    return frozenset(CHECKER_IDS)


@dataclass
class LintReport:
    """The outcome of one :func:`lint_paths` run."""

    violations: list[Violation] = field(default_factory=list)
    checked_files: int = 0
    rule_ids: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_dict(self) -> dict[str, object]:
        return {
            "version": LINT_REPORT_VERSION,
            "ok": self.ok,
            "checked_files": self.checked_files,
            "rules": list(self.rule_ids),
            "violations": [v.to_dict() for v in self.violations],
        }

    def render_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def render_human(self) -> str:
        lines = [violation.render() for violation in self.violations]
        lines.append(
            f"repro lint: {len(self.violations)} violation(s) in "
            f"{self.checked_files} file(s) "
            f"({len(self.rule_ids)} rule(s))"
        )
        return "\n".join(lines)


def _iter_python_files(paths: Sequence[pathlib.Path]) -> Iterator[pathlib.Path]:
    seen = set()
    for path in paths:
        if path.is_dir():
            candidates: Iterable[pathlib.Path] = sorted(path.rglob("*.py"))
        else:
            candidates = [path]
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved in seen or "__pycache__" in resolved.parts:
                continue
            seen.add(resolved)
            yield candidate


def find_repo_root(start: pathlib.Path) -> pathlib.Path:
    """The nearest ancestor of ``start`` holding a ``pyproject.toml``."""
    current = start.resolve()
    if current.is_file():
        current = current.parent
    for candidate in (current, *current.parents):
        if (candidate / "pyproject.toml").is_file():
            return candidate
    return current


def _apply_suppressions(
    source: SourceFile,
    violations: list[Violation],
    enabled_ids: Sequence[str],
) -> list[Violation]:
    """Drop justified same-line suppressed hits; flag suppression misuse."""
    kept: list[Violation] = []
    suppressions = source.suppressions()
    valid = {
        (s.rule, s.line)
        for s in suppressions
        if s.justification
    }
    for violation in violations:
        if (violation.rule, violation.line) in valid:
            continue
        kept.append(violation)
    known_ids = set(enabled_ids) | {rule.id for rule in iter_rules()}
    known_ids |= _analyzer_checker_ids()
    for suppression in suppressions:
        if not suppression.justification:
            kept.append(
                Violation(
                    rule=SUPPRESSION_RULE_ID,
                    path=source.relpath,
                    line=suppression.line,
                    col=0,
                    message=(
                        f"suppression of [{suppression.rule}] needs a "
                        "justification: '# repro: allow"
                        f"[{suppression.rule}] -- <why this is safe>'"
                    ),
                )
            )
        elif suppression.rule not in known_ids:
            kept.append(
                Violation(
                    rule=SUPPRESSION_RULE_ID,
                    path=source.relpath,
                    line=suppression.line,
                    col=0,
                    message=f"suppression names unknown rule {suppression.rule!r}",
                )
            )
    return kept


def lint_paths(
    paths: Sequence[pathlib.Path],
    *,
    root: Optional[pathlib.Path] = None,
    select: Optional[Sequence[str]] = None,
) -> LintReport:
    """Run the (selected) registered rules over every ``.py`` under ``paths``.

    ``root`` anchors the repo-relative paths that rule scopes and report
    locations use; by default it is discovered from the first path.
    """
    paths = [pathlib.Path(p) for p in paths]
    if not paths:
        raise ConfigurationError("lint_paths needs at least one path")
    resolved_root = root if root is not None else find_repo_root(paths[0])
    if select is None:
        rules = iter_rules()
    else:
        rules = [get_rule(rule_id) for rule_id in select]
    report = LintReport(rule_ids=[rule.id for rule in rules])

    for path in _iter_python_files(paths):
        report.checked_files += 1
        try:
            source = SourceFile.load(path, resolved_root)
        except SyntaxError as error:
            relpath = path.resolve().relative_to(resolved_root.resolve()).as_posix()
            report.violations.append(
                Violation(
                    rule=PARSE_RULE_ID,
                    path=relpath,
                    line=error.lineno or 0,
                    col=error.offset or 0,
                    message=f"file does not parse: {error.msg}",
                )
            )
            continue
        file_violations: list[Violation] = []
        for rule in rules:
            if not rule.applies_to(source.relpath):
                continue
            file_violations.extend(rule.check(source))
        report.violations.extend(
            _apply_suppressions(source, file_violations, report.rule_ids)
        )

    report.violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule))
    return report
