"""Determinism-aware static analysis (``repro lint``).

Public surface: the engine types plus :func:`lint_paths`; the built-in
rules register themselves when the engine enumerates the registry.
"""

from repro.devtools.lint.engine import (
    LINT_REPORT_VERSION,
    LintReport,
    Rule,
    SourceFile,
    Violation,
    find_repo_root,
    get_rule,
    iter_rules,
    lint_paths,
    register_rule,
)

__all__ = [
    "LINT_REPORT_VERSION",
    "LintReport",
    "Rule",
    "SourceFile",
    "Violation",
    "find_repo_root",
    "get_rule",
    "iter_rules",
    "lint_paths",
    "register_rule",
]
