"""The ``repro analyze`` driver: index, graph, checkers, suppressions.

One run = parse every ``.py`` under the given paths into a
:class:`ProjectIndex`, build the :class:`CallGraph`, run the four
contract checkers, drop findings covered by a justified same-line
``# repro: allow[<checker-id>] -- <why>`` comment (the exact suppression
syntax ``repro lint`` uses — misuse of the comment itself is lint's
job), and return a sorted :class:`AnalysisReport`.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass
from collections.abc import Sequence
from typing import Optional

from repro.devtools.analyze.boundaries import DEFAULT_WORKER_ROOTS, check_boundaries
from repro.devtools.analyze.callgraph import CallGraph
from repro.devtools.analyze.findings import (
    AnalysisReport,
    CHECKER_IDS,
    Finding,
)
from repro.devtools.analyze.keys import DEFAULT_CONTRACTS, KeyContract, check_keys
from repro.devtools.analyze.project import ProjectIndex
from repro.devtools.analyze.registry import PLUMBING_EVENT_KINDS, check_registries
from repro.devtools.analyze.taint import DEFAULT_TAINT_EXEMPT, check_taint
from repro.devtools.lint.engine import find_repo_root
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class AnalyzeConfig:
    """Tunable contract surface; the defaults describe this repo."""

    taint_exempt: tuple[str, ...] = DEFAULT_TAINT_EXEMPT
    contracts: tuple[KeyContract, ...] = DEFAULT_CONTRACTS
    worker_roots: tuple[str, ...] = DEFAULT_WORKER_ROOTS
    plumbing_kinds: frozenset = PLUMBING_EVENT_KINDS


DEFAULT_CONFIG = AnalyzeConfig()


def analyze_paths(
    paths: Sequence[pathlib.Path],
    *,
    root: Optional[pathlib.Path] = None,
    config: AnalyzeConfig = DEFAULT_CONFIG,
) -> AnalysisReport:
    """Run every checker over the project rooted at ``root``."""
    paths = [pathlib.Path(p) for p in paths]
    if not paths:
        raise ConfigurationError("analyze_paths needs at least one path")
    resolved_root = root if root is not None else find_repo_root(paths[0])
    project = ProjectIndex.load(paths, resolved_root)
    graph = CallGraph.build(project)

    findings: list[Finding] = []
    for relpath, line, col, message in project.parse_failures:
        findings.append(
            Finding(
                checker="parse-error",
                path=relpath,
                line=line,
                col=col,
                message=f"file does not parse: {message}",
            )
        )
    findings.extend(check_taint(project, graph, config.taint_exempt))
    findings.extend(check_keys(project, graph, config.contracts))
    findings.extend(check_registries(project, graph, config.plumbing_kinds))
    findings.extend(check_boundaries(project, graph, config.worker_roots))
    findings = _apply_suppressions(project, findings)

    report = AnalysisReport(
        findings=findings,
        checked_modules=len(project.modules) + len(project.parse_failures),
        checker_ids=[cid for cid in CHECKER_IDS if cid != "parse-error"],
    )
    report.sort()
    return report


def _apply_suppressions(
    project: ProjectIndex, findings: list[Finding]
) -> list[Finding]:
    """Drop findings with a justified same-line allow-comment.

    Unjustified or unknown-id suppression comments are *lint's* findings
    (rule ``suppression``), not duplicated here.
    """
    justified: dict[str, set[tuple[str, int]]] = {}
    for info in project.modules.values():
        pairs = {
            (s.rule, s.line)
            for s in info.source.suppressions()
            if s.justification and s.rule in CHECKER_IDS
        }
        if pairs:
            justified[info.source.relpath] = pairs
    kept = []
    for finding in findings:
        if (finding.checker, finding.line) in justified.get(finding.path, set()):
            continue
        kept.append(finding)
    return kept
