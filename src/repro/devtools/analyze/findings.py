"""Findings, reports, SARIF output and the baseline ratchet.

A :class:`Finding` is the analyzer's counterpart to the lint engine's
``Violation``: one contract breach at one source location.  Everything
downstream of the checkers is deterministic by construction — findings
sort on ``(path, line, col, checker, message)``, every serializer dumps
with ``sort_keys=True`` and no timestamps, and the baseline is a sorted
multiset of content fingerprints so re-running the analyzer twice (or on
another machine) yields byte-identical artifacts.

The fingerprint deliberately omits line/column: moving a violating call
a few lines does not mint a "new" violation, so the ratchet only fires
when genuinely new contract breaches appear.
"""

from __future__ import annotations

import hashlib
import json
import pathlib
from collections import Counter
from dataclasses import dataclass, field

from repro.errors import ConfigurationError

#: Bump when the JSON report layout changes; CI consumers pin on this.
ANALYSIS_REPORT_VERSION = 1

#: Bump when the baseline layout or fingerprint recipe changes.
BASELINE_VERSION = 1

#: Checker id -> one-line summary (drives --list-checkers and SARIF rules).
CHECKER_SUMMARIES: dict[str, str] = {
    "determinism-taint": (
        "no wall-clock / unseeded-RNG / filesystem-ordering value may reach "
        "trace emission, cache-key construction, or decision-plan solving"
    ),
    "key-completeness": (
        "every field of a keyed spec dataclass flows into its cache/token "
        "key, or carries an explicit '# key_exempt: <why>' marker"
    ),
    "registry-closure": (
        "every emitted obs event kind / counter name is registered, and "
        "every registered one has at least one emitter"
    ),
    "process-boundary": (
        "no mutable module-level state is written on paths reachable from "
        "worker entry points or the service coalescing path"
    ),
    "parse-error": "the file must parse before any contract can be checked",
}

#: Stable, sorted tuple of every analyzer checker id.
CHECKER_IDS: tuple[str, ...] = tuple(sorted(CHECKER_SUMMARIES))


@dataclass(frozen=True)
class Finding:
    """One contract breach at one source location."""

    checker: str
    path: str  # repo-root-relative, posix separators
    line: int
    col: int
    message: str

    def fingerprint(self) -> str:
        """Location-drift-tolerant content hash used by the baseline."""
        payload = json.dumps(
            [self.checker, self.path, self.message],
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def to_dict(self) -> dict[str, object]:
        return {
            "checker": self.checker,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "fingerprint": self.fingerprint(),
        }

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: [{self.checker}] {self.message}"


@dataclass
class AnalysisReport:
    """The outcome of one ``analyze_paths`` run."""

    findings: list[Finding] = field(default_factory=list)
    checked_modules: int = 0
    checker_ids: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings

    def sort(self) -> None:
        self.findings.sort(key=lambda f: (f.path, f.line, f.col, f.checker, f.message))

    def to_dict(self) -> dict[str, object]:
        return {
            "version": ANALYSIS_REPORT_VERSION,
            "ok": self.ok,
            "checked_modules": self.checked_modules,
            "checkers": list(self.checker_ids),
            "findings": [f.to_dict() for f in self.findings],
        }

    def render_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def render_human(self) -> str:
        lines = [finding.render() for finding in self.findings]
        lines.append(
            f"repro analyze: {len(self.findings)} finding(s) in "
            f"{self.checked_modules} module(s) "
            f"({len(self.checker_ids)} checker(s))"
        )
        return "\n".join(lines)

    def render_sarif(self) -> str:
        """Minimal SARIF 2.1.0 — one run, one rule per checker."""
        rules = [
            {
                "id": checker_id,
                "name": checker_id.replace("-", " ").title().replace(" ", ""),
                "shortDescription": {"text": CHECKER_SUMMARIES[checker_id]},
            }
            for checker_id in sorted(set(self.checker_ids) | {"parse-error"})
        ]
        results = [
            {
                "ruleId": finding.checker,
                "level": "error",
                "message": {"text": finding.message},
                "partialFingerprints": {"reproAnalyze/v1": finding.fingerprint()},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {"uri": finding.path},
                            "region": {
                                "startLine": max(finding.line, 1),
                                "startColumn": finding.col + 1,
                            },
                        }
                    }
                ],
            }
            for finding in self.findings
        ]
        document = {
            "$schema": (
                "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                "master/Schemata/sarif-schema-2.1.0.json"
            ),
            "version": "2.1.0",
            "runs": [
                {
                    "tool": {
                        "driver": {
                            "name": "repro-analyze",
                            "informationUri": "docs/static_analysis.md",
                            "rules": rules,
                        }
                    },
                    "results": results,
                }
            ],
        }
        return json.dumps(document, indent=2, sort_keys=True)


# --------------------------------------------------------------------------
# Baseline + ratchet
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class RatchetResult:
    """New-vs-baseline comparison: what the ratchet lets through."""

    new: tuple[Finding, ...]
    baselined: int
    stale: int

    @property
    def ok(self) -> bool:
        return not self.new

    def render(self) -> str:
        lines = [finding.render() for finding in self.new]
        lines.append(
            f"repro analyze --ratchet: {len(self.new)} new finding(s), "
            f"{self.baselined} baselined, {self.stale} stale baseline entr"
            f"{'y' if self.stale == 1 else 'ies'}"
        )
        return "\n".join(lines)


def baseline_fingerprints(report: AnalysisReport) -> list[str]:
    return sorted(finding.fingerprint() for finding in report.findings)


def render_baseline(report: AnalysisReport) -> str:
    document = {
        "version": BASELINE_VERSION,
        "fingerprints": baseline_fingerprints(report),
    }
    return json.dumps(document, indent=2, sort_keys=True) + "\n"


def write_baseline(path: pathlib.Path, report: AnalysisReport) -> None:
    path.write_text(render_baseline(report), encoding="utf-8")


def load_baseline(path: pathlib.Path) -> "Counter[str]":
    """The committed fingerprint multiset; a missing file is an empty one."""
    if not path.is_file():
        return Counter()
    try:
        document = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as error:
        raise ConfigurationError(f"baseline {path} is not valid JSON: {error}")
    if not isinstance(document, dict) or document.get("version") != BASELINE_VERSION:
        raise ConfigurationError(
            f"baseline {path} has unsupported layout (want version "
            f"{BASELINE_VERSION}); regenerate with 'repro analyze "
            "--write-baseline'"
        )
    fingerprints = document.get("fingerprints")
    if not isinstance(fingerprints, list) or not all(
        isinstance(item, str) for item in fingerprints
    ):
        raise ConfigurationError(f"baseline {path}: 'fingerprints' must be strings")
    return Counter(fingerprints)


def ratchet(report: AnalysisReport, baseline: "Counter[str]") -> RatchetResult:
    """Split findings into baselined and new; count stale baseline entries.

    The baseline is a *multiset*: two identical-fingerprint findings need
    two baseline entries, so duplicating a baselined violation still
    fails the ratchet.
    """
    remaining = Counter(baseline)
    new: list[Finding] = []
    baselined = 0
    for finding in report.findings:  # already sorted by the driver
        fingerprint = finding.fingerprint()
        if remaining[fingerprint] > 0:
            remaining[fingerprint] -= 1
            baselined += 1
        else:
            new.append(finding)
    stale = sum(remaining.values())
    return RatchetResult(new=tuple(new), baselined=baselined, stale=stale)
