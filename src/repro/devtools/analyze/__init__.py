"""Whole-program determinism analysis (``repro analyze``).

Where ``repro.devtools.lint`` checks one file at a time, this package
builds a project-wide module/call graph over ``src/repro`` and proves
the cross-module contracts the lint cannot see: interprocedural
determinism taint, cache-key completeness, obs-registry closure, and
process-boundary safety.  See ``docs/static_analysis.md``.
"""

from repro.devtools.analyze.boundaries import DEFAULT_WORKER_ROOTS
from repro.devtools.analyze.driver import (
    DEFAULT_CONFIG,
    AnalyzeConfig,
    analyze_paths,
)
from repro.devtools.analyze.findings import (
    ANALYSIS_REPORT_VERSION,
    BASELINE_VERSION,
    CHECKER_IDS,
    CHECKER_SUMMARIES,
    AnalysisReport,
    Finding,
    RatchetResult,
    load_baseline,
    ratchet,
    render_baseline,
    write_baseline,
)
from repro.devtools.analyze.keys import DEFAULT_CONTRACTS, KeyContract

__all__ = [
    "ANALYSIS_REPORT_VERSION",
    "AnalysisReport",
    "AnalyzeConfig",
    "BASELINE_VERSION",
    "CHECKER_IDS",
    "CHECKER_SUMMARIES",
    "DEFAULT_CONFIG",
    "DEFAULT_CONTRACTS",
    "DEFAULT_WORKER_ROOTS",
    "Finding",
    "KeyContract",
    "RatchetResult",
    "analyze_paths",
    "load_baseline",
    "ratchet",
    "render_baseline",
    "write_baseline",
]
