"""Checker 4 — process-boundary safety.

The executor's serial == parallel guarantee and the service's coalescing
contract both assume worker-path code keeps no hidden process-local
state: a module-level dict written inside a ``ProcessPoolExecutor``
worker diverges silently between the serial and sharded runs, and a
write on the coalescing path makes "one evaluation, many waiters"
unsound.  This checker walks the call graph from the declared worker
entry points and flags every write to a mutable module-level binding
reachable from them — same-module globals, aliased cross-module names
(``runner._CACHE[k] = v``) and mutating method calls alike.

Deliberate caches on the worker path (the campaign memo the executor
primes *before* forking) carry justified line suppressions; everything
else is an error.
"""

from __future__ import annotations

import ast
from typing import Optional

from repro.devtools.analyze.callgraph import CallGraph
from repro.devtools.analyze.findings import Finding
from repro.devtools.analyze.project import ModuleInfo, ProjectIndex
from repro.devtools.lint.rules import dotted_parts

CHECKER_ID = "process-boundary"

#: Call-graph roots: the process-pool worker entry and the service
#: coalescing evaluation (documented pure; settle() peeks at its result).
DEFAULT_WORKER_ROOTS: tuple[str, ...] = (
    "repro.sim.executor._compute_spec",
    "repro.service.engine.PaceDecisionService._evaluation_outcome",
)

#: Method names that mutate their receiver in place.
_MUTATORS = frozenset(
    {
        "append",
        "appendleft",
        "add",
        "clear",
        "discard",
        "extend",
        "extendleft",
        "insert",
        "pop",
        "popitem",
        "popleft",
        "remove",
        "setdefault",
        "sort",
        "update",
    }
)


def _local_store_names(node: ast.AST) -> set[str]:
    """Names bound inside the function (they shadow module globals)."""
    names: set[str] = set()
    globals_declared: set[str] = set()
    for statement in ast.walk(node):
        if isinstance(statement, (ast.Global, ast.Nonlocal)):
            globals_declared.update(statement.names)
        elif isinstance(statement, ast.Name) and isinstance(
            statement.ctx, (ast.Store, ast.Del)
        ):
            names.add(statement.id)
    return names - globals_declared


def _resolve_state_name(
    project: ProjectIndex,
    module: ModuleInfo,
    node: ast.expr,
    shadowed: set[str],
) -> Optional[tuple[str, str, int]]:
    """``node`` as (owning module, binding name, def line) if it names
    module-level mutable state — directly, via a from-import alias, or as
    a ``mod.NAME`` attribute through a module alias."""
    if isinstance(node, ast.Name):
        if node.id in shadowed:
            return None
        if node.id in module.mutables:
            return (module.name, node.id, module.mutables[node.id])
        canonical = module.aliases.get(node.id)
        if canonical is not None:
            return _canonical_state(project, canonical)
        return None
    if isinstance(node, ast.Attribute):
        parts = dotted_parts(node)
        if parts is None or len(parts) != 2:
            return None
        owner = module.aliases.get(parts[0])
        if owner is None:
            return None
        return _canonical_state(project, f"{owner}.{parts[1]}")
    return None


def _canonical_state(
    project: ProjectIndex, canonical: str
) -> Optional[tuple[str, str, int]]:
    owner, _, name = canonical.rpartition(".")
    info = project.modules.get(owner)
    if info is not None and name in info.mutables:
        return (owner, name, info.mutables[name])
    return None


def _function_state_writes(
    project: ProjectIndex, module: ModuleInfo, node: ast.AST
) -> list[tuple[int, int, str, str]]:
    """(line, col, owner module, name) for each module-state write."""
    shadowed = _local_store_names(node)
    writes: list[tuple[int, int, str, str]] = []

    def record(target: ast.expr, at: ast.AST) -> None:
        resolved = _resolve_state_name(project, module, target, shadowed)
        if resolved is not None:
            owner, name, _line = resolved
            writes.append(
                (at.lineno, getattr(at, "col_offset", 0), owner, name)
            )

    for statement in ast.walk(node):
        if isinstance(statement, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                statement.targets
                if isinstance(statement, ast.Assign)
                else [statement.target]
            )
            for target in targets:
                if isinstance(target, (ast.Subscript, ast.Attribute)):
                    record(target.value, statement)
                elif isinstance(target, ast.Name):
                    # Rebinding a module-level mutable requires ``global``;
                    # shadowed names were subtracted already.
                    if target.id not in shadowed:
                        record(target, statement)
        elif isinstance(statement, ast.Delete):
            for target in statement.targets:
                if isinstance(target, ast.Subscript):
                    record(target.value, statement)
        elif isinstance(statement, ast.Call):
            callee = statement.func
            if isinstance(callee, ast.Attribute) and callee.attr in _MUTATORS:
                record(callee.value, statement)
    return writes


def check_boundaries(
    project: ProjectIndex,
    graph: CallGraph,
    roots: tuple[str, ...] = DEFAULT_WORKER_ROOTS,
) -> list[Finding]:
    present_roots = [root for root in roots if root in graph.facts]
    if not present_roots:
        return []
    parents = graph.reachable(present_roots)
    findings: list[Finding] = []
    for qualname in sorted(parents):
        function = project.functions[qualname]
        module = project.modules[function.module]
        for line, col, owner, name in _function_state_writes(
            project, module, function.node
        ):
            chain = " -> ".join(graph.chain(parents, qualname))
            owner_info = project.modules.get(owner)
            defined_at = (
                f"{owner_info.source.relpath}:{owner_info.mutables[name]}"
                if owner_info is not None and name in owner_info.mutables
                else owner
            )
            findings.append(
                Finding(
                    checker=CHECKER_ID,
                    path=module.source.relpath,
                    line=line,
                    col=col,
                    message=(
                        f"mutable module-level state {owner}.{name} (defined "
                        f"at {defined_at}) is written on a worker/service "
                        f"path: {chain}"
                    ),
                )
            )
    return findings
