"""Checker 2 — cache/token key completeness.

The silent-stale-cache bug class: a field is added to a keyed spec
dataclass, changes behaviour, but never makes it into the cache key —
so two different configurations collide on one cache entry.  Each
:class:`KeyContract` names a spec dataclass and the functions that build
its key; every dataclass field must be *read as an attribute* somewhere
in the transitive project-call closure of those functions, or carry an
explicit ``# key_exempt: <why>`` marker on its definition line.

The attribute-read closure is deliberately name-based (``.field`` reads
anywhere in the closure), trading a little precision for zero false
negatives on the ``asdict``/``to_dict`` compositions the real key
functions use.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.devtools.analyze.callgraph import CallGraph
from repro.devtools.analyze.findings import Finding
from repro.devtools.analyze.project import ProjectIndex

CHECKER_ID = "key-completeness"


@dataclass(frozen=True)
class KeyContract:
    """One keyed dataclass and the functions that must consume its fields."""

    dataclass: str
    key_functions: tuple[str, ...]
    description: str


#: The keyed spec types this repo caches on (ISSUE 8 contract set, plus
#: the servertune specs whose tokens join campaign and PBT cache keys).
DEFAULT_CONTRACTS: tuple[KeyContract, ...] = (
    KeyContract(
        dataclass="repro.sim.executor.CampaignSpec",
        key_functions=("repro.sim.executor.CampaignSpec.key",),
        description="the campaign cache key",
    ),
    KeyContract(
        dataclass="repro.faults.schedule.FaultSchedule",
        key_functions=("repro.faults.schedule.FaultSchedule.to_dict",),
        description="the fault-schedule token",
    ),
    KeyContract(
        dataclass="repro.sim.fleet.FleetSpec",
        key_functions=(
            "repro.sim.fleet.build_fleet_clients",
            "repro.sim.fleet.campaign_spec_for",
            "repro.sim.fleet.compose_fleet",
        ),
        description="fleet composition (every field must shape the trace)",
    ),
    KeyContract(
        dataclass="repro.service.api.DecisionRequest",
        key_functions=("repro.service.api.DecisionRequest.token",),
        description="the decision-cache token",
    ),
    KeyContract(
        dataclass="repro.servertune.controllers.ServerTuneSpec",
        key_functions=("repro.servertune.controllers.ServerTuneSpec.to_dict",),
        description="the servertune campaign-key token",
    ),
    KeyContract(
        dataclass="repro.servertune.pbt.PBTSpec",
        key_functions=("repro.servertune.pbt.PBTSpec.to_dict",),
        description="the PBT campaign token",
    ),
)


def check_keys(
    project: ProjectIndex,
    graph: CallGraph,
    contracts: tuple[KeyContract, ...] = DEFAULT_CONTRACTS,
) -> list[Finding]:
    findings: list[Finding] = []
    for contract in contracts:
        info = project.classes.get(contract.dataclass)
        if info is None:
            continue  # contract target absent from this tree (fixtures)
        relpath = project.modules[info.module].source.relpath
        missing_functions = sorted(
            name for name in contract.key_functions if name not in graph.facts
        )
        if missing_functions:
            findings.append(
                Finding(
                    checker=CHECKER_ID,
                    path=relpath,
                    line=info.node.lineno,
                    col=info.node.col_offset,
                    message=(
                        f"key contract for {contract.dataclass} names missing "
                        f"function(s): {', '.join(missing_functions)}"
                    ),
                )
            )
            continue
        consumed = graph.attr_loads_closure(list(contract.key_functions))
        for field in info.fields:
            if field.has_marker:
                if not field.exempt_reason:
                    findings.append(
                        Finding(
                            checker=CHECKER_ID,
                            path=relpath,
                            line=field.line,
                            col=0,
                            message=(
                                f"key_exempt marker on {contract.dataclass}."
                                f"{field.name} needs a justification: "
                                "'# key_exempt: <why this never affects the key>'"
                            ),
                        )
                    )
                continue
            if field.name not in consumed:
                key_names = ", ".join(contract.key_functions)
                findings.append(
                    Finding(
                        checker=CHECKER_ID,
                        path=relpath,
                        line=field.line,
                        col=0,
                        message=(
                            f"field {field.name!r} of {contract.dataclass} never "
                            f"flows into {contract.description} ({key_names}); "
                            "add it to the key or mark it "
                            "'# key_exempt: <why>'"
                        ),
                    )
                )
    return findings
