"""The project index: every module under analysis, parsed once.

Where the lint engine sees one file at a time, the analyzer needs the
whole program: module names derived from paths, every function and class
with a stable dotted qualname, dataclass fields (with their
``# key_exempt`` markers), import aliases resolved through the shared
lint resolver (absolute *and* relative), and module-level mutable
bindings.  Everything is plain ``ast`` — no imports of the analyzed code
ever happen, so fixture trees in tests and the real tree go through the
exact same path.
"""

from __future__ import annotations

import ast
import io
import pathlib
import re
import tokenize
from dataclasses import dataclass, field
from collections.abc import Sequence
from typing import Optional, Union

from repro.devtools.lint.engine import SourceFile
from repro.devtools.lint.rules import import_aliases, module_package

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: Constructors whose result is mutable module-level state when bound at
#: module scope.
_MUTABLE_CONSTRUCTORS = frozenset(
    {"dict", "list", "set", "bytearray", "defaultdict", "OrderedDict", "deque", "Counter"}
)

#: ``# key_exempt: <why>`` (or ``-- <why>``) on a dataclass field line.
_KEY_EXEMPT_RE = re.compile(
    r"#\s*key_exempt\b(?:\s*(?::|--)\s*(?P<why>.*\S))?"
)


def module_name(relpath: str) -> str:
    """Dotted module name for a repo-relative path.

    ``src/repro/sim/runner.py`` -> ``repro.sim.runner``;
    ``src/repro/obs/__init__.py`` -> ``repro.obs``.
    """
    parts = list(pathlib.PurePosixPath(relpath).parts)
    if parts and parts[0] == "src":
        parts = parts[1:]
    if not parts:
        return ""
    stem = parts[-1]
    if stem.endswith(".py"):
        stem = stem[: -len(".py")]
    if stem == "__init__":
        parts = parts[:-1]
    else:
        parts = [*parts[:-1], stem]
    return ".".join(parts)


@dataclass(frozen=True)
class FieldInfo:
    """One dataclass field, with its optional key-exemption marker."""

    name: str
    line: int
    has_marker: bool
    exempt_reason: Optional[str]


@dataclass
class FunctionInfo:
    """One function or method, addressable by dotted qualname."""

    qualname: str  # e.g. repro.sim.runner.run_campaign / ...CampaignSpec.key
    module: str
    cls: Optional[str]  # owning class qualname for methods
    node: FunctionNode


@dataclass
class ClassInfo:
    """One class: bases (resolved where possible), methods, dataclass fields."""

    qualname: str
    module: str
    node: ast.ClassDef
    bases: tuple[str, ...]
    is_dataclass: bool
    fields: tuple[FieldInfo, ...]
    methods: dict[str, str] = field(default_factory=dict)  # name -> qualname


@dataclass
class ModuleInfo:
    """One parsed module with its local symbol tables."""

    name: str
    package: str
    source: SourceFile
    aliases: dict[str, str]
    functions: dict[str, str] = field(default_factory=dict)  # local name -> qualname
    classes: dict[str, str] = field(default_factory=dict)  # local name -> qualname
    mutables: dict[str, int] = field(default_factory=dict)  # name -> def line


@dataclass
class ProjectIndex:
    """The whole analyzed tree, addressable by dotted names."""

    root: pathlib.Path
    modules: dict[str, ModuleInfo] = field(default_factory=dict)
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    classes: dict[str, ClassInfo] = field(default_factory=dict)
    parse_failures: list[tuple[str, int, int, str]] = field(default_factory=list)

    @classmethod
    def load(
        cls, paths: Sequence[pathlib.Path], root: pathlib.Path
    ) -> "ProjectIndex":
        project = cls(root=root)
        for path in _iter_python_files(paths):
            try:
                source = SourceFile.load(path, root)
            except SyntaxError as error:
                relpath = path.resolve().relative_to(root.resolve()).as_posix()
                project.parse_failures.append(
                    (relpath, error.lineno or 0, error.offset or 0, error.msg or "")
                )
                continue
            project._index_module(source)
        return project

    # -- indexing ----------------------------------------------------------

    def _index_module(self, source: SourceFile) -> None:
        name = module_name(source.relpath)
        package = module_package(source.relpath)
        info = ModuleInfo(
            name=name,
            package=package,
            source=source,
            aliases=import_aliases(source.tree, package),
        )
        exemptions = _key_exempt_comments(source.text)
        for statement in source.tree.body:
            if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._index_function(info, statement, cls=None)
            elif isinstance(statement, ast.ClassDef):
                self._index_class(info, statement, exemptions)
            else:
                _collect_mutables(info, statement)
        self.modules[name] = info

    def _index_function(
        self, module: ModuleInfo, node: FunctionNode, cls: Optional[str]
    ) -> None:
        owner = cls if cls is not None else module.name
        qualname = f"{owner}.{node.name}"
        function = FunctionInfo(
            qualname=qualname, module=module.name, cls=cls, node=node
        )
        self.functions[qualname] = function
        if cls is None:
            module.functions[node.name] = qualname
        else:
            self.classes[cls].methods[node.name] = qualname

    def _index_class(
        self,
        module: ModuleInfo,
        node: ast.ClassDef,
        exemptions: dict[int, Optional[str]],
    ) -> None:
        qualname = f"{module.name}.{node.name}"
        bases = tuple(
            resolved
            for resolved in (
                _resolve_base(base, module.aliases, module.name)
                for base in node.bases
            )
            if resolved is not None
        )
        is_dataclass = any(_is_dataclass_decorator(d) for d in node.decorator_list)
        fields = _dataclass_fields(node, exemptions) if is_dataclass else ()
        self.classes[qualname] = ClassInfo(
            qualname=qualname,
            module=module.name,
            node=node,
            bases=bases,
            is_dataclass=is_dataclass,
            fields=fields,
        )
        module.classes[node.name] = qualname
        for statement in node.body:
            if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._index_function(module, statement, cls=qualname)

    # -- lookups -----------------------------------------------------------

    def resolve_method(self, class_qualname: str, method: str) -> Optional[str]:
        """``method`` on ``class_qualname`` or its project bases (MRO-ish)."""
        seen: set[str] = set()
        queue = [class_qualname]
        while queue:
            current = queue.pop(0)
            if current in seen:
                continue
            seen.add(current)
            info = self.classes.get(current)
            if info is None:
                continue
            if method in info.methods:
                return info.methods[method]
            queue.extend(info.bases)
        return None

    def function_relpath(self, qualname: str) -> str:
        function = self.functions[qualname]
        return self.modules[function.module].source.relpath


# --------------------------------------------------------------------------
# Helpers
# --------------------------------------------------------------------------


def _iter_python_files(paths: Sequence[pathlib.Path]) -> list[pathlib.Path]:
    seen: set[pathlib.Path] = set()
    ordered: list[pathlib.Path] = []
    for path in paths:
        if path.is_dir():
            candidates = sorted(path.rglob("*.py"))
        else:
            candidates = [path]
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved in seen or "__pycache__" in resolved.parts:
                continue
            seen.add(resolved)
            ordered.append(candidate)
    return ordered


def _key_exempt_comments(text: str) -> dict[int, Optional[str]]:
    """Line -> justification (None when the marker has no reason)."""
    found: dict[int, Optional[str]] = {}
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(text).readline))
    except tokenize.TokenizeError:  # the ast parse already succeeded
        return found
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _KEY_EXEMPT_RE.search(token.string)
        if match is not None:
            found[token.start[0]] = match.group("why")
    return found


def _is_dataclass_decorator(node: ast.expr) -> bool:
    target = node.func if isinstance(node, ast.Call) else node
    if isinstance(target, ast.Name):
        return target.id == "dataclass"
    if isinstance(target, ast.Attribute):
        return target.attr == "dataclass"
    return False


def _annotation_text(node: ast.expr) -> str:
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover - unparse is total on parsed trees
        return ""


def _dataclass_fields(
    node: ast.ClassDef, exemptions: dict[int, Optional[str]]
) -> tuple[FieldInfo, ...]:
    fields: list[FieldInfo] = []
    for statement in node.body:
        if not isinstance(statement, ast.AnnAssign):
            continue
        if not isinstance(statement.target, ast.Name):
            continue
        if "ClassVar" in _annotation_text(statement.annotation):
            continue
        line = statement.lineno
        has_marker = line in exemptions
        fields.append(
            FieldInfo(
                name=statement.target.id,
                line=line,
                has_marker=has_marker,
                exempt_reason=exemptions.get(line),
            )
        )
    return tuple(fields)


def _resolve_base(
    node: ast.expr, aliases: dict[str, str], module: str
) -> Optional[str]:
    if isinstance(node, ast.Name):
        if node.id in aliases:
            return aliases[node.id]
        return f"{module}.{node.id}"
    if isinstance(node, ast.Attribute):
        parts: list[str] = []
        current: ast.expr = node
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if not isinstance(current, ast.Name):
            return None
        base = aliases.get(current.id, current.id)
        return ".".join([base, *reversed(parts)])
    return None


def _collect_mutables(module: ModuleInfo, statement: ast.stmt) -> None:
    """Record module-level names bound to mutable containers."""
    targets: list[ast.expr] = []
    value: Optional[ast.expr] = None
    if isinstance(statement, ast.Assign):
        targets = statement.targets
        value = statement.value
    elif isinstance(statement, ast.AnnAssign) and statement.value is not None:
        targets = [statement.target]
        value = statement.value
    if value is None:
        return
    if not _is_mutable_value(value):
        return
    for target in targets:
        if isinstance(target, ast.Name):
            module.mutables[target.id] = statement.lineno


def _is_mutable_value(node: ast.expr) -> bool:
    if isinstance(node, (ast.Dict, ast.List, ast.Set, ast.DictComp, ast.ListComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        callee = node.func
        if isinstance(callee, ast.Name):
            return callee.id in _MUTABLE_CONSTRUCTORS
        if isinstance(callee, ast.Attribute):
            return callee.attr in _MUTABLE_CONSTRUCTORS
    return False
