"""Call-graph construction over the :class:`ProjectIndex`.

Resolution is deliberately *sound-where-it-claims* rather than complete:
a call edge is only added when the callee is identified through explicit
evidence — module-local names, import aliases (absolute and relative),
``self``/``cls`` method dispatch, class-annotated parameters and locals,
or ``ClassName(...)`` construction.  Anything else is kept as an
*external* canonical name (for source/sink classification) or a bare
*method-ish* attribute call (for filesystem-ordering heuristics), never
silently dropped.  All derived collections are sorted so downstream
reports are deterministic.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Optional

from repro.devtools.analyze.project import (
    FunctionInfo,
    ModuleInfo,
    ProjectIndex,
)
from repro.devtools.lint.rules import dotted_parts


@dataclass(frozen=True)
class ResolvedCall:
    """A call whose callee is a project function/method."""

    callee: str
    node: ast.Call


@dataclass(frozen=True)
class ExternalCall:
    """A call resolved to a canonical dotted name outside the project."""

    canonical: str
    node: ast.Call


@dataclass(frozen=True)
class MethodishCall:
    """An attribute call whose receiver could not be typed (``x.glob()``)."""

    attr: str
    node: ast.Call


@dataclass
class FunctionFacts:
    """Everything the checkers need to know about one function."""

    qualname: str
    calls: list[ResolvedCall] = field(default_factory=list)
    external: list[ExternalCall] = field(default_factory=list)
    methodish: list[MethodishCall] = field(default_factory=list)
    attr_loads: set[str] = field(default_factory=set)


@dataclass
class CallGraph:
    """Project-wide resolved call edges plus per-function facts."""

    project: ProjectIndex
    facts: dict[str, FunctionFacts] = field(default_factory=dict)
    edges: dict[str, tuple[str, ...]] = field(default_factory=dict)

    @classmethod
    def build(cls, project: ProjectIndex) -> "CallGraph":
        graph = cls(project=project)
        for qualname in sorted(project.functions):
            function = project.functions[qualname]
            module = project.modules[function.module]
            graph.facts[qualname] = _function_facts(project, module, function)
        for qualname, facts in graph.facts.items():
            graph.edges[qualname] = tuple(
                sorted({call.callee for call in facts.calls})
            )
        return graph

    def reachable(self, roots: list[str]) -> dict[str, Optional[str]]:
        """BFS closure from ``roots``; value is the BFS parent (witness)."""
        parents: dict[str, Optional[str]] = {}
        queue: list[str] = []
        for root in sorted(roots):
            if root in self.facts and root not in parents:
                parents[root] = None
                queue.append(root)
        while queue:
            current = queue.pop(0)
            for callee in self.edges.get(current, ()):
                if callee not in parents:
                    parents[callee] = current
                    queue.append(callee)
        return parents

    def chain(self, parents: dict[str, Optional[str]], target: str) -> list[str]:
        """Root -> ... -> target along BFS parents (for finding messages)."""
        path = [target]
        while parents.get(path[-1]) is not None:
            parent = parents[path[-1]]
            if parent is None or parent in path:
                break
            path.append(parent)
        return list(reversed(path))

    def attr_loads_closure(self, roots: list[str]) -> set[str]:
        """Union of attribute reads over every function reachable from roots."""
        loads: set[str] = set()
        for qualname in self.reachable(roots):
            loads |= self.facts[qualname].attr_loads
        return loads


# --------------------------------------------------------------------------
# Per-function fact extraction
# --------------------------------------------------------------------------


def _function_facts(
    project: ProjectIndex, module: ModuleInfo, function: FunctionInfo
) -> FunctionFacts:
    facts = FunctionFacts(qualname=function.qualname)
    var_types = _parameter_types(project, module, function)
    var_types.update(_local_types(project, module, function))
    for node in ast.walk(function.node):
        if isinstance(node, ast.Attribute) and isinstance(node.ctx, ast.Load):
            facts.attr_loads.add(node.attr)
        if not isinstance(node, ast.Call):
            continue
        resolution = _resolve_call(project, module, function, node, var_types)
        kind, value = resolution
        if kind == "internal":
            facts.calls.append(ResolvedCall(callee=value, node=node))
        elif kind == "external":
            facts.external.append(ExternalCall(canonical=value, node=node))
        elif kind == "methodish":
            facts.methodish.append(MethodishCall(attr=value, node=node))
    return facts


def _classify_canonical(
    project: ProjectIndex, canonical: str, node: ast.Call
) -> tuple[str, str]:
    """A fully-resolved dotted name -> internal edge, constructor, or external."""
    if canonical in project.functions:
        return ("internal", canonical)
    if canonical in project.classes:
        constructor = project.resolve_method(canonical, "__init__")
        if constructor is not None:
            return ("internal", constructor)
        return ("external", canonical)
    return ("external", canonical)


def _resolve_call(
    project: ProjectIndex,
    module: ModuleInfo,
    function: FunctionInfo,
    node: ast.Call,
    var_types: dict[str, str],
) -> tuple[str, str]:
    """Resolve one call; never raises, never returns nothing."""
    callee = node.func
    if isinstance(callee, ast.Name):
        name = callee.id
        if name in module.functions:
            return ("internal", module.functions[name])
        if name in module.classes:
            return _classify_canonical(project, module.classes[name], node)
        if name in module.aliases:
            return _classify_canonical(project, module.aliases[name], node)
        return ("external", name)
    parts = dotted_parts(callee)
    if parts is None:
        # e.g. ``factory()()`` / subscripted callee; keep the terminal
        # attribute when there is one so heuristics still see it.
        if isinstance(callee, ast.Attribute):
            return ("methodish", callee.attr)
        return ("external", "")
    base, rest = parts[0], parts[1:]
    if base in ("self", "cls") and function.cls is not None and len(rest) == 1:
        method = project.resolve_method(function.cls, rest[0])
        if method is not None:
            return ("internal", method)
        return ("methodish", rest[0])
    if base in var_types and len(rest) == 1:
        method = project.resolve_method(var_types[base], rest[0])
        if method is not None:
            return ("internal", method)
        return ("methodish", rest[0])
    if base in module.classes:
        resolved_class = module.classes[base]
        if len(rest) == 1:
            method = project.resolve_method(resolved_class, rest[0])
            if method is not None:
                return ("internal", method)
        return ("external", ".".join([resolved_class, *rest]))
    if base in module.aliases:
        canonical = ".".join([module.aliases[base], *rest])
        kind, value = _classify_canonical(project, canonical, node)
        if kind == "internal":
            return (kind, value)
        # ``alias.ClassName.method`` — one more hop through project classes.
        if len(rest) >= 1:
            prefix = ".".join([module.aliases[base], *rest[:-1]])
            if prefix in project.classes:
                method = project.resolve_method(prefix, rest[-1])
                if method is not None:
                    return ("internal", method)
        return ("external", canonical)
    return ("methodish", rest[-1])


def _annotation_class(
    project: ProjectIndex, module: ModuleInfo, annotation: Optional[ast.expr]
) -> Optional[str]:
    """The project class an annotation names, unwrapping Optional/quoted."""
    if annotation is None:
        return None
    node: ast.expr = annotation
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return None
    if isinstance(node, ast.Subscript):  # Optional[X] / Final[X]
        return _annotation_class(project, module, node.slice)
    if isinstance(node, ast.Name):
        candidate = module.classes.get(node.id) or module.aliases.get(node.id)
    elif isinstance(node, ast.Attribute):
        parts = dotted_parts(node)
        if parts is None:
            return None
        resolved_base = module.aliases.get(parts[0], parts[0])
        candidate = ".".join([resolved_base, *parts[1:]])
    else:
        return None
    if candidate is not None and candidate in project.classes:
        return candidate
    return None


def _parameter_types(
    project: ProjectIndex, module: ModuleInfo, function: FunctionInfo
) -> dict[str, str]:
    types: dict[str, str] = {}
    args = function.node.args
    for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
        resolved = _annotation_class(project, module, arg.annotation)
        if resolved is not None:
            types[arg.arg] = resolved
    if function.cls is not None:
        for receiver in ("self", "cls"):
            types.setdefault(receiver, function.cls)
    return types


def _local_types(
    project: ProjectIndex, module: ModuleInfo, function: FunctionInfo
) -> dict[str, str]:
    """``x = ClassName(...)`` / ``x: ClassName`` inside the body."""
    types: dict[str, str] = {}
    for node in ast.walk(function.node):
        if isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            resolved = _annotation_class(project, module, node.annotation)
            if resolved is not None:
                types[node.target.id] = resolved
        elif isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if not isinstance(target, ast.Name):
                continue
            if not isinstance(node.value, ast.Call):
                continue
            constructed = _constructed_class(project, module, node.value)
            if constructed is not None:
                types[target.id] = constructed
    return types


def _constructed_class(
    project: ProjectIndex, module: ModuleInfo, node: ast.Call
) -> Optional[str]:
    callee = node.func
    candidate: Optional[str] = None
    if isinstance(callee, ast.Name):
        candidate = module.classes.get(callee.id) or module.aliases.get(callee.id)
    elif isinstance(callee, ast.Attribute):
        parts = dotted_parts(callee)
        if parts and parts[0] in module.aliases:
            candidate = ".".join([module.aliases[parts[0]], *parts[1:]])
    if candidate is not None and candidate in project.classes:
        return candidate
    return None
