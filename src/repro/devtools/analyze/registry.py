"""Checker 3 — registry closure for obs event kinds and counter names.

The per-file lint proves each ``emit()`` literal is registered; this
checker closes the loop in *both* directions, project-wide:

* every emitted event kind is in ``repro.obs.events.EVENT_KINDS`` **and**
  every registered kind has at least one emitter (a dead registry entry
  means a renamed emit site silently orphaned its schema docs);
* the same for counter names against ``repro.obs.metrics.COUNTER_NAMES``,
  where a registry entry may end in ``*`` to cover the sanctioned
  f-string counters (``campaign.cache_{layer}`` emits as
  ``campaign.cache_*``).

Registries are read from the AST of the registry module — never
imported — so fixture trees exercise the checker exactly like the real
tree.  A fixture tree without the registry module simply skips the
corresponding direction.
"""

from __future__ import annotations

import ast
import fnmatch
from typing import Optional

from repro.devtools.analyze.callgraph import CallGraph
from repro.devtools.analyze.findings import Finding
from repro.devtools.analyze.project import ProjectIndex

CHECKER_ID = "registry-closure"

EVENT_REGISTRY = ("repro.obs.events", "EVENT_KINDS")
COUNTER_REGISTRY = ("repro.obs.metrics", "COUNTER_NAMES")

#: Kinds written by the trace plumbing itself rather than an emit() call.
PLUMBING_EVENT_KINDS = frozenset({"trace.header"})

#: Canonical callables that record a counter.
_COUNT_CALLABLES = frozenset(
    {"repro.obs.count", "repro.obs.runtime.count"}
)


def _registry_entries(
    project: ProjectIndex, module: str, name: str
) -> Optional[dict[str, tuple[str, int]]]:
    """value -> (relpath, line) for a frozenset/set literal registry."""
    info = project.modules.get(module)
    if info is None:
        return None
    relpath = info.source.relpath
    for statement in info.source.tree.body:
        targets: list[ast.expr] = []
        if isinstance(statement, ast.Assign):
            targets = statement.targets
            value = statement.value
        elif isinstance(statement, ast.AnnAssign) and statement.value is not None:
            targets = [statement.target]
            value = statement.value
        else:
            continue
        if not any(
            isinstance(target, ast.Name) and target.id == name for target in targets
        ):
            continue
        literal: Optional[ast.expr] = value
        if (
            isinstance(literal, ast.Call)
            and isinstance(literal.func, ast.Name)
            and literal.func.id == "frozenset"
            and literal.args
        ):
            literal = literal.args[0]
        if not isinstance(literal, (ast.Set, ast.List, ast.Tuple)):
            return {}
        entries: dict[str, tuple[str, int]] = {}
        for element in literal.elts:
            if isinstance(element, ast.Constant) and isinstance(element.value, str):
                entries[element.value] = (relpath, element.lineno)
        return entries
    return None


def _literal_or_pattern(node: ast.expr) -> Optional[str]:
    """A string literal, or an f-string collapsed to a ``*`` pattern."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    if isinstance(node, ast.JoinedStr):
        parts: list[str] = []
        for piece in node.values:
            if isinstance(piece, ast.Constant) and isinstance(piece.value, str):
                parts.append(piece.value)
            else:
                parts.append("*")
        return "".join(parts)
    return None


def _emit_uses(
    project: ProjectIndex, graph: CallGraph
) -> dict[str, list[tuple[str, int, int]]]:
    """kind -> [(relpath, line, col)] over every emit() literal in scope."""
    uses: dict[str, list[tuple[str, int, int]]] = {}
    for qualname in sorted(graph.facts):
        facts = graph.facts[qualname]
        relpath = project.function_relpath(qualname)
        for call in [*facts.external, *facts.methodish, *facts.calls]:
            terminal = (
                getattr(call, "canonical", None)
                or getattr(call, "callee", None)
                or getattr(call, "attr", "")
            ).rsplit(".", 1)[-1]
            if terminal != "emit" or not call.node.args:
                continue
            kind = _literal_or_pattern(call.node.args[0])
            if kind is None or "*" in kind:
                continue  # dynamic kinds are the per-file lint's problem
            uses.setdefault(kind, []).append(
                (relpath, call.node.lineno, call.node.col_offset)
            )
    return uses


def _count_uses(
    project: ProjectIndex, graph: CallGraph
) -> dict[str, list[tuple[str, int, int]]]:
    """counter name/pattern -> [(relpath, line, col)] for obs count calls."""
    uses: dict[str, list[tuple[str, int, int]]] = {}
    for qualname in sorted(graph.facts):
        facts = graph.facts[qualname]
        relpath = project.function_relpath(qualname)
        for call in [*facts.external, *facts.calls]:
            target = getattr(call, "canonical", None) or getattr(call, "callee", "")
            if target not in _COUNT_CALLABLES or not call.node.args:
                continue
            name = _literal_or_pattern(call.node.args[0])
            if name is None:
                continue
            uses.setdefault(name, []).append(
                (relpath, call.node.lineno, call.node.col_offset)
            )
    return uses


def _closure_findings(
    uses: dict[str, list[tuple[str, int, int]]],
    registry: dict[str, tuple[str, int]],
    *,
    label: str,
    registry_name: str,
    plumbing: frozenset[str],
) -> list[Finding]:
    findings: list[Finding] = []
    registered = sorted(registry)
    matched: set[str] = set()
    for used in sorted(uses):
        hit: Optional[str] = None
        if used in registry:
            hit = used
        elif "*" in used:
            # A dynamic use only matches an identical registered pattern:
            # the registry must *opt in* to each dynamic family.
            hit = used if used in registry else None
        else:
            for entry in registered:
                if "*" in entry and fnmatch.fnmatchcase(used, entry):
                    hit = entry
                    break
        if hit is not None:
            matched.add(hit)
            continue
        for relpath, line, col in sorted(uses[used]):
            findings.append(
                Finding(
                    checker=CHECKER_ID,
                    path=relpath,
                    line=line,
                    col=col,
                    message=(
                        f"{label} {used!r} is not registered in "
                        f"{registry_name}; register it (or fix the name)"
                    ),
                )
            )
    for entry in registered:
        if entry in matched or entry in plumbing:
            continue
        relpath, line = registry[entry]
        findings.append(
            Finding(
                checker=CHECKER_ID,
                path=relpath,
                line=line,
                col=0,
                message=(
                    f"{label} {entry!r} is registered in {registry_name} but "
                    "never emitted anywhere in the tree; delete the dead "
                    "entry or restore its emitter"
                ),
            )
        )
    return findings


def check_registries(
    project: ProjectIndex,
    graph: CallGraph,
    plumbing_kinds: frozenset[str] = PLUMBING_EVENT_KINDS,
) -> list[Finding]:
    findings: list[Finding] = []
    event_registry = _registry_entries(project, *EVENT_REGISTRY)
    if event_registry is not None:
        findings.extend(
            _closure_findings(
                _emit_uses(project, graph),
                event_registry,
                label="event kind",
                registry_name=f"{EVENT_REGISTRY[0]}.{EVENT_REGISTRY[1]}",
                plumbing=plumbing_kinds,
            )
        )
    counter_registry = _registry_entries(project, *COUNTER_REGISTRY)
    if counter_registry is not None:
        findings.extend(
            _closure_findings(
                _count_uses(project, graph),
                counter_registry,
                label="counter name",
                registry_name=f"{COUNTER_REGISTRY[0]}.{COUNTER_REGISTRY[1]}",
                plumbing=frozenset(),
            )
        )
    return findings
