"""Checker 1 — determinism taint.

Three source families poison determinism: wall-clock reads, unseeded
global RNG, and filesystem-enumeration order.  The per-file lint already
flags *direct* use; this checker follows the value through function and
method calls.  Each project function gets a *purity summary* — the set
of taint kinds its result may carry, computed as a fixed point over the
call graph — and each function body gets a local dataflow pass over its
assignments.  A finding fires when a tainted expression appears in an
argument of a *sink* call: trace emission, cache-key construction, or
decision-plan solving.

``sorted(...)`` neutralises the filesystem-ordering kind (that is the
sanctioned fix), but no wrapper launders wall-clock or RNG taint.
Modules under the structural exemption globs (the two sanctioned timing
modules, the obs plumbing) neither contribute sources nor get scanned
for sinks — they are the code whose *job* is handling wall time.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Optional

from repro.devtools.analyze.callgraph import CallGraph, FunctionFacts
from repro.devtools.analyze.findings import Finding
from repro.devtools.analyze.project import ProjectIndex
from repro.devtools.lint.engine import _glob_match
from repro.devtools.lint.rules import ALLOWED_RANDOM_CALLS, WALL_CLOCK_CALLS

CHECKER_ID = "determinism-taint"

#: Modules allowed to traffic in wall time / filesystem order by design.
DEFAULT_TAINT_EXEMPT: tuple[str, ...] = (
    "src/repro/obs/**",
    "src/repro/sim/executor.py",
)

_FS_ORDER_CALLS = frozenset(
    {"os.listdir", "os.scandir", "os.walk", "glob.glob", "glob.iglob"}
)
_FS_ORDER_METHODS = frozenset({"glob", "rglob", "iterdir"})

#: Sink terminals per category; matched against the last dotted segment.
_KEY_SINKS = frozenset(
    {"cache_token", "cache_key_hash", "request_key_hash", "campaign_key", "token"}
)
_SOLVER_SINKS = frozenset(
    {"solve_schedule", "solve_schedule_greedy", "solve_schedule_pairs", "plan_or_fallback"}
)

_KIND_LABELS = {
    "wall-clock": "wall-clock",
    "unseeded-rng": "unseeded-RNG",
    "fs-order": "filesystem-ordering",
}

_SINK_LABELS = {
    "emit": "trace emission",
    "key": "cache-key construction",
    "solve": "decision-plan solving",
}


@dataclass(frozen=True)
class _Taint:
    """One taint fact: the kind plus a human-readable origin."""

    kind: str
    origin: str


def _source_kind(canonical: str) -> Optional[str]:
    if canonical in WALL_CLOCK_CALLS:
        return "wall-clock"
    if canonical in _FS_ORDER_CALLS:
        return "fs-order"
    if canonical in ALLOWED_RANDOM_CALLS:
        return None
    if canonical.startswith("random.") or canonical.startswith("numpy.random."):
        return "unseeded-rng"
    return None


def _short(qualname: str) -> str:
    return qualname.rsplit(".", 1)[-1]


def _sink_category(terminal: str) -> Optional[str]:
    if terminal == "emit":
        return "emit"
    if terminal in _KEY_SINKS:
        return "key"
    if terminal in _SOLVER_SINKS:
        return "solve"
    return None


def _is_exempt(relpath: str, exempt: tuple[str, ...]) -> bool:
    return any(_glob_match(relpath, pattern) for pattern in exempt)


# --------------------------------------------------------------------------
# Purity summaries (interprocedural fixed point)
# --------------------------------------------------------------------------


def _direct_kinds(facts: FunctionFacts, protected: set[int]) -> set[str]:
    kinds: set[str] = set()
    for call in facts.external:
        kind = _source_kind(call.canonical)
        if kind == "fs-order" and id(call.node) in protected:
            continue
        if kind is not None:
            kinds.add(kind)
    for call in facts.methodish:
        if call.attr in _FS_ORDER_METHODS and id(call.node) not in protected:
            kinds.add("fs-order")
    return kinds


def _sorted_protected(node: ast.AST) -> set[int]:
    """ids of every node nested inside a ``sorted(...)`` call."""
    protected: set[int] = set()
    for candidate in ast.walk(node):
        if (
            isinstance(candidate, ast.Call)
            and isinstance(candidate.func, ast.Name)
            and candidate.func.id == "sorted"
        ):
            for inner in ast.walk(candidate):
                protected.add(id(inner))
    return protected


def _summaries(
    project: ProjectIndex, graph: CallGraph, exempt: tuple[str, ...]
) -> tuple[dict[str, set[str]], dict[str, str]]:
    """(taint kinds per function, witness chain per tainted function)."""
    protected: dict[str, set[int]] = {}
    kinds: dict[str, set[str]] = {}
    trusted: set[str] = set()
    for qualname in sorted(graph.facts):
        relpath = project.function_relpath(qualname)
        facts = graph.facts[qualname]
        protected[qualname] = _sorted_protected(project.functions[qualname].node)
        if _is_exempt(relpath, exempt):
            trusted.add(qualname)
            kinds[qualname] = set()
        else:
            kinds[qualname] = _direct_kinds(facts, protected[qualname])
    direct = {qualname: set(found) for qualname, found in kinds.items()}
    changed = True
    while changed:
        changed = False
        for qualname in sorted(graph.facts):
            if qualname in trusted:
                continue
            merged = set(kinds[qualname])
            for callee in graph.edges.get(qualname, ()):
                merged |= kinds.get(callee, set())
            if merged != kinds[qualname]:
                kinds[qualname] = merged
                changed = True
    witnesses: dict[str, str] = {}
    for qualname in sorted(graph.facts):
        if direct[qualname]:
            facts = graph.facts[qualname]
            origins = sorted(
                {
                    call.canonical
                    for call in facts.external
                    if _source_kind(call.canonical) is not None
                }
                | {
                    f"<receiver>.{call.attr}"
                    for call in facts.methodish
                    if call.attr in _FS_ORDER_METHODS
                    and id(call.node) not in protected[qualname]
                }
            )
            witnesses[qualname] = f"{_short(qualname)}() -> {origins[0]}()"
    changed = True
    while changed:
        changed = False
        for qualname in sorted(graph.facts):
            if qualname in witnesses or not kinds[qualname]:
                continue
            tainted_callees = sorted(
                callee
                for callee in graph.edges.get(qualname, ())
                if callee in witnesses
            )
            if tainted_callees:
                witnesses[qualname] = (
                    f"{_short(qualname)}() -> {witnesses[tainted_callees[0]]}"
                )
                changed = True
    return kinds, witnesses


# --------------------------------------------------------------------------
# Intraprocedural dataflow + sink scan
# --------------------------------------------------------------------------


def _expr_taints(
    expr: ast.expr,
    resolution: dict[int, tuple[str, str]],
    summaries: dict[str, set[str]],
    witnesses: dict[str, str],
    tainted_locals: dict[str, frozenset[_Taint]],
    protected: set[int],
) -> set[_Taint]:
    taints: set[_Taint] = set()
    for node in ast.walk(expr):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
            taints |= tainted_locals.get(node.id, frozenset())
        if not isinstance(node, ast.Call):
            continue
        resolved = resolution.get(id(node))
        if resolved is None:
            continue
        kind, value = resolved
        if kind == "external":
            source = _source_kind(value)
            if source == "fs-order" and id(node) in protected:
                continue
            if source is not None:
                taints.add(_Taint(kind=source, origin=f"{value}()"))
        elif kind == "methodish":
            if value in _FS_ORDER_METHODS and id(node) not in protected:
                taints.add(_Taint(kind="fs-order", origin=f"<receiver>.{value}()"))
        elif kind == "internal":
            for taint_kind in sorted(summaries.get(value, set())):
                witness = witnesses.get(value, f"{_short(value)}()")
                taints.add(_Taint(kind=taint_kind, origin=witness))
    return taints


def _assignment_pairs(
    node: ast.AST,
) -> list[tuple[list[str], ast.expr]]:
    """(target names, value expr) for every binding statement in a body."""
    pairs: list[tuple[list[str], ast.expr]] = []
    for statement in ast.walk(node):
        targets: list[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(statement, ast.Assign):
            targets, value = statement.targets, statement.value
        elif isinstance(statement, ast.AugAssign):
            targets, value = [statement.target], statement.value
        elif isinstance(statement, ast.AnnAssign) and statement.value is not None:
            targets, value = [statement.target], statement.value
        elif isinstance(statement, ast.NamedExpr):
            targets, value = [statement.target], statement.value
        elif isinstance(statement, (ast.For, ast.AsyncFor)):
            targets, value = [statement.target], statement.iter
        if value is None:
            continue
        names: list[str] = []
        for target in targets:
            for sub in ast.walk(target):
                if isinstance(sub, ast.Name):
                    names.append(sub.id)
        if names:
            pairs.append((names, value))
    return pairs


def check_taint(
    project: ProjectIndex,
    graph: CallGraph,
    exempt: tuple[str, ...] = DEFAULT_TAINT_EXEMPT,
) -> list[Finding]:
    summaries, witnesses = _summaries(project, graph, exempt)
    findings: list[Finding] = []
    for qualname in sorted(graph.facts):
        relpath = project.function_relpath(qualname)
        if _is_exempt(relpath, exempt):
            continue
        facts = graph.facts[qualname]
        function_node = project.functions[qualname].node
        protected = _sorted_protected(function_node)
        resolution: dict[int, tuple[str, str]] = {}
        for call in facts.calls:
            resolution[id(call.node)] = ("internal", call.callee)
        for external in facts.external:
            resolution[id(external.node)] = ("external", external.canonical)
        for methodish in facts.methodish:
            resolution[id(methodish.node)] = ("methodish", methodish.attr)

        tainted_locals: dict[str, frozenset[_Taint]] = {}
        pairs = _assignment_pairs(function_node)
        for _ in range(len(pairs) + 1):
            changed = False
            for names, value in pairs:
                taints = _expr_taints(
                    value, resolution, summaries, witnesses, tainted_locals, protected
                )
                for name in names:
                    merged = tainted_locals.get(name, frozenset()) | taints
                    if merged != tainted_locals.get(name, frozenset()):
                        tainted_locals[name] = merged
                        changed = True
            if not changed:
                break

        for call in [*facts.calls, *facts.external, *facts.methodish]:
            callee = getattr(call, "callee", None) or getattr(
                call, "canonical", None
            ) or getattr(call, "attr", "")
            category = _sink_category(_short(callee))
            if category is None:
                continue
            arguments = [
                *call.node.args,
                *(kw.value for kw in call.node.keywords),
            ]
            sink_taints: set[_Taint] = set()
            for argument in arguments:
                sink_taints |= _expr_taints(
                    argument,
                    resolution,
                    summaries,
                    witnesses,
                    tainted_locals,
                    protected,
                )
            for taint in sorted(sink_taints, key=lambda t: (t.kind, t.origin)):
                findings.append(
                    Finding(
                        checker=CHECKER_ID,
                        path=relpath,
                        line=call.node.lineno,
                        col=call.node.col_offset,
                        message=(
                            f"{_KIND_LABELS[taint.kind]} value reaches "
                            f"{_SINK_LABELS[category]} ({_short(callee)}): "
                            f"derived from {taint.origin}"
                        ),
                    )
                )
    return findings
