"""Developer tooling that ships with the library.

``repro.devtools.lint`` is the determinism-aware static-analysis suite
behind the ``repro lint`` CLI subcommand; see ``docs/static_analysis.md``.
"""

from repro.devtools.lint import LintReport, Rule, Violation, lint_paths

__all__ = ["LintReport", "Rule", "Violation", "lint_paths"]
