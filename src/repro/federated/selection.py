"""Client-selection strategies (step 1 of the Fig. 1 workflow).

BoFL is agnostic to selection — "any deadline assignment algorithm ...
can function well with BoFL" (§2.1) — so these are deliberately simple:
uniform random subsets (the vanilla design of Bonawitz et al.) and
select-everyone for small pools.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Sequence
from typing import TypeVar

import numpy as np

from repro.errors import ConfigurationError

ClientT = TypeVar("ClientT")


class ClientSelector(ABC):
    """Chooses the participants of one round."""

    @abstractmethod
    def select(self, clients: Sequence[ClientT], round_index: int) -> list[ClientT]:
        """Return the participants for ``round_index``."""


class AllClientsSelector(ClientSelector):
    """Every registered client participates every round."""

    def select(self, clients: Sequence[ClientT], round_index: int) -> list[ClientT]:
        if not clients:
            raise ConfigurationError("no clients registered")
        return list(clients)


def _round_rng(seed: int, round_index: int) -> np.random.Generator:
    """The RNG for one (seed, round) pair.

    Deriving a fresh generator per round — instead of consuming a single
    stream across ``select`` calls — makes selection a pure function of
    ``(seed, round_index)``: the fleet engine can replay any round in
    isolation and two servers walking the rounds in different orders (or
    skipping some) still agree on every round's participants.
    """
    if round_index < 0:
        raise ConfigurationError(f"round_index must be >= 0, got {round_index}")
    return np.random.default_rng((seed, round_index))


class RandomSelector(ClientSelector):
    """A uniform random subset of fixed size each round.

    Stateless across rounds: the draw for round ``i`` depends only on
    ``(seed, i)``, never on which rounds were selected before.
    """

    def __init__(self, participants_per_round: int, seed: int = 0) -> None:
        if participants_per_round < 1:
            raise ConfigurationError(
                f"participants_per_round must be >= 1, got {participants_per_round}"
            )
        self.participants_per_round = participants_per_round
        self.seed = seed

    def select(self, clients: Sequence[ClientT], round_index: int) -> list[ClientT]:
        if not clients:
            raise ConfigurationError("no clients registered")
        rng = _round_rng(self.seed, round_index)
        count = min(self.participants_per_round, len(clients))
        indices = rng.choice(len(clients), size=count, replace=False)
        return [clients[i] for i in sorted(indices)]


class EnergyAwareSelector(ClientSelector):
    """AutoFL-style global energy optimization (extension).

    Prefers the clients whose recent rounds cost the least energy — the
    server-side half of the two-level design §2.1 describes — while an
    epsilon-greedy exploration share keeps every client occasionally
    selected (avoiding both staleness and starvation).

    The server feeds the selector through :meth:`observe` after each round;
    clients without history rank as cheapest so newcomers get measured.
    """

    def __init__(
        self,
        participants_per_round: int,
        *,
        epsilon: float = 0.2,
        smoothing: float = 0.3,
        seed: int = 0,
    ) -> None:
        if participants_per_round < 1:
            raise ConfigurationError(
                f"participants_per_round must be >= 1, got {participants_per_round}"
            )
        if not 0.0 <= epsilon <= 1.0:
            raise ConfigurationError(f"epsilon must lie in [0, 1], got {epsilon}")
        if not 0.0 < smoothing <= 1.0:
            raise ConfigurationError(f"smoothing must lie in (0, 1], got {smoothing}")
        self.participants_per_round = participants_per_round
        self.epsilon = epsilon
        self.smoothing = smoothing
        self.seed = seed
        self._energy_ewma: dict[str, float] = {}

    def observe(self, client_id: str, round_energy: float) -> None:
        """Update a client's energy estimate from a completed round."""
        if round_energy < 0:
            raise ConfigurationError(f"round energy must be >= 0, got {round_energy}")
        previous = self._energy_ewma.get(client_id)
        if previous is None:
            self._energy_ewma[client_id] = float(round_energy)
        else:
            self._energy_ewma[client_id] = (
                (1 - self.smoothing) * previous + self.smoothing * round_energy
            )

    def estimated_energy(self, client_id: str) -> float:
        """The current EWMA estimate (unseen clients rank as free)."""
        return self._energy_ewma.get(client_id, 0.0)

    def select(self, clients: Sequence[ClientT], round_index: int) -> list[ClientT]:
        if not clients:
            raise ConfigurationError("no clients registered")
        rng = _round_rng(self.seed, round_index)
        count = min(self.participants_per_round, len(clients))
        n_random = int(round(self.epsilon * count))
        ranked = sorted(
            range(len(clients)),
            key=lambda i: self.estimated_energy(getattr(clients[i], "client_id", str(i))),
        )
        greedy = ranked[: count - n_random]
        remaining = [i for i in range(len(clients)) if i not in set(greedy)]
        explore: list[int] = []
        if n_random and remaining:
            explore = list(
                rng.choice(len(remaining), size=min(n_random, len(remaining)), replace=False)
            )
            explore = [remaining[i] for i in explore]
        picked = sorted(set(greedy) | set(explore))
        return [clients[i] for i in picked]
