"""Structured-array event queues for fleet-scale composition.

The legacy engine walks one Python object per client report; at 100k–1M
clients that loop (and the per-launch RNG draw behind it) *is* the cost
of composition.  This module flattens every client's trace into CSR-style
numpy columns once, up front:

* :class:`FleetTraceArrays` — one flat float64/bool column per record
  field (``elapsed``, ``energy``, ``deadline``, ``missed``, ``dropped``)
  plus the precomputed per-record ``upload`` time, indexed by
  ``offsets[i]:offsets[i+1]`` for client ``i``.
* :func:`build_trace_arrays` — fills the columns, drawing each client's
  upload times as **one vectorized call** on its private RNG stream.
  ``numpy.random.Generator`` draws ``normal(mu, sigma, size=k)`` from the
  same bit stream as ``k`` sequential scalar draws, so the precomputed
  uploads are bit-identical to the legacy per-launch draws.  ``shards``
  splits the fill across contiguous client ranges on a thread pool;
  every range writes a disjoint slice of the same preallocated arrays,
  so serial and sharded builds are byte-identical by construction.
* :func:`async_arrival_times` — the FedBuff streaming schedule.  Each
  client's k-th report lands at ``((at[k-1] + elapsed[k]) + upload[k])``;
  the interleaved-cumsum below reproduces that exact left-to-right float
  association, not the (differently rounded) ``cumsum(elapsed + upload)``.
* :func:`resolve_pop_order` — the drain order of the legacy event heap,
  recovered from arrival times alone.  The legacy heap keys on
  ``(at, push_counter)``: initial launches take counters ``0..n-1`` in
  client order, every relaunch takes the counter current at its parent's
  pop.  Ties in ``at`` therefore resolve initial-before-relaunch, then
  by client index (both initial) or by parent pop position (both
  relaunches) — and a relaunch only becomes poppable after its parent.

The vectorized engine (:mod:`repro.federated.vector_engine`) composes on
these arrays; the differential suite in
``tests/federated/test_vectorized_equivalence.py`` holds the result
byte-identical to the legacy object loop.
"""

from __future__ import annotations

import heapq
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from collections.abc import Sequence
from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.federated.transport import LinkModel

if TYPE_CHECKING:
    from repro.federated.async_engine import FleetClient


@dataclass
class FleetTraceArrays:
    """CSR-flattened fleet traces: client ``i`` owns rows ``offsets[i]:offsets[i+1]``."""

    client_ids: list[str]
    offsets: np.ndarray
    elapsed: np.ndarray
    energy: np.ndarray
    deadline: np.ndarray
    upload: np.ndarray
    missed: np.ndarray
    dropped: np.ndarray
    #: Per-client aggregation weight basis (``float(n_samples)``).
    n_samples: np.ndarray
    #: Uncapped trace length per client: the sync progress divisor uses
    #: the full trace even when composition caps consumption at ``rounds``.
    full_lengths: np.ndarray

    @property
    def n_clients(self) -> int:
        return len(self.client_ids)

    @property
    def lengths(self) -> np.ndarray:
        """Capped (composable) records per client."""
        return np.diff(self.offsets)

    @property
    def n_events(self) -> int:
        return int(self.offsets[-1])


def _fill_uploads(
    clients: Sequence["FleetClient"],
    arrays: FleetTraceArrays,
    link: LinkModel,
    lo: int,
    hi: int,
) -> None:
    """Fill ``arrays.upload`` for clients ``lo:hi`` (a disjoint slice).

    Replicates the legacy per-launch pricing bit-for-bit: one lognormal
    draw per *live* (non-dropped) record in trace order from the client's
    private stream, plus the first-matching transport-stall window's
    ``magnitude x deadline`` delay.
    """
    variability = link.variability
    bandwidth = link.bandwidth_mbps
    latency = link.latency
    for i in range(lo, hi):
        start, end = int(arrays.offsets[i]), int(arrays.offsets[i + 1])
        if start == end:
            continue
        client = clients[i]
        live = ~arrays.dropped[start:end]
        n_live = int(np.count_nonzero(live))
        if n_live == 0:
            continue
        if variability > 0:
            rng = np.random.default_rng(client.upload_seed)
            draws = rng.normal(-0.5 * variability**2, variability, size=n_live)
            transfer = latency + client.model_size_mbit / (bandwidth * np.exp(draws))
        else:
            transfer = np.full(
                n_live, latency + client.model_size_mbit / bandwidth
            )
        upload = np.zeros(end - start)
        upload[live] = transfer
        if client.stall_windows:
            local = np.arange(end - start)
            unstalled = live.copy()
            for window in client.stall_windows:
                active = (local >= window.start_round) & (local < window.end_round)
                sel = active & unstalled
                if np.any(sel):
                    upload[sel] = (
                        upload[sel]
                        + window.magnitude * arrays.deadline[start:end][sel]
                    )
                    unstalled[sel] = False
        arrays.upload[start:end] = upload


def build_trace_arrays(
    clients: Sequence["FleetClient"],
    link: LinkModel,
    *,
    rounds_cap: Optional[int] = None,
    shards: Optional[int] = None,
) -> FleetTraceArrays:
    """Flatten client traces into columns (optionally sharded over threads).

    ``rounds_cap`` bounds every client's composable trace (the async
    engine's ``del records[rounds:]`` semantics); the full trace length is
    still recorded per client for the sync progress divisor.  ``shards``
    partitions the upload-draw fill over contiguous client ranges on a
    thread pool — a pure write-disjoint parallelization, byte-identical
    to the serial fill for any shard count.
    """
    if shards is not None and shards < 1:
        raise ConfigurationError(f"shards must be >= 1, got {shards}")
    n = len(clients)
    full_lengths = np.fromiter(
        (len(c.records) for c in clients), dtype=np.int64, count=n
    )
    if rounds_cap is not None:
        lengths = np.minimum(full_lengths, rounds_cap)
    else:
        lengths = full_lengths.copy()
    offsets = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(lengths, out=offsets[1:])
    n_events = int(offsets[-1])
    arrays = FleetTraceArrays(
        client_ids=[c.client_id for c in clients],
        offsets=offsets,
        elapsed=np.zeros(n_events),
        energy=np.zeros(n_events),
        deadline=np.zeros(n_events),
        upload=np.zeros(n_events),
        missed=np.zeros(n_events, dtype=bool),
        dropped=np.zeros(n_events, dtype=bool),
        n_samples=np.fromiter(
            (float(c.n_samples) for c in clients), dtype=float, count=n
        ),
        full_lengths=full_lengths,
    )
    # Archetype-pooled fleets share RoundRecord objects between clients;
    # extracting each unique trace once collapses the 100k-client column
    # fill to one pass per archetype variant.
    column_cache: dict[
        tuple[int, ...], tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]
    ] = {}
    for i, client in enumerate(clients):
        start, end = int(offsets[i]), int(offsets[i + 1])
        if start == end:
            continue
        records = client.records[: end - start]
        key = tuple(id(r) for r in records)
        cached = column_cache.get(key)
        if cached is None:
            cached = (
                np.fromiter((r.elapsed for r in records), dtype=float),
                np.fromiter((r.energy for r in records), dtype=float),
                np.fromiter((r.deadline for r in records), dtype=float),
                np.fromiter((r.missed for r in records), dtype=bool),
                np.fromiter((r.phase == "dropped" for r in records), dtype=bool),
            )
            column_cache[key] = cached
        arrays.elapsed[start:end] = cached[0]
        arrays.energy[start:end] = cached[1]
        arrays.deadline[start:end] = cached[2]
        arrays.missed[start:end] = cached[3]
        arrays.dropped[start:end] = cached[4]
    n_shards = 1 if shards is None else min(shards, n)
    if n_shards <= 1:
        _fill_uploads(clients, arrays, link, 0, n)
    else:
        bounds = np.linspace(0, n, n_shards + 1).astype(int)
        with ThreadPoolExecutor(max_workers=n_shards) as pool:
            futures = [
                pool.submit(
                    _fill_uploads, clients, arrays, link,
                    int(bounds[s]), int(bounds[s + 1]),
                )
                for s in range(n_shards)
            ]
            for future in futures:
                future.result()
    return arrays


def async_arrival_times(arrays: FleetTraceArrays) -> np.ndarray:
    """Per-record arrival times under FedBuff streaming (client-local chains).

    Client ``i``'s k-th report arrives at ``((at[k-1] + elapsed) + upload)``
    with ``at[-1] = 0.0``.  Interleaving elapsed/upload and running one
    cumulative sum reproduces that exact association order, so the result
    is bit-identical to the legacy launch-by-launch accumulation.
    """
    n_events = arrays.n_events
    at = np.zeros(n_events)
    offsets = arrays.offsets
    for i in range(arrays.n_clients):
        start, end = int(offsets[i]), int(offsets[i + 1])
        if start == end:
            continue
        k = end - start
        interleaved = np.empty(2 * k)
        interleaved[0::2] = arrays.elapsed[start:end]
        interleaved[1::2] = arrays.upload[start:end]
        at[start:end] = np.cumsum(interleaved)[1::2]
    return at


def _heap_key(
    flat: int,
    offsets_starts: np.ndarray,
    client_of: np.ndarray,
    init_rank: np.ndarray,
    pos: np.ndarray,
) -> tuple[int, int]:
    """The legacy push-counter ordering class of one tied event."""
    if flat == int(offsets_starts[client_of[flat]]):
        # Initial launch: counters 0..n-1 in client order, so any initial
        # event outranks any relaunch and initials rank by client index.
        return (0, int(init_rank[client_of[flat]]))
    # Relaunch: the push counter is taken at the parent's pop, so two tied
    # relaunches rank by their parents' pop positions.
    return (1, int(pos[flat - 1]))


def resolve_pop_order(at: np.ndarray, offsets: np.ndarray) -> np.ndarray:
    """Flat event indices in legacy heap drain order.

    ``at`` holds every event's arrival time (client ``i`` owns
    ``offsets[i]:offsets[i+1]``, chained so ``at`` is nondecreasing within
    a client).  With all-distinct times the drain is a stable sort; ties
    replay the legacy ``(at, push_counter)`` heap semantics exactly —
    including the constraint that a relaunch is only poppable after its
    parent popped.
    """
    n_events = int(at.shape[0])
    order = np.argsort(at, kind="stable")
    sorted_at = at[order]
    tie_mask = sorted_at[1:] == sorted_at[:-1] if n_events > 1 else np.zeros(0, bool)
    if not np.any(tie_mask):
        return order
    lengths = np.diff(offsets)
    client_of = np.repeat(np.arange(lengths.shape[0]), lengths)
    has_records = lengths > 0
    init_rank = np.cumsum(has_records) - 1
    pos = np.empty(n_events, dtype=np.int64)
    pos[order] = np.arange(n_events)
    # Tie runs, ascending: [s, e) spans of equal sorted_at.
    boundaries = np.flatnonzero(tie_mask)
    run_start = boundaries[
        np.concatenate(([True], np.diff(boundaries) > 1))
    ]
    offsets_starts = offsets[:-1]
    for s in run_start.tolist():
        e = s + 1
        while e < n_events and sorted_at[e] == sorted_at[s]:
            e += 1
        members = order[s:e]
        # Poppable now: initial launches, and relaunches whose parent
        # already popped (strictly earlier arrival, hence earlier run).
        ready: list[tuple[tuple[int, int], int]] = []
        blocked: dict[int, int] = {}  # parent flat -> child flat (same run)
        member_set = set(members.tolist())
        for flat in members.tolist():
            if (
                flat != int(offsets_starts[client_of[flat]])
                and flat - 1 in member_set
            ):
                blocked[flat - 1] = flat
                continue
            ready.append(
                (_heap_key(flat, offsets_starts, client_of, init_rank, pos), flat)
            )
        heapq.heapify(ready)
        p = s
        while ready:
            _, flat = heapq.heappop(ready)
            pos[flat] = p
            p += 1
            child = blocked.pop(flat, None)
            if child is not None:
                heapq.heappush(
                    ready,
                    (
                        _heap_key(
                            child, offsets_starts, client_of, init_rank, pos
                        ),
                        child,
                    ),
                )
        if p != e:  # pragma: no cover - defensive: malformed chain
            raise ConfigurationError(
                "event tie run did not drain; arrival times are not "
                "nondecreasing within a client"
            )
    result = np.empty(n_events, dtype=np.int64)
    result[pos] = np.arange(n_events)
    return result


def reference_pop_order(at: np.ndarray, offsets: np.ndarray) -> list[int]:
    """The literal heapq simulation of the legacy drain (test oracle).

    Pushes initial events in client order with counters ``0..n-1``, pops
    the ``(at, counter)`` minimum, and pushes each popped event's
    successor with the then-current counter — exactly the legacy engine's
    event loop, minus all the composition.  Quadratic in nothing, linear
    in events; kept here so the Hypothesis suite and the vectorized
    resolver share one definition of "legacy order".
    """
    heap: list[tuple[float, int, int]] = []
    counter = 0
    for i in range(offsets.shape[0] - 1):
        start, end = int(offsets[i]), int(offsets[i + 1])
        if start == end:
            continue
        heapq.heappush(heap, (float(at[start]), counter, start))
        counter += 1
    drained: list[int] = []
    while heap:
        _, _, flat = heapq.heappop(heap)
        drained.append(flat)
        client = int(np.searchsorted(offsets, flat, side="right")) - 1
        if flat + 1 < int(offsets[client + 1]):
            heapq.heappush(heap, (float(at[flat + 1]), counter, flat + 1))
            counter += 1
    return drained
