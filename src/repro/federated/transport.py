"""Model-transmission modelling (uplink/downlink) for FL clients.

The paper's deadline model (§2.1, footnote 3) distinguishes

* a **training deadline** — when the gradients must be computed (what BoFL
  natively consumes), and
* a **reporting deadline** — when the server must have *received* the
  update, i.e. training plus upload.

Footnote 7 sizes the transmission: "sending and receiving ResNet50 model
may take 51.2 Mb / 5 Mbps = 10.2 s ... under 4G LTE".  This module provides
that arithmetic — a link model with slowly drifting bandwidth, an online
bandwidth estimator (EWMA over observed transfers), and the conversion the
paper describes from reporting deadlines to training deadlines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.types import Seconds, require_fraction, require_positive

#: Megabits per common model checkpoint, for convenience in examples.
MODEL_SIZES_MBIT = {
    "vit": 42.0,
    "resnet50": 51.2,  # the paper's footnote-7 number
    "lstm": 18.0,
    "mobilenet_v2": 28.0,
    "bert_tiny": 35.0,
}


@dataclass(frozen=True)
class LinkModel:
    """A wireless link with lognormal-drifting effective bandwidth.

    ``bandwidth_mbps`` is the nominal rate (5 Mbps ~ busy 4G LTE);
    ``variability`` the per-transfer lognormal sigma; ``latency`` the fixed
    per-transfer setup cost (RRC/TLS handshakes).
    """

    bandwidth_mbps: float = 5.0
    variability: float = 0.2
    latency: Seconds = 0.5

    def __post_init__(self) -> None:
        require_positive("bandwidth_mbps", self.bandwidth_mbps)
        if self.variability < 0:
            raise ConfigurationError(f"variability must be >= 0, got {self.variability}")
        if self.latency < 0:
            raise ConfigurationError(f"latency must be >= 0, got {self.latency}")

    def transfer_time(self, size_mbit: float, rng: np.random.Generator) -> Seconds:
        """Seconds to move ``size_mbit`` over the link (one draw)."""
        require_positive("size_mbit", size_mbit)
        if self.variability > 0:
            factor = float(
                np.exp(rng.normal(-0.5 * self.variability**2, self.variability))
            )
        else:
            factor = 1.0
        effective = self.bandwidth_mbps * factor
        return self.latency + size_mbit / effective


class BandwidthEstimator:
    """EWMA estimate of the effective uplink bandwidth.

    The client observes (size, duration) pairs from its own uploads and
    keeps a conservative (lower-quantile-ish) estimate: underestimating
    bandwidth costs a little energy, overestimating costs a deadline.
    """

    #: Bounds a single observation is clamped into before entering the
    #: EWMA.  A timer glitch (duration ~ 0) would otherwise inject an
    #: inf/overflowing Mbps sample and poison every later estimate; a
    #: stalled transfer clamps to a still-positive floor so
    #: :meth:`upload_time` can never divide by zero.
    MIN_MBPS = 1e-3
    MAX_MBPS = 1e5

    def __init__(self, initial_mbps: float = 5.0, smoothing: float = 0.3,
                 conservatism: float = 0.8) -> None:
        require_positive("initial_mbps", initial_mbps)
        self.smoothing = require_fraction("smoothing", smoothing)
        self.conservatism = require_fraction("conservatism", conservatism)
        if self.conservatism <= 0:
            raise ConfigurationError("conservatism must be positive")
        self._estimate = initial_mbps
        self.observations = 0

    @property
    def estimate_mbps(self) -> float:
        """Current (raw) EWMA bandwidth estimate."""
        return self._estimate

    @property
    def safe_mbps(self) -> float:
        """The deliberately conservative estimate used for deadlines."""
        return self._estimate * self.conservatism

    def observe_transfer(self, size_mbit: float, duration: Seconds) -> None:
        """Fold one completed transfer into the estimate.

        Non-positive or non-finite durations are rejected outright; a
        valid but extreme observation is clamped into
        ``[MIN_MBPS, MAX_MBPS]`` so a single mis-timed transfer cannot
        drive the estimate to inf (or collapse it to zero).
        """
        require_positive("size_mbit", size_mbit)
        require_positive("duration", duration)
        measured = min(max(size_mbit / duration, self.MIN_MBPS), self.MAX_MBPS)
        self._estimate = (
            (1 - self.smoothing) * self._estimate + self.smoothing * measured
        )
        self.observations += 1

    def upload_time(self, size_mbit: float) -> Seconds:
        """Predicted (conservative) upload duration for ``size_mbit``."""
        require_positive("size_mbit", size_mbit)
        return size_mbit / self.safe_mbps


def training_deadline_from_reporting(
    reporting_deadline: Seconds,
    model_size_mbit: float,
    estimator: BandwidthEstimator,
    minimum: Optional[Seconds] = None,
) -> Seconds:
    """Infer the training deadline BoFL should target (§2.1 footnote 3).

    ``training_deadline = reporting_deadline - predicted_upload_time``,
    floored at ``minimum`` (default: 10 % of the reporting deadline) so a
    catastrophic bandwidth estimate cannot produce a non-positive budget.
    """
    require_positive("reporting_deadline", reporting_deadline)
    upload = estimator.upload_time(model_size_mbit)
    floor = minimum if minimum is not None else 0.1 * reporting_deadline
    if floor <= 0:
        raise ConfigurationError(f"minimum must be positive, got {floor}")
    return max(reporting_deadline - upload, floor)
