"""FL task specifications (the paper's Table 2).

From a device's perspective (§3.1) a task is ``(B, E, T, N)``: minibatch
size, epochs per round, the deadline list, and the local minibatch count.
``N`` differs per device (the TX2 holds smaller shards), so the spec maps
device names to ``N``; the deadline list is produced separately by a
:mod:`repro.federated.deadlines` schedule because it depends on the
measured ``T_min``.

=====================  ===========  ==================  ==========
Task                   CIFAR10-ViT  ImageNet-ResNet50   IMDB-LSTM
=====================  ===========  ==================  ==========
B (minibatch size)     32           8                   8
E (epochs/round)       5            2                   4
N on AGX               40           90                  40
N on TX2               15           30                  20
rounds                 100          100                 100
T_min on AGX           37.2 s       46.9 s              46.1 s
T_min on TX2           36.0 s       49.2 s              55.6 s
=====================  ===========  ==================  ==========
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.hardware.devices import DeviceSpec
from repro.types import require_nonnegative_int
from repro.workloads.base import WorkloadProfile
from repro.workloads.zoo import lstm, resnet50, vit


@dataclass(frozen=True)
class FLTaskSpec:
    """One federated learning task, parameterized per Table 2."""

    workload: WorkloadProfile
    batch_size: int
    epochs: int
    minibatches: dict[str, int] = field(default_factory=dict)
    rounds: int = 100

    def __post_init__(self) -> None:
        for name, value in (
            ("batch_size", self.batch_size),
            ("epochs", self.epochs),
            ("rounds", self.rounds),
        ):
            require_nonnegative_int(name, value)
            if value < 1:
                raise ConfigurationError(f"{name} must be >= 1, got {value}")
        for device_name, n in self.minibatches.items():
            if not isinstance(n, int) or n < 1:
                raise ConfigurationError(
                    f"minibatch count for {device_name!r} must be a positive int, got {n!r}"
                )

    @property
    def name(self) -> str:
        """Paper-style label, e.g. ``"CIFAR10-ViT"``."""
        return self.workload.task_name

    def minibatches_on(self, device: DeviceSpec) -> int:
        """``N`` for a device (raises for uncalibrated devices)."""
        try:
            return self.minibatches[device.name]
        except KeyError:
            raise ConfigurationError(
                f"task {self.name!r} has no shard size for device {device.name!r}"
            ) from None

    def jobs_per_round(self, device: DeviceSpec) -> int:
        """``W = E x N`` — the number of jobs in each round (§3.1)."""
        return self.epochs * self.minibatches_on(device)

    def samples_on(self, device: DeviceSpec) -> int:
        """Local dataset size implied by ``N`` and ``B``."""
        return self.minibatches_on(device) * self.batch_size


def cifar10_vit() -> FLTaskSpec:
    """CIFAR10-ViT: B=32, E=5, N=40 (AGX) / 15 (TX2)."""
    return FLTaskSpec(
        workload=vit(), batch_size=32, epochs=5, minibatches={"agx": 40, "tx2": 15}
    )


def imagenet_resnet50() -> FLTaskSpec:
    """ImageNet-ResNet50: B=8, E=2, N=90 (AGX) / 30 (TX2)."""
    return FLTaskSpec(
        workload=resnet50(), batch_size=8, epochs=2, minibatches={"agx": 90, "tx2": 30}
    )


def imdb_lstm() -> FLTaskSpec:
    """IMDB-LSTM: B=8, E=4, N=40 (AGX) / 20 (TX2)."""
    return FLTaskSpec(
        workload=lstm(), batch_size=8, epochs=4, minibatches={"agx": 40, "tx2": 20}
    )


def paper_tasks() -> tuple[FLTaskSpec, FLTaskSpec, FLTaskSpec]:
    """The three tasks of the paper's evaluation, in presentation order."""
    return (cifar10_vit(), imagenet_resnet50(), imdb_lstm())
