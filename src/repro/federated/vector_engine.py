"""Vectorized fleet composition over structured-array event queues.

The drop-in replacement for the legacy per-event object loop in
:class:`~repro.federated.async_engine.AsyncFederationEngine` — same
modes, same knobs, same obs trace, byte-identical results — built on the
flattened trace columns of :mod:`repro.federated.eventqueue`:

* **sync / semisync** (:func:`_run_rounds`): one launch is a fancy-index
  gather, one round's arrival sort is a single ``lexsort`` on
  ``(arrival, selection order)``, and the cutoff/patience/status logic is
  boolean masks.  Per-report Python work survives only where it is
  observable — building :class:`FleetReport` objects, emitting
  ``fleet.enqueue`` events, feeding an energy-aware selector — and is
  skipped entirely under ``detail="stats"`` with observability off.
* **async fast drain** (:func:`_run_async_fast`): with no server
  controller and no staleness bound, the whole FedBuff drain is static —
  arrival times are per-client chained sums, the drain order is
  :func:`~repro.federated.eventqueue.resolve_pop_order`, flush positions
  are a cumulative-sum-modulo mask, and every report's staleness falls
  out of two ``cumsum`` lookups (committed versions before its pop minus
  committed versions at its parent's pop).
* **async array walk** (:func:`_run_async_walk`): an adaptive controller
  or a ``max_staleness`` bound makes flush positions sequentially
  dependent, so this path keeps the legacy drain loop — but over the
  precomputed columns and a plain ``(at, counter, flat)`` heap, with no
  per-launch RNG draws and no intermediate arrival objects.  It mirrors
  the legacy control flow statement for statement (including the halt
  path's raw-heap-layout energy accounting), which is what keeps it
  byte-identical.

Float discipline, everywhere: sums that the legacy engine accumulates
left-to-right stay left-to-right (``sum(column.tolist())``, never
``np.sum``'s pairwise reduction), arrival times keep the legacy
``(start + elapsed) + upload`` association, and staleness discounts are
computed once per distinct staleness with the exact scalar ``**`` the
legacy helper uses.
"""

from __future__ import annotations

import heapq
from typing import Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.federated.async_engine import (
    AsyncFederationEngine,
    FleetReport,
    FleetResult,
    FleetRound,
    RoundStats,
    staleness_weight,
)
from repro.federated.eventqueue import (
    FleetTraceArrays,
    async_arrival_times,
    build_trace_arrays,
    resolve_pop_order,
)
from repro.federated.hierarchy import aggregate_probe, combine_hierarchical
from repro.obs import runtime as obs
from repro.types import Seconds


def run_vectorized(engine: AsyncFederationEngine, rounds: int) -> FleetResult:
    """Compose ``rounds`` of fleet activity on the structured-array path."""
    if engine.mode == "async":
        if engine.controller is None and engine.max_staleness is None:
            return _run_async_fast(engine, rounds)
        if engine.detail == "stats":
            raise ConfigurationError(
                "detail='stats' async composition requires the static fast "
                "drain (no server controller, no max_staleness)"
            )
        return _run_async_walk(engine, rounds)
    return _run_rounds(engine, rounds)


def _client_indices(engine: AsyncFederationEngine) -> np.ndarray:
    """Each client's :attr:`FleetClient.index` (the hierarchy edge basis)."""
    return np.fromiter(
        (c.index for c in engine.clients), dtype=np.int64, count=len(engine.clients)
    )


def _commit_arrays(
    engine: AsyncFederationEngine,
    round_record: FleetRound,
    version: int,
    progresses: np.ndarray,
    weights: np.ndarray,
    client_index_values: np.ndarray,
) -> int:
    """The vectorized commit: bit-identical to the legacy ``_commit``.

    ``aggregate_probe`` replicates FedAvg's array arithmetic on scalars;
    other aggregators get the genuine array call with identically built
    inputs.  Emission payloads match the legacy commit field for field.
    """
    if progresses.shape[0] == 0:
        round_record.model_version = version
        return version
    progress_list = progresses.tolist()
    weight_list = weights.tolist()
    if engine.hierarchy is not None:
        edges = [engine.hierarchy.edge_of(int(i)) for i in client_index_values.tolist()]
        probe = combine_hierarchical(
            engine.aggregator,
            engine.hierarchy,
            progress_list,
            weight_list,
            edges,
            t=round_record.completed_at,
            round_index=round_record.round_index,
            version=version + 1,
        )
    else:
        probe = aggregate_probe(engine.aggregator, progress_list, weight_list)
    round_record.model_probe = probe
    round_record.aggregated = True
    version += 1
    round_record.model_version = version
    if obs.enabled():
        obs.emit(
            "fleet.aggregate",
            t=round_record.completed_at,
            round=round_record.round_index,
            contributors=len(progress_list),
            weight_total=float(sum(weight_list)),
            probe=probe,
            version=version,
        )
        obs.count("fleet.aggregations")
    return version


def _emit_enqueue_scalar(
    arrival: float,
    round_index: int,
    client_id: str,
    local_round: int,
    staleness: int,
    status: str,
) -> None:
    """``fleet.enqueue`` (and the stale-drop follow-up) from plain scalars."""
    obs.emit(
        "fleet.enqueue",
        t=arrival,
        round=round_index,
        client=client_id,
        local_round=local_round,
        staleness=staleness,
        status=status,
    )
    obs.count("fleet.enqueues")
    if status == "stale":
        obs.emit(
            "fleet.staleness_drop",
            t=arrival,
            round=round_index,
            client=client_id,
            staleness=staleness,
        )
        obs.count("fleet.staleness_drops")


# -- sync / semisync ---------------------------------------------------------


def _run_rounds(engine: AsyncFederationEngine, rounds: int) -> FleetResult:
    """Vectorized synchronous and semi-synchronous composition."""
    arrays = build_trace_arrays(
        engine.clients, engine.link, rounds_cap=rounds, shards=engine.shards
    )
    n = arrays.n_clients
    ids = arrays.client_ids
    offsets = arrays.offsets
    lengths = arrays.lengths
    # Sync progress divides by the client's *full* trace length — the
    # legacy engine never trims records outside async mode.
    full_div = np.maximum(arrays.full_lengths, 1)
    index_arr = _client_indices(engine)
    n_samples = arrays.n_samples
    cursor = np.zeros(n, dtype=np.int64)
    id_to_pos = (
        {cid: i for i, cid in enumerate(ids)} if engine.selector is not None else {}
    )
    observe = getattr(engine.selector, "observe", None)
    stats_mode = engine.detail == "stats"
    result = FleetResult(mode=engine.mode, n_clients=n)
    version = 0
    now: Seconds = 0.0
    for round_index in range(rounds):
        knobs = engine._round_knobs(round_index)
        if knobs is not None and knobs.halt:
            engine._emit_halt(round_index, now)
            break
        if engine.selector is None:
            sel_idx = np.arange(n, dtype=np.int64)
            selected: Optional[list[str]] = None if stats_mode else list(ids)
            n_selected = n
        else:
            chosen = engine._select_ids(round_index, knobs)
            sel_idx = np.fromiter(
                (id_to_pos[cid] for cid in chosen),
                dtype=np.int64,
                count=len(chosen),
            )
            selected = list(chosen)
            n_selected = len(chosen)
        has = cursor[sel_idx] < lengths[sel_idx]
        launch_idx = sel_idx[has]
        launch_pos = np.flatnonzero(has)  # the legacy enumerate order
        local = cursor[launch_idx].copy()
        flat = offsets[launch_idx] + local
        cursor[launch_idx] += 1
        dropped_mask = arrays.dropped[flat]
        at_all = (now + arrays.elapsed[flat]) + arrays.upload[flat]
        d_idx = launch_idx[dropped_mask]
        d_flat = flat[dropped_mask]
        d_at = at_all[dropped_mask]
        d_local = local[dropped_mask]
        live = ~dropped_mask
        order = np.lexsort((launch_pos[live], at_all[live]))
        l_idx = launch_idx[live][order]
        l_flat = flat[live][order]
        l_at = at_all[live][order]
        l_local = local[live][order]
        l_missed = arrays.missed[l_flat]
        cutoff_at: Optional[float] = None
        if engine.mode == "semisync" and engine.target_reports is not None:
            target = engine.target_reports
            if knobs is not None and knobs.participation != 1.0:
                target = max(1, round(target * knobs.participation))
            agg_at = l_at[~l_missed]
            if agg_at.shape[0] > target:
                cutoff_at = float(agg_at[target - 1])
        if knobs is not None and knobs.deadline_scale != 1.0 and l_at.shape[0]:
            budget = float(np.max(arrays.deadline[l_flat]))
            patience = now + knobs.deadline_scale * budget
            if cutoff_at is None or patience < cutoff_at:
                cutoff_at = float(patience)
        if cutoff_at is None:
            cut_mask = np.zeros(l_at.shape[0], dtype=bool)
        else:
            cut_mask = (~l_missed) & (l_at > cutoff_at)
        buffered_mask = (~l_missed) & (~cut_mask)
        if cutoff_at is not None:
            completed = (
                min(cutoff_at, float(np.max(l_at))) if l_at.shape[0] else cutoff_at
            )
        elif l_at.shape[0]:
            completed = float(np.max(l_at))
        else:
            completed = float(np.max(d_at)) if d_at.shape[0] else now
        round_record = FleetRound(
            round_index=round_index,
            started_at=now,
            completed_at=float(max(completed, now)),
            participants=[] if selected is None else selected,
        )
        emitting = obs.enabled()
        if not stats_mode:
            for pos in range(d_idx.shape[0]):
                cid = ids[int(d_idx[pos])]
                round_record.dropped.append(cid)
                round_record.reports.append(
                    FleetReport(
                        client_id=cid,
                        local_round=int(d_local[pos]),
                        arrival=float(d_at[pos]),
                        train_elapsed=float(arrays.elapsed[d_flat[pos]]),
                        upload=0.0,
                        energy=float(arrays.energy[d_flat[pos]]),
                        missed=True,
                        status="straggler",
                    )
                )
        if not stats_mode or emitting or observe is not None:
            for pos in range(l_at.shape[0]):
                cid = ids[int(l_idx[pos])]
                if l_missed[pos]:
                    status = "straggler"
                elif cut_mask[pos]:
                    status = "cutoff"
                else:
                    status = "buffered"
                energy = float(arrays.energy[l_flat[pos]])
                arrival = float(l_at[pos])
                local_round = int(l_local[pos])
                if not stats_mode:
                    round_record.reports.append(
                        FleetReport(
                            client_id=cid,
                            local_round=local_round,
                            arrival=arrival,
                            train_elapsed=float(arrays.elapsed[l_flat[pos]]),
                            upload=float(arrays.upload[l_flat[pos]]),
                            energy=energy,
                            missed=bool(l_missed[pos]),
                            staleness=0,
                            weight=(
                                float(n_samples[l_idx[pos]])
                                if status == "buffered"
                                else 0.0
                            ),
                            status=status,
                        )
                    )
                if emitting:
                    _emit_enqueue_scalar(
                        arrival, round_index, cid, local_round, 0, status
                    )
                if observe is not None:
                    observe(cid, energy)
        if stats_mode:
            energy_total = float(
                sum(
                    arrays.energy[d_flat].tolist()
                    + arrays.energy[l_flat].tolist()
                )
            )
            round_record.stats = RoundStats(
                n_participants=n_selected,
                n_reports=int(d_flat.shape[0] + l_flat.shape[0]),
                n_dropped=int(d_flat.shape[0]),
                n_buffered=int(np.count_nonzero(buffered_mask)),
                n_straggler=int(
                    d_flat.shape[0] + np.count_nonzero(l_missed)
                ),
                n_cutoff=int(np.count_nonzero(cut_mask)),
                n_stale=0,
                energy=energy_total,
                staleness_sum=0,
            )
        version = _commit_arrays(
            engine,
            round_record,
            version,
            progresses=(l_local[buffered_mask] + 1) / full_div[l_idx[buffered_mask]],
            weights=n_samples[l_idx[buffered_mask]],
            client_index_values=index_arr[l_idx[buffered_mask]],
        )
        result.rounds.append(round_record)
        engine._emit_round(round_record)
        engine._feed_controller(round_record, result)
        now = round_record.completed_at
    return result


# -- async: static fast drain ------------------------------------------------


def _staleness_discounts(
    staleness: np.ndarray, exponent: float
) -> np.ndarray:
    """Per-event discount via the exact legacy scalar power, one per distinct value."""
    if staleness.shape[0] == 0:
        return np.zeros(0)
    uniq, inverse = np.unique(staleness, return_inverse=True)
    table = np.fromiter(
        (staleness_weight(int(s), exponent) for s in uniq.tolist()),
        dtype=float,
        count=uniq.shape[0],
    )
    return table[inverse]


def _run_async_fast(engine: AsyncFederationEngine, rounds: int) -> FleetResult:
    """FedBuff drain with static flush schedule (no controller/staleness bound)."""
    arrays = build_trace_arrays(
        engine.clients, engine.link, rounds_cap=rounds, shards=engine.shards
    )
    for client in engine.clients:
        # Object-level parity with the legacy drain, which trims its own
        # copy of every trace to ``rounds`` before streaming.
        del client.records[rounds:]
    n = arrays.n_clients
    result = FleetResult(mode="async", n_clients=n)
    n_events = arrays.n_events
    if n_events == 0:
        result.unclaimed_energy = 0.0
        return result
    ids = arrays.client_ids
    offsets = arrays.offsets
    lengths = arrays.lengths
    at = async_arrival_times(arrays)
    pop = resolve_pop_order(at, offsets)
    client_of = np.repeat(np.arange(n, dtype=np.int64), lengths)
    starts = np.repeat(offsets[:-1], lengths)
    local_of = np.arange(n_events, dtype=np.int64) - starts
    p_client = client_of[pop]
    p_local = local_of[pop]
    p_at = at[pop]
    p_dropped = arrays.dropped[pop]
    p_missed = arrays.missed[pop]
    live = ~p_dropped
    buffered_flag = live & ~p_missed
    cum = np.cumsum(buffered_flag)
    threshold = engine.buffer_size
    flush_flag = buffered_flag & (cum % threshold == 0)
    flushes = np.cumsum(flush_flag)
    version_before = flushes - flush_flag
    pos_of = np.empty(n_events, dtype=np.int64)
    pos_of[pop] = np.arange(n_events)
    parent_pos = pos_of[np.maximum(pop - 1, 0)]
    version_started = np.where(p_local > 0, flushes[parent_pos], 0)
    staleness = version_before - version_started
    weights = np.zeros(n_events)
    weights[buffered_flag] = arrays.n_samples[p_client[buffered_flag]] * (
        _staleness_discounts(
            staleness[buffered_flag], engine.staleness_exponent
        )
    )
    progress = (p_local + 1) / np.maximum(lengths, 1)[p_client]
    index_arr = _client_indices(engine)
    stats_mode = engine.detail == "stats"
    emitting = obs.enabled()
    flush_positions = np.flatnonzero(flush_flag)
    version = 0
    window_start = 0  # first pop position of the open window
    flushed_at: Seconds = 0.0

    def _window_reports(
        lo: int, hi: int, round_index: int, build: bool
    ) -> list[FleetReport]:
        """Emit (and optionally materialize) the live reports in pop span [lo, hi)."""
        reports: list[FleetReport] = []
        for j in range(lo, hi):
            if not live[j]:
                continue
            cid = ids[int(p_client[j])]
            status = "straggler" if p_missed[j] else "buffered"
            stale = int(staleness[j])
            arrival = float(p_at[j])
            local_round = int(p_local[j])
            if emitting:
                _emit_enqueue_scalar(
                    arrival, round_index, cid, local_round, stale, status
                )
            if build:
                flat = int(pop[j])
                reports.append(
                    FleetReport(
                        client_id=cid,
                        local_round=local_round,
                        arrival=arrival,
                        train_elapsed=float(arrays.elapsed[flat]),
                        upload=float(arrays.upload[flat]),
                        energy=float(arrays.energy[flat]),
                        missed=bool(p_missed[j]),
                        staleness=stale,
                        weight=float(weights[j]),
                        status=status,
                    )
                )
        return reports

    for w, j in enumerate(flush_positions.tolist()):
        hi = j + 1
        span = slice(window_start, hi)
        live_span = live[span]
        buf_span = buffered_flag[span]
        window_clients = p_client[span][live_span]
        participants = sorted({ids[int(c)] for c in np.unique(window_clients)})
        dropped_ids = [
            ids[int(c)] for c in p_client[span][~live_span]
        ]
        round_record = FleetRound(
            round_index=w,
            started_at=float(flushed_at),
            completed_at=float(p_at[j]),
            participants=participants,
            dropped=dropped_ids if not stats_mode else [],
        )
        reports = _window_reports(window_start, hi, w, build=not stats_mode)
        if stats_mode:
            pop_span = pop[span]
            energy_total = float(
                sum(arrays.energy[pop_span[live_span]].tolist())
            )
            round_record.stats = RoundStats(
                n_participants=len(participants),
                n_reports=int(np.count_nonzero(live_span)),
                n_dropped=int(np.count_nonzero(~live_span)),
                n_buffered=int(np.count_nonzero(buf_span)),
                n_straggler=int(
                    np.count_nonzero(live_span) - np.count_nonzero(buf_span)
                ),
                n_cutoff=0,
                n_stale=0,
                energy=energy_total,
                staleness_sum=int(staleness[span][buf_span].sum()),
            )
        else:
            round_record.reports = reports
        sel = np.flatnonzero(buf_span) + window_start
        version = _commit_arrays(
            engine,
            round_record,
            version,
            progresses=progress[sel],
            weights=weights[sel],
            client_index_values=index_arr[p_client[sel]],
        )
        result.rounds.append(round_record)
        engine._emit_round(round_record)
        engine._feed_controller(round_record, result)
        flushed_at = float(p_at[j])
        window_start = hi
    # Trailing partial buffer: processed (and enqueue-emitted) but never
    # flushed; its energy joins the dropouts' as unclaimed.
    trailing_round = len(result.rounds)
    if window_start < n_events and emitting:
        _window_reports(window_start, n_events, trailing_round, build=False)
    pending = sum(arrays.energy[pop[~live]].tolist())
    trailing_live = pop[window_start:][live[window_start:]]
    trailing = sum(arrays.energy[trailing_live].tolist())
    result.unclaimed_energy = float(pending + trailing)
    return result


# -- async: sequential array walk -------------------------------------------


def _run_async_walk(engine: AsyncFederationEngine, rounds: int) -> FleetResult:
    """The legacy FedBuff drain over precomputed columns (controller-aware).

    Flush positions depend on adaptive knobs (buffer rescale, halt) or a
    staleness bound, so this path walks events sequentially like the
    legacy loop — same heap keys, same push/pop sequence, hence the same
    internal heap layout the halt path's energy sweep depends on.
    """
    arrays = build_trace_arrays(
        engine.clients, engine.link, rounds_cap=rounds, shards=engine.shards
    )
    for client in engine.clients:
        del client.records[rounds:]
    n = arrays.n_clients
    ids = arrays.client_ids
    offsets = arrays.offsets
    at = async_arrival_times(arrays)
    result = FleetResult(mode="async", n_clients=n)
    # Heap entries: (arrival, push counter, flat event, version at launch).
    heap: list[tuple[float, int, int, int]] = []
    counter = 0
    for i in range(n):
        start = int(offsets[i])
        if start == int(offsets[i + 1]):
            continue
        heapq.heappush(heap, (float(at[start]), counter, start, 0))
        counter += 1
    buffer: list[FleetReport] = []
    pending_energy = 0.0
    pending_dropped: list[str] = []
    version = 0
    flushed_at: Seconds = 0.0
    knobs = engine._round_knobs(0)
    while heap:
        arrival_at, _, flat, version_started = heapq.heappop(heap)
        client_pos = int(np.searchsorted(offsets, flat, side="right")) - 1
        cid = ids[client_pos]
        round_index = len(result.rounds)
        if knobs is not None and knobs.halt:
            engine._emit_halt(round_index, arrival_at)
            pending_energy += float(arrays.energy[flat])
            pending_energy += sum(
                float(arrays.energy[entry[2]]) for entry in heap
            )
            heap.clear()
            break
        flush = False
        if arrays.dropped[flat]:
            pending_dropped.append(cid)
            pending_energy += float(arrays.energy[flat])
        else:
            staleness = version - version_started
            missed = bool(arrays.missed[flat])
            if missed:
                status = "straggler"
            elif (
                engine.max_staleness is not None
                and staleness > engine.max_staleness
            ):
                status = "stale"
            else:
                status = "buffered"
            discount = staleness_weight(staleness, engine.staleness_exponent)
            report = FleetReport(
                client_id=cid,
                local_round=int(flat - offsets[client_pos]),
                arrival=float(arrival_at),
                train_elapsed=float(arrays.elapsed[flat]),
                upload=float(arrays.upload[flat]),
                energy=float(arrays.energy[flat]),
                missed=missed,
                staleness=staleness,
                weight=(
                    float(arrays.n_samples[client_pos]) * discount
                    if status == "buffered"
                    else 0.0
                ),
                status=status,
            )
            engine._emit_enqueue(report, round_index)
            buffer.append(report)
            threshold = engine.buffer_size
            if knobs is not None and knobs.buffer_scale != 1.0:
                threshold = max(1, round(threshold * knobs.buffer_scale))
            flush = (
                sum(1 for r in buffer if r.status == "buffered") >= threshold
            )
        if flush:
            round_record = FleetRound(
                round_index=round_index,
                started_at=flushed_at,
                completed_at=float(arrival_at),
                participants=sorted({r.client_id for r in buffer}),
                reports=buffer,
                dropped=pending_dropped,
            )
            version = engine._commit(round_record, version)
            result.rounds.append(round_record)
            engine._emit_round(round_record)
            engine._feed_controller(round_record, result)
            knobs = engine._round_knobs(len(result.rounds))
            flushed_at = float(arrival_at)
            buffer = []
            pending_dropped = []
        next_flat = flat + 1
        if next_flat < int(offsets[client_pos + 1]):
            heapq.heappush(
                heap, (float(at[next_flat]), counter, next_flat, version)
            )
            counter += 1
    result.unclaimed_energy = pending_energy + sum(r.energy for r in buffer)
    return result
