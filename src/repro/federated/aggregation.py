"""Server-side gradient/weight aggregation rules."""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Sequence

import numpy as np

from repro.errors import ConfigurationError

#: A model as exchanged over the wire: a list of weight arrays.
Weights = list[np.ndarray]


def _check_updates(updates: Sequence[Weights]) -> None:
    if not updates:
        raise ConfigurationError("cannot aggregate zero client updates")
    reference = updates[0]
    for update in updates[1:]:
        if len(update) != len(reference):
            raise ConfigurationError("client updates have differing layer counts")
        for a, b in zip(update, reference):
            if a.shape != b.shape:
                raise ConfigurationError(
                    f"client update shape mismatch: {a.shape} vs {b.shape}"
                )


class Aggregator(ABC):
    """Combines per-client weight lists into the new global weights."""

    #: Fewest client updates this rule can combine.  The server validates
    #: it against the federation size at construction and degrades to
    #: FedAvg (with a warning event) on rounds where fewer reports land,
    #: so a robust rule never explodes mid-campaign.
    min_updates: int = 1

    @abstractmethod
    def aggregate(self, updates: Sequence[Weights], weights: Sequence[float]) -> Weights:
        """Combine ``updates`` with per-client importance ``weights``."""


class FedAvg(Aggregator):
    """Sample-count-weighted averaging (McMahan et al.) — the FL default."""

    def aggregate(self, updates: Sequence[Weights], weights: Sequence[float]) -> Weights:
        _check_updates(updates)
        weights_arr = np.asarray(list(weights), dtype=float)
        if weights_arr.size != len(updates):
            raise ConfigurationError(
                f"{weights_arr.size} weights for {len(updates)} updates"
            )
        if np.any(weights_arr < 0) or weights_arr.sum() <= 0:
            raise ConfigurationError("aggregation weights must be non-negative, not all zero")
        weights_arr = weights_arr / weights_arr.sum()
        return [
            sum(w * update[layer] for w, update in zip(weights_arr, updates))
            for layer in range(len(updates[0]))
        ]


class TrimmedMeanAggregator(Aggregator):
    """Coordinate-wise trimmed mean — a simple Byzantine-robust alternative.

    Drops the ``trim`` largest and smallest values per coordinate before
    averaging (unweighted).  Included as an extension point; the paper's
    evaluation uses FedAvg.
    """

    def __init__(self, trim: int = 1) -> None:
        if trim < 0:
            raise ConfigurationError(f"trim must be >= 0, got {trim}")
        self.trim = trim
        #: Trimming ``trim`` from each side needs at least one survivor.
        self.min_updates = 2 * trim + 1

    def aggregate(self, updates: Sequence[Weights], weights: Sequence[float]) -> Weights:
        _check_updates(updates)
        if len(updates) <= 2 * self.trim:
            raise ConfigurationError(
                f"trimming {self.trim} from each side needs more than "
                f"{2 * self.trim} clients, got {len(updates)}"
            )
        aggregated: Weights = []
        for layer in range(len(updates[0])):
            stacked = np.stack([update[layer] for update in updates])
            stacked.sort(axis=0)
            kept = stacked[self.trim : len(updates) - self.trim]
            aggregated.append(kept.mean(axis=0))
        return aggregated
