"""The FL server: selection, deadline assignment, aggregation (Fig. 1).

Round loop:

1. select participants;
2. assign each a training deadline — sampled per round from the deadline
   schedule, scaled by that client's measured ``T_min`` (stronger devices
   get shorter deadlines, §3.1);
3. broadcast the global weights and wait for client reports;
4. aggregate the successful reports (deadline met) with FedAvg and move to
   the next round.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Sequence
from typing import Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.federated.aggregation import Aggregator, FedAvg, Weights
from repro.federated.client import ClientReport, FederatedClient
from repro.federated.deadlines import DeadlineSchedule, UniformDeadlines
from repro.federated.selection import AllClientsSelector, ClientSelector
from repro.ml.data import Dataset
from repro.ml.models import MLPClassifier
from repro.ml.training import accuracy
from repro.obs import runtime as obs
from repro.servertune.controllers import RoundFeedback, ServerController


@dataclass
class ServerRound:
    """Server-side record of one global round."""

    round_index: int
    participants: list[str]
    reports: list[ClientReport] = field(default_factory=list)
    #: Clients that dropped out before training (Fig. 1's drop-out branch).
    dropped: list[str] = field(default_factory=list)
    aggregated: bool = False
    #: True when too few reports survived for the configured robust
    #: aggregator and the server degraded to FedAvg for this round.
    aggregation_fallback: bool = False
    global_accuracy: Optional[float] = None
    #: The server controller's deadline multiplier this round (1.0 when
    #: uncontrolled): the audit trail tying a tuned round to its knobs.
    deadline_scale: float = 1.0

    @property
    def total_energy(self) -> float:
        return sum(r.record.energy for r in self.reports)

    @property
    def stragglers(self) -> list[str]:
        return [r.client_id for r in self.reports if not r.succeeded]


class FederatedServer:
    """Orchestrates a multi-client federated learning task."""

    def __init__(
        self,
        clients: Sequence[FederatedClient],
        *,
        global_model: Optional[MLPClassifier] = None,
        aggregator: Optional[Aggregator] = None,
        selector: Optional[ClientSelector] = None,
        deadline_schedule: Optional[DeadlineSchedule] = None,
        eval_data: Optional[Dataset] = None,
        dropout_rate: float = 0.0,
        seed: int = 0,
        server_controller: Optional[ServerController] = None,
    ) -> None:
        if not clients:
            raise ConfigurationError("a federation needs at least one client")
        if not 0.0 <= dropout_rate < 1.0:
            raise ConfigurationError(
                f"dropout_rate must lie in [0, 1), got {dropout_rate}"
            )
        self.clients = list(clients)
        self.global_model = global_model
        self.aggregator = aggregator if aggregator is not None else FedAvg()
        if self.aggregator.min_updates > len(self.clients):
            # Surface impossible robust-aggregation setups at construction
            # instead of exploding mid-round (e.g. TrimmedMean(trim=1) on a
            # 2-client federation can never see its 3 required updates).
            raise ConfigurationError(
                f"aggregator {type(self.aggregator).__name__} needs at least "
                f"{self.aggregator.min_updates} client updates per round but "
                f"the federation only has {len(self.clients)} client(s)"
            )
        self.selector = selector if selector is not None else AllClientsSelector()
        self.deadline_schedule = (
            deadline_schedule if deadline_schedule is not None else UniformDeadlines(2.0)
        )
        self.eval_data = eval_data
        #: Per-participant probability of dropping out of a round before
        #: training (device offline, battery died — Fig. 1's drop-out arrow).
        self.dropout_rate = dropout_rate
        self.history: list[ServerRound] = []
        self._seed = seed
        self._dropout_rng = np.random.default_rng(seed + 17)
        self._t_min: dict[str, float] = {
            client.client_id: client.measure_t_min() for client in self.clients
        }
        self._deadline_ratios: Optional[np.ndarray] = None
        #: Optional servertune controller adapting deadlines/participation.
        self.server_controller = server_controller
        #: The knobs governing the round currently executing (set by
        #: :meth:`run_round`, consumed by :meth:`_deadline_for`).
        self._round_scale: float = 1.0

    def _deadline_for(self, client: FederatedClient, round_index: int, total_rounds: int) -> float:
        """Per-client deadline: the round's slack ratio times its T_min.

        Ratios are drawn once for the whole campaign so every client of a
        round shares the same relative slack (the server's round pacing),
        while absolute deadlines reflect each device's capability.  An
        active server controller multiplies the round's ratio by its
        ``deadline_scale`` knob; every override lands on the trace.
        """
        if self._deadline_ratios is None or self._deadline_ratios.size < total_rounds:
            unit = self.deadline_schedule.generate(1.0, total_rounds, seed=self._seed)
            self._deadline_ratios = np.asarray(unit)
        base = float(self._deadline_ratios[round_index] * self._t_min[client.client_id])
        if self._round_scale == 1.0:
            return base
        scaled = base * self._round_scale
        if obs.enabled():
            obs.emit(
                "servertune.override",
                context="server",
                round=round_index,
                client=client.client_id,
                base_deadline=base,
                deadline=scaled,
                scale=self._round_scale,
            )
            obs.count("servertune.overrides")
        return scaled

    def run_round(self, round_index: int, total_rounds: int) -> ServerRound:
        """Execute one global round and aggregate the results."""
        participants = list(self.selector.select(self.clients, round_index))
        self._round_scale = 1.0
        if self.server_controller is not None:
            knobs = self.server_controller.knobs_for(round_index)
            self._round_scale = knobs.deadline_scale
            if knobs.participation < 1.0 and len(participants) > 1:
                keep = max(1, round(len(participants) * knobs.participation))
                participants = participants[:keep]
        round_record = ServerRound(
            round_index=round_index,
            participants=[c.client_id for c in participants],
            deadline_scale=self._round_scale,
        )
        global_weights: Optional[Weights] = (
            self.global_model.get_weights() if self.global_model is not None else None
        )
        for client in participants:
            if self.dropout_rate and self._dropout_rng.random() < self.dropout_rate:
                round_record.dropped.append(client.client_id)
                continue
            deadline = self._deadline_for(client, round_index, total_rounds)
            round_record.reports.append(client.train_round(global_weights, deadline))
        self._notify_selector(round_record)

        successful = [r for r in round_record.reports if r.succeeded and r.weights is not None]
        if self.global_model is not None and successful:
            aggregator = self.aggregator
            if len(successful) < aggregator.min_updates:
                # Too few survivors for the robust rule this round (deadline
                # misses, dropouts): degrade to plain FedAvg rather than
                # fail the round, and say so on the trace.
                aggregator = FedAvg()
                round_record.aggregation_fallback = True
                if obs.enabled():
                    obs.emit(
                        "server.aggregation_fallback",
                        round=round_index,
                        aggregator=type(self.aggregator).__name__,
                        required=self.aggregator.min_updates,
                        received=len(successful),
                    )
                    obs.count("server.aggregation_fallbacks")
            new_weights = aggregator.aggregate(
                [r.weights for r in successful],
                [r.n_samples for r in successful],
            )
            self.global_model.set_weights(new_weights)
            round_record.aggregated = True
            if self.eval_data is not None:
                round_record.global_accuracy = accuracy(self.global_model, self.eval_data)
        elif self.global_model is not None:
            # Every participant dropped out or missed its deadline: the
            # round contributes nothing and the previous global weights
            # stand.  FedAvg's empty-updates branch is never reached.
            if obs.enabled():
                obs.emit(
                    "server.round_failed",
                    round=round_index,
                    participants=len(round_record.participants),
                    dropped=len(round_record.dropped),
                    stragglers=len(round_record.stragglers),
                )
                obs.count("server.failed_rounds")
        self.history.append(round_record)
        if obs.enabled():
            obs.emit(
                "server.round",
                round=round_index,
                participants=len(round_record.participants),
                dropped=len(round_record.dropped),
                stragglers=len(round_record.stragglers),
                aggregated=round_record.aggregated,
                energy=round_record.total_energy,
                accuracy=round_record.global_accuracy,
            )
            obs.count("server.rounds")
            obs.count("server.dropouts", len(round_record.dropped))
        if self.server_controller is not None:
            latency = max(
                (r.record.elapsed for r in round_record.reports), default=0.0
            )
            self.server_controller.observe(
                RoundFeedback(
                    round_index=round_index,
                    participants=len(round_record.participants),
                    buffered=sum(1 for r in round_record.reports if r.succeeded),
                    stragglers=len(round_record.stragglers),
                    energy=round_record.total_energy,
                    latency=latency,
                    total_energy=self.total_energy,
                    makespan=0.0,
                )
            )
        return round_record

    def _notify_selector(self, round_record: ServerRound) -> None:
        """Feed energy observations to selectors that learn from them."""
        observe = getattr(self.selector, "observe", None)
        if observe is None:
            return
        for report in round_record.reports:
            observe(report.client_id, report.record.energy)

    def run(self, rounds: int) -> list[ServerRound]:
        """Run a full campaign of ``rounds`` global rounds."""
        if rounds < 1:
            raise ConfigurationError(f"rounds must be >= 1, got {rounds}")
        return [self.run_round(i, rounds) for i in range(rounds)]

    @property
    def total_energy(self) -> float:
        """Total training energy across all clients and rounds."""
        return sum(r.total_energy for r in self.history)

    def accuracy_series(self) -> list[Optional[float]]:
        return [r.global_accuracy for r in self.history]
