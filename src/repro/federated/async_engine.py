"""Fleet-scale event-driven federation engine (sync / semi-sync / async).

The paper deploys BoFL "on each FL client locally" (§1); this module
provides the serving-scale federation layer that composition implies.
Where :class:`repro.federated.server.FederatedServer` drives a handful of
live :class:`FederatedClient` objects synchronously — every round blocks
on the slowest participant — this engine composes *thousands* of clients
on a simulated clock, in any of three aggregation disciplines:

``sync``
    Classic synchronous FedAvg: every selected client must report before
    the round closes, so round latency is the fleet's straggler tail.
``semisync``
    Over-selection with a straggler cutoff (Bonawitz et al.): the server
    selects ``ceil(target x over_selection)`` clients and closes the
    round as soon as ``target`` reports arrive; later arrivals are cut.
``async``
    FedBuff-style buffered asynchronous aggregation: clients train and
    report continuously, the server folds every ``buffer_size`` arrivals
    into a new model version, and each contribution is discounted by its
    *staleness* (how many versions the global model advanced while the
    client trained).  Contributions staler than ``max_staleness`` are
    dropped entirely.

Clients are **trace-driven**: each one's local rounds come from a
:class:`~repro.core.records.CampaignResult` produced by the ordinary
campaign runner (per-client BoFL/baseline pacing, per-round energy,
elapsed time and deadline-miss flags).  Traces are gathered — and may be
sharded across the :class:`~repro.sim.executor.CampaignExecutor` process
pool — *before* composition starts; the composition itself is a pure,
serial, deterministic function of the traces and the fleet seed.  That
split is what makes serial and sharded fleet runs byte-identical: see
:mod:`repro.sim.fleet` for the orchestration layer.

The engine reuses the existing federation abstractions:
:class:`~repro.federated.selection.ClientSelector` picks participants,
:class:`~repro.federated.transport.LinkModel` prices every upload, and an
:class:`~repro.federated.aggregation.Aggregator` combines the per-report
progress probes under staleness-discounted weights (the probe is a
one-element update vector carrying the client's local-round progress, so
the aggregation path is exercised for real and its output lands on the
trace).

Fault composition: ``client_dropout`` windows are folded into the client
*trace* (the chaos engine idles the device to the deadline and the report
never leaves the client), while ``transport_stall`` windows act here, at
the fleet layer, by delaying the report's arrival — the two compose on
the same client without either subsystem knowing about the other.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from collections.abc import Sequence
from typing import Optional

import numpy as np

from repro.core.records import RoundRecord
from repro.errors import ConfigurationError
from repro.federated.aggregation import Aggregator, FedAvg
from repro.federated.hierarchy import HierarchySpec, combine_hierarchical
from repro.federated.selection import ClientSelector
from repro.federated.transport import LinkModel
from repro.faults.schedule import FaultSchedule, FaultSpec
from repro.obs import runtime as obs
from repro.servertune.controllers import (
    RoundFeedback,
    ServerController,
    ServerKnobs,
)
from repro.types import Seconds

#: Aggregation disciplines the engine understands.
FLEET_MODES: tuple[str, ...] = ("sync", "semisync", "async")

#: Composition implementations: the vectorized structured-array engine
#: (default) and the retained per-event object loop it is differentially
#: tested against.
FLEET_ENGINES: tuple[str, ...] = ("vectorized", "legacy")

#: Result granularities: ``reports`` materializes one
#: :class:`FleetReport` per client report (full legacy fidelity);
#: ``stats`` keeps only per-round aggregate counters
#: (:class:`RoundStats`), the O(rounds)-memory shape that makes
#: 100k–1M-client compositions fit in bounded RSS.
FLEET_DETAILS: tuple[str, ...] = ("reports", "stats")


def staleness_weight(staleness: int, exponent: float) -> float:
    """The FedBuff-style staleness discount ``(1 + s)^-exponent``.

    ``staleness`` is how many global model versions were committed between
    the client starting its local round and its report arriving; fresher
    reports keep more of their weight.  ``exponent=0`` disables the
    discount (every report weighs its sample count).
    """
    if staleness < 0:
        raise ConfigurationError(f"staleness must be >= 0, got {staleness}")
    if exponent < 0:
        raise ConfigurationError(f"staleness exponent must be >= 0, got {exponent}")
    return float((1.0 + staleness) ** (-exponent))


@dataclass
class FleetClient:
    """One fleet participant: identity, trace, and transport state.

    Built by :func:`repro.sim.fleet.build_fleet_clients`; ``records`` is
    filled from the client's campaign trace before composition starts.
    """

    client_id: str
    index: int
    device: str
    task: str
    controller: str
    trace_seed: int
    n_samples: int
    model_size_mbit: float
    #: Engine-level transport faults: upload of a local round inside a
    #: window is delayed by ``magnitude x deadline`` (the stall eats that
    #: fraction of the round's reporting budget).
    stall_windows: tuple[FaultSpec, ...] = ()
    #: Seed for this client's private upload-time stream.
    upload_seed: int = 0
    #: Trace-level chaos (e.g. dropout windows) folded into the client's
    #: campaign key by the fleet layer; the engine itself never reads it.
    fault_schedule: Optional[FaultSchedule] = None
    #: The client's local-round trace (one entry per local round).
    records: list[RoundRecord] = field(default_factory=list)

    def stalled_in(self, local_round: int) -> Optional[FaultSpec]:
        """The transport-stall window covering ``local_round``, if any."""
        for window in self.stall_windows:
            if window.active_in(local_round):
                return window
        return None


@dataclass
class FleetReport:
    """One client report as the server saw it (ServerRound-equivalent)."""

    client_id: str
    local_round: int
    #: Simulated time the report reached the server.
    arrival: Seconds
    train_elapsed: Seconds
    upload: Seconds
    energy: float
    #: The client missed its training deadline (report not aggregatable).
    missed: bool
    #: Global model versions committed while the client trained.
    staleness: int = 0
    #: Aggregation weight (samples x staleness discount); 0 when dropped.
    weight: float = 0.0
    #: How the server disposed of the report: "buffered" (aggregated),
    #: "straggler" (deadline missed), "cutoff" (semi-sync late arrival),
    #: or "stale" (async staleness bound exceeded).
    status: str = "buffered"


@dataclass(frozen=True)
class RoundStats:
    """Aggregate round counters for ``detail="stats"`` compositions.

    Holds exactly what the :class:`FleetResult` scorecard and the per-round
    observability events consume, so a stats-mode round carries O(1) memory
    instead of one :class:`FleetReport` per client.  ``energy`` is summed
    in legacy report order (dropped reports first, then arrivals), keeping
    the float total bit-identical to the reports-mode accumulation.
    """

    n_participants: int
    n_reports: int
    n_dropped: int
    n_buffered: int
    #: Reports by terminal status (``n_straggler`` counts deadline misses
    #: and dropout idles, matching ``status == "straggler"``).
    n_straggler: int
    n_cutoff: int
    n_stale: int
    energy: float
    #: Sum of buffered reports' staleness (exact: integers).
    staleness_sum: int

    def to_dict(self) -> dict[str, object]:
        return {
            "n_participants": self.n_participants,
            "n_reports": self.n_reports,
            "n_dropped": self.n_dropped,
            "n_buffered": self.n_buffered,
            "n_straggler": self.n_straggler,
            "n_cutoff": self.n_cutoff,
            "n_stale": self.n_stale,
            "energy": self.energy,
            "staleness_sum": self.staleness_sum,
        }


@dataclass
class FleetRound:
    """Server-side record of one aggregation (ServerRound-equivalent).

    In ``detail="reports"`` compositions every client report is kept in
    :attr:`reports`; in ``detail="stats"`` mode the per-report lists stay
    empty and :attr:`stats` carries the aggregate counters.  All derived
    quantities go through the ``*_count`` accessors, which read whichever
    representation is present.
    """

    round_index: int
    started_at: Seconds
    completed_at: Seconds
    participants: list[str] = field(default_factory=list)
    reports: list[FleetReport] = field(default_factory=list)
    #: Clients whose trace round was a chaos dropout (no report sent).
    dropped: list[str] = field(default_factory=list)
    aggregated: bool = False
    #: Global model version after this aggregation committed.
    model_version: int = 0
    #: The staleness-weighted aggregation probe (see module docstring).
    model_probe: Optional[float] = None
    #: Aggregate counters when composed with ``detail="stats"``.
    stats: Optional[RoundStats] = None

    @property
    def latency(self) -> Seconds:
        return self.completed_at - self.started_at

    @property
    def total_energy(self) -> float:
        if self.stats is not None:
            return self.stats.energy
        return sum(r.energy for r in self.reports)

    @property
    def stragglers(self) -> list[str]:
        """Clients whose reports could not be aggregated this round."""
        return [r.client_id for r in self.reports if r.status != "buffered"]

    @property
    def buffered(self) -> list[FleetReport]:
        return [r for r in self.reports if r.status == "buffered"]

    def participant_count(self) -> int:
        if self.stats is not None:
            return self.stats.n_participants
        return len(self.participants)

    def report_count(self) -> int:
        if self.stats is not None:
            return self.stats.n_reports
        return len(self.reports)

    def dropped_count(self) -> int:
        if self.stats is not None:
            return self.stats.n_dropped
        return len(self.dropped)

    def buffered_count(self) -> int:
        if self.stats is not None:
            return self.stats.n_buffered
        return len(self.buffered)

    def straggler_count(self) -> int:
        """Reports that could not be aggregated (any non-buffered status)."""
        if self.stats is not None:
            return (
                self.stats.n_straggler + self.stats.n_cutoff + self.stats.n_stale
            )
        return len(self.stragglers)

    def status_count(self, status: str) -> int:
        if self.stats is not None:
            return {
                "buffered": self.stats.n_buffered,
                "straggler": self.stats.n_straggler,
                "cutoff": self.stats.n_cutoff,
                "stale": self.stats.n_stale,
            }.get(status, 0)
        return sum(1 for r in self.reports if r.status == status)

    def staleness_total(self) -> int:
        """Summed staleness over buffered reports (exact integer)."""
        if self.stats is not None:
            return self.stats.staleness_sum
        return sum(r.staleness for r in self.buffered)

    def to_dict(self) -> dict[str, object]:
        result: dict[str, object] = {
            "round_index": self.round_index,
            "started_at": self.started_at,
            "completed_at": self.completed_at,
            "participants": list(self.participants),
            "dropped": list(self.dropped),
            "aggregated": self.aggregated,
            "model_version": self.model_version,
            "model_probe": self.model_probe,
            "reports": [
                {
                    "client_id": r.client_id,
                    "local_round": r.local_round,
                    "arrival": r.arrival,
                    "train_elapsed": r.train_elapsed,
                    "upload": r.upload,
                    "energy": r.energy,
                    "missed": r.missed,
                    "staleness": r.staleness,
                    "weight": r.weight,
                    "status": r.status,
                }
                for r in self.reports
            ],
        }
        if self.stats is not None:
            result["stats"] = self.stats.to_dict()
        return result


@dataclass
class FleetResult:
    """The outcome of one fleet composition run."""

    mode: str
    n_clients: int
    rounds: list[FleetRound] = field(default_factory=list)
    #: Energy of trace rounds the composition consumed but no aggregation
    #: window claimed (e.g. a final partial async buffer never flushed).
    unclaimed_energy: float = 0.0

    @property
    def aggregations(self) -> int:
        return sum(1 for r in self.rounds if r.aggregated)

    @property
    def total_energy(self) -> float:
        return sum(r.total_energy for r in self.rounds) + self.unclaimed_energy

    @property
    def makespan(self) -> Seconds:
        """Simulated time from fleet start to the last aggregation."""
        if not self.rounds:
            return 0.0
        return max(r.completed_at for r in self.rounds)

    @property
    def mean_round_latency(self) -> Seconds:
        if not self.rounds:
            return 0.0
        return sum(r.latency for r in self.rounds) / len(self.rounds)

    @property
    def straggler_reports(self) -> int:
        return sum(rnd.status_count("straggler") for rnd in self.rounds)

    @property
    def cutoff_reports(self) -> int:
        return sum(rnd.status_count("cutoff") for rnd in self.rounds)

    @property
    def staleness_drops(self) -> int:
        return sum(rnd.status_count("stale") for rnd in self.rounds)

    @property
    def dropout_rounds(self) -> int:
        return sum(rnd.dropped_count() for rnd in self.rounds)

    @property
    def mean_staleness(self) -> float:
        count = sum(rnd.buffered_count() for rnd in self.rounds)
        if count == 0:
            return 0.0
        return sum(rnd.staleness_total() for rnd in self.rounds) / count

    def to_dict(self) -> dict[str, object]:
        return {
            "mode": self.mode,
            "n_clients": self.n_clients,
            "unclaimed_energy": self.unclaimed_energy,
            "rounds": [r.to_dict() for r in self.rounds],
        }


@dataclass(frozen=True)
class _Arrival:
    """One report in flight: ordering key is (time, client index)."""

    at: Seconds
    order: int
    client: FleetClient
    local_round: int
    record: RoundRecord
    upload: Seconds
    version_started: int
    dropped: bool


class AsyncFederationEngine:
    """Composes client traces into fleet rounds on a simulated clock.

    Parameters
    ----------
    clients:
        Fleet participants with their ``records`` traces already filled.
    mode:
        One of :data:`FLEET_MODES`.
    link:
        The wireless link pricing every upload (per-client private RNG
        streams keep draws independent of composition order).
    selector:
        Participant choice for ``sync``/``semisync`` rounds; ignored by
        ``async`` (every client streams continuously).
    aggregator:
        Combines the per-report progress probes under the computed
        weights each time the server commits a model version.
    target_reports:
        ``semisync`` only: commit as soon as this many aggregatable
        reports arrived (the over-selected remainder is cut).
    buffer_size, staleness_exponent, max_staleness:
        ``async`` only: the FedBuff buffer length, the staleness-discount
        exponent, and the optional hard staleness bound.
    controller:
        Optional :class:`~repro.servertune.controllers.ServerController`
        adapting the global knobs between aggregations: ``participation``
        rescales the selector's cohort (sync/semisync), ``deadline_scale``
        caps how long past the nominal deadline budget the server waits
        before cutting a round (sync/semisync), ``buffer_scale`` rescales
        the FedBuff commit threshold (async), and ``halt`` ends the run.
        ``None`` (and a controller pinned at the default knobs) composes
        byte-identically to the pre-controller engine.
    engine:
        ``"vectorized"`` (default) composes on the structured-array event
        queues of :mod:`repro.federated.eventqueue`;
        ``"legacy"`` retains the per-event object loop.  The two are
        byte-identical (results, obs traces) — the differential suite in
        ``tests/federated/test_vectorized_equivalence.py`` holds the line.
    detail:
        ``"reports"`` keeps one :class:`FleetReport` per client report;
        ``"stats"`` keeps per-round :class:`RoundStats` aggregates only
        (O(rounds) memory — the 100k–1M-client shape).  Stats mode needs
        the vectorized engine, and for ``async`` additionally the
        controller-free, unbounded-staleness fast drain.
    hierarchy:
        Optional :class:`~repro.federated.hierarchy.HierarchySpec`: commit
        through edge aggregators (O(edges) server work) instead of the
        flat fold.  A *different discipline*, not an optimization — but
        one shared implementation, so the two engines still match bit for
        bit under it.
    shards:
        Thread-shard the upload-stream precompute across this many
        contiguous client ranges (vectorized engine only); byte-identical
        to the serial build for any value.
    """

    def __init__(
        self,
        clients: Sequence[FleetClient],
        *,
        mode: str = "sync",
        link: Optional[LinkModel] = None,
        selector: Optional[ClientSelector] = None,
        aggregator: Optional[Aggregator] = None,
        target_reports: Optional[int] = None,
        buffer_size: int = 16,
        staleness_exponent: float = 0.5,
        max_staleness: Optional[int] = None,
        controller: Optional[ServerController] = None,
        engine: str = "vectorized",
        detail: str = "reports",
        hierarchy: Optional[HierarchySpec] = None,
        shards: Optional[int] = None,
    ) -> None:
        if not clients:
            raise ConfigurationError("a fleet needs at least one client")
        if mode not in FLEET_MODES:
            raise ConfigurationError(
                f"unknown fleet mode {mode!r}; available: {', '.join(FLEET_MODES)}"
            )
        if engine not in FLEET_ENGINES:
            raise ConfigurationError(
                f"unknown engine {engine!r}; available: {', '.join(FLEET_ENGINES)}"
            )
        if detail not in FLEET_DETAILS:
            raise ConfigurationError(
                f"unknown detail {detail!r}; available: {', '.join(FLEET_DETAILS)}"
            )
        if detail == "stats" and engine == "legacy":
            raise ConfigurationError(
                "detail='stats' requires the vectorized engine"
            )
        if buffer_size < 1:
            raise ConfigurationError(f"buffer_size must be >= 1, got {buffer_size}")
        if staleness_exponent < 0:
            raise ConfigurationError(
                f"staleness_exponent must be >= 0, got {staleness_exponent}"
            )
        if max_staleness is not None and max_staleness < 0:
            raise ConfigurationError(
                f"max_staleness must be >= 0, got {max_staleness}"
            )
        if target_reports is not None and target_reports < 1:
            raise ConfigurationError(
                f"target_reports must be >= 1, got {target_reports}"
            )
        if shards is not None and shards < 1:
            raise ConfigurationError(f"shards must be >= 1, got {shards}")
        self.clients = list(clients)
        self.mode = mode
        self.link = link if link is not None else LinkModel()
        self.selector = selector
        self.aggregator = aggregator if aggregator is not None else FedAvg()
        self.target_reports = target_reports
        self.buffer_size = buffer_size
        self.staleness_exponent = staleness_exponent
        self.max_staleness = max_staleness
        self.controller = controller
        self.engine = engine
        self.detail = detail
        self.hierarchy = hierarchy
        self.shards = shards
        #: The selector's configured cohort size before any participation
        #: knob touched it; the knob always rescales from this base, never
        #: from its own previous output (no compounding).
        self._base_selection: Optional[int] = getattr(
            selector, "participants_per_round", None
        )
        self._by_id = {c.client_id: c for c in self.clients}
        if len(self._by_id) != len(self.clients):
            raise ConfigurationError("fleet client ids must be unique")
        #: Per-client upload RNG streams, built lazily: only the legacy
        #: object loop draws them one launch at a time — the vectorized
        #: engine precomputes whole streams in
        #: :func:`repro.federated.eventqueue.build_trace_arrays`, and a
        #: 100k-client fleet should not pay for 100k Generator objects
        #: it never uses.
        self._upload_rngs: Optional[dict[str, np.random.Generator]] = None
        #: Next unconsumed local round per client.
        self._cursor = {c.client_id: 0 for c in self.clients}

    # -- shared mechanics ----------------------------------------------------

    def _next_record(self, client: FleetClient) -> Optional[RoundRecord]:
        cursor = self._cursor[client.client_id]
        if cursor >= len(client.records):
            return None
        self._cursor[client.client_id] = cursor + 1
        return client.records[cursor]

    def _upload_time(
        self, client: FleetClient, local_round: int, record: RoundRecord
    ) -> Seconds:
        """Transfer time for one report, including transport-stall delay."""
        if self._upload_rngs is None:
            self._upload_rngs = {
                c.client_id: np.random.default_rng(c.upload_seed)
                for c in self.clients
            }
        rng = self._upload_rngs[client.client_id]
        upload = self.link.transfer_time(client.model_size_mbit, rng)
        stall = client.stalled_in(local_round)
        if stall is not None:
            upload += stall.magnitude * record.deadline
        return upload

    def _launch(
        self, client: FleetClient, start: Seconds, order: int, version: int
    ) -> Optional[_Arrival]:
        """Start the client's next local round; None when its trace is dry."""
        local_round = self._cursor[client.client_id]
        record = self._next_record(client)
        if record is None:
            return None
        dropped = record.phase == "dropped"
        # A dropout round consumes the deadline (the board idles) but no
        # report is ever uploaded; the "arrival" is just the client
        # becoming available again.
        upload = (
            0.0 if dropped else self._upload_time(client, local_round, record)
        )
        return _Arrival(
            at=start + record.elapsed + upload,
            order=order,
            client=client,
            local_round=local_round,
            record=record,
            upload=upload,
            version_started=version,
            dropped=dropped,
        )

    def _observe_selector(self, report: FleetReport) -> None:
        observe = getattr(self.selector, "observe", None)
        if observe is not None:
            observe(report.client_id, report.energy)

    def _commit(self, round_record: FleetRound, version: int) -> int:
        """Aggregate the round's buffered reports; returns the new version."""
        buffered = round_record.buffered
        if not buffered:
            round_record.model_version = version
            return version
        progresses: list[float] = []
        weights: list[float] = []
        edges: list[int] = []
        for report in buffered:
            client = self._by_id[report.client_id]
            trace_rounds = max(len(client.records), 1)
            progresses.append((report.local_round + 1) / trace_rounds)
            weights.append(report.weight)
            if self.hierarchy is not None:
                edges.append(self.hierarchy.edge_of(client.index))
        if self.hierarchy is not None:
            round_record.model_probe = combine_hierarchical(
                self.aggregator,
                self.hierarchy,
                progresses,
                weights,
                edges,
                t=round_record.completed_at,
                round_index=round_record.round_index,
                version=version + 1,
            )
        else:
            updates = [[np.asarray([p], dtype=float)] for p in progresses]
            combined = self.aggregator.aggregate(updates, weights)
            round_record.model_probe = float(combined[0][0])
        round_record.aggregated = True
        version += 1
        round_record.model_version = version
        if obs.enabled():
            obs.emit(
                "fleet.aggregate",
                t=round_record.completed_at,
                round=round_record.round_index,
                contributors=len(buffered),
                weight_total=float(sum(weights)),
                probe=round_record.model_probe,
                version=version,
            )
            obs.count("fleet.aggregations")
        return version

    def _emit_enqueue(self, report: FleetReport, round_index: int) -> None:
        if not obs.enabled():
            return
        obs.emit(
            "fleet.enqueue",
            t=report.arrival,
            round=round_index,
            client=report.client_id,
            local_round=report.local_round,
            staleness=report.staleness,
            status=report.status,
        )
        obs.count("fleet.enqueues")
        if report.status == "stale":
            obs.emit(
                "fleet.staleness_drop",
                t=report.arrival,
                round=round_index,
                client=report.client_id,
                staleness=report.staleness,
            )
            obs.count("fleet.staleness_drops")

    def _emit_round(self, round_record: FleetRound) -> None:
        if not obs.enabled():
            return
        obs.emit(
            "fleet.round",
            t=round_record.completed_at,
            round=round_record.round_index,
            mode=self.mode,
            participants=round_record.participant_count(),
            buffered=round_record.buffered_count(),
            stragglers=round_record.straggler_count(),
            dropped=round_record.dropped_count(),
            latency=round_record.latency,
            energy=round_record.total_energy,
            version=round_record.model_version,
        )
        obs.count("fleet.rounds")

    # -- composition ---------------------------------------------------------

    def run(self, rounds: int) -> FleetResult:
        """Compose ``rounds`` worth of fleet activity and return the result.

        ``sync``/``semisync``: ``rounds`` global rounds are driven through
        the selector.  ``async``: every client streams its full trace (at
        most ``rounds`` local rounds each) and the server commits a
        version per full buffer — the number of aggregations follows from
        fleet size and buffer length.
        """
        if rounds < 1:
            raise ConfigurationError(f"rounds must be >= 1, got {rounds}")
        if obs.enabled():
            obs.emit(
                "fleet.start",
                mode=self.mode,
                clients=len(self.clients),
                rounds=rounds,
                buffer_size=self.buffer_size if self.mode == "async" else None,
                staleness_exponent=(
                    self.staleness_exponent if self.mode == "async" else None
                ),
            )
        if self.engine == "vectorized":
            from repro.federated.vector_engine import run_vectorized

            result = run_vectorized(self, rounds)
        elif self.mode == "async":
            result = self._run_async(rounds)
        else:
            result = self._run_rounds(rounds)
        if obs.enabled():
            obs.emit(
                "fleet.end",
                t=result.makespan,
                mode=self.mode,
                aggregations=result.aggregations,
                total_energy=result.total_energy,
                makespan=result.makespan,
                mean_latency=result.mean_round_latency,
                stragglers=result.straggler_reports,
                cutoffs=result.cutoff_reports,
                staleness_drops=result.staleness_drops,
                dropouts=result.dropout_rounds,
            )
        return result

    def _round_knobs(self, round_index: int) -> Optional[ServerKnobs]:
        """The controller's knobs for this round (None when uncontrolled)."""
        if self.controller is None:
            return None
        knobs = self.controller.knobs_for(round_index)
        if obs.enabled():
            obs.emit(
                "servertune.knobs",
                round=round_index,
                controller=self.controller.name,
                deadline_scale=knobs.deadline_scale,
                participation=knobs.participation,
                buffer_scale=knobs.buffer_scale,
                halt=knobs.halt,
            )
            obs.count("servertune.rounds")
        return knobs

    def _feed_controller(
        self, round_record: FleetRound, result: FleetResult
    ) -> None:
        """Report one committed round back to the server controller."""
        if self.controller is None:
            return
        self.controller.observe(
            RoundFeedback(
                round_index=round_record.round_index,
                participants=round_record.participant_count(),
                buffered=round_record.buffered_count(),
                stragglers=round_record.straggler_count(),
                energy=round_record.total_energy,
                latency=round_record.latency,
                total_energy=result.total_energy,
                makespan=round_record.completed_at,
            )
        )

    def _emit_halt(self, round_index: int, t: Seconds) -> None:
        if self.controller is None:
            return
        obs.emit(
            "servertune.halt",
            t=t,
            round=round_index,
            controller=self.controller.name,
        )
        obs.count("servertune.halts")

    def _select_ids(
        self, round_index: int, knobs: Optional[ServerKnobs] = None
    ) -> list[str]:
        ids = [c.client_id for c in self.clients]
        if self.selector is None:
            return ids
        if knobs is not None and self._base_selection is not None:
            self.selector.participants_per_round = max(  # type: ignore[attr-defined]
                1, round(self._base_selection * knobs.participation)
            )
        return list(self.selector.select(ids, round_index))

    def _run_rounds(self, rounds: int) -> FleetResult:
        """Synchronous and semi-synchronous composition."""
        result = FleetResult(mode=self.mode, n_clients=len(self.clients))
        version = 0
        now: Seconds = 0.0
        for round_index in range(rounds):
            knobs = self._round_knobs(round_index)
            if knobs is not None and knobs.halt:
                self._emit_halt(round_index, now)
                break
            selected = self._select_ids(round_index, knobs)
            round_record = FleetRound(
                round_index=round_index,
                started_at=now,
                completed_at=now,
                participants=list(selected),
            )
            arrivals: list[_Arrival] = []
            for order, client_id in enumerate(selected):
                client = self._by_id[client_id]
                arrival = self._launch(client, now, order, version)
                if arrival is None:
                    continue  # trace exhausted: nothing left to contribute
                if arrival.dropped:
                    round_record.dropped.append(client_id)
                    # The dropout's idle energy still belongs to the round.
                    round_record.reports.append(
                        FleetReport(
                            client_id=client_id,
                            local_round=arrival.local_round,
                            arrival=arrival.at,
                            train_elapsed=arrival.record.elapsed,
                            upload=0.0,
                            energy=arrival.record.energy,
                            missed=True,
                            status="straggler",
                        )
                    )
                    continue
                arrivals.append(arrival)
            arrivals.sort(key=lambda a: (a.at, a.order))
            cutoff_at = self._cutoff(arrivals, knobs)
            patience_at = self._patience(now, arrivals, knobs)
            if patience_at is not None and (
                cutoff_at is None or patience_at < cutoff_at
            ):
                cutoff_at = patience_at
            for arrival in arrivals:
                missed = arrival.record.missed
                if missed:
                    status = "straggler"
                elif cutoff_at is not None and arrival.at > cutoff_at:
                    status = "cutoff"
                else:
                    status = "buffered"
                report = FleetReport(
                    client_id=arrival.client.client_id,
                    local_round=arrival.local_round,
                    arrival=arrival.at,
                    train_elapsed=arrival.record.elapsed,
                    upload=arrival.upload,
                    energy=arrival.record.energy,
                    missed=missed,
                    staleness=0,
                    weight=(
                        float(arrival.client.n_samples)
                        if status == "buffered"
                        else 0.0
                    ),
                    status=status,
                )
                round_record.reports.append(report)
                self._emit_enqueue(report, round_index)
                self._observe_selector(report)
            completed = self._round_close(round_record, arrivals, cutoff_at)
            round_record.completed_at = max(completed, now)
            version = self._commit(round_record, version)
            result.rounds.append(round_record)
            self._emit_round(round_record)
            self._feed_controller(round_record, result)
            now = round_record.completed_at
        return result

    def _cutoff(
        self, arrivals: list[_Arrival], knobs: Optional[ServerKnobs] = None
    ) -> Optional[Seconds]:
        """The semi-sync straggler cutoff time, or None (wait for all)."""
        if self.mode != "semisync" or self.target_reports is None:
            return None
        target = self.target_reports
        if knobs is not None and knobs.participation != 1.0:
            # Shrinking the cohort shrinks the commit quorum with it, so
            # a low-participation round is not doomed to wait on everyone.
            target = max(1, round(target * knobs.participation))
        aggregatable = [a for a in arrivals if not a.record.missed]
        if len(aggregatable) <= target:
            return None
        return aggregatable[target - 1].at

    def _patience(
        self,
        started_at: Seconds,
        arrivals: list[_Arrival],
        knobs: Optional[ServerKnobs],
    ) -> Optional[Seconds]:
        """The controller's straggler-patience cap on the round close.

        ``deadline_scale`` bounds how long past the round's largest
        training deadline the server keeps waiting: reports later than
        ``started_at + scale x max(deadline)`` are cut.  The default
        scale of 1.0 means "no cap" (classic wait-for-all sync), keeping
        uncontrolled composition byte-identical.
        """
        if knobs is None or knobs.deadline_scale == 1.0 or not arrivals:
            return None
        budget = max(a.record.deadline for a in arrivals)
        return started_at + knobs.deadline_scale * budget

    def _round_close(
        self,
        round_record: FleetRound,
        arrivals: list[_Arrival],
        cutoff_at: Optional[Seconds],
    ) -> Seconds:
        """When the server closes the round and commits."""
        if cutoff_at is not None:
            if arrivals:
                # A patience cap later than every arrival never extends
                # the round (semisync cutoffs are arrival times already).
                return min(cutoff_at, max(a.at for a in arrivals))
            return cutoff_at
        if arrivals:
            return max(a.at for a in arrivals)
        # Everyone dropped out (or was exhausted): the round closes once
        # the last dropout's deadline idle-out completes.
        drops = [r.arrival for r in round_record.reports]
        return max(drops) if drops else round_record.started_at

    def _run_async(self, rounds: int) -> FleetResult:
        """FedBuff-style buffered asynchronous composition."""
        result = FleetResult(mode="async", n_clients=len(self.clients))
        version = 0
        flushed_at: Seconds = 0.0
        heap: list[tuple[Seconds, int, _Arrival]] = []
        order = 0
        for client in self.clients:
            # Bound every client's streaming trace at ``rounds`` local
            # rounds so sync and async consume identical work.
            del client.records[rounds:]
            arrival = self._launch(client, 0.0, order, version)
            if arrival is not None:
                heapq.heappush(heap, (arrival.at, arrival.order, arrival))
                order += 1
        buffer: list[FleetReport] = []
        pending_energy = 0.0
        pending_dropped: list[str] = []
        knobs = self._round_knobs(0)
        while heap:
            _, _, arrival = heapq.heappop(heap)
            client = arrival.client
            round_index = len(result.rounds)
            if knobs is not None and knobs.halt:
                # The server stops committing: the in-flight report (and
                # everything still on the heap) burned energy no window
                # will ever claim.
                self._emit_halt(round_index, arrival.at)
                pending_energy += arrival.record.energy
                pending_energy += sum(
                    entry[2].record.energy for entry in heap
                )
                heap.clear()
                break
            flush = False
            if arrival.dropped:
                pending_dropped.append(client.client_id)
                pending_energy += arrival.record.energy
            else:
                staleness = version - arrival.version_started
                if arrival.record.missed:
                    status = "straggler"
                elif (
                    self.max_staleness is not None
                    and staleness > self.max_staleness
                ):
                    status = "stale"
                else:
                    status = "buffered"
                discount = staleness_weight(staleness, self.staleness_exponent)
                report = FleetReport(
                    client_id=client.client_id,
                    local_round=arrival.local_round,
                    arrival=arrival.at,
                    train_elapsed=arrival.record.elapsed,
                    upload=arrival.upload,
                    energy=arrival.record.energy,
                    missed=arrival.record.missed,
                    staleness=staleness,
                    weight=(
                        float(client.n_samples) * discount
                        if status == "buffered"
                        else 0.0
                    ),
                    status=status,
                )
                self._emit_enqueue(report, round_index)
                buffer.append(report)
                threshold = self.buffer_size
                if knobs is not None and knobs.buffer_scale != 1.0:
                    threshold = max(1, round(threshold * knobs.buffer_scale))
                flush = (
                    sum(1 for r in buffer if r.status == "buffered")
                    >= threshold
                )
            if flush:
                round_record = FleetRound(
                    round_index=round_index,
                    started_at=flushed_at,
                    completed_at=arrival.at,
                    participants=sorted({r.client_id for r in buffer}),
                    reports=buffer,
                    dropped=pending_dropped,
                )
                version = self._commit(round_record, version)
                result.rounds.append(round_record)
                self._emit_round(round_record)
                self._feed_controller(round_record, result)
                # Async knobs advance per commit, not per arrival: the
                # controller sees one feedback per aggregation window.
                knobs = self._round_knobs(len(result.rounds))
                flushed_at = arrival.at
                buffer = []
                pending_dropped = []
            # The client immediately starts its next local round against
            # the *current* model version.
            relaunch = self._launch(client, arrival.at, order, version)
            if relaunch is not None:
                heapq.heappush(heap, (relaunch.at, relaunch.order, relaunch))
                order += 1
        # A trailing partial buffer never reaches the commit threshold;
        # its reports' energy is still the fleet's to account for.
        result.unclaimed_energy = pending_energy + sum(r.energy for r in buffer)
        return result
