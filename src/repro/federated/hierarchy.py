"""Hierarchical (edge) aggregation: server-side work in O(edges), not O(clients).

"Cost-Effective Federated Learning Design" (PAPERS.md) argues that at
deployment scale the server must never touch every client per round; the
standard answer is a two-level topology: clients report to **edge
aggregators**, each edge pre-combines its cohort's updates into one
partial, and the server folds only the edge partials.  This module is
that layer for the fleet engine's progress-probe aggregation path:

* :class:`HierarchySpec` — the topology: ``n_edges`` aggregators, with
  client ``index % n_edges`` assigned to its edge.  The modulo assignment
  deliberately mirrors the fleet's archetype pooling (``index %
  archetypes``), so an edge's cohort is a representative slice of the
  population rather than a device-homogeneous silo.
* :func:`combine_hierarchical` — one commit under the topology: group the
  buffered reports by edge, FedAvg each edge's (progress, weight) pairs
  into an edge partial, then FedAvg the partials under the edges' summed
  weights.  Mathematically this is a reweighted two-stage mean — *not*
  bit-equal to the flat mean, which is why hierarchy is a new discipline
  and not a transparent optimization.  Both engine implementations
  (legacy object loop and vectorized) call **this one function**, so
  ``legacy+hierarchy == vectorized+hierarchy`` stays byte-identical.
* :func:`aggregate_probe` — the scalar FedAvg fast path shared by the
  vectorized commit: replicates
  :meth:`repro.federated.aggregation.FedAvg.aggregate` on plain floats,
  bit-for-bit (same normalization expression, same left-to-right
  accumulation), without allocating one numpy array per client.

Every commit under hierarchy emits one ``hierarchy.edge_aggregate`` event
per contributing edge and a closing ``hierarchy.aggregate`` — O(edges)
trace volume, matching the server-side work.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence
from typing import Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.federated.aggregation import Aggregator, FedAvg
from repro.obs import runtime as obs


@dataclass(frozen=True)
class HierarchySpec:
    """A two-level aggregation topology: ``n_edges`` edge aggregators."""

    n_edges: int

    def __post_init__(self) -> None:
        if self.n_edges < 1:
            raise ConfigurationError(
                f"n_edges must be >= 1, got {self.n_edges}"
            )

    def edge_of(self, client_index: int) -> int:
        """The edge aggregator serving ``client_index``."""
        return client_index % self.n_edges


def aggregate_probe(
    aggregator: Aggregator,
    progresses: Sequence[float],
    weights: Sequence[float],
) -> float:
    """Combine scalar progress probes under ``aggregator``.

    For plain :class:`FedAvg` this is the allocation-free scalar
    replication of the array path: ``norm = w / w.sum()`` (numpy's exact
    normalization expression) followed by the same left-to-right
    ``sum()`` accumulation — np.float64 scalar arithmetic is IEEE-754
    identical to the shape-``(1,)`` array arithmetic it replaces.  Any
    other aggregator gets the real array call.
    """
    if not progresses:
        raise ConfigurationError("cannot aggregate zero probes")
    if type(aggregator) is FedAvg:
        weights_arr = np.asarray(list(weights), dtype=float)
        if weights_arr.size != len(progresses):
            raise ConfigurationError(
                f"got {len(progresses)} probes but {weights_arr.size} weights"
            )
        if np.any(weights_arr < 0) or weights_arr.sum() <= 0:
            raise ConfigurationError(
                "aggregation weights must be non-negative with a positive sum"
            )
        norm = weights_arr / weights_arr.sum()
        acc = 0.0
        for j, progress in enumerate(progresses):
            acc = acc + float(norm[j]) * progress
        return float(acc)
    updates = [[np.asarray([p], dtype=float)] for p in progresses]
    combined = aggregator.aggregate(updates, list(weights))
    return float(combined[0][0])


def combine_hierarchical(
    aggregator: Aggregator,
    hierarchy: HierarchySpec,
    progresses: Sequence[float],
    weights: Sequence[float],
    edges: Sequence[int],
    *,
    t: float,
    round_index: int,
    version: int,
) -> float:
    """One hierarchical commit: edge partials, then the server fold.

    ``progresses``/``weights``/``edges`` are parallel, in buffer order
    (the same order the flat commit would consume).  Edges fold their
    cohorts independently; the server folds the edge partials in
    ascending edge id under each edge's summed weight.  Emits the
    ``hierarchy.*`` events; the caller still emits ``fleet.aggregate``
    with the returned probe, so flat trace tooling keeps working.
    """
    if not (len(progresses) == len(weights) == len(edges)):
        raise ConfigurationError(
            "progresses, weights and edges must be parallel sequences"
        )
    grouped: dict[int, tuple[list[float], list[float]]] = {}
    for progress, weight, edge in zip(progresses, weights, edges):
        bucket = grouped.setdefault(edge, ([], []))
        bucket[0].append(progress)
        bucket[1].append(weight)
    edge_probes: list[float] = []
    edge_weights: list[float] = []
    emitting = obs.enabled()
    for edge in sorted(grouped):
        edge_progresses, cohort_weights = grouped[edge]
        probe = aggregate_probe(aggregator, edge_progresses, cohort_weights)
        weight_total = float(sum(cohort_weights))
        edge_probes.append(probe)
        edge_weights.append(weight_total)
        if emitting:
            obs.emit(
                "hierarchy.edge_aggregate",
                t=t,
                round=round_index,
                edge=edge,
                contributors=len(edge_progresses),
                weight_total=weight_total,
                probe=probe,
            )
    combined = aggregate_probe(aggregator, edge_probes, edge_weights)
    if emitting:
        obs.count("hierarchy.edge_aggregations", len(edge_probes))
        obs.emit(
            "hierarchy.aggregate",
            t=t,
            round=round_index,
            edges=len(edge_probes),
            contributors=len(progresses),
            probe=combined,
            version=version,
        )
        obs.count("hierarchy.aggregations")
    return combined


def edge_assignment(
    hierarchy: Optional[HierarchySpec], indices: Sequence[int]
) -> Optional[list[int]]:
    """Edge ids for ``indices`` under ``hierarchy`` (None when flat)."""
    if hierarchy is None:
        return None
    return [hierarchy.edge_of(index) for index in indices]
