"""Federated-learning substrate: tasks, deadlines, clients, server.

Implements the standard FL workflow of the paper's Fig. 1 — check-in,
selection, configuration, on-device training, reporting, aggregation — with
the client-side training pace delegated to a pluggable controller
(:mod:`repro.core` provides BoFL; :mod:`repro.baselines` provides
Performant/Oracle and others).
"""

from repro.federated.task import (
    FLTaskSpec,
    cifar10_vit,
    imagenet_resnet50,
    imdb_lstm,
    paper_tasks,
)
from repro.federated.deadlines import (
    DeadlineSchedule,
    StaticDeadlines,
    UniformDeadlines,
)
from repro.federated.aggregation import FedAvg, TrimmedMeanAggregator
from repro.federated.async_engine import (
    FLEET_MODES,
    AsyncFederationEngine,
    FleetClient,
    FleetReport,
    FleetResult,
    FleetRound,
    staleness_weight,
)
from repro.federated.selection import (
    AllClientsSelector,
    EnergyAwareSelector,
    RandomSelector,
)
from repro.federated.client import FederatedClient
from repro.federated.server import FederatedServer
from repro.federated.transport import BandwidthEstimator, LinkModel
from repro.federated.reporting import ReportingDeadlineAdapter

__all__ = [
    "AllClientsSelector",
    "AsyncFederationEngine",
    "BandwidthEstimator",
    "DeadlineSchedule",
    "EnergyAwareSelector",
    "FLEET_MODES",
    "FLTaskSpec",
    "FedAvg",
    "FederatedClient",
    "FederatedServer",
    "FleetClient",
    "FleetReport",
    "FleetResult",
    "FleetRound",
    "LinkModel",
    "staleness_weight",
    "RandomSelector",
    "ReportingDeadlineAdapter",
    "StaticDeadlines",
    "TrimmedMeanAggregator",
    "UniformDeadlines",
    "cifar10_vit",
    "imagenet_resnet50",
    "imdb_lstm",
    "paper_tasks",
]
