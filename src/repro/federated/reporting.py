"""Reporting-deadline support: the §2.1 footnote-3 extension.

Some FL servers specify only a *reporting* deadline (training + upload).
:class:`ReportingDeadlineAdapter` wraps any pace controller with the
bandwidth-measurement module the paper sketches: before each round it
converts the reporting deadline into a training deadline using a
conservative online bandwidth estimate, runs the wrapped controller, then
simulates the upload and feeds the observed transfer back into the
estimator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.base import JobCallback, PaceController
from repro.core.records import RoundRecord
from repro.errors import ConfigurationError
from repro.federated.transport import (
    BandwidthEstimator,
    LinkModel,
    training_deadline_from_reporting,
)
from repro.types import Seconds


@dataclass
class ReportingRoundRecord:
    """A training round plus its upload leg."""

    training: RoundRecord
    training_deadline: Seconds
    reporting_deadline: Seconds
    upload_time: Seconds
    #: Whether the server received the update before the reporting deadline.
    reported_in_time: bool

    @property
    def total_elapsed(self) -> Seconds:
        return self.training.elapsed + self.upload_time


class ReportingDeadlineAdapter:
    """Drives a pace controller under reporting (not training) deadlines."""

    def __init__(
        self,
        controller: PaceController,
        model_size_mbit: float,
        link: Optional[LinkModel] = None,
        estimator: Optional[BandwidthEstimator] = None,
        seed: int = 0,
    ) -> None:
        if model_size_mbit <= 0:
            raise ConfigurationError(
                f"model_size_mbit must be positive, got {model_size_mbit}"
            )
        self.controller = controller
        self.model_size_mbit = float(model_size_mbit)
        self.link = link if link is not None else LinkModel()
        self.estimator = estimator if estimator is not None else BandwidthEstimator(
            initial_mbps=self.link.bandwidth_mbps
        )
        self._rng = np.random.default_rng(seed)

    def run_round(
        self,
        jobs: int,
        reporting_deadline: Seconds,
        on_job: Optional[JobCallback] = None,
    ) -> ReportingRoundRecord:
        """One FL round against a reporting deadline.

        The derived training deadline shrinks by the predicted upload time;
        the actual upload is then drawn from the link model and the
        estimator updated, so mispredictions self-correct over rounds.
        """
        training_deadline = training_deadline_from_reporting(
            reporting_deadline, self.model_size_mbit, self.estimator
        )
        record = self.controller.run_round(jobs, training_deadline, on_job)
        upload_time = self.link.transfer_time(self.model_size_mbit, self._rng)
        self.estimator.observe_transfer(self.model_size_mbit, upload_time)
        return ReportingRoundRecord(
            training=record,
            training_deadline=training_deadline,
            reporting_deadline=reporting_deadline,
            upload_time=upload_time,
            reported_in_time=record.elapsed + upload_time
            <= reporting_deadline + 1e-9,
        )
