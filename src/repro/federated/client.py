"""The FL client: local data, local model, and a pace controller.

One :class:`FederatedClient` owns a simulated device, a pace controller
bound to that device, and (optionally) a real numpy model + data shard.
During a round it downloads the global weights, runs its ``W = E x N``
jobs under the controller's DVFS decisions — each device job driving one
real minibatch when a trainer is attached — and reports the updated
weights plus the round record.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.base import PaceController
from repro.core.records import RoundRecord
from repro.errors import ConfigurationError
from repro.federated.task import FLTaskSpec
from repro.ml.data import Dataset
from repro.ml.models import MLPClassifier
from repro.ml.training import LocalTrainer
from repro.types import Seconds


@dataclass
class ClientReport:
    """What a client uploads at the end of a round."""

    client_id: str
    weights: Optional[list[np.ndarray]]
    n_samples: int
    record: RoundRecord

    @property
    def succeeded(self) -> bool:
        """Upload counts only if the deadline was met (Fig. 1, step 3)."""
        return not self.record.missed


class FederatedClient:
    """A device + controller participating in an FL task."""

    def __init__(
        self,
        client_id: str,
        controller: PaceController,
        task: FLTaskSpec,
        *,
        model: Optional[MLPClassifier] = None,
        data: Optional[Dataset] = None,
        seed: int = 0,
    ) -> None:
        if (model is None) != (data is None):
            raise ConfigurationError(
                "model and data must be provided together (or both omitted "
                "for energy-only simulation)"
            )
        self.client_id = client_id
        self.controller = controller
        self.task = task
        self.device = controller.device
        self.model = model
        self._trainer: Optional[LocalTrainer] = None
        if model is not None and data is not None:
            self._trainer = LocalTrainer(
                model, data, batch_size=task.batch_size, seed=seed
            )

    @property
    def jobs_per_round(self) -> int:
        """``W`` on this client's device.

        With a real trainer attached, ``W`` follows the actual shard size
        (``E x ceil(samples / B)``) so deadlines and training agree; the
        spec's Table 2 value is used for energy-only simulation.
        """
        if self._trainer is not None:
            return self.task.epochs * self._trainer.minibatches_per_epoch
        return self.task.jobs_per_round(self.device.spec)

    @property
    def n_samples(self) -> int:
        if self._trainer is not None:
            return len(self._trainer.data)
        return self.task.samples_on(self.device.spec)

    def measure_t_min(self) -> Seconds:
        """The fastest possible round duration on this device.

        Uses the device's ground-truth model the way the paper measured
        ``T_min`` on the testbed before the experiments (Table 2).
        """
        x_max = self.device.space.max_configuration()
        return self.device.model.latency(x_max) * self.jobs_per_round

    def train_round(self, global_weights: Optional[list[np.ndarray]], deadline: Seconds) -> ClientReport:
        """Run one FL round: download, train W jobs before deadline, report."""
        jobs = self.jobs_per_round
        on_job = None
        if self._trainer is not None:
            if global_weights is not None:
                self._trainer.model.set_weights(global_weights)
                self._trainer.optimizer.reset()
            queued = self._trainer.start_round(self.task.epochs)
            # The simulated job count (E x N with N = ceil(samples / B))
            # must match the trainer's queue so each device job maps to one
            # real minibatch.
            jobs = queued

            def on_job() -> None:  # noqa: ANN202 - local callback
                self._trainer.train_job()

        record = self.controller.run_round(jobs, deadline, on_job=on_job)
        weights = None
        if self._trainer is not None:
            weights = self._trainer.model.get_weights()
        return ClientReport(
            client_id=self.client_id,
            weights=weights,
            n_samples=self.n_samples,
            record=record,
        )
