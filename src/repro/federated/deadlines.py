"""Round-deadline schedules.

The paper's server "assigns a training deadline for each training round"
(§2.1); the evaluation samples 100 deadlines uniformly from
``[T_min, T_max]`` where ``T_min = T(x_max) * W`` is the fastest-possible
round and ``T_max = r * T_min`` for ratios ``r`` in {2.0, 2.5, 3.0, 3.5,
4.0} (Table 2).  Deadlines at exactly ``T_min`` leave zero slack, so the
uniform schedule optionally floors slightly above it.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.errors import ConfigurationError
from repro.types import Seconds


class DeadlineSchedule(ABC):
    """Produces the deadline list ``T`` for a campaign."""

    @abstractmethod
    def generate(self, t_min: Seconds, rounds: int, seed: int = 0) -> list[Seconds]:
        """Deadlines for ``rounds`` rounds, given the measured ``T_min``."""

    @staticmethod
    def _check(t_min: Seconds, rounds: int) -> None:
        if t_min <= 0:
            raise ConfigurationError(f"T_min must be positive, got {t_min}")
        if rounds < 1:
            raise ConfigurationError(f"rounds must be >= 1, got {rounds}")


class UniformDeadlines(DeadlineSchedule):
    """IID-uniform deadlines over ``[floor * T_min, ratio * T_min]``.

    ``floor`` defaults to 1.05 so that even the tightest round leaves the
    guardian a little slack over pure ``x_max`` execution — a deadline of
    exactly ``T_min`` is only meetable with zero measurement noise.
    """

    def __init__(self, ratio: float, floor: float = 1.05) -> None:
        if ratio <= 1.0:
            raise ConfigurationError(f"ratio must exceed 1.0, got {ratio}")
        if not 1.0 <= floor <= ratio:
            raise ConfigurationError(
                f"floor must lie in [1.0, ratio], got floor={floor}, ratio={ratio}"
            )
        self.ratio = float(ratio)
        self.floor = float(floor)

    def generate(self, t_min: Seconds, rounds: int, seed: int = 0) -> list[Seconds]:
        self._check(t_min, rounds)
        rng = np.random.default_rng(seed)
        draws = rng.uniform(self.floor * t_min, self.ratio * t_min, size=rounds)
        return [float(d) for d in draws]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"UniformDeadlines(ratio={self.ratio}, floor={self.floor})"


class StaticDeadlines(DeadlineSchedule):
    """The vanilla static-timeout server design ([9] in the paper)."""

    def __init__(self, multiple: float) -> None:
        if multiple < 1.0:
            raise ConfigurationError(f"multiple must be >= 1.0, got {multiple}")
        self.multiple = float(multiple)

    def generate(self, t_min: Seconds, rounds: int, seed: int = 0) -> list[Seconds]:
        self._check(t_min, rounds)
        return [self.multiple * t_min] * rounds

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"StaticDeadlines(multiple={self.multiple})"
