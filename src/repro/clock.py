"""Simulated time.

All components share a :class:`SimulationClock` instead of reading the wall
clock, so campaigns are exactly reproducible and can simulate hours of
federated training in milliseconds.  The clock only moves forward.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.types import Seconds


class SimulationClock:
    """A monotonically advancing simulated clock.

    Components that consume time (job execution, DVFS switches, MBO
    computation windows) call :meth:`advance`; observers read :attr:`now`.
    """

    def __init__(self, start: Seconds = 0.0) -> None:
        if start < 0:
            raise ConfigurationError(f"clock cannot start before zero, got {start}")
        self._now = float(start)

    @property
    def now(self) -> Seconds:
        """Current simulated time in seconds."""
        return self._now

    def advance(self, dt: Seconds) -> Seconds:
        """Move time forward by ``dt`` seconds and return the new time."""
        if dt < 0:
            raise ConfigurationError(f"cannot advance the clock backwards (dt={dt})")
        self._now += float(dt)
        return self._now

    def advance_to(self, timestamp: Seconds) -> Seconds:
        """Jump forward to ``timestamp`` (no-op if already past it)."""
        if timestamp > self._now:
            self._now = float(timestamp)
        return self._now

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SimulationClock(now={self._now:.6f})"
