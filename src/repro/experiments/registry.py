"""Experiment registry: id -> (run, render, description).

The single source of truth mapping the paper's tables/figures (plus the
repo's ablations) to executable drivers; used by the benchmark suite and
by tooling that regenerates EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable
from typing import Optional

from repro.core.records import CampaignResult
from repro.errors import ConfigurationError
from repro.experiments import grids
from repro.sim.executor import ProgressCallback
from repro.experiments import (
    ablations,
    ext_accuracy,
    ext_async_fleet,
    ext_controllers,
    ext_fleet,
    ext_resilience,
    ext_servertune,
    fig2_spread,
    fig3_gpu_sweep,
    fig4_cpu_sweep,
    fig5_hardware,
    fig9_energy,
    fig11_pareto,
    fig12_sensitivity,
    fig13_overhead,
    tab1_specs,
    tab2_tasks,
    tab3_walkthrough,
)


@dataclass(frozen=True)
class Experiment:
    """A registered paper artifact reproduction.

    ``grid`` (optional) enumerates the campaigns ``run`` will request,
    with the same keyword defaults; artifacts without one simply cannot be
    warmed in parallel and execute serially.
    """

    id: str
    description: str
    run: Callable[..., dict]
    render: Callable[[dict], str]
    grid: Optional[Callable[..., list]] = None


def _fig10_run(**kwargs: object) -> dict:
    kwargs.setdefault("ratio", 4.0)
    return fig9_energy.run(**kwargs)


EXPERIMENTS: dict[str, Experiment] = {
    exp.id: exp
    for exp in (
        Experiment(
            "fig2",
            "Motivation: latency/energy spread over the DVFS space",
            fig2_spread.run,
            fig2_spread.render,
        ),
        Experiment(
            "fig3",
            "ViT performance vs GPU frequency at two CPU clocks",
            fig3_gpu_sweep.run,
            fig3_gpu_sweep.render,
        ),
        Experiment(
            "fig4",
            "Three models' performance vs CPU frequency",
            fig4_cpu_sweep.run,
            fig4_cpu_sweep.render,
        ),
        Experiment(
            "fig5",
            "Normalized AGX vs TX2 performance at x_max",
            fig5_hardware.run,
            fig5_hardware.render,
        ),
        Experiment(
            "tab1",
            "Testbed hardware specifications",
            tab1_specs.run,
            tab1_specs.render,
        ),
        Experiment(
            "tab2",
            "FL task specifications with measured T_min",
            tab2_tasks.run,
            tab2_tasks.render,
        ),
        Experiment(
            "fig9",
            "Per-round energy, T_max/T_min = 2 (BoFL/Performant/Oracle)",
            fig9_energy.run,
            fig9_energy.render,
            grid=grids.fig9_grid,
        ),
        Experiment(
            "fig10",
            "Per-round energy, T_max/T_min = 4 (BoFL/Performant/Oracle)",
            _fig10_run,
            fig9_energy.render,
            grid=grids.fig10_grid,
        ),
        Experiment(
            "fig11",
            "BoFL searched Pareto front vs actual front",
            fig11_pareto.run,
            fig11_pareto.render,
            grid=grids.fig11_grid,
        ),
        Experiment(
            "tab3",
            "Explorations and Pareto points per round",
            tab3_walkthrough.run,
            tab3_walkthrough.render,
            grid=grids.tab3_grid,
        ),
        Experiment(
            "fig12",
            "Sensitivity to deadline length (improvement & regret)",
            fig12_sensitivity.run,
            fig12_sensitivity.render,
            grid=grids.fig12_grid,
        ),
        Experiment(
            "fig13",
            "MBO module overhead",
            fig13_overhead.run,
            fig13_overhead.render,
            grid=grids.fig13_grid,
        ),
        Experiment(
            "abl_guardian",
            "Ablation: deadline guardian on/off under tight deadlines",
            ablations.run_guardian,
            ablations.render_guardian,
        ),
        Experiment(
            "abl_acquisition",
            "Ablation: EHVI vs random exploration",
            ablations.run_acquisition,
            ablations.render_acquisition,
        ),
        Experiment(
            "abl_tau",
            "Ablation: measurement duration tau",
            ablations.run_tau,
            ablations.render_tau,
        ),
        Experiment(
            "abl_exploit",
            "Ablation: ILP mixture vs single-configuration exploitation",
            ablations.run_exploit,
            ablations.render_exploit,
        ),
        Experiment(
            "abl_parego",
            "Ablation: EHVI vs ParEGO vs random at equal budget",
            ablations.run_parego,
            ablations.render_parego,
        ),
        Experiment(
            "abl_thermal",
            "Extension: thermal throttling with drift re-exploration",
            ablations.run_thermal,
            ablations.render_thermal,
        ),
        Experiment(
            "ext_accuracy",
            "Extension: learning-trajectory parity under pace control",
            ext_accuracy.run,
            ext_accuracy.render,
        ),
        Experiment(
            "ext_fleet",
            "Extension: fleet-level energy in a heterogeneous federation",
            ext_fleet.run,
            ext_fleet.render,
        ),
        Experiment(
            "ext_async_fleet",
            "Extension: sync vs semi-sync vs async federation disciplines",
            ext_async_fleet.run,
            ext_async_fleet.render,
            grid=grids.ext_async_fleet_grid,
        ),
        Experiment(
            "ext_controllers",
            "Extension: all-controller energy scoreboard",
            ext_controllers.run,
            ext_controllers.render,
            grid=grids.ext_controllers_grid,
        ),
        Experiment(
            "ext_resilience",
            "Extension: recovery policies under injected faults",
            ext_resilience.run,
            ext_resilience.render,
            grid=grids.ext_resilience_grid,
        ),
        Experiment(
            "ext_servertune",
            "Extension: adaptive server co-optimization vs static knobs",
            ext_servertune.run,
            ext_servertune.render,
            grid=grids.ext_servertune_grid,
        ),
    )
}


def get_experiment(experiment_id: str) -> Experiment:
    """Look an experiment up by id (e.g. ``"fig9"``)."""
    try:
        return EXPERIMENTS[experiment_id]
    except KeyError:
        raise ConfigurationError(
            f"unknown experiment {experiment_id!r}; available: "
            f"{', '.join(sorted(EXPERIMENTS))}"
        ) from None


def warm_experiment_cache(
    experiment_id: str,
    *,
    workers: Optional[int] = None,
    progress: Optional[ProgressCallback] = None,
    **grid_kwargs: object,
) -> list[CampaignResult]:
    """Precompute an artifact's campaigns in parallel.

    Expands the experiment's grid (keyword overrides mirror its ``run``
    signature: ``ratio``, ``rounds``, ``seed``), executes it through a
    :class:`~repro.sim.executor.CampaignExecutor`, and primes the runner's
    in-process cache so the subsequent serial ``run()`` is pure lookups.
    Returns the per-campaign timing records; experiments without a grid
    warm nothing and return an empty list.
    """
    from repro.sim.executor import CampaignExecutor

    experiment = get_experiment(experiment_id)
    if experiment.grid is None:
        return []
    specs = experiment.grid(**grid_kwargs)
    executor = CampaignExecutor(workers=workers, progress=progress)
    report = executor.run(specs)
    return report.timings
