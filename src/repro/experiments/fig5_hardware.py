"""Fig. 5 — normalized AGX performance relative to TX2 at maximum clocks.

Paper values (AGX / TX2): latency 0.39 / 0.32 / 0.80 and energy
0.85 / 0.70 / 0.80 for ViT / ResNet50 / LSTM.

Note: the paper's Fig. 5 latency ratio for LSTM (0.80) is inconsistent
with its own Table 2 ``T_min`` values, which imply 46.1/160 / (55.6/80) =
0.41.  This reproduction anchors to Table 2 (the quantity every downstream
experiment depends on) and therefore reports ~0.41 for LSTM latency; the
discrepancy is recorded in EXPERIMENTS.md.
"""

from __future__ import annotations


from repro.analysis.tables import ascii_table
from repro.hardware.devices import get_device
from repro.workloads.zoo import get_workload

PAPER_RATIOS = {
    "vit": {"latency": 0.39, "energy": 0.85},
    "resnet50": {"latency": 0.32, "energy": 0.70},
    "lstm": {"latency": 0.80, "energy": 0.80},
}


def run(workloads: tuple = ("vit", "resnet50", "lstm")) -> dict:
    agx, tx2 = get_device("agx"), get_device("tx2")
    rows = []
    for name in workloads:
        workload = get_workload(name)
        model_agx = workload.performance_model(agx)
        model_tx2 = workload.performance_model(tx2)
        t_agx, e_agx = model_agx.objectives(agx.space.max_configuration())
        t_tx2, e_tx2 = model_tx2.objectives(tx2.space.max_configuration())
        rows.append(
            {
                "workload": name,
                "latency_ratio": t_agx / t_tx2,
                "energy_ratio": e_agx / e_tx2,
                "paper": PAPER_RATIOS.get(name),
            }
        )
    return {"rows": rows}


def render(payload: dict) -> str:
    rows = []
    for r in payload["rows"]:
        paper = r["paper"] or {}
        rows.append(
            (
                r["workload"],
                f"{r['latency_ratio']:.2f}",
                f"{paper.get('latency', float('nan')):.2f}",
                f"{r['energy_ratio']:.2f}",
                f"{paper.get('energy', float('nan')):.2f}",
            )
        )
    return ascii_table(
        ["workload", "latency AGX/TX2", "paper", "energy AGX/TX2", "paper"],
        rows,
        title="Fig. 5 — normalized AGX performance vs TX2 at x_max",
    )
