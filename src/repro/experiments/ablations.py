"""Ablation experiments for the design choices DESIGN.md calls out.

* **guardian** — safe exploration (Eqn. 2) on vs off, under tight
  deadlines: deadline-miss rate and energy.
* **acquisition** — EHVI suggestions vs uniform random phase-2
  exploration: searched-front quality and end-to-end energy.
* **tau** — sensitivity to the reference measurement duration: shorter
  windows are noisier (worse fronts), longer windows eat the exploitation
  budget.
* **exploit** — ILP mixture schedules vs single-best-configuration
  exploitation.
"""

from __future__ import annotations


import numpy as np

from repro.analysis.metrics import hypervolume_ratio, improvement_vs_performant
from repro.analysis.tables import ascii_table
from repro.bayesopt.hypervolume import reference_from_observations
from repro.core.config import BoFLConfig
from repro.sim.runner import run_campaign


def run_guardian(
    device: str = "agx",
    task: str = "vit",
    ratio: float = 1.3,
    rounds: int = 30,
    seed: int = 0,
) -> dict:
    """Guardian on/off under tight deadlines."""
    variants = {}
    for enabled in (True, False):
        config = BoFLConfig(seed=seed, guardian_enabled=enabled)
        result = run_campaign(
            device, task, "bofl", ratio, rounds=rounds, seed=seed, bofl_config=config
        )
        variants["guardian_on" if enabled else "guardian_off"] = {
            "missed_rounds": result.missed_rounds,
            "energy": result.total_energy,
            "explored": result.explored_total,
        }
    return {"device": device, "task": task, "ratio": ratio, "variants": variants}


def render_guardian(payload: dict) -> str:
    rows = [
        (name, v["missed_rounds"], f"{v['energy']:.0f}", v["explored"])
        for name, v in payload["variants"].items()
    ]
    return ascii_table(
        ["variant", "missed rounds", "energy (J)", "explored"],
        rows,
        title=(
            f"Ablation: deadline guardian ({payload['task']}, tight deadlines "
            f"T_max/T_min={payload['ratio']})"
        ),
    )


def run_acquisition(
    device: str = "agx",
    task: str = "vit",
    ratio: float = 2.0,
    rounds: int = 40,
    seed: int = 0,
) -> dict:
    """EHVI vs random phase-2 suggestions."""
    bofl = run_campaign(device, task, "bofl", ratio, rounds=rounds, seed=seed)
    random_search = run_campaign(
        device, task, "random_search", ratio, rounds=rounds, seed=seed
    )
    performant = run_campaign(device, task, "performant", ratio, rounds=rounds, seed=seed)
    oracle = run_campaign(device, task, "oracle", ratio, rounds=rounds, seed=seed)
    true = np.array(oracle.final_front)
    payload = {"device": device, "task": task, "variants": {}}
    for name, result in (("ehvi", bofl), ("random", random_search)):
        found = np.array(result.final_front)
        reference = reference_from_observations(np.vstack([found, true]), margin=0.05)
        payload["variants"][name] = {
            "hv_ratio": hypervolume_ratio(found, true, reference),
            "front_points": int(found.shape[0]),
            "explored": result.explored_total,
            "improvement": improvement_vs_performant(result, performant),
        }
    return payload


def render_acquisition(payload: dict) -> str:
    rows = [
        (
            name,
            f"{v['hv_ratio'] * 100:.1f}%",
            v["front_points"],
            v["explored"],
            f"{v['improvement'] * 100:.1f}%",
        )
        for name, v in payload["variants"].items()
    ]
    return ascii_table(
        ["suggestions", "HV ratio", "front pts", "explored", "improvement"],
        rows,
        title=f"Ablation: EHVI vs random exploration ({payload['task']})",
    )


def run_tau(
    device: str = "agx",
    task: str = "vit",
    ratio: float = 2.0,
    rounds: int = 40,
    taus: tuple = (1.0, 2.5, 5.0, 10.0),
    seed: int = 0,
) -> dict:
    """Sensitivity to the reference measurement duration tau."""
    performant = run_campaign(device, task, "performant", ratio, rounds=rounds, seed=seed)
    variants = {}
    for tau in taus:
        config = BoFLConfig(seed=seed, tau=tau)
        result = run_campaign(
            device, task, "bofl", ratio, rounds=rounds, seed=seed, bofl_config=config
        )
        explore_rounds = sum(
            1 for r in result.records if r.phase != "exploitation"
        )
        variants[tau] = {
            "improvement": improvement_vs_performant(result, performant),
            "explored": result.explored_total,
            "explore_rounds": explore_rounds,
            "missed": result.missed_rounds,
        }
    return {"device": device, "task": task, "variants": variants}


def render_tau(payload: dict) -> str:
    rows = [
        (
            f"{tau:.1f}s",
            f"{v['improvement'] * 100:.1f}%",
            v["explored"],
            v["explore_rounds"],
            v["missed"],
        )
        for tau, v in payload["variants"].items()
    ]
    return ascii_table(
        ["tau", "improvement", "explored", "exploration rounds", "missed"],
        rows,
        title=f"Ablation: measurement duration tau ({payload['task']})",
    )


def run_parego(
    device: str = "agx",
    workload: str = "vit",
    n_initial: int = 21,
    batches: int = 5,
    batch_size: int = 10,
    seed: int = 0,
) -> dict:
    """EHVI vs ParEGO vs random at an equal evaluation budget.

    Pure front-search comparison on the true surfaces (no FL loop): all
    three strategies start from the same Sobol sample and spend the same
    number of evaluations; front quality is scored by hypervolume ratio
    against the exact front.
    """
    import numpy as np

    from repro.bayesopt.hypervolume import hypervolume_2d
    from repro.bayesopt.optimizer import MultiObjectiveBayesianOptimizer
    from repro.bayesopt.parego import ParEGOSuggester
    from repro.bayesopt.pareto import pareto_front
    from repro.bayesopt.sampling import sobol_configurations, uniform_configurations
    from repro.hardware.devices import get_device
    from repro.workloads.zoo import get_workload

    spec = get_device(device)
    model = get_workload(workload).performance_model(spec)
    initial = [spec.space.max_configuration()] + sobol_configurations(
        spec.space, n_initial, seed=seed, exclude=[spec.space.max_configuration()]
    )
    latencies, energies = model.profile_space()
    true_front = pareto_front(np.stack([latencies, energies], axis=1))
    # Reference just beyond the front's own bounding box: hypervolume then
    # measures *front* quality, not coverage of the (easy) interior.
    reference = true_front.max(axis=0) * 1.05
    true_hv = hypervolume_2d(true_front, reference)

    def final_ratio(values: "np.ndarray") -> float:
        return hypervolume_2d(np.asarray(values), reference) / true_hv

    results = {}

    # EHVI
    ehvi = MultiObjectiveBayesianOptimizer(spec.space, seed=seed, fit_restarts=1)
    for config in initial:
        ehvi.add_observation(config, *model.objectives(config))
    for _ in range(batches):
        ehvi.fit()
        for pick in ehvi.suggest(batch_size):
            ehvi.add_observation(pick, *model.objectives(pick))
    _, ehvi_values = ehvi.objectives_matrix()
    results["ehvi"] = {
        "hv_ratio": final_ratio(ehvi_values),
        "evaluations": ehvi.n_observations,
    }

    # ParEGO
    parego = ParEGOSuggester(spec.space, seed=seed)
    for config in initial:
        parego.add_observation(config, *model.objectives(config))
    for _ in range(batches):
        parego.fit()
        for pick in parego.suggest(batch_size):
            parego.add_observation(pick, *model.objectives(pick))
    results["parego"] = {
        "hv_ratio": final_ratio(np.array(list(parego._observations.values()))),
        "evaluations": parego.n_observations,
    }

    # Random
    rng = np.random.default_rng(seed + 7)
    random_obs = {c: model.objectives(c) for c in initial}
    for _ in range(batches):
        for pick in uniform_configurations(
            spec.space, batch_size, rng, exclude=list(random_obs)
        ):
            random_obs[pick] = model.objectives(pick)
    results["random"] = {
        "hv_ratio": final_ratio(np.array(list(random_obs.values()))),
        "evaluations": len(random_obs),
    }
    return {"device": device, "workload": workload, "variants": results}


def render_parego(payload: dict) -> str:
    rows = [
        (name, f"{v['hv_ratio'] * 100:.1f}%", v["evaluations"])
        for name, v in payload["variants"].items()
    ]
    return ascii_table(
        ["strategy", "HV ratio vs true front", "evaluations"],
        rows,
        title=(
            f"Ablation: acquisition strategies at equal budget "
            f"({payload['workload']} on {payload['device']})"
        ),
    )


def run_thermal(
    rounds: int = 30,
    seed: int = 0,
    drift_threshold: float = 0.08,
) -> dict:
    """Thermal throttling + drift re-exploration (extension experiment).

    Runs BoFL on a board whose sustained load heats it into throttling —
    invalidating every cold measurement — with the drift detector off and
    on.  Compares model staleness (EWMA of plan-vs-reality latency error),
    guardian sprints during exploitation, deadline misses and energy.
    """
    from repro.core.controller import BoFLController
    from repro.federated.deadlines import UniformDeadlines
    from repro.hardware.device import SimulatedDevice
    from repro.hardware.thermal import ThermalModel
    from repro.hardware.devices import jetson_agx
    from repro.workloads.zoo import vit

    jobs = 200  # CIFAR10-ViT on the AGX
    variants = {}
    for drift in (False, True):
        thermal = ThermalModel(
            r_th=2.3,
            tau_th=90.0,
            t_ambient=25.0,
            throttle_start=42.0,
            throttle_full=58.0,
            max_slowdown=1.3,
        )
        device = SimulatedDevice(jetson_agx(), vit(), seed=seed, thermal=thermal)
        config = BoFLConfig(
            seed=seed,
            drift_reexploration=drift,
            drift_threshold=drift_threshold,
        )
        controller = BoFLController(device, config)
        t_min_cold = device.model.latency(device.space.max_configuration()) * jobs
        deadlines = UniformDeadlines(3.2, floor=1.8).generate(
            t_min_cold, rounds, seed=seed + 5
        )
        records = [controller.run_round(jobs, d) for d in deadlines]
        variants["adaptive" if drift else "static"] = {
            "restarts": controller.restarts,
            "drift_ewma": controller._drift_ewma,
            "exploit_sprints": sum(
                r.guardian_triggered for r in records if r.phase == "exploitation"
            ),
            "missed": sum(r.missed for r in records),
            "energy": sum(r.energy for r in records),
            "final_temperature": device.thermal.temperature,
        }
    return {"rounds": rounds, "variants": variants}


def render_thermal(payload: dict) -> str:
    rows = [
        (
            name,
            v["restarts"],
            f"{v['drift_ewma']:.3f}",
            v["exploit_sprints"],
            v["missed"],
            f"{v['energy']:.0f}",
            f"{v['final_temperature']:.1f}C",
        )
        for name, v in payload["variants"].items()
    ]
    return ascii_table(
        [
            "controller",
            "restarts",
            "plan error (EWMA)",
            "exploit sprints",
            "missed",
            "energy (J)",
            "final temp",
        ],
        rows,
        title=(
            "Extension: thermal throttling with/without drift re-exploration "
            f"({payload['rounds']} rounds)"
        ),
    )


def run_exploit(
    device: str = "agx",
    task: str = "vit",
    ratio: float = 2.0,
    rounds: int = 40,
    seed: int = 0,
) -> dict:
    """ILP mixture vs single-best-configuration exploitation."""
    performant = run_campaign(device, task, "performant", ratio, rounds=rounds, seed=seed)
    variants = {}
    for mixture in (True, False):
        config = BoFLConfig(seed=seed, exploit_mixture=mixture)
        result = run_campaign(
            device, task, "bofl", ratio, rounds=rounds, seed=seed, bofl_config=config
        )
        variants["ilp_mixture" if mixture else "single_config"] = {
            "energy": result.total_energy,
            "improvement": improvement_vs_performant(result, performant),
            "missed": result.missed_rounds,
        }
    return {"device": device, "task": task, "variants": variants}


def render_exploit(payload: dict) -> str:
    rows = [
        (name, f"{v['energy']:.0f}", f"{v['improvement'] * 100:.1f}%", v["missed"])
        for name, v in payload["variants"].items()
    ]
    return ascii_table(
        ["exploitation", "energy (J)", "improvement", "missed"],
        rows,
        title=f"Ablation: ILP mixture vs single configuration ({payload['task']})",
    )
