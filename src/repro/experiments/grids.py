"""Campaign grids behind each experiment driver.

A driver's ``run()`` consumes campaigns through the in-process memo, so
the cheapest way to parallelize an artifact is to know — declaratively —
which campaigns it will ask for and warm the cache through the
:class:`~repro.sim.executor.CampaignExecutor` first.  Each function here
mirrors the corresponding driver's defaults exactly: warming with a grid
then running the driver serially is result-identical to the serial run.

Drivers whose campaigns depend on internal config variations (the
ablations) are deliberately absent; they fall back to serial execution.
"""

from __future__ import annotations

from typing import Optional

from repro.sim.executor import CampaignSpec, expand_grid
from repro.sim.runner import CONTROLLER_NAMES

_TASKS = ("vit", "resnet50", "lstm")
_TRIO = ("bofl", "performant", "oracle")


def fig9_grid(
    ratio: float = 2.0, rounds: int = 40, seed: int = 0
) -> list[CampaignSpec]:
    """Figs. 9/10: the controller trio per task at one deadline ratio."""
    return expand_grid(
        devices=("agx",), tasks=_TASKS, controllers=_TRIO,
        ratios=(ratio,), seeds=(seed,), rounds=rounds,
    )


def fig10_grid(
    ratio: float = 4.0, rounds: int = 40, seed: int = 0
) -> list[CampaignSpec]:
    return fig9_grid(ratio=ratio, rounds=rounds, seed=seed)


def fig11_grid(
    ratio: float = 2.0, rounds: int = 40, seed: int = 0
) -> list[CampaignSpec]:
    """Fig. 11: BoFL's searched front vs the Oracle front per task."""
    return expand_grid(
        devices=("agx",), tasks=_TASKS, controllers=("bofl", "oracle"),
        ratios=(ratio,), seeds=(seed,), rounds=rounds,
    )


def tab3_grid(
    ratio: float = 2.0, rounds: int = 40, seed: int = 0
) -> list[CampaignSpec]:
    """Table 3: the BoFL exploration walkthrough per task."""
    return expand_grid(
        devices=("agx",), tasks=_TASKS, controllers=("bofl",),
        ratios=(ratio,), seeds=(seed,), rounds=rounds,
    )


def fig12_grid(
    ratio: Optional[float] = None, rounds: int = 100, seed: int = 0
) -> list[CampaignSpec]:
    """Fig. 12: the trio per task over the deadline-ratio sweep."""
    ratios = (ratio,) if ratio is not None else (2.0, 2.5, 3.0, 3.5, 4.0)
    return expand_grid(
        devices=("agx",), tasks=_TASKS, controllers=_TRIO,
        ratios=ratios, seeds=(seed,), rounds=rounds,
    )


def fig13_grid(
    ratio: float = 2.0, rounds: int = 100, seed: int = 0
) -> list[CampaignSpec]:
    """Fig. 13: BoFL campaigns on both devices (MBO overhead)."""
    return expand_grid(
        devices=("agx", "tx2"), tasks=_TASKS, controllers=("bofl",),
        ratios=(ratio,), seeds=(seed,), rounds=rounds,
    )


def ext_controllers_grid(
    ratio: float = 2.0, rounds: int = 40, seed: int = 0
) -> list[CampaignSpec]:
    """Extension scoreboard: every controller on agx/vit."""
    return expand_grid(
        devices=("agx",), tasks=("vit",), controllers=CONTROLLER_NAMES,
        ratios=(ratio,), seeds=(seed,), rounds=rounds,
    )


def ext_async_fleet_grid(
    ratio: float = 2.0, rounds: int = 6, seed: int = 0, clients: int = 36
) -> list[CampaignSpec]:
    """Async-fleet extension: the unique client-trace campaigns.

    Archetype pooling means a 36-client fleet needs far fewer than 36
    campaigns; the dedup here mirrors the executor's key-level dedup so
    the warmed set is exactly what :func:`prepare_fleet` will request.
    """
    from repro.experiments.ext_async_fleet import base_spec
    from repro.sim.fleet import build_fleet_clients, campaign_spec_for

    fleet = base_spec(clients=clients, rounds=rounds, ratio=ratio, seed=seed)
    seen, specs = set(), []
    for client in build_fleet_clients(fleet):
        spec = campaign_spec_for(client, fleet)
        if spec.key() not in seen:
            seen.add(spec.key())
            specs.append(spec)
    return specs


def ext_servertune_grid(
    ratio: float = 2.0, rounds: int = 6, seed: int = 0, clients: int = 24
) -> list[CampaignSpec]:
    """Server co-optimization extension: every configuration's trace set.

    Static variants share campaign keys across deadline ratios they have
    in common; adaptive variants key separately (the servertune spec
    rides on each client's campaign).  The dedup mirrors the executor's.
    """
    from repro.experiments.ext_servertune import base_spec, variant_specs
    from repro.sim.fleet import build_fleet_clients, campaign_spec_for

    base = base_spec(clients=clients, rounds=rounds, ratio=ratio, seed=seed)
    seen, specs = set(), []
    for variant in variant_specs(base).values():
        for client in build_fleet_clients(variant):
            spec = campaign_spec_for(client, variant)
            if spec.key() not in seen:
                seen.add(spec.key())
                specs.append(spec)
    return specs


def ext_resilience_grid(
    ratio: float = 2.0, rounds: int = 30, seed: int = 0, preset: str = "mixed"
) -> list[CampaignSpec]:
    """Resilience ablation: fault-free baseline plus both recovery policies."""
    from repro.faults.recovery import NO_RECOVERY, RecoveryPolicy
    from repro.sim.chaos import preset_schedule

    schedule = preset_schedule(preset, seed, rounds)
    base = CampaignSpec(
        device="agx", task="vit", controller="bofl",
        deadline_ratio=ratio, rounds=rounds, seed=seed,
    )
    return [
        base,
        CampaignSpec(
            device="agx", task="vit", controller="bofl",
            deadline_ratio=ratio, rounds=rounds, seed=seed,
            fault_schedule=schedule, recovery_policy=RecoveryPolicy(),
        ),
        CampaignSpec(
            device="agx", task="vit", controller="bofl",
            deadline_ratio=ratio, rounds=rounds, seed=seed,
            fault_schedule=schedule, recovery_policy=NO_RECOVERY,
        ),
    ]
