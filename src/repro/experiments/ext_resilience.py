"""Extension experiment: recovery policies under a mixed fault storm.

Runs the same seeded mixed-preset chaos campaign twice — once with the
full recovery policy (checkpoint/restore + guardian escalation) and once
with :data:`~repro.faults.recovery.NO_RECOVERY` — against a shared
fault-free baseline, and reports the resilience metrics side by side.
The expected picture: recovery keeps the deadline-miss rate and energy
regret bounded, while the defenseless run lets corrupted measurement
windows poison the optimizer's beliefs.
"""

from __future__ import annotations

from repro.analysis.tables import ascii_table
from repro.sim.chaos import run_chaos


def run(
    device: str = "agx",
    task: str = "vit",
    ratio: float = 2.0,
    rounds: int = 30,
    seed: int = 0,
    preset: str = "mixed",
) -> dict:
    variants = {}
    for label, recovery in (("recovery", True), ("no-recovery", False)):
        outcome = run_chaos(
            device,
            task,
            "bofl",
            ratio,
            rounds=rounds,
            seed=seed,
            preset=preset,
            recovery=recovery,
        )
        chaos = outcome.faulted.chaos
        variants[label] = {
            "energy": outcome.metrics.faulted_energy,
            "regret": outcome.metrics.energy_regret,
            "regret_fraction": outcome.metrics.energy_regret_fraction,
            "missed": outcome.metrics.missed_rounds,
            "miss_rate": outcome.metrics.miss_rate,
            "mean_recovery_rounds": outcome.metrics.mean_recovery_rounds,
            "restores": chaos.restores if chaos is not None else 0,
            "escalations": chaos.escalations if chaos is not None else 0,
        }
        baseline_energy = outcome.metrics.baseline_energy
        faulted_rounds = outcome.metrics.faulted_rounds
        injected = len(outcome.schedule)
    return {
        "device": device,
        "task": task,
        "ratio": ratio,
        "rounds": rounds,
        "preset": preset,
        "injected": injected,
        "faulted_rounds": faulted_rounds,
        "baseline_energy": baseline_energy,
        "variants": variants,
    }


def render(payload: dict) -> str:
    rows = []
    for label in ("recovery", "no-recovery"):
        stats = payload["variants"][label]
        rows.append(
            (
                label,
                f"{stats['energy']:.0f}",
                f"{stats['regret']:+.0f} ({stats['regret_fraction']:+.1%})",
                f"{stats['missed']} ({stats['miss_rate']:.0%})",
                f"{stats['mean_recovery_rounds']:.1f}",
                stats["restores"],
                stats["escalations"],
            )
        )
    return ascii_table(
        [
            "policy",
            "energy (J)",
            "regret vs fault-free",
            "missed",
            "recovery rounds",
            "restores",
            "escalations",
        ],
        rows,
        title=(
            f"Extension: resilience under '{payload['preset']}' faults — "
            f"{payload['task']} on {payload['device']}, "
            f"{payload['rounds']} rounds, {payload['injected']} faults "
            f"({payload['faulted_rounds']} rounds touched), baseline "
            f"{payload['baseline_energy']:.0f} J"
        ),
    )
