"""Extension experiment: every controller on one scoreboard.

Runs all six pace controllers — BoFL, the paper's two comparison targets,
and this repo's three extension baselines — on the same task, deadlines
and noise, and reports total energy, deadline misses and exploration
volume.  The expected ordering:

    Oracle <= BoFL < {random-search, linear, ondemand} < Performant

with only the deadline-blind ondemand governor ever missing a round.
"""

from __future__ import annotations


from repro.analysis.tables import ascii_table
from repro.sim.runner import CONTROLLER_NAMES, run_campaign


def run(
    device: str = "agx",
    task: str = "vit",
    ratio: float = 2.0,
    rounds: int = 40,
    seed: int = 0,
) -> dict:
    results = {}
    for controller in CONTROLLER_NAMES:
        campaign = run_campaign(device, task, controller, ratio, rounds=rounds, seed=seed)
        results[controller] = {
            "energy": campaign.total_energy,
            "training_energy": campaign.training_energy,
            "mbo_energy": campaign.mbo_energy,
            "missed": campaign.missed_rounds,
            "explored": campaign.explored_total,
        }
    performant_energy = results["performant"]["energy"]
    for stats in results.values():
        stats["vs_performant"] = 1 - stats["energy"] / performant_energy
    return {
        "device": device,
        "task": task,
        "ratio": ratio,
        "rounds": rounds,
        "results": results,
    }


def render(payload: dict) -> str:
    order = sorted(payload["results"], key=lambda n: payload["results"][n]["energy"])
    rows = []
    for name in order:
        stats = payload["results"][name]
        rows.append(
            (
                name,
                f"{stats['energy']:.0f}",
                f"{stats['vs_performant'] * 100:+.1f}%",
                stats["missed"],
                stats["explored"],
            )
        )
    return ascii_table(
        ["controller", "total energy (J)", "vs Performant", "missed", "explored"],
        rows,
        title=(
            f"Extension: controller scoreboard — {payload['task']} on "
            f"{payload['device']}, {payload['rounds']} rounds, "
            f"T_max/T_min = {payload['ratio']}"
        ),
    )
