"""Fig. 2 — motivation: performance spread over the DVFS space.

The paper motivates BoFL with the observation that "a proper DVFS
configuration may lead to 8x faster training speed and 4x less energy
consumption".  This driver computes the exact latency/energy spreads over
the whole space for each workload and the Pareto front size.
"""

from __future__ import annotations


import numpy as np

from repro.analysis.metrics import energy_spread, latency_spread
from repro.analysis.tables import ascii_table
from repro.bayesopt.pareto import pareto_front
from repro.hardware.devices import get_device
from repro.workloads.zoo import get_workload

PAPER_CLAIM = {"latency_spread": 8.0, "energy_spread": 4.0}


def run(device: str = "agx", workloads: tuple = ("vit", "resnet50", "lstm")) -> dict:
    """Measure the whole-space spreads for each workload on ``device``."""
    spec = get_device(device)
    rows: list[dict] = []
    for name in workloads:
        model = get_workload(name).performance_model(spec)
        latencies, energies = model.profile_space()
        front = pareto_front(np.stack([latencies, energies], axis=1))
        rows.append(
            {
                "workload": name,
                "latency_spread": latency_spread(model),
                "energy_spread": energy_spread(model),
                "pareto_points": int(front.shape[0]),
                "space_size": len(spec.space),
            }
        )
    return {"device": device, "rows": rows, "paper_claim": PAPER_CLAIM}


def render(payload: dict) -> str:
    table = ascii_table(
        ["workload", "latency spread", "energy spread", "true Pareto pts", "|X|"],
        [
            (
                r["workload"],
                f"{r['latency_spread']:.1f}x",
                f"{r['energy_spread']:.1f}x",
                r["pareto_points"],
                r["space_size"],
            )
            for r in payload["rows"]
        ],
        title=f"Fig. 2 (motivation) on {payload['device']} — paper claims ~8x speed / ~4x energy spread",
    )
    return table
