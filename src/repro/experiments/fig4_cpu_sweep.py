"""Fig. 4 — three models' training performance vs CPU frequency.

GPU and memory at maximum; the CPU swept over the paper's plotted range
(~0.6 to ~1.7 GHz).  Expected structure: ViT and ResNet50 latencies nearly
flat, LSTM latency roughly halving; ResNet50 energy increasing, LSTM
energy decreasing.
"""

from __future__ import annotations


from repro.analysis.tables import ascii_table
from repro.hardware.devices import get_device
from repro.workloads.zoo import get_workload


def run(
    device: str = "agx",
    workloads: tuple = ("vit", "resnet50", "lstm"),
    cpu_range: tuple = (0.6, 1.75),
) -> dict:
    spec = get_device(device)
    space = spec.space
    cpu_freqs = [f for f in space.cpu.frequencies if cpu_range[0] <= f <= cpu_range[1]]
    series: list[dict] = []
    for name in workloads:
        model = get_workload(name).performance_model(spec)
        points = []
        for cpu in cpu_freqs:
            config = space.snap(cpu, space.gpu.max, space.mem.max)
            points.append(
                {
                    "cpu": cpu,
                    "latency": model.latency(config),
                    "energy": model.energy(config),
                }
            )
        series.append({"workload": name, "points": points})
    return {"device": device, "cpu_freqs": cpu_freqs, "series": series}


def render(payload: dict) -> str:
    headers = ["CPU (GHz)"] + [
        f"{s['workload']} {col}" for s in payload["series"] for col in ("T(s)", "E(J)")
    ]
    rows = []
    for i, cpu in enumerate(payload["cpu_freqs"]):
        row = [f"{cpu:.2f}"]
        for s in payload["series"]:
            row.append(f"{s['points'][i]['latency']:.3f}")
            row.append(f"{s['points'][i]['energy']:.2f}")
        rows.append(row)
    return ascii_table(
        headers,
        rows,
        title=f"Fig. 4 — per-minibatch latency/energy vs CPU frequency on {payload['device']}",
    )
