"""Fig. 13 — overhead of the MBO module.

(a) per-run MBO latency and energy on each device; (b) the MBO energy as
a fraction of each campaign's total.  Paper values: 6-9 s and 50-70 J per
run, 0.4-0.7% overall.
"""

from __future__ import annotations


import numpy as np

from repro.analysis.tables import ascii_table
from repro.sim.runner import run_campaign

PAPER_BANDS = {
    "latency_s": (6.0, 9.0),
    "energy_j": (50.0, 70.0),
    "overall_pct": (0.4, 0.7),
}


def run(
    devices: tuple = ("agx", "tx2"),
    tasks: tuple = ("vit", "resnet50", "lstm"),
    ratio: float = 2.0,
    rounds: int = 100,
    seed: int = 0,
) -> dict:
    per_device = {}
    overall = {}
    for device in devices:
        latencies = []
        energies = []
        for task in tasks:
            bofl = run_campaign(device, task, "bofl", ratio, rounds=rounds, seed=seed)
            runs = [r.mbo for r in bofl.records if r.mbo is not None]
            latencies.extend(m.latency for m in runs)
            energies.extend(m.energy for m in runs)
            overall[(device, task)] = bofl.mbo_energy / bofl.total_energy
        per_device[device] = {
            "mean_latency": float(np.mean(latencies)) if latencies else 0.0,
            "max_latency": float(np.max(latencies)) if latencies else 0.0,
            "mean_energy": float(np.mean(energies)) if energies else 0.0,
            "max_energy": float(np.max(energies)) if energies else 0.0,
            "runs": len(latencies),
        }
    return {
        "per_device": per_device,
        "overall": {f"{d}/{t}": v for (d, t), v in overall.items()},
        "paper_bands": PAPER_BANDS,
        "ratio": ratio,
    }


def render(payload: dict) -> str:
    rows = [
        (
            device,
            f"{d['mean_latency']:.1f}s (max {d['max_latency']:.1f}s)",
            f"{d['mean_energy']:.0f}J (max {d['max_energy']:.0f}J)",
            d["runs"],
        )
        for device, d in payload["per_device"].items()
    ]
    per_run = ascii_table(
        ["device", "MBO latency / run", "MBO energy / run", "runs"],
        rows,
        title="Fig. 13a — MBO overhead per run (paper: 6-9 s, 50-70 J)",
    )
    overall_rows = [
        (key, f"{value * 100:.2f}%") for key, value in payload["overall"].items()
    ]
    overall = ascii_table(
        ["device/task", "MBO energy share"],
        overall_rows,
        title="Fig. 13b — overall energy overhead of MBO (paper: 0.4-0.7%)",
    )
    return per_run + "\n\n" + overall
