"""Fig. 11 — BoFL's searched Pareto front vs the actual Pareto front.

For each task: the true front (Oracle's offline profile), BoFL's searched
front after its exploration phases, and front-quality metrics (hypervolume
ratio and coverage), plus the fraction of the space explored (the paper:
"after exploring just 3% of the whole configuration space").
"""

from __future__ import annotations


import numpy as np

from repro.analysis.metrics import front_coverage, hypervolume_ratio
from repro.analysis.tables import ascii_table
from repro.bayesopt.hypervolume import reference_from_observations
from repro.hardware.devices import get_device
from repro.sim.runner import run_campaign


def run(
    ratio: float = 2.0,
    device: str = "agx",
    tasks: tuple = ("vit", "resnet50", "lstm"),
    rounds: int = 40,
    seed: int = 0,
) -> dict:
    space_size = len(get_device(device).space)
    results = {}
    for task in tasks:
        bofl = run_campaign(device, task, "bofl", ratio, rounds=rounds, seed=seed)
        oracle = run_campaign(device, task, "oracle", ratio, rounds=rounds, seed=seed)
        found = np.array(bofl.final_front)
        true = np.array(oracle.final_front)
        reference = reference_from_observations(np.vstack([found, true]), margin=0.05)
        results[task] = {
            "found_front": found.tolist(),
            "true_front": true.tolist(),
            "hv_ratio": hypervolume_ratio(found, true, reference),
            "coverage": front_coverage(found, true, tolerance=0.03),
            "explored": bofl.explored_total,
            "explored_fraction": bofl.explored_total / space_size,
            "found_points": int(found.shape[0]),
            "true_points": int(true.shape[0]),
        }
    return {"ratio": ratio, "device": device, "tasks": results}


def render(payload: dict) -> str:
    rows = []
    for task, data in payload["tasks"].items():
        rows.append(
            (
                task,
                data["found_points"],
                data["true_points"],
                f"{data['hv_ratio'] * 100:.1f}%",
                f"{data['coverage'] * 100:.0f}%",
                f"{data['explored']} ({data['explored_fraction'] * 100:.1f}%)",
            )
        )
    table = ascii_table(
        [
            "task",
            "BoFL front pts",
            "true front pts",
            "hypervolume ratio",
            "coverage(3%)",
            "explored (of space)",
        ],
        rows,
        title=f"Fig. 11 — BoFL searched vs actual Pareto fronts ({payload['device']})",
    )
    lines = [table]
    for task, data in payload["tasks"].items():
        front = sorted(data["found_front"])
        lines.append(f"\n{task} BoFL front (latency s, energy J):")
        lines.append(
            "  " + "  ".join(f"({t:.3f},{e:.2f})" for t, e in front)
        )
    return "\n".join(lines)
