"""Figs. 9 & 10 — per-round energy of BoFL vs Performant vs Oracle.

One driver parameterized by the deadline ratio: ``ratio=2.0`` regenerates
Fig. 9, ``ratio=4.0`` Fig. 10.  For each of the three tasks it reports the
energy curve of each controller over the first ``rounds`` rounds, the
deadline series, BoFL's phase boundaries, and the summary improvement /
regret numbers.
"""

from __future__ import annotations


from repro.analysis.metrics import improvement_vs_performant, regret_vs_oracle
from repro.analysis.charts import line_chart
from repro.analysis.tables import ascii_table, format_series
from repro.sim.runner import run_campaign


def run(
    ratio: float = 2.0,
    device: str = "agx",
    tasks: tuple = ("vit", "resnet50", "lstm"),
    rounds: int = 40,
    seed: int = 0,
) -> dict:
    results = {}
    for task in tasks:
        bofl = run_campaign(device, task, "bofl", ratio, rounds=rounds, seed=seed)
        performant = run_campaign(device, task, "performant", ratio, rounds=rounds, seed=seed)
        oracle = run_campaign(device, task, "oracle", ratio, rounds=rounds, seed=seed)
        phase_bounds = {}
        for record in bofl.records:
            phase_bounds.setdefault(record.phase, [record.round_index, record.round_index])
            phase_bounds[record.phase][1] = record.round_index
        results[task] = {
            "bofl": bofl.energy_series(),
            "performant": performant.energy_series(),
            "oracle": oracle.energy_series(),
            "deadlines": bofl.deadline_series(),
            "phases": phase_bounds,
            "improvement": improvement_vs_performant(bofl, performant),
            "regret": regret_vs_oracle(bofl, oracle),
            "missed": bofl.missed_rounds,
        }
    return {"ratio": ratio, "device": device, "rounds": rounds, "tasks": results}


def render(payload: dict) -> str:
    fig = "Fig. 9" if payload["ratio"] <= 2.0 else "Fig. 10"
    lines = [
        f"{fig} — per-round energy (J), first {payload['rounds']} rounds, "
        f"T_max/T_min = {payload['ratio']}, device {payload['device']}"
    ]
    for task, data in payload["tasks"].items():
        lines.append(f"\n== {task} ==")
        lines.append(
            line_chart(
                {
                    "performant": data["performant"],
                    "oracle": data["oracle"],
                    "bofl": data["bofl"],
                },
                height=12,
                y_label="energy per round (J)",
            )
        )
        for name in ("performant", "oracle", "bofl"):
            lines.append(f"{name}:")
            lines.append(format_series(data[name], per_line=10, precision=0))
        lines.append("deadlines (s):")
        lines.append(format_series(data["deadlines"], per_line=10, precision=1))
        phase_rows = [
            (phase, f"rounds {lo}..{hi}") for phase, (lo, hi) in data["phases"].items()
        ]
        lines.append(ascii_table(["BoFL phase", "span"], phase_rows))
        lines.append(
            f"improvement vs Performant: {data['improvement'] * 100:.1f}%   "
            f"regret vs Oracle: {data['regret'] * 100:.2f}%   "
            f"missed rounds: {data['missed']}"
        )
    return "\n".join(lines)
