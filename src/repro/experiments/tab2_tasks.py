"""Table 2 — federated learning task specifications, with measured T_min.

``T_min`` is obtained the way the paper obtained it: run one round at
``x_max`` on the (simulated) testbed and time it.  The paper's published
values are printed alongside for comparison.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.analysis.tables import ascii_table
from repro.federated.task import paper_tasks
from repro.hardware.device import SimulatedDevice
from repro.hardware.devices import get_device

PAPER_T_MIN = {
    ("CIFAR10-ViT", "agx"): 37.2,
    ("CIFAR10-ViT", "tx2"): 36.0,
    ("ImageNet-ResNet50", "agx"): 46.9,
    ("ImageNet-ResNet50", "tx2"): 49.2,
    ("IMDB-LSTM", "agx"): 46.1,
    ("IMDB-LSTM", "tx2"): 55.6,
}


def run(devices: tuple = ("agx", "tx2"), seed: int = 0) -> dict:
    rows = []
    for task in paper_tasks():
        entry = {
            "task": task.name,
            "B": task.batch_size,
            "E": task.epochs,
            "N": dict(task.minibatches),
            "rounds": task.rounds,
            "t_min": {},
            "paper_t_min": {},
        }
        for device_name in devices:
            spec = get_device(device_name)
            device = SimulatedDevice(spec, task.workload, seed=seed)
            jobs = task.jobs_per_round(spec)
            device.set_configuration(spec.space.max_configuration())
            start = device.clock.now
            for _ in range(jobs):
                device.run_job()
            entry["t_min"][device_name] = device.clock.now - start
            entry["paper_t_min"][device_name] = PAPER_T_MIN.get(
                (task.name, device_name)
            )
        rows.append(entry)
    return {"rows": rows, "deadline_ratios": (2.0, 2.5, 3.0, 3.5, 4.0)}


def render(payload: dict) -> str:
    headers = ["", *[r["task"] for r in payload["rows"]]]
    def row(label: str, fn: Callable[[dict], object]) -> list:
        return [label] + [fn(r) for r in payload["rows"]]
    rows = [
        row("B", lambda r: r["B"]),
        row("E", lambda r: r["E"]),
        row("N (AGX)", lambda r: r["N"]["agx"]),
        row("N (TX2)", lambda r: r["N"]["tx2"]),
        row("|T| rounds", lambda r: r["rounds"]),
        row("T_min AGX measured", lambda r: f"{r['t_min']['agx']:.1f}s"),
        row("T_min AGX paper", lambda r: f"{r['paper_t_min']['agx']:.1f}s"),
        row("T_min TX2 measured", lambda r: f"{r['t_min']['tx2']:.1f}s"),
        row("T_min TX2 paper", lambda r: f"{r['paper_t_min']['tx2']:.1f}s"),
    ]
    table = ascii_table(headers, rows, title="Table 2 — FL task specifications")
    ratios = ", ".join(str(x) for x in payload["deadline_ratios"])
    return table + f"\nT_max / T_min sweep: {{{ratios}}}"
