"""Table 3 — explorations and searched Pareto points per round.

For each task, the number of configurations explored in every round of the
first two phases and how many of them belong to the *final* searched
Pareto front — the paper's walkthrough showing that most front points come
from the MBO phase.
"""

from __future__ import annotations


from repro.analysis.tables import ascii_table
from repro.sim.runner import run_campaign


def run(
    ratio: float = 2.0,
    device: str = "agx",
    tasks: tuple = ("vit", "resnet50", "lstm"),
    rounds: int = 40,
    seed: int = 0,
) -> dict:
    results = {}
    for task in tasks:
        bofl = run_campaign(device, task, "bofl", ratio, rounds=rounds, seed=seed)
        rows: list[dict] = []
        for record in bofl.records:
            if record.phase == "exploitation":
                break
            rows.append(
                {
                    "round": record.round_index + 1,
                    "phase": record.phase,
                    "explored": record.explored_count,
                    "pareto": record.explored_on_final_front or 0,
                }
            )
        results[task] = {
            "rows": rows,
            "total_explored": sum(r["explored"] for r in rows),
            "total_pareto": sum(r["pareto"] for r in rows),
            "random_rounds": sum(1 for r in rows if r["phase"] == "random_exploration"),
            "mbo_rounds": sum(1 for r in rows if r["phase"] == "pareto_construction"),
        }
    return {"ratio": ratio, "device": device, "tasks": results}


def render(payload: dict) -> str:
    lines = [
        "Table 3 — explorations (# Exp) and final-front points (# Pareto) per "
        f"round, T_max/T_min = {payload['ratio']} "
        "(R = random exploration phase, M = MBO/Pareto-construction phase)"
    ]
    for task, data in payload["tasks"].items():
        rows = [
            (
                r["round"],
                "R" if r["phase"] == "random_exploration" else "M",
                r["explored"],
                r["pareto"],
            )
            for r in data["rows"]
        ]
        rows.append(("Total", "", data["total_explored"], data["total_pareto"]))
        lines.append("")
        lines.append(
            ascii_table(
                ["Round", "Phase", "# Exp", "# Pareto"], rows, title=f"== {task} =="
            )
        )
        mbo_pareto = sum(
            r["pareto"] for r in data["rows"] if r["phase"] == "pareto_construction"
        )
        lines.append(
            f"{task}: {data['random_rounds']} random + {data['mbo_rounds']} MBO rounds; "
            f"{mbo_pareto}/{data['total_pareto']} front points found by MBO"
        )
    return "\n".join(lines)
