"""Extension experiment: pace control must not change what is learned.

BoFL changes *when and how fast* jobs run, never *which* jobs run — so a
federation paced by BoFL must reach exactly the learning trajectory of one
paced by Performant when everything else (data, seeds, aggregation) is
held fixed, while consuming less energy.  This experiment runs the same
real-gradient FedAvg federation under both controllers and compares
accuracy trajectories and energy.

The paper leaves this implicit; making it an executable check guards the
repository against accidentally coupling the controller to the training
semantics (e.g. dropping jobs near deadlines).
"""

from __future__ import annotations


import numpy as np

from repro.analysis.tables import ascii_table
from repro.baselines import PerformantController
from repro.core.config import BoFLConfig
from repro.core.controller import BoFLController
from repro.federated.client import FederatedClient
from repro.federated.deadlines import StaticDeadlines
from repro.federated.server import FederatedServer
from repro.federated.task import FLTaskSpec
from repro.hardware.device import SimulatedDevice
from repro.hardware.devices import get_device
from repro.ml.data import make_blobs_classification, partition_dirichlet
from repro.ml.models import MLPClassifier
from repro.workloads.zoo import get_workload


def _build_federation(controller_name: str, rounds: int, seed: int) -> FederatedServer:
    rng = np.random.default_rng(seed)
    full = make_blobs_classification(
        1700, n_features=16, n_classes=5, class_separation=0.9, seed=seed
    )
    order = rng.permutation(len(full))
    train, eval_set = full.subset(order[:1200]), full.subset(order[1200:])
    shards = partition_dirichlet(train, n_clients=3, alpha=1.0, rng=rng)

    workload = get_workload("vit")
    task = FLTaskSpec(
        workload=workload, batch_size=24, epochs=2,
        minibatches={"agx": 16}, rounds=rounds,
    )
    global_model = MLPClassifier(16, [32], 5, seed=seed)
    clients: list[FederatedClient] = []
    for i, shard in enumerate(shards):
        spec = get_device("agx")
        device = SimulatedDevice(spec, workload, seed=100 + i)
        if controller_name == "bofl":
            controller = BoFLController(
                device,
                BoFLConfig(
                    seed=i,
                    tau=2.0,
                    initial_sample_fraction=0.005,
                    min_explored_fraction=0.015,
                ),
            )
        else:
            controller = PerformantController(device)
        clients.append(
            FederatedClient(
                f"client-{i}", controller, task,
                model=global_model.clone_architecture(seed=i),
                data=shard, seed=i,
            )
        )
    return FederatedServer(
        clients,
        global_model=global_model,
        deadline_schedule=StaticDeadlines(3.0),
        eval_data=eval_set,
        seed=seed,
    )


def run(rounds: int = 8, seed: int = 0) -> dict:
    """Train the same federation under Performant and BoFL pacing."""
    results = {}
    for controller_name in ("performant", "bofl"):
        server = _build_federation(controller_name, rounds, seed)
        history = server.run(rounds)
        results[controller_name] = {
            "accuracy": [h.global_accuracy for h in history],
            "energy": server.total_energy,
            "stragglers": sum(len(h.stragglers) for h in history),
        }
    return {"rounds": rounds, "seed": seed, "results": results}


def render(payload: dict) -> str:
    results = payload["results"]
    rows = []
    for i in range(payload["rounds"]):
        rows.append(
            (
                i + 1,
                f"{results['performant']['accuracy'][i] * 100:.1f}%",
                f"{results['bofl']['accuracy'][i] * 100:.1f}%",
            )
        )
    table = ascii_table(
        ["round", "Performant accuracy", "BoFL accuracy"],
        rows,
        title="Extension: learning-trajectory parity under pace control",
    )
    saving = 1 - results["bofl"]["energy"] / results["performant"]["energy"]
    return (
        table
        + f"\nenergy: Performant {results['performant']['energy']:.0f} J, "
        f"BoFL {results['bofl']['energy']:.0f} J ({saving * 100:.1f}% saved)"
    )
