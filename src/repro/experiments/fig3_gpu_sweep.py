"""Fig. 3 — ViT training performance vs GPU frequency at two CPU clocks.

Reproduces both panels: (a) execution latency per minibatch and (b) energy
per minibatch, swept over GPU frequencies with the CPU pinned to its
minimum (0.42 GHz) and maximum (2.26 GHz); memory at maximum, as in the
paper's measurement setup.
"""

from __future__ import annotations


from repro.analysis.tables import ascii_table
from repro.hardware.devices import get_device
from repro.workloads.zoo import get_workload


def run(device: str = "agx", workload: str = "vit") -> dict:
    spec = get_device(device)
    model = get_workload(workload).performance_model(spec)
    space = spec.space
    sweeps: list[dict] = []
    for cpu in (space.cpu.min, space.cpu.max):
        points = []
        for gpu in space.gpu.frequencies:
            config = space.snap(cpu, gpu, space.mem.max)
            points.append(
                {
                    "gpu": gpu,
                    "latency": model.latency(config),
                    "energy": model.energy(config),
                }
            )
        sweeps.append({"cpu": cpu, "points": points})
    return {"device": device, "workload": workload, "sweeps": sweeps}


def render(payload: dict) -> str:
    lines = [
        f"Fig. 3 — {payload['workload']} on {payload['device']}: "
        "latency/energy per minibatch vs GPU frequency"
    ]
    for sweep in payload["sweeps"]:
        rows = [
            (f"{p['gpu']:.2f}", f"{p['latency']:.3f}", f"{p['energy']:.2f}")
            for p in sweep["points"]
        ]
        lines.append(
            ascii_table(
                ["GPU (GHz)", "latency (s)", "energy (J)"],
                rows,
                title=f"CPU frequency: {sweep['cpu']:.2f} GHz",
            )
        )
    return "\n\n".join(lines)
