"""Table 1 — testbed hardware specifications."""

from __future__ import annotations


from repro.analysis.tables import ascii_table
from repro.hardware.devices import available_devices, get_device


def run(devices: tuple = ("agx", "tx2")) -> dict:
    specs = {}
    for name in devices:
        spec = get_device(name)
        specs[name] = {
            "long_name": spec.long_name,
            "rows": spec.summary_rows(),
            "configurations": spec.num_configurations,
        }
    return {"devices": specs, "available": available_devices()}


def render(payload: dict) -> str:
    names = list(payload["devices"])
    headers = [""] + [payload["devices"][n]["long_name"] for n in names]
    first = payload["devices"][names[0]]["rows"]
    rows = []
    for i, (label, _) in enumerate(first):
        row = [label] + [payload["devices"][n]["rows"][i][1] for n in names]
        rows.append(row)
    return ascii_table(headers, rows, title="Table 1 — BoFL testbed hardware specifications")
