"""Extension experiment: fleet-level energy in a heterogeneous federation.

The paper evaluates BoFL per device; this experiment shows the deployment
story it implies — "BoFL is deployed on each FL client locally" (§1) —
by running a 10-client federation mixing AGX- and TX2-class devices and
all three tasks, and comparing the *fleet's* total energy and round
latency under Performant vs BoFL pacing.

Round wall-clock is the slowest participant's elapsed time (synchronous
FedAvg), so the experiment also verifies that per-client pacing does not
stretch the global round beyond its deadline envelope.
"""

from __future__ import annotations


from repro.analysis.tables import ascii_table
from repro.baselines import PerformantController
from repro.core.config import BoFLConfig
from repro.core.controller import BoFLController
from repro.federated.client import FederatedClient
from repro.federated.deadlines import UniformDeadlines
from repro.federated.server import FederatedServer
from repro.federated.task import FLTaskSpec, cifar10_vit, imagenet_resnet50, imdb_lstm
from repro.hardware.device import SimulatedDevice
from repro.hardware.devices import get_device
from repro.sim.mbo_cost import MBOCostModel

#: (device, task factory) mix for the 10-client fleet.
FLEET = (
    ("agx", cifar10_vit),
    ("agx", imagenet_resnet50),
    ("agx", imdb_lstm),
    ("agx", cifar10_vit),
    ("agx", imdb_lstm),
    ("tx2", cifar10_vit),
    ("tx2", imagenet_resnet50),
    ("tx2", imdb_lstm),
    ("tx2", cifar10_vit),
    ("tx2", imagenet_resnet50),
)


def _build_fleet(controller_name: str, seed: int) -> list[FederatedClient]:
    clients: list[FederatedClient] = []
    for index, (device_name, task_factory) in enumerate(FLEET):
        spec = get_device(device_name)
        task: FLTaskSpec = task_factory()
        device = SimulatedDevice(spec, task.workload, seed=1000 + index)
        if controller_name == "bofl":
            controller = BoFLController(
                device, BoFLConfig(seed=seed + index), mbo_cost=MBOCostModel(spec)
            )
        else:
            controller = PerformantController(device)
        clients.append(
            FederatedClient(
                f"{device_name}-{task.workload.name}-{index}", controller, task
            )
        )
    return clients


def run(rounds: int = 25, deadline_ratio: float = 2.5, seed: int = 0) -> dict:
    """Run the 10-client fleet under both controllers (energy-only)."""
    results = {}
    for controller_name in ("performant", "bofl"):
        clients = _build_fleet(controller_name, seed)
        server = FederatedServer(
            clients,
            deadline_schedule=UniformDeadlines(deadline_ratio),
            seed=seed,
        )
        history = server.run(rounds)
        per_client = {
            client.client_id: client.device.energy_consumed for client in clients
        }
        stragglers = sum(len(h.stragglers) for h in history)
        results[controller_name] = {
            "fleet_energy": server.total_energy,
            "per_client": per_client,
            "stragglers": stragglers,
        }
    saving = 1 - results["bofl"]["fleet_energy"] / results["performant"]["fleet_energy"]
    return {
        "rounds": rounds,
        "deadline_ratio": deadline_ratio,
        "results": results,
        "fleet_saving": saving,
    }


def render(payload: dict) -> str:
    performant = payload["results"]["performant"]
    bofl = payload["results"]["bofl"]
    rows = []
    for client_id in performant["per_client"]:
        p = performant["per_client"][client_id]
        b = bofl["per_client"][client_id]
        rows.append((client_id, f"{p:.0f}", f"{b:.0f}", f"{(1 - b / p) * 100:.1f}%"))
    table = ascii_table(
        ["client", "Performant (J)", "BoFL (J)", "saving"],
        rows,
        title=(
            f"Extension: 10-client heterogeneous fleet, {payload['rounds']} rounds, "
            f"T_max/T_min = {payload['deadline_ratio']}"
        ),
    )
    return (
        table
        + f"\nfleet total: Performant {performant['fleet_energy']:.0f} J, "
        f"BoFL {bofl['fleet_energy']:.0f} J -> {payload['fleet_saving'] * 100:.1f}% saved; "
        f"stragglers: {performant['stragglers']} vs {bofl['stragglers']}"
    )
