"""Extension experiment: adaptive server co-optimization vs static knobs.

The paper tunes each client's *local* pace; this experiment asks what the
*server's* global knobs are worth.  One heterogeneous fleet population is
traced under several configurations and composed under two federation
workloads (``sync`` and ``semisync``):

* **static frontier** — the pre-subsystem server at a sweep of fixed
  deadline ratios (more slack means fewer stragglers but slower rounds);
* **adaptive controllers** — :class:`~repro.servertune.controllers.FedGPOController`
  (straggler-feedback deadline/participation adaptation) and
  :class:`~repro.servertune.controllers.FedTuneController`
  (preference-weighted multi-objective stepping), both starting from the
  *tightest* static ratio.

Each configuration lands as one point on the (energy per aggregation,
mean round latency) plane.  The headline claim: for at least one workload
an adaptive controller strictly dominates every static deadline — less
energy per committed model version *and* faster rounds — because the
controller spends slack only on the rounds whose straggler feedback asks
for it.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.analysis.tables import ascii_table
from repro.servertune.controllers import ServerTuneSpec
from repro.sim.fleet import FleetSpec, compose_fleet, fleet_summary, prepare_fleet

#: Federation workloads each configuration is composed under.
WORKLOADS = ("sync", "semisync")

#: The static server's deadline-ratio sweep (its achievable frontier).
STATIC_RATIOS = (2.0, 3.0, 4.0)

#: Adaptive controllers entered against the static frontier.
ADAPTIVE = ("fedgpo", "fedtune")


def base_spec(
    clients: int = 24, rounds: int = 6, ratio: float = 2.0, seed: int = 0
) -> FleetSpec:
    """The shared fleet population every configuration traces."""
    return FleetSpec(
        n_clients=clients,
        rounds=rounds,
        deadline_ratio=ratio,
        seed=seed,
        archetypes=8,
    )


def adaptive_spec(controller: str) -> ServerTuneSpec:
    """The servertune spec one adaptive entrant runs under."""
    if controller == "fedtune":
        return ServerTuneSpec(controller="fedtune", patience=0)
    return ServerTuneSpec(controller=controller)


def variant_specs(base: FleetSpec) -> dict[str, FleetSpec]:
    """Every traced configuration, keyed by display label."""
    variants: dict[str, FleetSpec] = {}
    for ratio in STATIC_RATIOS:
        variants[f"static r={ratio:g}"] = dataclasses.replace(
            base, deadline_ratio=ratio
        )
    for controller in ADAPTIVE:
        variants[controller] = dataclasses.replace(
            base, servertune=adaptive_spec(controller)
        )
    return variants


def workload_spec(variant: FleetSpec, workload: str) -> FleetSpec:
    """Derive one workload's composition from a traced configuration."""
    if workload == "semisync":
        return dataclasses.replace(
            variant,
            mode="semisync",
            participants=max(1, int(variant.n_clients * 0.6)),
            over_selection=1.3,
        )
    return dataclasses.replace(variant, mode="sync", participants=None)


def _point(summary: dict) -> dict[str, float]:
    aggregations = max(int(summary["aggregations"]), 1)
    return {
        "energy_per_aggregation": float(summary["total_energy"]) / aggregations,
        "mean_latency": float(summary["mean_round_latency"]),
        "aggregations": float(summary["aggregations"]),
        "stragglers": float(summary["straggler_reports"]),
    }


def _dominates(a: dict[str, float], b: dict[str, float]) -> bool:
    """Strictly better than ``b`` on both frontier axes."""
    return (
        a["energy_per_aggregation"] < b["energy_per_aggregation"]
        and a["mean_latency"] < b["mean_latency"]
    )


def run(
    clients: int = 24,
    rounds: int = 6,
    ratio: float = 2.0,
    seed: int = 0,
    workers: Optional[int] = None,
) -> dict:
    """Trace every configuration once, compose it under every workload."""
    base = base_spec(clients=clients, rounds=rounds, ratio=ratio, seed=seed)
    workloads: dict[str, dict[str, dict[str, float]]] = {
        workload: {} for workload in WORKLOADS
    }
    for label, variant in variant_specs(base).items():
        prepared = prepare_fleet(variant, workers=workers)
        for workload in WORKLOADS:
            spec = workload_spec(variant, workload)
            summary = fleet_summary(spec, compose_fleet(spec, prepared))
            workloads[workload][label] = _point(summary)
    dominance: dict[str, list[str]] = {}
    for workload, points in workloads.items():
        static = [p for label, p in points.items() if label.startswith("static")]
        dominance[workload] = sorted(
            label
            for label in ADAPTIVE
            if all(_dominates(points[label], s) for s in static)
        )
    return {
        "clients": clients,
        "rounds": rounds,
        "ratio": ratio,
        "seed": seed,
        "workloads": workloads,
        # Adaptive entrants strictly dominating EVERY static deadline on
        # (energy per aggregation, mean latency), per workload.
        "dominant": dominance,
    }


def render(payload: dict) -> str:
    blocks = []
    for workload, points in payload["workloads"].items():
        rows = []
        for label, point in points.items():
            rows.append(
                (
                    label,
                    f"{point['energy_per_aggregation'] / 1000:.2f}",
                    f"{point['mean_latency']:.1f}",
                    f"{point['aggregations']:.0f}",
                    f"{point['stragglers']:.0f}",
                )
            )
        blocks.append(
            ascii_table(
                ["config", "energy/agg (kJ)", "latency (s)", "aggs", "stragglers"],
                rows,
                title=(
                    f"Extension: server co-optimization, {workload} workload "
                    f"({payload['clients']} clients, {payload['rounds']} rounds)"
                ),
            )
        )
    for workload, winners in payload["dominant"].items():
        if winners:
            blocks.append(
                f"{workload}: {', '.join(winners)} strictly dominate(s) every "
                "static deadline on (energy/aggregation, latency)"
            )
        else:
            blocks.append(f"{workload}: no adaptive entrant dominates the static frontier")
    return "\n\n".join(blocks)
