"""Fig. 12 — sensitivity to the deadline length.

Sweeps ``T_max / T_min`` over {2.0, 2.5, 3.0, 3.5, 4.0} for every task and
reports (a) BoFL's energy improvement over Performant and (b) its regret
vs Oracle.  Expected shape (paper §6.4): improvement rising with longer
deadlines, regret falling; overall bands 20.3-25.9% and 1.2-3.4%.
"""

from __future__ import annotations


from repro.analysis.metrics import improvement_vs_performant, regret_vs_oracle
from repro.analysis.tables import ascii_table
from repro.sim.runner import run_campaign

PAPER_BANDS = {"improvement": (0.203, 0.259), "regret": (0.012, 0.034)}


def run(
    device: str = "agx",
    tasks: tuple = ("vit", "resnet50", "lstm"),
    ratios: tuple = (2.0, 2.5, 3.0, 3.5, 4.0),
    rounds: int = 100,
    seed: int = 0,
) -> dict:
    results = {}
    for task in tasks:
        per_ratio = {}
        for ratio in ratios:
            bofl = run_campaign(device, task, "bofl", ratio, rounds=rounds, seed=seed)
            performant = run_campaign(
                device, task, "performant", ratio, rounds=rounds, seed=seed
            )
            oracle = run_campaign(device, task, "oracle", ratio, rounds=rounds, seed=seed)
            per_ratio[ratio] = {
                "improvement": improvement_vs_performant(bofl, performant),
                "regret": regret_vs_oracle(bofl, oracle),
            }
        results[task] = per_ratio
    return {
        "device": device,
        "ratios": list(ratios),
        "rounds": rounds,
        "tasks": results,
        "paper_bands": PAPER_BANDS,
    }


def render(payload: dict) -> str:
    ratios = payload["ratios"]
    headers = ["task"] + [f"{r}x" for r in ratios]
    improvement_rows = []
    regret_rows = []
    for task, per_ratio in payload["tasks"].items():
        improvement_rows.append(
            [task] + [f"{per_ratio[r]['improvement'] * 100:.1f}%" for r in ratios]
        )
        regret_rows.append(
            [task] + [f"{per_ratio[r]['regret'] * 100:.2f}%" for r in ratios]
        )
    improvement = ascii_table(
        headers,
        improvement_rows,
        title=(
            "Fig. 12 (a/c/e) — improvement vs Performant by normalized max "
            f"deadline, {payload['rounds']} rounds (paper band 20.3-25.9%)"
        ),
    )
    regret = ascii_table(
        headers,
        regret_rows,
        title="Fig. 12 (b/d/f) — regret vs Oracle (paper band 1.2-3.4%)",
    )
    return improvement + "\n\n" + regret
