"""One driver per paper table/figure.

Every driver module exposes ``run(**params) -> dict`` (the experiment
payload, cached campaign results inside) and ``render(payload) -> str``
(the paper-style rows).  The registry maps experiment ids to drivers so
benchmarks, tests and the EXPERIMENTS.md generator share one source of
truth.
"""

from repro.experiments.registry import (
    EXPERIMENTS,
    get_experiment,
    warm_experiment_cache,
)

__all__ = ["EXPERIMENTS", "get_experiment", "warm_experiment_cache"]
