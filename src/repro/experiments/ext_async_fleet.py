"""Extension experiment: federation disciplines on a heterogeneous fleet.

Per-client BoFL pacing makes completion times heterogeneous *by design*
(each client spends exactly the deadline budget its own hardware needs),
which is the regime where synchronous FedAvg wastes wall-clock on the
straggler tail.  This experiment prepares one heterogeneous fleet —
AGX/TX2 mix, all three tasks, BoFL vs Performant pacing, a slice of the
population under chaos (dropout + transport stalls) — and composes the
*same traces* under all three disciplines of
:class:`repro.federated.async_engine.AsyncFederationEngine`:

* ``sync``: every client reports every round; round latency is the
  slowest arrival.
* ``semisync``: over-select, cut the stragglers after the target-th
  arrival.
* ``async``: FedBuff-style buffered aggregation with staleness-discounted
  weights.

Because sync and async both consume every client's full trace, their
aggregate energy accounting is identical — the latency gap between them
is pure scheduling, not reduced work.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.analysis.tables import ascii_table
from repro.sim.fleet import FleetSpec, compose_fleet, fleet_summary, prepare_fleet

#: Disciplines compared, in presentation order.
MODES = ("sync", "semisync", "async")


def base_spec(
    clients: int = 36, rounds: int = 6, ratio: float = 2.0, seed: int = 0
) -> FleetSpec:
    """The shared fleet population every mode variant composes."""
    return FleetSpec(
        n_clients=clients,
        rounds=rounds,
        deadline_ratio=ratio,
        seed=seed,
        archetypes=12,
        chaos_fraction=0.1,
    )


def mode_spec(base: FleetSpec, mode: str) -> FleetSpec:
    """Derive one discipline's spec from the shared population."""
    if mode == "sync":
        return dataclasses.replace(base, mode="sync", participants=None)
    if mode == "semisync":
        return dataclasses.replace(
            base,
            mode="semisync",
            participants=max(1, int(base.n_clients * 0.6)),
            over_selection=1.3,
        )
    return dataclasses.replace(
        base,
        mode="async",
        participants=None,
        buffer_size=max(2, base.n_clients // 4),
        staleness_exponent=0.5,
    )


def run(
    clients: int = 36,
    rounds: int = 6,
    ratio: float = 2.0,
    seed: int = 0,
    workers: Optional[int] = None,
) -> dict:
    """Prepare the fleet once, compose it under every discipline."""
    base = base_spec(clients=clients, rounds=rounds, ratio=ratio, seed=seed)
    prepared = prepare_fleet(base, workers=workers)
    modes = {}
    for mode in MODES:
        spec = mode_spec(base, mode)
        modes[mode] = fleet_summary(spec, compose_fleet(spec, prepared))
    sync_latency = float(modes["sync"]["mean_round_latency"])  # type: ignore[arg-type]
    async_latency = float(modes["async"]["mean_round_latency"])  # type: ignore[arg-type]
    return {
        "clients": clients,
        "rounds": rounds,
        "ratio": ratio,
        "seed": seed,
        "modes": modes,
        # Scheduling win of buffered async over blocking sync rounds, at
        # byte-equal energy accounting (both consume every trace round).
        "async_latency_reduction": 1 - async_latency / sync_latency,
        "energy_parity": abs(
            float(modes["sync"]["total_energy"])  # type: ignore[arg-type]
            - float(modes["async"]["total_energy"])  # type: ignore[arg-type]
        )
        / float(modes["sync"]["total_energy"]),  # type: ignore[arg-type]
    }


def render(payload: dict) -> str:
    rows = []
    for mode in MODES:
        s = payload["modes"][mode]
        rows.append(
            (
                mode,
                str(s["aggregations"]),
                f"{s['mean_round_latency']:.1f}",
                f"{s['makespan']:.0f}",
                f"{s['total_energy'] / 1000:.1f}",
                f"{s['mean_staleness']:.2f}",
                str(s["straggler_reports"]),
                str(s["cutoff_reports"]),
                str(s["dropout_rounds"]),
            )
        )
    table = ascii_table(
        [
            "mode", "aggs", "latency (s)", "makespan (s)", "energy (kJ)",
            "staleness", "stragglers", "cutoffs", "dropouts",
        ],
        rows,
        title=(
            f"Extension: {payload['clients']}-client fleet disciplines, "
            f"{payload['rounds']} rounds, T_max/T_min = {payload['ratio']}"
        ),
    )
    return table + (
        f"\nasync vs sync: {payload['async_latency_reduction'] * 100:.1f}% lower "
        f"mean round latency at equal energy accounting "
        f"(parity gap {payload['energy_parity'] * 100:.2f}%)"
    )
