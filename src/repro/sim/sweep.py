"""Multi-seed campaign sweeps with summary statistics.

The paper reports single runs per cell; this harness quantifies the
seed-to-seed spread — deadline draws, measurement noise and GP restarts all
move the improvement/regret numbers by up to ~1 percentage point — so that
comparisons between controllers or configurations can be made with error
bars.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence
from typing import Optional

import numpy as np

from repro.analysis.metrics import improvement_vs_performant, regret_vs_oracle
from repro.core.config import BoFLConfig
from repro.core.records import CampaignResult
from repro.errors import ConfigurationError
from repro.sim.executor import CampaignExecutor, expand_grid
from repro.sim.runner import run_campaign


@dataclass(frozen=True)
class SummaryStat:
    """Mean, standard deviation and extremes over sweep seeds."""

    mean: float
    std: float
    minimum: float
    maximum: float
    n: int

    @classmethod
    def of(cls, values: Sequence[float]) -> "SummaryStat":
        arr = np.asarray(list(values), dtype=float)
        if arr.size == 0:
            raise ConfigurationError("cannot summarize zero values")
        return cls(
            mean=float(arr.mean()),
            std=float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
            minimum=float(arr.min()),
            maximum=float(arr.max()),
            n=int(arr.size),
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.mean:.4f} +/- {self.std:.4f} (n={self.n})"


@dataclass
class SweepResult:
    """Aggregated outcome of one (device, task, ratio) sweep."""

    device: str
    task: str
    deadline_ratio: float
    rounds: int
    seeds: tuple[int, ...]
    improvement: SummaryStat
    regret: SummaryStat
    missed_total: int
    campaigns: dict[int, dict[str, CampaignResult]]


def sweep_campaign(
    device: str,
    task: str,
    deadline_ratio: float,
    *,
    rounds: int = 40,
    seeds: Sequence[int] = (0, 1, 2),
    bofl_config: Optional[BoFLConfig] = None,
    use_cache: bool = True,
    workers: int = 1,
    executor: Optional[CampaignExecutor] = None,
) -> SweepResult:
    """Run BoFL + Performant + Oracle over several seeds and aggregate.

    Each seed draws its own deadline sequence and noise stream (still
    paired across the three controllers within the seed).

    ``workers > 1`` (or an explicit ``executor``) fans the per-seed
    campaigns out over worker processes; each work unit derives its
    scenario seed exactly as the serial path does, so the aggregate is
    identical either way.
    """
    # Normalize up front: a generator would pass the emptiness check, get
    # consumed by the campaign loop, and then record an empty seed tuple.
    seeds = tuple(seeds)
    if not seeds:
        raise ConfigurationError("need at least one seed")
    if executor is None and workers != 1:
        executor = CampaignExecutor(workers=workers)

    controllers = ("bofl", "performant", "oracle")
    campaigns: dict[int, dict[str, CampaignResult]] = {}
    if executor is not None:
        specs = expand_grid(
            devices=(device,),
            tasks=(task,),
            controllers=controllers,
            ratios=(deadline_ratio,),
            seeds=seeds,
            rounds=rounds,
            bofl_config=bofl_config,
        )
        report = executor.run(specs, use_cache=use_cache)
        for spec, result in zip(specs, report.results):
            campaigns.setdefault(spec.seed, {})[spec.controller] = result
    else:
        for seed in seeds:
            campaigns[seed] = {
                name: run_campaign(
                    device,
                    task,
                    name,
                    deadline_ratio,
                    rounds=rounds,
                    seed=seed,
                    bofl_config=bofl_config if name == "bofl" else None,
                    use_cache=use_cache,
                )
                for name in controllers
            }

    improvements: list[float] = []
    regrets: list[float] = []
    missed = 0
    for seed in seeds:
        per_seed = campaigns[seed]
        improvements.append(
            improvement_vs_performant(per_seed["bofl"], per_seed["performant"])
        )
        regrets.append(regret_vs_oracle(per_seed["bofl"], per_seed["oracle"]))
        missed += per_seed["bofl"].missed_rounds
    return SweepResult(
        device=device,
        task=task,
        deadline_ratio=deadline_ratio,
        rounds=rounds,
        seeds=tuple(seeds),
        improvement=SummaryStat.of(improvements),
        regret=SummaryStat.of(regrets),
        missed_total=missed,
        campaigns=campaigns,
    )
