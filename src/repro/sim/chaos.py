"""Chaos campaigns: paired fault-free / faulted runs with a resilience report.

This is the orchestration layer above :mod:`repro.faults`: it builds a
seeded :class:`~repro.faults.schedule.FaultSchedule` from a named preset,
runs the faulted campaign *and* its fault-free twin (same device, task,
controller, deadline ratio and seed — only the schedule differs) through
the ordinary executor/cache machinery, and distills the pair into
:class:`~repro.faults.metrics.ResilienceMetrics`.

Everything flows through :class:`~repro.sim.executor.CampaignSpec`, so
chaos campaigns inherit the stack's guarantees for free: serial and
parallel execution are identical, results cache under keys that include
the schedule and policy, and obs traces are byte-reproducible for a fixed
seed.  ``repro chaos run|report`` is the CLI front end.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass
from typing import Optional, Union

from repro.analysis.tables import ascii_table, render_kv
from repro.core.records import CampaignResult
from repro.errors import ConfigurationError
from repro.faults.metrics import ResilienceMetrics
from repro.faults.recovery import NO_RECOVERY, RecoveryPolicy
from repro.faults.schedule import FAULT_KINDS, FaultSchedule
from repro.obs.events import Event, read_jsonl
from repro.sim.executor import CampaignExecutor, CampaignSpec

#: Named fault mixes for ``repro chaos run --preset``.  Each preset is the
#: tuple of kinds :meth:`FaultSchedule.generate` cycles through.
CHAOS_PRESETS: dict[str, tuple[str, ...]] = {
    "sensor": ("sensor_outage", "sensor_spike", "dvfs_reject"),
    "thermal": ("thermal_trip", "straggler"),
    "transport": ("transport_stall", "transport_loss", "client_dropout"),
    "mixed": FAULT_KINDS,
}


def preset_schedule(
    preset: str, seed: int, rounds: int, *, n_faults: int = 4
) -> FaultSchedule:
    """Derive the schedule of a named preset for a campaign of ``rounds``."""
    try:
        kinds = CHAOS_PRESETS[preset]
    except KeyError:
        raise ConfigurationError(
            f"unknown chaos preset {preset!r}; available: "
            f"{', '.join(sorted(CHAOS_PRESETS))}"
        ) from None
    return FaultSchedule.generate(seed, rounds, kinds=kinds, n_faults=n_faults)


@dataclass(frozen=True)
class ChaosRunResult:
    """A faulted campaign, its fault-free twin, and the comparison."""

    preset: str
    schedule: FaultSchedule
    policy: RecoveryPolicy
    baseline: CampaignResult
    faulted: CampaignResult
    metrics: ResilienceMetrics

    def render(self) -> str:
        """The ``repro chaos run`` report."""
        chaos = self.faulted.chaos
        pairs = [
            ("preset", self.preset),
            ("device / task", f"{self.faulted.device} / {self.faulted.task}"),
            ("controller", self.faulted.controller),
            ("rounds", self.metrics.rounds),
            ("faults injected", len(self.schedule)),
            ("faulted rounds", self.metrics.faulted_rounds),
            ("missed rounds", self.metrics.missed_rounds),
            ("miss rate", f"{self.metrics.miss_rate:.1%}"),
            ("baseline energy (J)", self.metrics.baseline_energy),
            ("faulted energy (J)", self.metrics.faulted_energy),
            (
                "energy regret",
                f"{self.metrics.energy_regret:.1f} J "
                f"({self.metrics.energy_regret_fraction:+.1%})",
            ),
            (
                "recovery rounds",
                f"mean {self.metrics.mean_recovery_rounds:.1f}, "
                f"max {self.metrics.max_recovery_rounds}",
            ),
        ]
        if chaos is not None:
            pairs += [
                ("checkpoints", chaos.checkpoints),
                ("restores", chaos.restores),
                ("escalations", chaos.escalations),
                ("dropped rounds", chaos.dropped_rounds),
                ("lost reports", chaos.lost_reports),
            ]
        lines = [render_kv(pairs, title="Chaos campaign")]
        rows = [
            [f.kind, f.start_round, f.end_round - 1, f"{f.magnitude:.3g}"]
            for f in self.schedule.faults
        ]
        if rows:
            lines.append("")
            lines.append(
                ascii_table(
                    ["fault", "from round", "to round", "magnitude"],
                    rows,
                    title="Injected schedule",
                )
            )
        return "\n".join(lines)


def run_chaos(
    device: str = "agx",
    task: str = "vit",
    controller: str = "bofl",
    deadline_ratio: float = 2.0,
    *,
    rounds: int = 20,
    seed: int = 0,
    preset: str = "mixed",
    n_faults: int = 4,
    schedule: Optional[FaultSchedule] = None,
    policy: Optional[RecoveryPolicy] = None,
    recovery: bool = True,
    executor: Optional[CampaignExecutor] = None,
    use_cache: bool = True,
) -> ChaosRunResult:
    """Run one chaos campaign plus its fault-free twin and compare them.

    ``schedule`` overrides the preset; ``recovery=False`` selects the
    defenseless :data:`~repro.faults.recovery.NO_RECOVERY` ablation.  Both
    campaigns go through ``executor`` (default: a serial one), so
    ``--workers`` parallelism and cache layering apply unchanged.
    """
    if schedule is None:
        schedule = preset_schedule(preset, seed, rounds, n_faults=n_faults)
    if policy is None:
        policy = RecoveryPolicy() if recovery else NO_RECOVERY
    base_spec = CampaignSpec(
        device=device,
        task=task,
        controller=controller,
        deadline_ratio=float(deadline_ratio),
        rounds=rounds,
        seed=seed,
    )
    chaos_spec = CampaignSpec(
        device=device,
        task=task,
        controller=controller,
        deadline_ratio=float(deadline_ratio),
        rounds=rounds,
        seed=seed,
        fault_schedule=schedule,
        recovery_policy=policy,
    )
    if executor is None:
        executor = CampaignExecutor(workers=1)
    report = executor.run([base_spec, chaos_spec], use_cache=use_cache)
    baseline, faulted = report.results
    metrics = ResilienceMetrics.compute(faulted, baseline, schedule)
    return ChaosRunResult(
        preset=preset,
        schedule=schedule,
        policy=policy,
        baseline=baseline,
        faulted=faulted,
        metrics=metrics,
    )


#: Event kinds the trace report tabulates, in display order.
_TRACE_KINDS = (
    "fault.injected",
    "fault.cleared",
    "recovery.checkpoint",
    "recovery.restore",
    "recovery.escalation",
)


def render_chaos_trace(events: list[Event]) -> str:
    """The ``repro chaos report`` view over a recorded JSONL trace.

    Summarizes the fault/recovery activity of a trace written by
    ``repro chaos run --trace``: per-kind counts plus a chronological
    fault-and-recovery timeline.
    """
    counts = {kind: 0 for kind in _TRACE_KINDS}
    timeline = []
    rounds_seen = 0
    missed = 0
    for event in events:
        if event.kind in counts:
            counts[event.kind] += 1
        if event.kind == "controller.round":
            rounds_seen += 1
            if event.payload.get("missed"):
                missed += 1
        if event.kind == "fault.injected":
            timeline.append(
                [
                    event.payload.get("round", "?"),
                    "inject",
                    event.payload.get("fault", "?"),
                    f"magnitude {event.payload.get('magnitude', 0):.3g}",
                ]
            )
        elif event.kind == "recovery.restore":
            kinds = event.payload.get("kinds", [])
            detail = ", ".join(str(k) for k in kinds) if isinstance(kinds, list) else ""
            timeline.append(
                [event.payload.get("round", "?"), "restore", "checkpoint", detail]
            )
        elif event.kind == "recovery.escalation":
            timeline.append(
                [
                    event.payload.get("round", "?"),
                    "escalate",
                    "x_max pin",
                    f"{event.payload.get('rounds', '?')} round(s)",
                ]
            )
    if all(count == 0 for count in counts.values()):
        return (
            "no fault or recovery events in this trace "
            "(was it recorded with `repro chaos run --trace`?)"
        )
    pairs = [(kind, counts[kind]) for kind in _TRACE_KINDS]
    pairs.append(("controller rounds", rounds_seen))
    pairs.append(("missed rounds", missed))
    lines = [render_kv(pairs, title="Chaos trace summary")]
    if timeline:
        lines.append("")
        lines.append(
            ascii_table(
                ["round", "action", "what", "detail"],
                timeline,
                title="Fault & recovery timeline",
            )
        )
    return "\n".join(lines)


def chaos_report_from_trace(path: Union[str, pathlib.Path]) -> str:
    """Load a JSONL trace and render the chaos report."""
    return render_chaos_trace(read_jsonl(path))
