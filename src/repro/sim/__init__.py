"""Experiment harness: MBO cost model, campaign runner and executor.

:func:`run_campaign` is the workhorse behind every evaluation figure: it
wires a device, task, deadline schedule and controller together, runs the
requested number of FL rounds under simulated time, and returns a
:class:`~repro.core.records.CampaignResult`.  Results are memoized
in-process so benchmark modules can share campaigns; a durable
:class:`PersistentCampaignCache` can be installed underneath the memo, and
:class:`CampaignExecutor` fans whole campaign grids out over worker
processes with results identical to the serial path.
"""

from repro.sim.chaos import (
    CHAOS_PRESETS,
    ChaosRunResult,
    chaos_report_from_trace,
    preset_schedule,
    run_chaos,
)
from repro.sim.cache import (
    CACHE_DIR_ENV,
    CACHE_SCHEMA_VERSION,
    CacheStats,
    PersistentCampaignCache,
    cache_key_hash,
    default_cache_dir,
)
from repro.sim.executor import (
    CampaignExecutor,
    CampaignSpec,
    CampaignTiming,
    ExecutionReport,
    execute_campaigns,
    expand_grid,
    resolve_workers,
)
from repro.sim.fleet import (
    FLEET_SELECTORS,
    FleetSpec,
    build_fleet_clients,
    campaign_spec_for,
    compose_fleet,
    fleet_summary,
    prepare_fleet,
    render_fleet_summary,
    run_fleet,
)
from repro.sim.mbo_cost import MBOCostModel
from repro.sim.runner import (
    CONTROLLER_NAMES,
    campaign_key,
    clear_campaign_cache,
    get_persistent_cache,
    install_persistent_cache,
    make_controller,
    prime_campaign_cache,
    run_campaign,
)
from repro.sim.sweep import SummaryStat, SweepResult, sweep_campaign

__all__ = [
    "CACHE_DIR_ENV",
    "CACHE_SCHEMA_VERSION",
    "CHAOS_PRESETS",
    "CONTROLLER_NAMES",
    "CacheStats",
    "CampaignExecutor",
    "CampaignSpec",
    "CampaignTiming",
    "ChaosRunResult",
    "ExecutionReport",
    "FLEET_SELECTORS",
    "FleetSpec",
    "MBOCostModel",
    "PersistentCampaignCache",
    "SummaryStat",
    "SweepResult",
    "build_fleet_clients",
    "cache_key_hash",
    "campaign_key",
    "campaign_spec_for",
    "compose_fleet",
    "fleet_summary",
    "prepare_fleet",
    "render_fleet_summary",
    "run_fleet",
    "chaos_report_from_trace",
    "clear_campaign_cache",
    "default_cache_dir",
    "execute_campaigns",
    "expand_grid",
    "get_persistent_cache",
    "install_persistent_cache",
    "make_controller",
    "preset_schedule",
    "prime_campaign_cache",
    "resolve_workers",
    "run_campaign",
    "run_chaos",
    "sweep_campaign",
]
