"""Experiment harness: MBO cost model and campaign runner.

:func:`run_campaign` is the workhorse behind every evaluation figure: it
wires a device, task, deadline schedule and controller together, runs the
requested number of FL rounds under simulated time, and returns a
:class:`~repro.core.records.CampaignResult`.  Results are memoized
in-process so benchmark modules can share campaigns.
"""

from repro.sim.mbo_cost import MBOCostModel
from repro.sim.runner import (
    CONTROLLER_NAMES,
    clear_campaign_cache,
    make_controller,
    run_campaign,
)
from repro.sim.sweep import SummaryStat, SweepResult, sweep_campaign

__all__ = [
    "CONTROLLER_NAMES",
    "MBOCostModel",
    "SummaryStat",
    "SweepResult",
    "clear_campaign_cache",
    "make_controller",
    "run_campaign",
    "sweep_campaign",
]
