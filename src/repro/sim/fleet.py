"""Fleet orchestration: build, trace, and compose thousand-client federations.

This is the scaling layer on top of :mod:`repro.federated.async_engine`.
A :class:`FleetSpec` declares a heterogeneous client population — devices,
tasks and pace controllers assigned round-robin — and the fleet run splits
into two phases with very different execution profiles:

1. **Trace gathering** (:func:`prepare_fleet`): every client's local
   training rounds are an ordinary campaign
   (:func:`repro.sim.runner.run_campaign`), so the fleet rides the whole
   campaign machinery for free — the in-process memo, the persistent
   on-disk cache, and the :class:`~repro.sim.executor.CampaignExecutor`
   process pool.  ``archetypes`` pools clients onto shared trace seeds
   (real fleets show population-level redundancy; simulation exploits it):
   a 1,000-client fleet collapses to a handful of unique campaigns, which
   is what makes it run in minutes on one machine.
2. **Composition** (:func:`compose_fleet`): a pure, serial, deterministic
   function of the traces and the fleet seed.  No wall clock, no pool —
   which is why serial and sharded trace gathering yield byte-identical
   deterministic observability traces: open the obs session around *this*
   phase (the CLI's ``repro fleet run --trace`` does), and the only events
   captured are the engine's own ``fleet.*`` kinds, independent of how the
   traces were computed.

Fault composition: each chaotic client derives one schedule of
``client_dropout`` + ``transport_stall`` windows from the fleet seed; the
dropout windows join the client's *campaign* key (the chaos engine idles
the device through them), while the stall windows stay fleet-side and
delay report arrivals.  Both effects land in the same composition without
either subsystem knowing about the other.
"""

from __future__ import annotations

import dataclasses
import math
import pathlib
import zlib
from dataclasses import dataclass
from typing import Optional, Union

from repro.errors import ConfigurationError
from repro.federated.aggregation import FedAvg
from repro.federated.async_engine import (
    FLEET_MODES,
    AsyncFederationEngine,
    FleetClient,
    FleetResult,
)
from repro.federated.selection import (
    ClientSelector,
    EnergyAwareSelector,
    RandomSelector,
)
from repro.federated.hierarchy import HierarchySpec
from repro.federated.transport import MODEL_SIZES_MBIT, LinkModel
from repro.faults.schedule import FaultSchedule, FaultSpec
from repro.obs import runtime as obs
from repro.servertune.controllers import (
    ServerTuneSpec,
    make_server_controller,
    normalize_servertune,
)
from repro.sim.cache import PersistentCampaignCache
from repro.sim.executor import CampaignExecutor, CampaignSpec, ProgressCallback

#: Default heterogeneous population: both testbed boards, all three paper
#: tasks, BoFL pacing against the Performant baseline.
FLEET_DEVICES: tuple[str, ...] = ("agx", "tx2")
FLEET_TASKS: tuple[str, ...] = ("vit", "resnet50", "lstm")
FLEET_CONTROLLERS: tuple[str, ...] = ("bofl", "performant")

#: Selector strategies ``compose_fleet`` knows how to build.
FLEET_SELECTORS: tuple[str, ...] = ("all", "random", "energy")


def _stable_seed(label: str) -> int:
    """A process-stable 31-bit seed derived from a label string.

    The same crc32 derivation the campaign runner uses for scenario
    seeds: stable across processes and Python versions, unlike the
    builtin string hash.
    """
    return zlib.crc32(label.encode()) % (2**31)


@dataclass(frozen=True)
class FleetSpec:
    """One declarative fleet run: population, pacing, and discipline."""

    n_clients: int = 100
    rounds: int = 10
    mode: str = "sync"
    deadline_ratio: float = 2.0
    seed: int = 0
    devices: tuple[str, ...] = FLEET_DEVICES
    tasks: tuple[str, ...] = FLEET_TASKS
    controllers: tuple[str, ...] = FLEET_CONTROLLERS
    #: Pool clients onto this many shared trace seeds (None: all distinct).
    archetypes: Optional[int] = 12
    #: Aggregation target per round (None: everyone participates).
    participants: Optional[int] = None
    #: ``semisync``: select ``ceil(participants x over_selection)`` clients.
    over_selection: float = 1.3
    #: ``async``: commit a model version per this many buffered reports.
    buffer_size: int = 16
    #: ``async``: staleness-discount exponent for report weights.
    staleness_exponent: float = 0.5
    #: ``async``: drop reports staler than this many versions (None: keep).
    max_staleness: Optional[int] = None
    selector: str = "random"
    #: Fraction of clients running under a derived chaos schedule.
    chaos_fraction: float = 0.0
    chaos_seed: int = 0
    #: Optional adaptive server controller: reshapes per-archetype trace
    #: deadlines (it joins every client's campaign key) and adapts the
    #: composition's participation/patience/buffer knobs per round.
    #: Static specs normalize to None, preserving pre-subsystem behaviour.
    servertune: Optional[ServerTuneSpec] = None
    #: Hierarchical aggregation: fold client updates through this many
    #: edge aggregators before the server (None: flat, the default).
    #: Changes the aggregation arithmetic (a reweighted two-stage mean),
    #: so it is part of the spec, not a composition tuning knob.
    edges: Optional[int] = None

    def __post_init__(self) -> None:
        if self.n_clients < 1:
            raise ConfigurationError(f"n_clients must be >= 1, got {self.n_clients}")
        if self.rounds < 1:
            raise ConfigurationError(f"rounds must be >= 1, got {self.rounds}")
        if self.mode not in FLEET_MODES:
            raise ConfigurationError(
                f"unknown fleet mode {self.mode!r}; available: "
                f"{', '.join(FLEET_MODES)}"
            )
        if self.deadline_ratio <= 0:
            raise ConfigurationError(
                f"deadline_ratio must be positive, got {self.deadline_ratio}"
            )
        for name, values in (
            ("devices", self.devices),
            ("tasks", self.tasks),
            ("controllers", self.controllers),
        ):
            if not values:
                raise ConfigurationError(f"{name} must be non-empty")
        for task in self.tasks:
            if task not in MODEL_SIZES_MBIT:
                raise ConfigurationError(
                    f"no model size known for task {task!r}; available: "
                    f"{', '.join(sorted(MODEL_SIZES_MBIT))}"
                )
        if self.archetypes is not None and self.archetypes < 1:
            raise ConfigurationError(
                f"archetypes must be >= 1 or None, got {self.archetypes}"
            )
        if self.participants is not None and self.participants < 1:
            raise ConfigurationError(
                f"participants must be >= 1 or None, got {self.participants}"
            )
        if self.over_selection < 1.0:
            raise ConfigurationError(
                f"over_selection must be >= 1, got {self.over_selection}"
            )
        if self.buffer_size < 1:
            raise ConfigurationError(
                f"buffer_size must be >= 1, got {self.buffer_size}"
            )
        if self.staleness_exponent < 0:
            raise ConfigurationError(
                f"staleness_exponent must be >= 0, got {self.staleness_exponent}"
            )
        if self.max_staleness is not None and self.max_staleness < 0:
            raise ConfigurationError(
                f"max_staleness must be >= 0 or None, got {self.max_staleness}"
            )
        if self.selector not in FLEET_SELECTORS:
            raise ConfigurationError(
                f"unknown selector {self.selector!r}; available: "
                f"{', '.join(FLEET_SELECTORS)}"
            )
        if not 0.0 <= self.chaos_fraction <= 1.0:
            raise ConfigurationError(
                f"chaos_fraction must lie in [0, 1], got {self.chaos_fraction}"
            )
        if self.edges is not None and self.edges < 1:
            raise ConfigurationError(
                f"edges must be >= 1 or None, got {self.edges}"
            )

    def effective_participants(self) -> int:
        """The per-round aggregation target, capped at the fleet size."""
        if self.participants is None:
            return self.n_clients
        return min(self.participants, self.n_clients)


def _client_chaos(
    spec: FleetSpec, client_id: str, device: str, task: str,
    controller: str, trace_seed: int,
) -> tuple[Optional[FaultSchedule], tuple[FaultSpec, ...]]:
    """Derive a chaotic client's (dropout schedule, stall windows).

    Whether a client is chaotic hashes from its id; the *windows* hash
    from its archetype (device/task/controller/trace seed), so archetype
    mates that are both chaotic share one campaign key and the trace
    gathering stays pooled.
    """
    if spec.chaos_fraction <= 0:
        return None, ()
    roll = _stable_seed(f"fleet-chaos/{spec.chaos_seed}/{client_id}") % 10_000
    if roll >= int(spec.chaos_fraction * 10_000):
        return None, ()
    schedule = FaultSchedule.generate(
        _stable_seed(
            f"fleet-fault/{spec.chaos_seed}/{device}/{task}/{controller}/{trace_seed}"
        ),
        spec.rounds,
        kinds=("client_dropout", "transport_stall"),
        n_faults=2,
        settle_rounds=min(1, max(spec.rounds - 1, 0)),
    )
    dropout = tuple(f for f in schedule.faults if f.kind == "client_dropout")
    stalls = tuple(f for f in schedule.faults if f.kind == "transport_stall")
    campaign_schedule = (
        FaultSchedule(faults=dropout, seed=schedule.seed) if dropout else None
    )
    return campaign_schedule, stalls


def build_fleet_clients(spec: FleetSpec) -> list[FleetClient]:
    """Materialize the fleet population (traces still empty).

    Device, task and controller are assigned on interleaved cycles so
    every attribute mixes independently; sample counts and upload seeds
    hash from the client id, making each client's transport behaviour a
    pure function of the fleet spec.
    """
    nd, nt, nc = len(spec.devices), len(spec.tasks), len(spec.controllers)
    clients: list[FleetClient] = []
    for index in range(spec.n_clients):
        device = spec.devices[index % nd]
        task = spec.tasks[(index // nd) % nt]
        controller = spec.controllers[(index // (nd * nt)) % nc]
        archetype = (
            index % spec.archetypes if spec.archetypes is not None else index
        )
        trace_seed = spec.seed + archetype
        client_id = f"client-{index:04d}"
        campaign_schedule, stalls = _client_chaos(
            spec, client_id, device, task, controller, trace_seed
        )
        clients.append(
            FleetClient(
                client_id=client_id,
                index=index,
                device=device,
                task=task,
                controller=controller,
                trace_seed=trace_seed,
                n_samples=200 + _stable_seed(f"samples/{spec.seed}/{client_id}") % 801,
                model_size_mbit=MODEL_SIZES_MBIT[task],
                stall_windows=stalls,
                upload_seed=_stable_seed(f"upload/{spec.seed}/{client_id}"),
                fault_schedule=campaign_schedule,
            )
        )
    return clients


def campaign_spec_for(client: FleetClient, spec: FleetSpec) -> CampaignSpec:
    """The campaign producing this client's local-round trace.

    An adaptive ``spec.servertune`` rides onto every client's campaign
    key: the server controller reshapes each archetype's per-round
    deadline budget, so a tuned fleet must never reuse a static fleet's
    traces (or vice versa).
    """
    return CampaignSpec(
        device=client.device,
        task=client.task,
        controller=client.controller,
        deadline_ratio=spec.deadline_ratio,
        rounds=spec.rounds,
        seed=client.trace_seed,
        fault_schedule=client.fault_schedule,
        servertune=normalize_servertune(spec.servertune),
    )


def _warm_objective_tensors(specs: list[CampaignSpec]) -> None:
    """Precompute the objective tensor of every unique (device, task) pair.

    A fleet instantiates thousands of clients from a handful of
    archetypes; warming here means each calibration's O(|X|) surface is
    built exactly once in the parent process (forked workers inherit the
    cache) instead of lazily inside every campaign.
    """
    from repro.hardware.devices import get_device
    from repro.sim.runner import _task_by_name

    for device_name, task_name in sorted({(s.device, s.task) for s in specs}):
        task = _task_by_name(task_name)
        task.workload.performance_model(get_device(device_name)).objective_tensor()


def prepare_fleet(
    spec: FleetSpec,
    *,
    workers: Optional[int] = None,
    cache: Optional[PersistentCampaignCache] = None,
    progress: Optional[ProgressCallback] = None,
    use_cache: bool = True,
) -> list[FleetClient]:
    """Build the population and fill every client's trace.

    The executor dedups identical campaign keys, so pooled archetypes cost
    one simulation each regardless of fleet size; ``workers`` shards the
    unique campaigns over the process pool.  Run this *outside* any
    deterministic obs session meant for fleet traces — executor cache/cell
    events depend on worker count and cache state, the composition does
    not.
    """
    clients = build_fleet_clients(spec)
    specs = [campaign_spec_for(client, spec) for client in clients]
    _warm_objective_tensors(specs)
    executor = CampaignExecutor(workers=workers, cache=cache, progress=progress)
    report = executor.run(specs, use_cache=use_cache)
    for client, result in zip(clients, report.results):
        # A fresh list per client: duplicate keys share RoundRecord
        # objects, and the async engine trims its own copy of the list.
        client.records = list(result.records)
    return clients


def compose_fleet(
    spec: FleetSpec,
    clients: list[FleetClient],
    *,
    engine: str = "vectorized",
    detail: str = "reports",
    shards: Optional[int] = None,
) -> FleetResult:
    """Run the federation engine over prepared traces (pure, serial).

    Clients are cloned first, so the same prepared population can be
    composed repeatedly — e.g. once per mode for a sync/semisync/async
    comparison — without one composition consuming another's traces.

    ``engine``/``detail``/``shards`` tune *how* the composition executes,
    never *what* it computes: ``engine="legacy"`` selects the retained
    per-event loop (differential testing), ``detail="stats"`` keeps
    per-round counters instead of per-report objects (O(rounds) memory at
    100k+ clients), and ``shards`` parallelizes the trace-column build —
    all byte-identical to the serial vectorized default.  ``spec.edges``,
    by contrast, changes the aggregation arithmetic, which is why it
    lives on the spec.
    """
    target = spec.effective_participants()
    if spec.mode == "semisync":
        selection_size = min(
            spec.n_clients, math.ceil(target * spec.over_selection)
        )
    else:
        selection_size = target
    tune = normalize_servertune(spec.servertune)
    # An adaptive controller's participation knob needs a sized selector
    # to act on, so a tuned fleet always builds one — even when the
    # static sizing would have selected everyone.
    sized = selection_size < spec.n_clients or tune is not None
    selector: Optional[ClientSelector] = None
    if spec.selector == "random" and sized:
        selector = RandomSelector(selection_size, seed=spec.seed)
    elif spec.selector == "energy" and sized:
        selector = EnergyAwareSelector(selection_size, seed=spec.seed)
    hierarchy = None if spec.edges is None else HierarchySpec(n_edges=spec.edges)
    if obs.enabled():
        if hierarchy is not None:
            obs.emit(
                "fleet.topology",
                edges=hierarchy.n_edges,
                clients=len(clients),
            )
        if shards is not None:
            obs.count("fleet.compose_shards", shards)
    fed_engine = AsyncFederationEngine(
        [
            dataclasses.replace(client, records=list(client.records))
            for client in clients
        ],
        mode=spec.mode,
        link=LinkModel(),
        selector=selector,
        aggregator=FedAvg(),
        target_reports=target if spec.mode == "semisync" else None,
        buffer_size=spec.buffer_size,
        staleness_exponent=spec.staleness_exponent,
        max_staleness=spec.max_staleness,
        controller=None if tune is None else make_server_controller(tune),
        engine=engine,
        detail=detail,
        hierarchy=hierarchy,
        shards=shards,
    )
    return fed_engine.run(spec.rounds)


def run_fleet(
    spec: FleetSpec,
    *,
    workers: Optional[int] = None,
    cache: Optional[PersistentCampaignCache] = None,
    progress: Optional[ProgressCallback] = None,
    use_cache: bool = True,
    engine: str = "vectorized",
    detail: str = "reports",
    shards: Optional[int] = None,
) -> FleetResult:
    """Prepare and compose one fleet in a single call."""
    clients = prepare_fleet(
        spec, workers=workers, cache=cache, progress=progress, use_cache=use_cache
    )
    return compose_fleet(
        spec, clients, engine=engine, detail=detail, shards=shards
    )


def fleet_summary(spec: FleetSpec, result: FleetResult) -> dict[str, object]:
    """The JSON-stable scorecard of one fleet run (CLI report, goldens)."""
    summary: dict[str, object] = {
        "mode": result.mode,
        "clients": result.n_clients,
        "rounds": len(result.rounds),
        "aggregations": result.aggregations,
        "makespan": round(result.makespan, 6),
        "mean_round_latency": round(result.mean_round_latency, 6),
        "total_energy": round(result.total_energy, 6),
        "mean_staleness": round(result.mean_staleness, 6),
        "straggler_reports": result.straggler_reports,
        "cutoff_reports": result.cutoff_reports,
        "staleness_drops": result.staleness_drops,
        "dropout_rounds": result.dropout_rounds,
        "deadline_ratio": spec.deadline_ratio,
        "seed": spec.seed,
    }
    if spec.servertune is not None:
        # Only tuned fleets grow the key: static scorecards (and their
        # golden files) stay byte-identical to the pre-subsystem layout.
        summary["servertune"] = spec.servertune.controller
    if spec.edges is not None:
        # Same rule for hierarchy: flat scorecards keep the legacy layout.
        summary["edges"] = spec.edges
    return summary


def render_fleet_summary(summary: dict[str, object]) -> str:
    """Human-readable rendering of :func:`fleet_summary`."""
    lines = [f"{key:18s} : {value}" for key, value in summary.items()]
    return "\n".join(lines)


def fleet_report_from_trace(path: Union[str, pathlib.Path]) -> str:
    """Summarize the ``fleet.*``/``hierarchy.*`` activity of a recorded trace.

    The replay half of ``repro fleet run --trace``: event counts by kind,
    the run's configuration from ``fleet.start``, and the closing
    scorecard from ``fleet.end``.  Streams the trace — JSONL or columnar
    (:func:`repro.obs.columnar.iter_trace_events`) — keeping memory
    bounded by one chunk, not the file: a 100k-client trace carries
    millions of enqueue events and must never be materialized whole.
    """
    from collections import Counter

    from repro.obs.columnar import iter_trace_events
    from repro.obs.events import Event

    counts: Counter[str] = Counter()
    start: Optional[Event] = None
    end: Optional[Event] = None
    for event in iter_trace_events(path):
        if event.layer not in ("fleet", "hierarchy"):
            continue
        counts[event.kind] += 1
        if event.kind == "fleet.start" and start is None:
            start = event
        elif event.kind == "fleet.end":
            end = event
    if not counts:
        raise ConfigurationError(f"no fleet events found in {path}")
    lines = [f"Fleet trace: {path}", ""]
    for kind in sorted(counts):
        lines.append(f"  {kind:22s} {counts[kind]}")
    if start is not None:
        lines.append("")
        lines.append(
            "run: mode={mode} clients={clients} rounds={rounds}".format(
                mode=start.payload.get("mode"),
                clients=start.payload.get("clients"),
                rounds=start.payload.get("rounds"),
            )
        )
    if end is not None:
        for key in (
            "aggregations", "total_energy", "makespan", "mean_latency",
            "stragglers", "cutoffs", "staleness_drops", "dropouts",
        ):
            if key in end.payload:
                lines.append(f"  {key:18s} : {end.payload[key]}")
    return "\n".join(lines)

