"""Cost model for the MBO engine runs (Fig. 13).

On the paper's boards one MBO invocation — refit two GPs, score the space
with EHVI, greedily assemble a batch — takes 6-9 seconds and 50-70 J.  The
cost grows with the observation count (GP refits) and the batch size
(sequential-greedy fantasies); the TX2's weaker CPU stretches the latency.

The model:

    ``latency = (base + per_obs * n + per_pick * K) / relative_cpu_speed``
    ``energy  = latency * mbo_power``

with ``mbo_power`` proportional to the device's CPU capability (the MBO is
a CPU-side computation; the GPU idles through it).
"""

from __future__ import annotations


from repro.errors import ConfigurationError
from repro.hardware.devices import DeviceSpec
from repro.types import Joules, Seconds


class MBOCostModel:
    """Latency/energy of one MBO run on a given device."""

    def __init__(
        self,
        device: DeviceSpec,
        *,
        base_seconds: float = 1.5,
        per_observation_seconds: float = 0.04,
        per_pick_seconds: float = 0.30,
        power_watts_at_unit_speed: float = 10.0,
    ) -> None:
        if min(base_seconds, per_observation_seconds, per_pick_seconds) < 0:
            raise ConfigurationError("MBO cost coefficients must be non-negative")
        if power_watts_at_unit_speed <= 0:
            raise ConfigurationError("MBO power must be positive")
        self.device = device
        self.base_seconds = base_seconds
        self.per_observation_seconds = per_observation_seconds
        self.per_pick_seconds = per_pick_seconds
        self.power_watts = power_watts_at_unit_speed * device.relative_cpu_speed

    def __call__(self, n_observations: int, batch_size: int) -> tuple[Seconds, Joules]:
        """Cost of one MBO run with ``n_observations`` and batch ``batch_size``."""
        if n_observations < 0 or batch_size < 0:
            raise ConfigurationError("counts must be non-negative")
        latency = (
            self.base_seconds
            + self.per_observation_seconds * n_observations
            + self.per_pick_seconds * batch_size
        ) / self.device.relative_cpu_speed
        return latency, latency * self.power_watts
