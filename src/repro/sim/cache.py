"""Persistent on-disk campaign result cache.

The in-memory memo in :mod:`repro.sim.runner` dies with the process; this
module provides the durable layer underneath it.  Entries are JSON files
keyed by a stable content hash of the full campaign key — device, task,
controller, deadline ratio, rounds, seed and every :class:`BoFLConfig`
field — plus a schema version, so a change to either the result format or
the config surface invalidates old entries instead of silently serving
stale results.

Layout (one file per campaign)::

    <cache_dir>/
        a3f91c...e2.json    # {"schema": 1, "key": {...}, "campaign": {...}}

Writes are atomic (temp file + ``os.replace``), reads treat any corrupt or
mismatched file as a miss, and eviction is LRU by file mtime (reads touch
their entry) bounded by ``max_entries`` and optionally ``max_bytes``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pathlib
import tempfile
from dataclasses import dataclass
from typing import Optional, Union

from repro.analysis.io import campaign_from_dict, campaign_to_dict
from repro.core.config import BoFLConfig
from repro.core.records import CampaignResult
from repro.errors import ConfigurationError
from repro.faults.recovery import RecoveryPolicy
from repro.faults.schedule import FaultSchedule
from repro.servertune.controllers import ServerTuneSpec

#: Bump whenever the campaign key layout or the serialized result format
#: changes; older entries then read as misses and are rewritten.
#: v2: fault schedule + recovery policy joined the key (chaos campaigns).
#: v3: tokens grew a ``kind`` discriminator — fleet-layer artifacts share
#: the store's namespace with plain campaigns and must never collide.
#: v4: the optional servertune spec joined the key — an adaptive server
#: controller reshapes a campaign's per-round deadlines, so controller
#: state is part of what "the same campaign" means.
CACHE_SCHEMA_VERSION = 4

#: Environment variable naming the default cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Sidecar filename for cumulative traffic counters.  Deliberately not
#: ``*.json`` so the entry glob (and eviction) never sees it.
STATS_SIDECAR = "stats.meta"

#: Bump when the sidecar layout changes; older sidecars read as empty.
STATS_SCHEMA_VERSION = 1

#: The counters the sidecar accumulates across sessions.
_STAT_FIELDS = ("hits", "misses", "writes", "evictions")

#: The in-process campaign key: (device, task, controller, ratio, rounds,
#: seed, BoFLConfig-or-None, FaultSchedule-or-None, RecoveryPolicy-or-None,
#: ServerTuneSpec-or-None) — the same tuple the runner memoizes on.
CampaignKey = tuple[
    str,
    str,
    str,
    float,
    int,
    int,
    Optional[BoFLConfig],
    Optional[FaultSchedule],
    Optional[RecoveryPolicy],
    Optional[ServerTuneSpec],
]


def default_cache_dir() -> pathlib.Path:
    """``$REPRO_CACHE_DIR``, else ``~/.cache/repro/campaigns``."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return pathlib.Path(env)
    return pathlib.Path.home() / ".cache" / "repro" / "campaigns"


def cache_token(key: CampaignKey) -> dict[str, object]:
    """A JSON-stable representation of a campaign key.

    ``BoFLConfig`` is expanded field by field so that adding a knob (or
    changing a default) produces a different token — the persistent cache
    must never conflate configs that the in-memory key distinguishes.  The
    fault schedule and recovery policy expand the same way, so a faulted
    campaign can never be served its fault-free twin (or vice versa).
    The servertune spec expands likewise: an adaptive server controller
    reshapes the per-round deadlines, so a tuned campaign must never
    collide with its static twin.
    """
    (
        device, task, controller, ratio, rounds, seed,
        config, schedule, policy, servertune,
    ) = key
    return {
        "schema": CACHE_SCHEMA_VERSION,
        "kind": "campaign",
        "device": device,
        "task": task,
        "controller": controller,
        "deadline_ratio": float(ratio),
        "rounds": int(rounds),
        "seed": int(seed),
        "bofl_config": None if config is None else dataclasses.asdict(config),
        "fault_schedule": None if schedule is None else schedule.to_dict(),
        "recovery_policy": None if policy is None else policy.to_dict(),
        "servertune": None if servertune is None else servertune.to_dict(),
    }


def cache_key_hash(key: CampaignKey) -> str:
    """A stable hex digest of :func:`cache_token` (the entry filename stem)."""
    canonical = json.dumps(cache_token(key), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class CacheStats:
    """A point-in-time snapshot of a persistent cache.

    ``hits``/``misses``/``writes``/``evictions`` are this instance's
    session counters; the ``total_*`` fields are cumulative across every
    session that touched the directory, read from the incrementally
    persisted sidecar — accurate even after an interrupted campaign.
    """

    directory: str
    entries: int
    total_bytes: int
    hits: int
    misses: int
    writes: int
    evictions: int
    total_hits: int = 0
    total_misses: int = 0
    total_writes: int = 0
    total_evictions: int = 0

    def render(self) -> str:
        lines = [
            f"cache directory : {self.directory}",
            f"entries         : {self.entries}",
            f"size            : {self.total_bytes / 1024:.1f} KiB",
            f"session hits    : {self.hits}",
            f"session misses  : {self.misses}",
            f"session writes  : {self.writes}",
            f"session evicted : {self.evictions}",
            f"lifetime hits   : {self.total_hits}",
            f"lifetime misses : {self.total_misses}",
            f"lifetime writes : {self.total_writes}",
            f"lifetime evicted: {self.total_evictions}",
        ]
        return "\n".join(lines)


class PersistentCampaignCache:
    """Durable campaign-result store under one directory.

    Safe to share between processes: writes are atomic renames and readers
    ignore files they cannot parse.  Hit/miss/write counters are per
    instance (session telemetry), while entry/byte counts are read from
    disk on demand.
    """

    def __init__(
        self,
        directory: Union[str, pathlib.Path, None] = None,
        *,
        max_entries: int = 4096,
        max_bytes: Optional[int] = None,
    ) -> None:
        if max_entries < 1:
            raise ConfigurationError(
                f"max_entries must be >= 1, got {max_entries}"
            )
        if max_bytes is not None and max_bytes <= 0:
            raise ConfigurationError(f"max_bytes must be positive, got {max_bytes}")
        self.directory = pathlib.Path(directory) if directory else default_cache_dir()
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.evictions = 0

    # -- paths ---------------------------------------------------------------

    def path_for(self, key: CampaignKey) -> pathlib.Path:
        return self.directory / f"{cache_key_hash(key)}.json"

    @property
    def _sidecar_path(self) -> pathlib.Path:
        return self.directory / STATS_SIDECAR

    # -- cumulative stats sidecar -------------------------------------------

    def _read_sidecar(self) -> dict[str, int]:
        """Cumulative counters from disk; zeros on any kind of damage."""
        try:
            payload = json.loads(self._sidecar_path.read_text())
        except (OSError, json.JSONDecodeError):
            return dict.fromkeys(_STAT_FIELDS, 0)
        if (
            not isinstance(payload, dict)
            or payload.get("schema") != STATS_SCHEMA_VERSION
        ):
            return dict.fromkeys(_STAT_FIELDS, 0)
        return {
            field: int(payload.get(field, 0))
            for field in _STAT_FIELDS
        }

    def _bump(self, field: str, amount: int = 1) -> None:
        """Count one cache operation, session-local and durably.

        The sidecar is rewritten atomically on *every* operation — not on
        shutdown — so ``repro cache stats`` stays accurate after an
        interrupted campaign.  A directory that does not exist yet (pure
        misses before the first write) is left untouched; the first
        ``put`` creates it and persistence starts there.
        """
        setattr(self, field, getattr(self, field) + amount)
        if not self.directory.is_dir():
            return
        totals = self._read_sidecar()
        totals[field] += amount
        payload = {"schema": STATS_SCHEMA_VERSION, **totals}
        try:
            fd, tmp_name = tempfile.mkstemp(
                dir=str(self.directory), prefix=".tmp-stats-", suffix=".meta"
            )
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle)
            os.replace(tmp_name, self._sidecar_path)
        except OSError:
            # Stats persistence is best-effort; never fail the cache op.
            try:
                os.unlink(tmp_name)
            except (OSError, UnboundLocalError):
                pass

    def _entries(self) -> list[pathlib.Path]:
        if not self.directory.is_dir():
            return []
        return sorted(
            (p for p in self.directory.glob("*.json") if p.is_file()),
            key=lambda p: p.stat().st_mtime,
        )

    # -- read/write ----------------------------------------------------------

    def get(self, key: CampaignKey) -> Optional[CampaignResult]:
        """Load the cached result for ``key``, or None on any kind of miss."""
        path = self.path_for(key)
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            self._bump("misses")
            return None
        if (
            not isinstance(payload, dict)
            or payload.get("schema") != CACHE_SCHEMA_VERSION
            or payload.get("key") != cache_token(key)
        ):
            self._bump("misses")
            return None
        try:
            result = campaign_from_dict(payload["campaign"])
        except (ConfigurationError, KeyError, TypeError):
            self._bump("misses")
            return None
        try:
            os.utime(path)  # LRU touch
        except OSError:
            pass
        self._bump("hits")
        return result

    def put(self, key: CampaignKey, result: CampaignResult) -> pathlib.Path:
        """Atomically persist ``result`` under ``key`` and enforce bounds."""
        self.directory.mkdir(parents=True, exist_ok=True)
        payload = {
            "schema": CACHE_SCHEMA_VERSION,
            "key": cache_token(key),
            "campaign": campaign_to_dict(result),
        }
        path = self.path_for(key)
        fd, tmp_name = tempfile.mkstemp(
            dir=str(self.directory), prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle)
            os.replace(tmp_name, path)
        except OSError:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self._bump("writes")
        self._evict()
        return path

    def _evict(self) -> None:
        """Drop oldest entries until within max_entries / max_bytes."""
        entries = self._entries()
        sizes = {p: p.stat().st_size for p in entries}
        total = sum(sizes.values())
        while entries and (
            len(entries) > self.max_entries
            or (self.max_bytes is not None and total > self.max_bytes)
        ):
            victim = entries.pop(0)
            try:
                victim.unlink()
            except OSError:
                continue
            total -= sizes[victim]
            self._bump("evictions")

    # -- maintenance ---------------------------------------------------------

    def clear(self) -> int:
        """Delete every entry (and the stats sidecar); returns files removed."""
        removed = 0
        for path in self._entries():
            try:
                path.unlink()
                removed += 1
            except OSError:
                continue
        try:
            self._sidecar_path.unlink()
        except OSError:
            pass
        return removed

    def stats(self) -> CacheStats:
        entries = self._entries()
        totals = self._read_sidecar()
        return CacheStats(
            directory=str(self.directory),
            entries=len(entries),
            total_bytes=sum(p.stat().st_size for p in entries),
            hits=self.hits,
            misses=self.misses,
            writes=self.writes,
            evictions=self.evictions,
            total_hits=totals["hits"],
            total_misses=totals["misses"],
            total_writes=totals["writes"],
            total_evictions=totals["evictions"],
        )

    def __len__(self) -> int:
        return len(self._entries())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PersistentCampaignCache({str(self.directory)!r}, "
            f"max_entries={self.max_entries}, max_bytes={self.max_bytes})"
        )
