"""Parallel campaign execution engine.

Every evaluation artifact in this repo is a projection of a campaign grid
— (device x task x controller x deadline-ratio x seed) — and each cell is
an independent, deterministic simulation.  This module fans a grid out
over a :class:`concurrent.futures.ProcessPoolExecutor` while preserving
the paired-determinism guarantee: a work unit is described declaratively
by :class:`CampaignSpec` and each worker derives its scenario seed exactly
as the serial :func:`repro.sim.runner.run_campaign` path does, so parallel
and serial runs produce identical :class:`CampaignResult` objects.

Cache layering (checked in order, all keyed by
:func:`repro.sim.runner.campaign_key`):

1. the in-process memo in :mod:`repro.sim.runner` ("memory");
2. the optional durable :class:`~repro.sim.cache.PersistentCampaignCache`
   ("disk");
3. a worker process computes the campaign ("computed") and the parent
   writes the result through both layers.

Per-campaign :class:`CampaignTiming` records (source + wall seconds) make
long grids observable; pass a ``progress`` callback to stream them.
"""

from __future__ import annotations

import copy
import os
import time
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from dataclasses import dataclass
from collections.abc import Callable, Sequence
from typing import Optional

from repro.core.config import BoFLConfig
from repro.core.records import CampaignResult
from repro.errors import ConfigurationError
from repro.faults.recovery import RecoveryPolicy
from repro.faults.schedule import FaultSchedule
from repro.obs import runtime as obs
from repro.servertune.controllers import ServerTuneSpec
from repro.sim import runner as _runner
from repro.sim.cache import PersistentCampaignCache
from repro.sim.runner import (
    CampaignKey,
    campaign_key,
    prime_campaign_cache,
    run_campaign,
)

#: Hard ceiling on worker processes: beyond the physical core count the
#: simulation is purely CPU-bound and extra workers only add contention.
MAX_WORKERS = 32


def resolve_workers(workers: Optional[int]) -> int:
    """Normalize a ``workers`` request: ``None`` means "all cores", bounded."""
    available = os.cpu_count() or 1
    if workers is None:
        return max(1, min(available, MAX_WORKERS))
    if workers < 1:
        raise ConfigurationError(f"workers must be >= 1, got {workers}")
    return min(workers, MAX_WORKERS)


@dataclass(frozen=True)
class CampaignSpec:
    """One declarative work unit of a campaign grid.

    Mirrors the :func:`repro.sim.runner.run_campaign` signature; the
    executor never runs anything a plain serial call could not.
    """

    device: str
    task: str
    controller: str
    deadline_ratio: float
    rounds: int = 100
    seed: int = 0
    bofl_config: Optional[BoFLConfig] = None
    #: Optional chaos inputs: a fault schedule switches the cell onto the
    #: chaos engine; both participate in the cache key.
    fault_schedule: Optional[FaultSchedule] = None
    recovery_policy: Optional[RecoveryPolicy] = None
    #: Optional adaptive server controller above the round loop; part of
    #: the cache key (it reshapes the per-round deadlines).
    servertune: Optional[ServerTuneSpec] = None

    def key(self) -> CampaignKey:
        return campaign_key(
            self.device, self.task, self.controller, self.deadline_ratio,
            self.rounds, self.seed, self.bofl_config,
            self.fault_schedule, self.recovery_policy, self.servertune,
        )

    def label(self) -> str:
        base = (
            f"{self.device}/{self.task}/{self.controller}"
            f"/r{self.deadline_ratio:g}/n{self.rounds}/s{self.seed}"
        )
        if self.fault_schedule is not None and not self.fault_schedule.is_empty:
            base += f"/chaos{len(self.fault_schedule)}"
        if self.servertune is not None and not self.servertune.is_static:
            base += f"/tune-{self.servertune.controller}"
        return base

    def run(self, *, use_cache: bool = True) -> CampaignResult:
        """Execute this spec in-process through the ordinary runner path."""
        return run_campaign(
            self.device,
            self.task,
            self.controller,
            self.deadline_ratio,
            rounds=self.rounds,
            seed=self.seed,
            bofl_config=self.bofl_config,
            use_cache=use_cache,
            fault_schedule=self.fault_schedule,
            recovery_policy=self.recovery_policy,
            servertune=self.servertune,
        )


def expand_grid(
    devices: Sequence[str] = ("agx",),
    tasks: Sequence[str] = ("vit", "resnet50", "lstm"),
    controllers: Sequence[str] = ("bofl", "performant", "oracle"),
    ratios: Sequence[float] = (2.0,),
    seeds: Sequence[int] = (0,),
    *,
    rounds: int = 100,
    bofl_config: Optional[BoFLConfig] = None,
) -> list[CampaignSpec]:
    """The full cross product as an ordered list of specs.

    ``bofl_config`` is attached only to ``bofl``-family controllers (the
    baselines ignore it, and keeping it off their keys maximizes cache
    sharing — exactly as :func:`repro.sim.sweep.sweep_campaign` does).
    """
    specs = []
    for device in devices:
        for task in tasks:
            for ratio in ratios:
                for seed in seeds:
                    for controller in controllers:
                        config = (
                            bofl_config
                            if controller in ("bofl", "random_search")
                            else None
                        )
                        specs.append(
                            CampaignSpec(
                                device=device,
                                task=task,
                                controller=controller,
                                deadline_ratio=float(ratio),
                                rounds=rounds,
                                seed=seed,
                                bofl_config=config,
                            )
                        )
    return specs


@dataclass(frozen=True)
class CampaignTiming:
    """How one grid cell was satisfied and how long it took."""

    spec: CampaignSpec
    seconds: float
    #: "memory" | "disk" | "computed" | "inline" (workers=1 fallback).
    source: str

    def render(self) -> str:
        return f"{self.spec.label():44s} {self.seconds:8.3f}s  [{self.source}]"


#: Progress callback signature: called once per completed grid cell, in
#: completion order, with (done_count, total_count, timing).
ProgressCallback = Callable[[int, int, CampaignTiming], None]


def _compute_spec(spec: CampaignSpec) -> CampaignResult:
    """Worker-side entry point: compute one campaign from scratch.

    ``use_cache=False`` keeps worker processes from uselessly memoizing
    results that die with them; the parent primes its own caches instead.
    """
    return spec.run(use_cache=False)


@dataclass
class ExecutionReport:
    """The outcome of one :meth:`CampaignExecutor.run` call."""

    results: list[CampaignResult]
    timings: list[CampaignTiming]
    workers: int
    wall_seconds: float

    @property
    def computed(self) -> int:
        return sum(1 for t in self.timings if t.source in ("computed", "inline"))

    @property
    def from_cache(self) -> int:
        return sum(1 for t in self.timings if t.source in ("memory", "disk"))

    def render(self) -> str:
        lines = [t.render() for t in self.timings]
        lines.append(
            f"{len(self.timings)} campaigns ({self.computed} computed, "
            f"{self.from_cache} cached) in {self.wall_seconds:.2f}s "
            f"on {self.workers} worker(s)"
        )
        return "\n".join(lines)


class CampaignExecutor:
    """Fan campaign grids out over worker processes, cache-aware.

    ``workers=1`` degrades to the plain in-process :func:`run_campaign`
    path — no subprocesses, no pickling — which unit tests rely on for
    determinism and debuggability.  Any higher count uses a process pool;
    duplicate specs within one submission are computed once.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        *,
        cache: Optional[PersistentCampaignCache] = None,
        progress: Optional[ProgressCallback] = None,
    ) -> None:
        self.workers = resolve_workers(workers)
        self.cache = cache
        self.progress = progress
        #: Timings accumulated across every run() on this executor.
        self.timings: list[CampaignTiming] = []

    # -- cache layers --------------------------------------------------------

    def _lookup(self, spec: CampaignSpec) -> tuple[Optional[CampaignResult], str]:
        key = spec.key()
        cached = _runner._CAMPAIGN_CACHE.get(key)
        if cached is not None:
            # Defensive copy: the memo's value is private (see runner).
            return copy.deepcopy(cached), "memory"
        for layer in (self.cache, _runner.get_persistent_cache()):
            if layer is None:
                continue
            loaded = layer.get(key)
            if loaded is not None:
                prime_campaign_cache(key, loaded)
                return loaded, "disk"
        return None, "miss"

    def _store(self, spec: CampaignSpec, result: CampaignResult) -> None:
        key = spec.key()
        prime_campaign_cache(key, result)
        for layer in {id(c): c for c in (self.cache, _runner.get_persistent_cache())
                      if c is not None}.values():
            layer.put(key, result)

    # -- execution -----------------------------------------------------------

    def run(
        self, specs: Sequence[CampaignSpec], *, use_cache: bool = True
    ) -> ExecutionReport:
        """Execute every spec; results come back in submission order."""
        specs = list(specs)
        started = time.perf_counter()
        results: dict[int, CampaignResult] = {}
        timings: dict[int, CampaignTiming] = {}
        done_count = 0
        total = len(specs)

        def finish(index: int, result: CampaignResult, seconds: float, source: str) -> None:
            nonlocal done_count
            results[index] = result
            timing = CampaignTiming(spec=specs[index], seconds=seconds, source=source)
            timings[index] = timing
            done_count += 1
            if obs.enabled():
                obs.emit(
                    "executor.cell",
                    label=timing.spec.label(),
                    seconds=seconds,
                    source=source,
                    workers=self.workers,
                )
                obs.count(f"executor.cells_{source}")
                obs.observe("executor.cell_seconds", seconds)
            if self.progress is not None:
                self.progress(done_count, total, timing)

        #: key -> list of spec indices still needing a result (dedup).
        pending: dict[CampaignKey, list[int]] = {}
        for index, spec in enumerate(specs):
            if use_cache:
                hit, source = self._lookup(spec)
                if hit is not None:
                    finish(index, hit, 0.0, source)
                    continue
            pending.setdefault(spec.key(), []).append(index)

        if pending:
            if self.workers == 1:
                self._run_inline(pending, specs, use_cache, finish)
            else:
                self._run_pool(pending, specs, use_cache, finish)

        ordered_timings = [timings[i] for i in sorted(timings)]
        self.timings.extend(ordered_timings)
        report = ExecutionReport(
            results=[results[i] for i in range(total)],
            timings=ordered_timings,
            workers=self.workers,
            wall_seconds=time.perf_counter() - started,
        )
        return report

    def run_one(self, spec: CampaignSpec, *, use_cache: bool = True) -> CampaignResult:
        """Convenience wrapper: execute a single spec."""
        return self.run([spec], use_cache=use_cache).results[0]

    def _run_inline(
        self,
        pending: dict[CampaignKey, list[int]],
        specs: Sequence[CampaignSpec],
        use_cache: bool,
        finish: Callable[[int, CampaignResult, float, str], None],
    ) -> None:
        for key, indices in pending.items():
            spec = specs[indices[0]]
            t0 = time.perf_counter()
            result = spec.run(use_cache=use_cache)
            seconds = time.perf_counter() - t0
            if use_cache and self.cache is not None:
                # run() already primed the runner-level caches.
                self.cache.put(key, result)
            for index in indices:
                finish(index, result, seconds, "inline")

    def _run_pool(
        self,
        pending: dict[CampaignKey, list[int]],
        specs: Sequence[CampaignSpec],
        use_cache: bool,
        finish: Callable[[int, CampaignResult, float, str], None],
    ) -> None:
        workers = min(self.workers, len(pending))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures: dict[Future[CampaignResult], tuple[CampaignKey, list[int], float]] = {}
            for key, indices in pending.items():
                spec = specs[indices[0]]
                futures[pool.submit(_compute_spec, spec)] = (
                    key, indices, time.perf_counter(),
                )
            outstanding = set(futures)
            while outstanding:
                completed, outstanding = wait(
                    outstanding, return_when=FIRST_COMPLETED
                )
                for future in completed:
                    key, indices, t0 = futures[future]
                    result = future.result()
                    seconds = time.perf_counter() - t0
                    spec = specs[indices[0]]
                    if use_cache:
                        self._store(spec, result)
                    for index in indices:
                        finish(index, result, seconds, "computed")


def execute_campaigns(
    specs: Sequence[CampaignSpec],
    *,
    workers: Optional[int] = None,
    cache: Optional[PersistentCampaignCache] = None,
    progress: Optional[ProgressCallback] = None,
    use_cache: bool = True,
) -> ExecutionReport:
    """One-shot helper: build an executor, run the grid, return the report."""
    executor = CampaignExecutor(workers=workers, cache=cache, progress=progress)
    return executor.run(specs, use_cache=use_cache)
