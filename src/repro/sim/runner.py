"""Campaign runner: one controller, one device, one task, N rounds.

Determinism and pairing: the deadline sequence and the device noise stream
are derived from (device, task, ratio, seed) only — *not* from the
controller — so BoFL, Performant and Oracle face identical rounds and
their energy curves are directly comparable, exactly as on a shared
physical testbed.
"""

from __future__ import annotations

import copy
import zlib
from collections.abc import Callable
from typing import Optional, Protocol

from repro.core.config import BoFLConfig
from repro.core.controller import BoFLController
from repro.core.base import PaceController
from repro.core.records import CampaignResult, ChaosSummary
from repro.baselines import (
    LinearPaceController,
    OndemandGovernorController,
    OracleController,
    PerformantController,
    RandomSearchController,
)
from repro.errors import ConfigurationError
from repro.faults.engine import ChaosRoundEngine
from repro.faults.recovery import RecoveryPolicy
from repro.faults.schedule import FaultSchedule
from repro.federated.deadlines import UniformDeadlines
from repro.obs import runtime as obs
from repro.servertune.controllers import (
    RoundFeedback,
    ServerTuneSpec,
    make_server_controller,
    normalize_servertune,
)
from repro.federated.task import FLTaskSpec, cifar10_vit, imagenet_resnet50, imdb_lstm
from repro.hardware.device import SimulatedDevice
from repro.hardware.devices import get_device
from repro.hardware.thermal import ThermalModel
from repro.sim.mbo_cost import MBOCostModel

#: The canonical campaign cache key: a flat tuple of hashable scalars
#: (plus the optional frozen BoFLConfig).  Shared by the memo, the
#: persistent cache and the parallel executor.
CampaignKey = tuple[object, ...]


class CampaignCacheProtocol(Protocol):
    """Structural interface of the durable cache layer (get/put by key)."""

    def get(self, key: CampaignKey) -> Optional[CampaignResult]: ...

    def put(self, key: CampaignKey, result: CampaignResult) -> None: ...


#: Task registry by short name.
_TASKS: dict[str, Callable[[], FLTaskSpec]] = {
    "vit": cifar10_vit,
    "resnet50": imagenet_resnet50,
    "lstm": imdb_lstm,
}

#: Controller names accepted by :func:`make_controller` / :func:`run_campaign`.
CONTROLLER_NAMES: tuple[str, ...] = (
    "bofl",
    "performant",
    "oracle",
    "random_search",
    "linear_pace",
    "ondemand",
)

#: The per-process memo.  Values are private copies: lookups return a
#: defensive deepcopy so callers can mutate their result (``_annotate``
#: does, and analysis code reasonably might) without corrupting the cache
#: for every later caller.
_CAMPAIGN_CACHE: dict[CampaignKey, CampaignResult] = {}

#: Optional durable layer underneath the in-memory memo (see
#: :mod:`repro.sim.cache`); ``None`` keeps the runner disk-free.
_PERSISTENT_CACHE: Optional[CampaignCacheProtocol] = None


def campaign_key(
    device_name: str,
    task_name: str,
    controller_name: str,
    deadline_ratio: float,
    rounds: int,
    seed: int,
    bofl_config: Optional[BoFLConfig] = None,
    fault_schedule: Optional[FaultSchedule] = None,
    recovery_policy: Optional[RecoveryPolicy] = None,
    servertune: Optional[ServerTuneSpec] = None,
) -> CampaignKey:
    """The canonical cache key for one campaign.

    Shared by the in-memory memo, the persistent cache and the parallel
    executor so all three agree on what "the same campaign" means.  The
    fault schedule and recovery policy are part of the key: a faulted
    campaign must never collide with its fault-free twin (or with a
    differently-defended run of the same schedule).  Chaos arguments are
    normalized the same way :func:`run_campaign` executes them — an empty
    schedule keys as fault-free, and a missing policy keys as the default
    :class:`~repro.faults.recovery.RecoveryPolicy` — so every caller maps
    equivalent runs to the same key.  A servertune spec joins the key
    only when adaptive (an adaptive server controller reshapes the
    per-round deadlines); static specs normalize to ``None`` so they
    share keys with pre-subsystem campaigns.
    """
    if fault_schedule is not None and fault_schedule.is_empty:
        fault_schedule = None
    if fault_schedule is None:
        recovery_policy = None
    elif recovery_policy is None:
        recovery_policy = RecoveryPolicy()
    return (
        device_name,
        task_name,
        controller_name,
        float(deadline_ratio),
        int(rounds),
        int(seed),
        bofl_config,
        fault_schedule,
        recovery_policy,
        normalize_servertune(servertune),
    )


def clear_campaign_cache() -> None:
    """Drop memoized campaign results (tests use this for isolation)."""
    _CAMPAIGN_CACHE.clear()


def install_persistent_cache(cache: Optional[CampaignCacheProtocol]) -> None:
    """Install (or with ``None`` remove) the process-wide durable cache.

    ``cache`` is a :class:`repro.sim.cache.PersistentCampaignCache` (or any
    object with its ``get``/``put`` interface).  Once installed,
    :func:`run_campaign` falls back to it on in-memory misses and writes
    fresh results through to it.
    """
    global _PERSISTENT_CACHE
    _PERSISTENT_CACHE = cache


def get_persistent_cache() -> Optional[CampaignCacheProtocol]:
    """The currently installed durable cache, or ``None``."""
    return _PERSISTENT_CACHE


def prime_campaign_cache(key: CampaignKey, result: CampaignResult) -> None:
    """Insert an externally computed result into the in-memory memo.

    Used by the parallel executor to make results computed in worker
    processes visible to subsequent in-process :func:`run_campaign` calls.
    A private copy is stored, mirroring the fresh-result path.
    """
    _CAMPAIGN_CACHE[key] = copy.deepcopy(result)


def make_controller(
    name: str,
    device: SimulatedDevice,
    *,
    seed: int = 0,
    bofl_config: Optional[BoFLConfig] = None,
    with_mbo_cost: bool = True,
) -> PaceController:
    """Instantiate a controller by name, bound to ``device``."""
    mbo_cost = MBOCostModel(device.spec) if with_mbo_cost else None
    if name == "bofl":
        config = bofl_config if bofl_config is not None else BoFLConfig(seed=seed)
        return BoFLController(device, config, mbo_cost=mbo_cost)
    if name == "performant":
        return PerformantController(device)
    if name == "oracle":
        return OracleController(device)
    if name == "random_search":
        config = bofl_config if bofl_config is not None else BoFLConfig(seed=seed)
        return RandomSearchController(device, config, mbo_cost=mbo_cost)
    if name == "linear_pace":
        return LinearPaceController(device)
    if name == "ondemand":
        return OndemandGovernorController(device)
    raise ConfigurationError(
        f"unknown controller {name!r}; available: {', '.join(CONTROLLER_NAMES)}"
    )


def _task_by_name(name: str) -> FLTaskSpec:
    try:
        return _TASKS[name]()
    except KeyError:
        raise ConfigurationError(
            f"unknown task {name!r}; available: {', '.join(sorted(_TASKS))}"
        ) from None


def run_campaign(
    device_name: str,
    task_name: str,
    controller_name: str,
    deadline_ratio: float,
    *,
    rounds: int = 100,
    seed: int = 0,
    bofl_config: Optional[BoFLConfig] = None,
    use_cache: bool = True,
    fault_schedule: Optional[FaultSchedule] = None,
    recovery_policy: Optional[RecoveryPolicy] = None,
    servertune: Optional[ServerTuneSpec] = None,
) -> CampaignResult:
    """Run (or fetch from cache) one full campaign.

    Parameters mirror the paper's experiment grid: device in {agx, tx2},
    task in {vit, resnet50, lstm}, controller in
    :data:`CONTROLLER_NAMES`, ``deadline_ratio`` = ``T_max / T_min``.

    A non-empty ``fault_schedule`` switches the round loop onto the chaos
    engine (:mod:`repro.faults`): faults arm per round, the
    ``recovery_policy`` (default :class:`~repro.faults.recovery.RecoveryPolicy`)
    defends the controller, and the result carries a
    :class:`~repro.core.records.ChaosSummary`.  The deadline sequence and
    the device noise stream stay identical to the fault-free twin, so the
    two runs are directly comparable round by round.

    An adaptive ``servertune`` spec puts a server-side controller above
    the round loop (:mod:`repro.servertune`): each round's deadline is
    scaled by the controller's current ``deadline_scale`` knob, updated
    from the previous rounds' miss/energy feedback, and the controller's
    ``halt`` knob can end the campaign early.  Static specs are
    normalized away, keeping those runs byte-identical to pre-subsystem
    campaigns.
    """
    chaos = fault_schedule is not None and not fault_schedule.is_empty
    if not chaos:
        fault_schedule = None
        recovery_policy = None
    elif recovery_policy is None:
        recovery_policy = RecoveryPolicy()
    servertune = normalize_servertune(servertune)
    key = campaign_key(
        device_name, task_name, controller_name, deadline_ratio, rounds, seed,
        bofl_config, fault_schedule, recovery_policy, servertune,
    )
    if use_cache:
        cached = _CAMPAIGN_CACHE.get(key)
        if cached is not None:
            _emit_cache_event("memory", device_name, task_name, controller_name, seed)
            return copy.deepcopy(cached)
        if _PERSISTENT_CACHE is not None:
            loaded = _PERSISTENT_CACHE.get(key)
            if loaded is not None:
                _CAMPAIGN_CACHE[key] = loaded  # repro: allow[process-boundary] -- guarded by use_cache; pool workers call run(use_cache=False)
                _emit_cache_event("disk", device_name, task_name, controller_name, seed)
                return copy.deepcopy(loaded)
        _emit_cache_event("miss", device_name, task_name, controller_name, seed)

    spec = get_device(device_name)
    task = _task_by_name(task_name)
    # Device noise is paired across controllers: seed depends on the
    # scenario, not the controller.  (zlib.crc32 is stable across processes,
    # unlike the builtin string hash.)
    scenario_seed = zlib.crc32(f"{device_name}/{task_name}/{seed}".encode()) % (2**31)
    # Thermal-trip faults need a thermal state to force; attaching the
    # model only when required keeps fault-free twins byte-identical to
    # historical runs.
    thermal = (
        ThermalModel()
        if fault_schedule is not None and fault_schedule.needs_thermal
        else None
    )
    device = SimulatedDevice(spec, task.workload, seed=scenario_seed, thermal=thermal)
    # Build (or attach to) the shared whole-space objective tensor up
    # front so the per-minibatch hot path is lookups from the first job.
    device.model.objective_tensor()
    controller = make_controller(
        controller_name, device, seed=seed, bofl_config=bofl_config
    )

    jobs = task.jobs_per_round(spec)
    t_min = device.model.latency(spec.space.max_configuration()) * jobs
    deadlines = UniformDeadlines(deadline_ratio).generate(
        t_min, rounds, seed=scenario_seed + 1
    )

    result = CampaignResult(
        controller=controller_name,
        device=device_name,
        task=task_name,
        deadline_ratio=deadline_ratio,
    )
    obs.emit(
        "campaign.start",
        t=device.clock.now,
        device=device_name,
        task=task_name,
        controller=controller_name,
        deadline_ratio=float(deadline_ratio),
        rounds=int(rounds),
        seed=int(seed),
        jobs_per_round=jobs,
    )
    engine: Optional[ChaosRoundEngine] = None
    if fault_schedule is not None and recovery_policy is not None:
        obs.emit(
            "chaos.schedule",
            t=device.clock.now,
            schedule=fault_schedule.to_dict(),
            policy=recovery_policy.to_dict(),
        )
        engine = ChaosRoundEngine(
            device, controller, fault_schedule, recovery_policy
        )
    tuner = make_server_controller(servertune) if servertune is not None else None
    cumulative_energy = 0.0
    cumulative_elapsed = 0.0
    for index, deadline in enumerate(deadlines):
        if tuner is not None:
            knobs = tuner.knobs_for(index)
            if knobs.halt:
                # The rounds-budget knob: the server stops paying for
                # rounds that no longer improve its objective.
                obs.emit(
                    "servertune.halt",
                    t=device.clock.now,
                    round=index,
                    controller=tuner.name,
                )
                obs.count("servertune.halts")
                break
            if knobs.deadline_scale != 1.0:
                scaled = deadline * knobs.deadline_scale
                obs.emit(
                    "servertune.override",
                    t=device.clock.now,
                    context="campaign",
                    round=index,
                    controller=tuner.name,
                    base_deadline=deadline,
                    deadline=scaled,
                    scale=knobs.deadline_scale,
                )
                obs.count("servertune.overrides")
                deadline = scaled
        if engine is not None:
            record = engine.run_round(index, jobs, deadline)
        else:
            record = controller.run_round(jobs, deadline)
        result.records.append(record)
        if tuner is not None:
            cumulative_energy += record.energy
            cumulative_elapsed += record.elapsed
            tuner.observe(
                RoundFeedback(
                    round_index=index,
                    participants=1,
                    buffered=0 if record.missed else 1,
                    stragglers=1 if record.missed else 0,
                    energy=record.energy,
                    latency=record.elapsed,
                    total_energy=cumulative_energy,
                    makespan=cumulative_elapsed,
                )
            )
    if engine is not None:
        engine.finish()
        result.chaos = ChaosSummary(
            injected=tuple(engine.log.injected),
            checkpoints=engine.log.checkpoints,
            restores=engine.log.restores,
            escalations=engine.log.escalations,
            dropped_rounds=engine.log.dropped_rounds,
            lost_reports=engine.log.lost_reports,
        )

    _annotate(result, controller)
    obs.emit(
        "campaign.end",
        t=device.clock.now,
        device=device_name,
        task=task_name,
        controller=controller_name,
        training_energy=result.training_energy,
        mbo_energy=result.mbo_energy,
        total_energy=result.total_energy,
        missed_rounds=result.missed_rounds,
        explored_total=result.explored_total,
    )
    if use_cache:
        _CAMPAIGN_CACHE[key] = copy.deepcopy(result)  # repro: allow[process-boundary] -- guarded by use_cache; pool workers call run(use_cache=False)
        if _PERSISTENT_CACHE is not None:
            _PERSISTENT_CACHE.put(key, result)
    return result


def _annotate(result: CampaignResult, controller: PaceController) -> None:
    """Fill retrospective fields (final front, Table 3 Pareto counts)."""
    if isinstance(controller, BoFLController):
        front_configs, front_values = controller.store.pareto_set()
        result.final_front = [(float(t), float(e)) for t, e in front_values]
        front_set = set(front_configs)
        for record in result.records:
            record.explored_on_final_front = sum(
                1 for c in record.explored if c in front_set
            )
        if obs.enabled():
            # The trace-side Table 3 derivation needs the final front's
            # *configurations*, not just its objective values.
            obs.emit(
                "campaign.front",
                t=controller.device.clock.now,
                configs=[list(c.as_tuple()) for c in front_configs],
                values=[[float(t), float(e)] for t, e in front_values],
            )
    elif isinstance(controller, OracleController):
        result.final_front = [
            (float(t), float(e)) for t, e in controller.pareto_values
        ]


def _emit_cache_event(
    layer: str, device: str, task: str, controller: str, seed: int
) -> None:
    """Record one campaign-cache lookup outcome (memory/disk hit or miss)."""
    if obs.enabled():
        obs.emit(
            "campaign.cache",
            layer=layer,
            device=device,
            task=task,
            controller=controller,
            seed=int(seed),
        )
        obs.count(f"campaign.cache_{layer}")
