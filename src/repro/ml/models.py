"""Classifier models built on the layer substrate."""

from __future__ import annotations

from collections.abc import Sequence
from typing import Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.ml.layers import Dense, ReLU, Sequential
from repro.ml.losses import softmax_cross_entropy


class MLPClassifier:
    """A multilayer perceptron classifier with softmax cross-entropy.

    Stands in for the paper's ViT/ResNet50/LSTM models on the *learning*
    side of the reproduction: FedAvg over these genuinely converges, while
    the hardware simulator supplies the per-minibatch energy/latency of the
    heavyweight networks it represents.
    """

    def __init__(
        self,
        input_dim: int,
        hidden_dims: Sequence[int],
        n_classes: int,
        seed: int = 0,
    ) -> None:
        if n_classes < 2:
            raise ConfigurationError(f"need at least 2 classes, got {n_classes}")
        rng = np.random.default_rng(seed)
        layers: list = []
        prev = input_dim
        for width in hidden_dims:
            layers.append(Dense(prev, width, rng))
            layers.append(ReLU())
            prev = width
        layers.append(Dense(prev, n_classes, rng))
        self.network = Sequential(layers)
        self.input_dim = input_dim
        self.n_classes = n_classes

    # -- parameter vector interface (what FedAvg exchanges) -----------------

    @property
    def parameters(self) -> list[np.ndarray]:
        return self.network.parameters

    @property
    def gradients(self) -> list[np.ndarray]:
        return self.network.gradients

    def get_weights(self) -> list[np.ndarray]:
        """Copies of all trainable arrays (the FL 'model download')."""
        return [p.copy() for p in self.parameters]

    def set_weights(self, weights: Sequence[np.ndarray]) -> None:
        """Load weights in place (the FL 'model upload/aggregate')."""
        params = self.parameters
        if len(weights) != len(params):
            raise ConfigurationError(
                f"got {len(weights)} weight arrays for {len(params)} parameters"
            )
        for param, new in zip(params, weights):
            if param.shape != new.shape:
                raise ConfigurationError(
                    f"weight shape mismatch: {param.shape} vs {new.shape}"
                )
            param[...] = new

    # -- training/inference --------------------------------------------------

    def loss_and_backward(self, x: np.ndarray, labels: np.ndarray) -> float:
        """One forward/backward pass; leaves gradients ready for an optimizer."""
        logits = self.network.forward(x, training=True)
        loss, grad = softmax_cross_entropy(logits, labels)
        self.network.backward(grad)
        return loss

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        logits = self.network.forward(np.atleast_2d(x), training=False)
        shifted = logits - logits.max(axis=1, keepdims=True)
        exp = np.exp(shifted)
        return exp / exp.sum(axis=1, keepdims=True)

    def predict(self, x: np.ndarray) -> np.ndarray:
        return np.argmax(self.predict_proba(x), axis=1)

    def clone_architecture(self, seed: Optional[int] = None) -> "MLPClassifier":
        """A fresh model with the same shape (random weights)."""
        hidden = [
            layer.weight.shape[1]
            for layer in self.network.layers[:-1]
            if isinstance(layer, Dense)
        ]
        return MLPClassifier(self.input_dim, hidden, self.n_classes, seed=seed or 0)
