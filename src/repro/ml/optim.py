"""Optimizers operating on flat parameter/gradient lists."""

from __future__ import annotations

from collections.abc import Sequence
from typing import Optional

import numpy as np

from repro.errors import ConfigurationError


class SGD:
    """Stochastic gradient descent with optional momentum and weight decay.

    This mirrors the paper's training setup (plain SGD is the FL default;
    Eqn. references in §3.1).
    """

    def __init__(
        self,
        learning_rate: float = 0.05,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        if learning_rate <= 0:
            raise ConfigurationError(f"learning_rate must be positive, got {learning_rate}")
        if not 0.0 <= momentum < 1.0:
            raise ConfigurationError(f"momentum must lie in [0, 1), got {momentum}")
        if weight_decay < 0:
            raise ConfigurationError(f"weight_decay must be >= 0, got {weight_decay}")
        self.learning_rate = learning_rate
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: Optional[list[np.ndarray]] = None

    def step(self, parameters: Sequence[np.ndarray], gradients: Sequence[np.ndarray]) -> None:
        """Update ``parameters`` in place from ``gradients``."""
        if len(parameters) != len(gradients):
            raise ConfigurationError(
                f"{len(parameters)} parameters but {len(gradients)} gradients"
            )
        if self._velocity is None:
            self._velocity = [np.zeros_like(p) for p in parameters]
        if len(self._velocity) != len(parameters):
            raise ConfigurationError("optimizer was bound to a different model")
        for param, grad, vel in zip(parameters, gradients, self._velocity):
            update = grad + self.weight_decay * param
            vel *= self.momentum
            vel += update
            param -= self.learning_rate * vel

    def reset(self) -> None:
        """Drop momentum state (e.g. after the model is replaced by FedAvg)."""
        self._velocity = None
