"""Synthetic datasets shaped like the paper's three FL tasks.

No network access means no CIFAR10/ImageNet/IMDB downloads; these
generators produce learnable classification problems of the same *shape*
(multiclass image-like vectors; binary bag-of-words sentiment), plus the
non-IID client partitioners federated learning evaluations rely on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class Dataset:
    """Features and integer labels, with convenience splitters."""

    x: np.ndarray
    y: np.ndarray

    def __post_init__(self) -> None:
        if self.x.shape[0] != self.y.shape[0]:
            raise ConfigurationError(
                f"{self.x.shape[0]} feature rows vs {self.y.shape[0]} labels"
            )

    def __len__(self) -> int:
        return self.x.shape[0]

    @property
    def n_classes(self) -> int:
        return int(self.y.max()) + 1 if len(self) else 0

    def subset(self, indices: np.ndarray) -> "Dataset":
        return Dataset(self.x[indices], self.y[indices])

    def batches(self, batch_size: int, rng: np.random.Generator) -> list["Dataset"]:
        """Shuffled minibatches (the paper's 'jobs'); the tail is kept."""
        if batch_size < 1:
            raise ConfigurationError(f"batch_size must be >= 1, got {batch_size}")
        order = rng.permutation(len(self))
        return [
            self.subset(order[i : i + batch_size])
            for i in range(0, len(self), batch_size)
        ]


def make_blobs_classification(
    n_samples: int,
    n_features: int = 32,
    n_classes: int = 10,
    class_separation: float = 2.0,
    seed: int = 0,
) -> Dataset:
    """A CIFAR10-shaped multiclass problem: Gaussian class clusters."""
    if n_samples < n_classes:
        raise ConfigurationError("need at least one sample per class")
    rng = np.random.default_rng(seed)
    centers = rng.normal(0.0, class_separation, size=(n_classes, n_features))
    labels = rng.integers(0, n_classes, size=n_samples)
    features = centers[labels] + rng.normal(size=(n_samples, n_features))
    return Dataset(features.astype(float), labels.astype(int))


def make_text_sentiment(
    n_samples: int,
    vocabulary: int = 64,
    seed: int = 0,
) -> Dataset:
    """An IMDB-shaped binary problem: sparse bag-of-words with signed words.

    Half the vocabulary leans positive, half negative; documents draw a
    Poisson number of word occurrences biased by their label.
    """
    if vocabulary < 4:
        raise ConfigurationError("vocabulary must be at least 4")
    rng = np.random.default_rng(seed)
    labels = rng.integers(0, 2, size=n_samples)
    polarity = np.concatenate(
        [np.ones(vocabulary // 2), -np.ones(vocabulary - vocabulary // 2)]
    )
    base_rate = 0.6
    rates = base_rate * (1.0 + 0.8 * polarity[None, :] * (2.0 * labels[:, None] - 1.0))
    counts = rng.poisson(np.maximum(rates, 0.05))
    return Dataset(counts.astype(float), labels.astype(int))


def partition_iid(dataset: Dataset, n_clients: int, rng: np.random.Generator) -> list[Dataset]:
    """Split a dataset into IID shards of (nearly) equal size."""
    if n_clients < 1 or n_clients > len(dataset):
        raise ConfigurationError(
            f"cannot split {len(dataset)} samples across {n_clients} clients"
        )
    order = rng.permutation(len(dataset))
    return [dataset.subset(chunk) for chunk in np.array_split(order, n_clients)]


def partition_dirichlet(
    dataset: Dataset,
    n_clients: int,
    alpha: float = 0.5,
    rng: np.random.Generator = None,
) -> list[Dataset]:
    """Non-IID label-skewed split via per-class Dirichlet proportions.

    The standard FL heterogeneity protocol: lower ``alpha`` means more
    skew (each client sees fewer classes).  Every client is guaranteed at
    least one sample.
    """
    if alpha <= 0:
        raise ConfigurationError(f"alpha must be positive, got {alpha}")
    if n_clients < 1 or n_clients > len(dataset):
        raise ConfigurationError(
            f"cannot split {len(dataset)} samples across {n_clients} clients"
        )
    rng = rng if rng is not None else np.random.default_rng(0)
    client_indices: list[list[int]] = [[] for _ in range(n_clients)]
    for cls in range(dataset.n_classes):
        cls_idx = np.flatnonzero(dataset.y == cls)
        rng.shuffle(cls_idx)
        proportions = rng.dirichlet(np.full(n_clients, alpha))
        cuts = (np.cumsum(proportions) * len(cls_idx)).astype(int)[:-1]
        for client, chunk in enumerate(np.split(cls_idx, cuts)):
            client_indices[client].extend(chunk.tolist())
    # Guarantee non-empty shards by stealing from the largest.
    for client in range(n_clients):
        if not client_indices[client]:
            donor = max(range(n_clients), key=lambda c: len(client_indices[c]))
            client_indices[client].append(client_indices[donor].pop())
    return [dataset.subset(np.array(sorted(idx))) for idx in client_indices]
