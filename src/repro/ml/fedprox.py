"""FedProx local training (Li et al., MLSys 2020).

Under heterogeneous (non-IID) client data, plain FedAvg clients drift
toward their local optima during the ``E`` local epochs.  FedProx adds a
proximal term to the local objective,

    ``min_w  f_i(w) + (mu / 2) * ||w - w_global||^2``,

whose gradient contribution ``mu * (w - w_global)`` pulls each local model
back toward the round's global weights.  ``mu = 0`` recovers FedAvg
exactly.

This completes the federated substrate with the most common robustness
knob; BoFL is orthogonal to it (pace control never touches gradients), so
the two compose freely — which
``tests/ml/test_fedprox.py::test_composes_with_pace_control`` asserts.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.ml.data import Dataset
from repro.ml.models import MLPClassifier
from repro.ml.optim import SGD
from repro.ml.training import LocalTrainer


class FedProxTrainer(LocalTrainer):
    """A :class:`LocalTrainer` with the FedProx proximal term.

    Parameters are those of :class:`LocalTrainer` plus ``mu``, the
    proximal coefficient.  Call :meth:`set_global_weights` (or rely on
    :meth:`start_round`'s snapshot of the current model) so the trainer
    knows the anchor point.
    """

    def __init__(
        self,
        model: MLPClassifier,
        data: Dataset,
        batch_size: int,
        mu: float = 0.01,
        optimizer: Optional[SGD] = None,
        seed: int = 0,
    ) -> None:
        super().__init__(model, data, batch_size, optimizer, seed)
        if mu < 0:
            raise ConfigurationError(f"mu must be >= 0, got {mu}")
        self.mu = float(mu)
        self._anchor: Optional[list[np.ndarray]] = None

    def set_global_weights(self, weights: list[np.ndarray]) -> None:
        """Pin the proximal anchor to the round's global weights."""
        params = self.model.parameters
        if len(weights) != len(params):
            raise ConfigurationError(
                f"anchor has {len(weights)} arrays for {len(params)} parameters"
            )
        self._anchor = [np.array(w, copy=True) for w in weights]

    def start_round(self, epochs: int) -> int:
        """Queue the round's jobs; snapshots the anchor if not set."""
        if self._anchor is None:
            self._anchor = self.model.get_weights()
        return super().start_round(epochs)

    def train_job(self) -> float:
        """One minibatch of proximal SGD.

        The proximal gradient ``mu * (w - w_global)`` is added to the loss
        gradients before the optimizer step; the reported loss includes the
        proximal penalty so convergence plots reflect the true objective.
        """
        if not self._queue:
            raise ConfigurationError("no jobs queued; call start_round() first")
        if self._anchor is None:
            raise ConfigurationError("anchor not set; call start_round() first")
        batch = self._queue.pop(0)
        loss = self.model.loss_and_backward(batch.x, batch.y)
        penalty = 0.0
        if self.mu > 0:
            grads = self.model.gradients
            for grad, param, anchor in zip(grads, self.model.parameters, self._anchor):
                drift = param - anchor
                grad += self.mu * drift
                penalty += 0.5 * self.mu * float(np.sum(drift**2))
        self.optimizer.step(self.model.parameters, self.model.gradients)
        self.jobs_run += 1
        self.last_loss = loss + penalty
        return self.last_loss
